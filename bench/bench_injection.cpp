// E17 (extension) -- systematic single-fault injection campaign, the
// evaluation methodology of the systematic-diversity work the paper
// builds on (Lovric [6]: "...and Their Evaluation by Fault Injection").
// For every (fault kind x detection round) cell, one engine run is
// classified into {no effect, recovered, rolled back, silent,
// fail-safe}; the matrix is printed per scheme.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/campaign.hpp"
#include "core/smt_engine.hpp"

using namespace vds;

namespace {

core::VdsOptions engine_options(core::RecoveryScheme scheme,
                                double permanent_spread) {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = 20;
  options.job_rounds = 60;
  options.scheme = scheme;
  options.permanent_affects_others_prob = permanent_spread;
  return options;
}

void run_for(core::RecoveryScheme scheme, double permanent_spread) {
  std::printf("\n  scheme %s, permanent spread %.1f\n",
              core::to_string(scheme).data(), permanent_spread);

  core::InjectionCampaign campaign;
  campaign.round_time = 2.0 * 0.65 + 0.1;
  campaign.rounds = {1, 4, 8, 12, 16, 20};

  const core::EngineRunner runner =
      [scheme, permanent_spread](fault::FaultTimeline& timeline) {
        core::SmtVds vds(engine_options(scheme, permanent_spread),
                         sim::Rng(5));
        vds.set_predictor(std::make_unique<fault::OraclePredictor>());
        return vds.run(timeline);
      };
  const auto results = core::run_injection_campaign(campaign, runner);

  std::printf("  %-16s", "kind\\round");
  for (const auto round : campaign.rounds) {
    std::printf(" %11llu", static_cast<unsigned long long>(round));
  }
  std::printf("\n");
  std::size_t index = 0;
  for (const auto kind : campaign.kinds) {
    std::printf("  %-16s", std::string(fault::to_string(kind)).c_str());
    for (std::size_t r = 0; r < campaign.rounds.size(); ++r) {
      std::printf(" %11s",
                  std::string(core::to_string(results[index].outcome))
                      .c_str());
      ++index;
    }
    std::printf("\n");
  }
  const auto summary = core::summarize(results);
  std::printf("  safety (non-silent fraction of effective faults): %.3f\n",
              summary.safety());
}

}  // namespace

int main() {
  bench::banner("E17",
                "single-fault injection campaign (Lovric-style [6])");
  run_for(core::RecoveryScheme::kRollForwardDet, 0.0);
  run_for(core::RecoveryScheme::kRollForwardProb, 0.0);
  run_for(core::RecoveryScheme::kRollForwardPredict, 0.0);
  run_for(core::RecoveryScheme::kRollForwardDet, 1.0);
  bench::note("single faults of every kind and arrival round end in a "
              "safe state for the comparing schemes; pervasive "
              "permanents end fail-safe. The predict scheme's lack of "
              "roll-forward comparison does not show up under *single* "
              "faults -- its silent-corruption hazard needs a second "
              "fault inside the recovery window (see E16).");
  return 0;
}
