// E22 (extension) -- request latency and throughput of the vds_serve
// campaign server. A fixed pool of identical campaign requests is
// offered at increasing client concurrency; for each level the
// harness reports queue-wait and service-time p50/p99 (from the
// server's own stats endpoint machinery) and completed requests per
// second. Alongside the latency table, the digest of every response
// is checked against the one-shot campaign result: load changes
// *when* a request finishes, never *what* it computes.

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/mc_campaign.hpp"
#include "scenario/campaign_spec.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace vds;

namespace {

/// Sink that only counts: the bench reads latency from server stats.
class CountingSink : public serve::ResponseSink {
 public:
  void write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ++lines_;
    if (line.find("\"schema\": \"vds.serve_error.v1\"") !=
        std::string::npos) {
      ++errors_;
    }
    if (digest_.empty()) {
      const std::size_t at = line.find("\"digest\": \"");
      if (at != std::string::npos) digest_ = line.substr(at + 11, 16);
    }
  }
  [[nodiscard]] std::size_t lines() const { return lines_; }
  [[nodiscard]] std::size_t errors() const { return errors_; }
  [[nodiscard]] const std::string& digest() const { return digest_; }

 private:
  std::mutex mutex_;
  std::size_t lines_ = 0;
  std::size_t errors_ = 0;
  std::string digest_;
};

std::string campaign_request(int id) {
  return R"({"schema": "vds.serve_request.v1", "id": "r)" +
         std::to_string(id) +
         R"(", "type": "campaign", "scenario": {"schema": )"
         R"("vds.scenario.v1", "scheme": "det"}, "campaign": )"
         R"({"replicas": 20, "rounds": [1, 5, 10], "seed": 11}})";
}

std::string one_shot_digest() {
  const serve::ServeRequest request =
      serve::parse_request(campaign_request(0));
  runtime::McConfig config =
      scenario::to_mc_config(request.campaign, request.scenario);
  config.threads = 2;
  const runtime::McSummary summary = runtime::run_mc_campaign(
      config, scenario::make_mc_runner(request.scenario));
  char hex[20];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(summary.digest()));
  return hex;
}

}  // namespace

int main() {
  bench::banner("E22", "vds_serve latency/throughput vs client concurrency");
  std::printf(
      "\n%u hardware threads; 64 identical campaign requests per level\n",
      std::thread::hardware_concurrency());

  const std::string expected = one_shot_digest();
  constexpr int kRequests = 64;

  std::printf("\n%12s %10s %10s %10s %10s %10s %12s\n", "clients",
              "queue_p50", "queue_p99", "svc_p50", "svc_p99", "req/s",
              "digests");
  for (const int clients : {1, 2, 4, 8, 16}) {
    serve::ServerOptions options;
    options.queue_limit = kRequests + clients;  // admission never trips
    serve::Server server(options);
    auto sink = std::make_shared<CountingSink>();

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&server, sink, c, clients] {
        for (int r = c; r < kRequests; r += clients) {
          server.submit(campaign_request(r), sink);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    server.finish();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const serve::StatsSnapshot stats = server.stats_snapshot();
    const bool all_ok = sink->lines() == kRequests &&
                        sink->errors() == 0 && sink->digest() == expected;
    std::printf("%12d %9.2fms %9.2fms %9.2fms %9.2fms %10.1f %12s\n",
                clients, stats.queue_p50, stats.queue_p99, stats.service_p50,
                stats.service_p99,
                static_cast<double>(stats.completed) / elapsed,
                all_ok ? "all match" : "MISMATCH");
  }

  bench::note("queue wait grows with concurrency; the digest column must "
              "read 'all match' at every level -- load never perturbs "
              "results.");
  return 0;
}
