// E24 (extension) -- variance-targeted adaptive sampling vs the fixed
// replica lattice. Without variance foreknowledge a fixed design must
// provision every (kind, round) stratum for its worst case: the same
// replica budget everywhere. The CI-driven trial stream instead stops
// each stratum once the 95% Student-t half-width of its tracked
// statistics falls under the relative target, so near-deterministic
// strata (processor crashes detect in constant time) spend a fraction
// of what the noisy transient strata need. This bench runs both
// designs at an equal 5% target, reports the replica and wall-time
// savings, and re-runs the adaptive stream at several thread counts:
// stopping decisions are pure functions of canonically-ordered result
// prefixes, so the digest must not move by a bit.
//
// Gates (greppable by CI): "REGRESSION" when the provisioned-budget
// saving drops under 5x or a stratum misses the target; "MISMATCH"
// when any thread count perturbs the digest.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "runtime/mc_campaign.hpp"

using namespace vds;

namespace {

// The replica budget a fixed lattice would provision per stratum. The
// noisiest stratum in this campaign converges to 5% around ~640
// replicas, but a fixed design cannot know that in advance -- 2000 is
// the kind of safety margin the target demands without a pilot study.
constexpr std::uint64_t kBudget = 2000;
constexpr double kTarget = 0.05;

runtime::McConfig campaign_config() {
  runtime::McConfig config;
  config.rounds = {1, 5, 10, 15, 20};
  config.replicas = kBudget;  // 4 kinds x 5 rounds x 2000 = 40000 cells
  config.round_time = 2.0 * 0.65 + 0.1;
  config.seed = 7;
  config.threads = 8;
  return config;
}

core::VdsOptions engine_options() {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = 20;
  options.job_rounds = 60;
  options.scheme = core::RecoveryScheme::kRollForwardDet;
  options.permanent_affects_others_prob = 0.0;
  return options;
}

double run_seconds(const runtime::McConfig& config,
                   const runtime::McRunner& runner,
                   runtime::McSummary& summary) {
  const auto start = std::chrono::steady_clock::now();
  summary = runtime::run_mc_campaign(config, runner);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::banner("E24", "adaptive sampling vs the fixed replica lattice");
  const runtime::McRunner runner =
      runtime::make_smt_runner(engine_options());

  bench::section("fixed lattice (the provisioned budget)");
  runtime::McConfig fixed = campaign_config();
  runtime::McSummary fixed_summary;
  const double fixed_seconds = run_seconds(fixed, runner, fixed_summary);
  std::printf("  %llu replicas x %zu strata = %zu cells in %.2fs\n",
              static_cast<unsigned long long>(kBudget),
              fixed.kinds.size() * fixed.rounds.size(), fixed.cells(),
              fixed_seconds);

  bench::section("adaptive stream (5% relative CI target)");
  runtime::McConfig adaptive = campaign_config();
  adaptive.target_ci = kTarget;
  adaptive.min_replicas = 16;
  adaptive.batch = 32;
  runtime::McSummary summary;
  const double adaptive_seconds = run_seconds(adaptive, runner, summary);

  bool converged = true;
  std::uint64_t spent = 0;
  std::uint64_t widest = 0;
  std::printf("  %-16s %6s %9s %12s\n", "kind", "round", "replicas",
              "achieved CI");
  for (const runtime::McStratumStats& stats : summary.strata) {
    spent += stats.replicas_run;
    widest = std::max(widest, stats.replicas_run);
    const bool ok = stats.early_stopped && stats.achieved_ci <= kTarget;
    converged &= ok;
    std::printf("  %-16s %6llu %9llu %11.4f%s\n",
                std::string(fault::to_string(stats.kind)).c_str(),
                static_cast<unsigned long long>(stats.round),
                static_cast<unsigned long long>(stats.replicas_run),
                stats.achieved_ci,
                ok ? "" : "  <-- REGRESSION: missed the target");
  }
  std::printf("  %llu of %zu budget cells in %.2fs\n",
              static_cast<unsigned long long>(spent), fixed.cells(),
              adaptive_seconds);

  bench::section("savings at the equal 5% target");
  const double replica_ratio =
      static_cast<double>(fixed.cells()) / static_cast<double>(spent);
  const double oracle_ratio =
      static_cast<double>(widest * summary.strata.size()) /
      static_cast<double>(spent);
  const double time_ratio =
      adaptive_seconds > 0.0 ? fixed_seconds / adaptive_seconds : 0.0;
  std::printf("  replicas: %.1fx fewer than the provisioned budget%s\n",
              replica_ratio,
              replica_ratio >= 5.0 ? "" : "  <-- REGRESSION: under 5x");
  std::printf("  wall time: %.1fx faster\n", time_ratio);
  bench::note("an oracle fixed design sized at the noisiest stratum (" +
              std::to_string(widest) + " replicas everywhere) would " +
              "still spend " +
              std::to_string(oracle_ratio).substr(0, 4) +
              "x the adaptive total -- stratum variance is what the " +
              "stream exploits.");

  bench::section("determinism across thread counts");
  bool digests_match = true;
  const std::uint64_t reference = summary.digest();
  for (const unsigned threads : {1u, 4u}) {
    runtime::McConfig config = adaptive;
    config.threads = threads;
    runtime::McSummary again;
    (void)run_seconds(config, runner, again);
    const bool same = again.digest() == reference;
    digests_match &= same;
    std::printf("  threads %u: digest %016llx%s\n", threads,
                static_cast<unsigned long long>(again.digest()),
                same ? "" : "  <-- MISMATCH");
  }
  std::printf("  stopping decisions thread-invariant: %s\n",
              digests_match ? "yes" : "NO");

  const bool pass = converged && replica_ratio >= 5.0 && digests_match;
  bench::note(pass ? "adaptive stream meets the target everywhere at "
                     ">=5x replica savings."
                   : "see REGRESSION/MISMATCH markers above.");
  return pass ? 0 : 1;
}
