// E5 -- Figure 4: expected correction gain G_corr(alpha, beta) for
// p = 0.5 (random guess, the paper's pessimistic case), s = 20,
// computed from the exact equations (10)-(14) exactly as the paper
// states. Prints the surface as a matrix plus the paper's anchors.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "model/limits.hpp"
#include "model/surface.hpp"

using namespace vds;

int main() {
  bench::banner("E5", "Figure 4: G_corr(alpha, beta) surface at p = 0.5");

  const model::Axis alpha{0.5, 1.0, 11};
  const model::Axis beta{0.0, 1.0, 11};
  const model::GainSurface surface(alpha, beta, /*p=*/0.5, /*s=*/20);

  surface.write_matrix(std::cout);

  bench::section("anchors");
  std::printf("  G(0.65, 0.1) = %.4f   (G_max limit: %.4f, paper: 1.38)\n",
              surface.at(3, 1), model::g_max(0.5, 0.65, 0.1));
  std::printf("  G(0.90, 0.1) = %.4f   (paper: ~1.0 even at 10%% "
              "multithreading benefit)\n",
              surface.at(8, 1));
  std::printf("  surface range: [%.4f, %.4f]\n", surface.min_gain(),
              surface.max_gain());
  bench::note("gain >= 1 for p = 0.5 whenever alpha <= (1+ln2)/2 ~ 0.847 "
              "(beta = 0); larger beta shifts the break-even right.");
  return 0;
}
