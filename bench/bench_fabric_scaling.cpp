// E25 (extension) -- worker scaling of the distributed campaign
// fabric. One 20000-cell campaign is run through an in-process
// coordinator with 1, 2, 4 and 8 single-threaded workers attached
// over a Unix socket; wall time, cells per second and the merged
// digest are reported, against a plain single-process McExecution
// baseline. The digest must be identical everywhere — sharding is
// just more scheduling on top of per-cell RNG substreams — so the
// table measures only the cost/benefit of distribution: handshake
// and heartbeat traffic, per-lease journal fsyncs, and the final
// merge + full-range resume. CI greps for MISMATCH/REGRESSION.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/worker.hpp"
#include "runtime/mc_campaign.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/campaign_spec.hpp"
#include "scenario/scenario.hpp"

using namespace vds;
using Clock = std::chrono::steady_clock;

namespace {

scenario::CampaignSpec campaign() {
  scenario::CampaignSpec spec;
  spec.replicas = 2000;
  spec.grid = {1, 5, 10, 15, 20};
  spec.kinds = {fault::FaultKind::kTransient,
                fault::FaultKind::kProcessorCrash};
  spec.seed = 42;
  return spec;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  bench::banner("E25", "distributed fabric worker scaling (extension)");

  scenario::Scenario scn;  // defaults: smt/det, alpha 0.65
  scn.rounds = 60;         // campaign job length, as vds_mc defaults it
  const scenario::CampaignSpec spec = campaign();
  const std::uint64_t cells =
      spec.replicas * spec.grid.size() * spec.kinds.size();
  std::printf("  campaign: %llu cells (%llu replicas x %zu rounds x "
              "%zu kinds), scheme det\n",
              static_cast<unsigned long long>(cells),
              static_cast<unsigned long long>(spec.replicas),
              spec.grid.size(), spec.kinds.size());

  // Baseline: the same campaign through one McExecution, no fabric.
  runtime::McConfig base_config = scenario::to_mc_config(spec, scn);
  const runtime::McRunner runner = scenario::make_mc_runner(scn);
  std::uint64_t base_digest = 0;
  double base_wall = 0.0;
  {
    const auto start = Clock::now();
    runtime::McExecution exec(base_config, runner);
    runtime::ThreadPool pool(base_config.threads);
    exec.enqueue(pool);
    pool.wait_idle();
    base_digest = exec.reduce(pool).digest();
    base_wall = seconds_since(start);
  }
  std::printf("  single-process baseline: %.3f s, %.0f cells/s, "
              "digest %016llx\n",
              base_wall, static_cast<double>(cells) / base_wall,
              static_cast<unsigned long long>(base_digest));

  const auto tmp = std::filesystem::temp_directory_path() /
                   "vds_bench_fabric_scaling";
  std::filesystem::remove_all(tmp);
  std::filesystem::create_directories(tmp);

  std::printf("\n  %8s %10s %12s %9s  %s\n", "workers", "wall [s]",
              "cells/s", "vs base", "digest");
  bool all_match = true;
  bool all_clean = true;
  for (const int workers : {1, 2, 4, 8}) {
    const std::string tag = std::to_string(workers);
    fabric::CoordinatorOptions coord;
    coord.scenario = scn;
    coord.campaign = spec;
    coord.socket_path = (tmp / ("fab-" + tag + ".sock")).string();
    coord.workdir = (tmp / ("work-" + tag)).string();
    coord.lease_cells = cells / 16;
    coord.json_out = (tmp / ("summary-" + tag + ".json")).string();
    coord.quiet = true;

    const auto start = Clock::now();
    int coordinator_rc = -1;
    std::thread coordinator(
        [&] { coordinator_rc = fabric::run_coordinator(coord); });
    while (!std::filesystem::exists(coord.socket_path) &&
           seconds_since(start) < 10.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::vector<std::thread> pool;
    std::vector<int> worker_rc(static_cast<std::size_t>(workers), -1);
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        fabric::WorkerOptions opt;
        opt.socket_path = coord.socket_path;
        opt.name = "bench-w" + std::to_string(w);
        opt.threads = 1;
        opt.quiet = true;
        worker_rc[static_cast<std::size_t>(w)] = fabric::run_worker(opt);
      });
    }
    coordinator.join();
    for (std::thread& worker : pool) worker.join();
    const double wall = seconds_since(start);

    // The coordinator prints `digest: …` to stdout itself; re-read it
    // from the summary snapshot for the comparison column.
    std::uint64_t digest = 0;
    {
      std::FILE* json = std::fopen(coord.json_out.c_str(), "rb");
      if (json) {
        std::string text(1 << 16, '\0');
        text.resize(std::fread(text.data(), 1, text.size(), json));
        std::fclose(json);
        const auto at = text.find("\"digest\": \"");
        if (at != std::string::npos) {
          digest = std::strtoull(text.c_str() + at + 11, nullptr, 16);
        }
      }
    }
    bool clean = coordinator_rc == 0;
    for (const int rc : worker_rc) clean = clean && rc == 0;
    all_clean = all_clean && clean;
    all_match = all_match && digest == base_digest;
    std::printf("  %8d %10.3f %12.0f %8.2fx  %016llx%s%s\n", workers,
                wall, static_cast<double>(cells) / wall,
                base_wall / wall,
                static_cast<unsigned long long>(digest),
                digest == base_digest ? "" : "  <-- MISMATCH",
                clean ? "" : "  <-- nonzero exit");
  }
  std::filesystem::remove_all(tmp);

  std::printf("\n  fabric digest bit-identical to the single-process "
              "run at every worker count: %s\n",
              all_match ? "yes" : "NO -- REGRESSION");
  std::printf("  coordinator and all workers exited 0 everywhere: %s\n",
              all_clean ? "yes" : "NO -- REGRESSION");
  bench::note("workers are single-threaded; compare against E18 for "
              "in-process thread scaling of the same runtime.");
  return (all_match && all_clean) ? 0 : 1;
}
