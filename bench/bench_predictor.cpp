// E10 -- Section 4/5: faulty-version prediction. The paper proposes a
// software fault-history predictor "similar to branch prediction".
// This harness runs the predict-scheme VDS under differently biased
// fault streams, measures each predictor's empirical accuracy p, and
// shows the achieved speedup tracking the model's G_corr(p).

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/conventional.hpp"
#include "core/smt_engine.hpp"
#include "model/gain.hpp"

using namespace vds;

namespace {

using PredictorFactory =
    std::function<std::unique_ptr<fault::Predictor>(sim::Rng)>;

struct StreamSpec {
  const char* name;
  double victim1_bias;   ///< fraction of faults hitting version 1
  double crash_weight;   ///< crash faults provide certain evidence
  double uniformity;     ///< spatial skew (small = few hot locations)
};

void run_matrix(const StreamSpec& stream,
                const std::vector<std::pair<std::string, PredictorFactory>>&
                    predictors) {
  std::printf("\n  fault stream '%s' (bias=%.2f crash=%.2f skew=%.2f)\n",
              stream.name, stream.victim1_bias, stream.crash_weight,
              stream.uniformity);
  std::printf("  %-16s %10s %12s %12s %14s\n", "predictor", "p (meas)",
              "time(SMT)", "gain vs conv", "model Gcorr(p)");

  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = 20;
  options.job_rounds = 20000;
  options.scheme = core::RecoveryScheme::kRollForwardPredict;

  fault::FaultConfig fc;
  fc.rate = 0.02;
  fc.weight_transient = 1.0 - stream.crash_weight;
  fc.weight_crash = stream.crash_weight;
  fc.victim1_bias = stream.victim1_bias;
  fc.location_uniformity = stream.uniformity;
  fc.locations = 16;

  // Conventional reference on the same stream statistics.
  double conv_time = 0.0;
  {
    sim::Rng rng(9);
    auto timeline = fault::generate_timeline(fc, rng, 80000.0);
    core::VdsOptions conv_options = options;
    conv_options.scheme = core::RecoveryScheme::kStopAndRetry;
    core::ConventionalVds conv(conv_options, sim::Rng(10));
    conv_time = conv.run(timeline).total_time;
  }

  for (const auto& [name, factory] : predictors) {
    sim::Rng rng(9);
    auto timeline = fault::generate_timeline(fc, rng, 80000.0);
    core::SmtVds vds(options, sim::Rng(10));
    vds.set_predictor(factory(sim::Rng(11)));
    const auto report = vds.run(timeline);
    const double p = report.predictor_accuracy();
    const auto params = options.to_model_params(p);
    std::printf("  %-16s %10.3f %12.1f %12.3f %14.3f\n", name.c_str(), p,
                report.total_time, conv_time / report.total_time,
                model::mean_gain_corr(params));
  }
}

}  // namespace

int main() {
  bench::banner("E10", "fault prediction: accuracy p and achieved gain");

  const std::vector<std::pair<std::string, PredictorFactory>> predictors = {
      {"random", [](sim::Rng rng) {
         return std::make_unique<fault::RandomPredictor>(rng);
       }},
      {"static(V1)", [](sim::Rng) {
         return std::make_unique<fault::StaticPredictor>(
             fault::VersionGuess::kVersion1);
       }},
      {"last_faulty", [](sim::Rng) {
         return std::make_unique<fault::LastFaultyPredictor>();
       }},
      {"two_bit", [](sim::Rng) {
         return std::make_unique<fault::TwoBitPredictor>(16);
       }},
      {"history", [](sim::Rng) {
         return std::make_unique<fault::HistoryPredictor>(6, 4);
       }},
      {"tournament", [](sim::Rng) {
         return std::make_unique<fault::TournamentPredictor>(6, 4);
       }},
      {"perceptron", [](sim::Rng) {
         return std::make_unique<fault::PerceptronPredictor>();
       }},
      {"crash+two_bit", [](sim::Rng) {
         return std::make_unique<fault::CrashEvidencePredictor>(
             std::make_unique<fault::TwoBitPredictor>(16));
       }},
      {"oracle", [](sim::Rng) {
         return std::make_unique<fault::OraclePredictor>();
       }},
  };

  const StreamSpec streams[] = {
      {"unbiased", 0.5, 0.0, 1.0},
      {"sticky-victim", 0.9, 0.0, 0.3},
      {"crash-heavy", 0.5, 0.5, 1.0},
      {"hot-location", 0.75, 0.1, 0.15},
  };
  for (const auto& stream : streams) run_matrix(stream, predictors);

  bench::note("history predictors lift p above 0.5 exactly when the "
              "fault process has structure (the paper's radiation-"
              "damaged-part scenario); the achieved job-level gain "
              "follows the model's G_corr(p) ordering.");
  return 0;
}
