// E16 (extension) -- reliability estimates in the Ziv-Bruck [14] style
// the paper's related work builds on: per-recovery failure probability,
// rollback expectations, the predict scheme's silent-corruption risk
// and the optimal checkpoint interval, all validated against Monte
// Carlo runs of the protocol engine.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/smt_engine.hpp"
#include "model/reliability.hpp"
#include "sim/stats.hpp"

using namespace vds;

int main() {
  bench::banner("E16", "reliability model vs Monte Carlo engine runs");

  const std::uint64_t job_rounds = 10000;

  bench::section("closed form vs engine (det scheme, s = 20)");
  std::printf("  %8s | %10s %10s | %10s %10s | %9s %9s\n", "rate",
              "E[det]", "meas", "E[time]", "meas", "E[rollbk]", "meas");
  for (const double rate : {0.002, 0.01, 0.02, 0.05}) {
    const auto params = model::Params::with_beta(0.65, 0.1, 20, 0.5);
    const auto est = model::estimate_reliability(
        params, model::Scheme::kDeterministic, rate, job_rounds);

    core::VdsOptions options;
    options.c = 0.1;
    options.t_cmp = 0.1;
    options.alpha = 0.65;
    options.s = 20;
    options.job_rounds = job_rounds;
    options.scheme = core::RecoveryScheme::kRollForwardDet;
    sim::Accumulator detections;
    sim::Accumulator times;
    sim::Accumulator rollbacks;
    fault::FaultConfig fc;
    fc.rate = rate;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      sim::Rng rng(seed);
      auto timeline = fault::generate_timeline(fc, rng, 300000.0);
      core::SmtVds vds(options, sim::Rng(seed + 40));
      const auto report = vds.run(timeline);
      detections.add(static_cast<double>(report.detections));
      times.add(report.total_time);
      rollbacks.add(static_cast<double>(report.rollbacks));
    }
    std::printf("  %8.3f | %10.1f %10.1f | %10.0f %10.0f | %9.2f %9.2f\n",
                rate, est.expected_detections, detections.mean(),
                est.expected_total_time, times.mean(),
                est.expected_rollbacks, rollbacks.mean());
  }

  bench::section("predict-scheme silent-corruption risk vs rate (p = 1)");
  std::printf("  %8s %16s %16s\n", "rate", "P(silent) model",
              "measured freq");
  for (const double rate : {0.005, 0.01, 0.02, 0.04}) {
    const auto params = model::Params::with_beta(0.65, 0.1, 20, 1.0);
    const auto est = model::estimate_reliability(
        params, model::Scheme::kPrediction, rate, 2000);
    core::VdsOptions options;
    options.c = 0.1;
    options.t_cmp = 0.1;
    options.alpha = 0.65;
    options.s = 20;
    options.job_rounds = 2000;
    options.scheme = core::RecoveryScheme::kRollForwardPredict;
    int silent = 0;
    int completed = 0;
    fault::FaultConfig fc;
    fc.rate = rate;
    for (std::uint64_t seed = 0; seed < 80; ++seed) {
      sim::Rng rng(seed);
      auto timeline = fault::generate_timeline(fc, rng, 60000.0);
      core::SmtVds vds(options, sim::Rng(seed + 90));
      vds.set_predictor(std::make_unique<fault::OraclePredictor>());
      const auto report = vds.run(timeline);
      if (!report.completed) continue;
      ++completed;
      if (report.silent_corruption) ++silent;
    }
    std::printf("  %8.3f %16.4f %16.4f\n", rate, est.p_job_silent,
                completed > 0 ? static_cast<double>(silent) / completed
                              : 0.0);
  }

  bench::section("optimal checkpoint interval vs stable-storage cost");
  std::printf("  %12s %12s\n", "write cost", "best s");
  for (const double cost : {0.0, 0.5, 2.0, 5.0, 20.0}) {
    const auto params = model::Params::with_beta(0.65, 0.1, 20, 0.5);
    const int best = model::optimal_checkpoint_interval(
        params, model::Scheme::kDeterministic, 0.01, job_rounds, cost);
    std::printf("  %12.1f %12d\n", cost, best);
  }
  bench::note("cheap stable storage favours tiny intervals (short "
              "retries); costly storage pushes the optimum toward the "
              "paper's s ~ 20 -- the 'test often, checkpoint rarely' "
              "trade the VDS design encodes.");
  return 0;
}
