// E4 -- Equation (8): probabilistic roll-forward gain across the
// prediction probability p, with the paper's two comparisons: equal to
// the deterministic scheme at p = 0.5, strictly better for p > 0.5.

#include <cstdio>

#include "bench_util.hpp"
#include "model/gain.hpp"

using namespace vds;

int main() {
  bench::banner("E4", "eq (8): probabilistic roll-forward gain G_prob");

  bench::section("mean gain vs p and alpha (beta = 0.1, s = 20)");
  const double alphas[] = {0.5, 0.6, 0.65, 0.7, 0.8, 0.9};
  std::printf("%6s", "p");
  for (const double alpha : alphas) std::printf("  a=%-8.2f", alpha);
  std::printf("\n");
  for (double p = 0.0; p <= 1.001; p += 0.1) {
    std::printf("%6.1f", p);
    for (const double alpha : alphas) {
      const auto params = model::Params::with_beta(alpha, 0.1, 20, p);
      std::printf("  %10.4f", model::mean_gain_prob(params));
    }
    std::printf("\n");
  }

  bench::section("probabilistic vs deterministic (paper: equal at p=0.5, "
                 "prob wins for p > 0.5)");
  std::printf("%6s %14s %14s\n", "p", "prob(mean)", "det(mean)");
  for (double p = 0.3; p <= 1.001; p += 0.1) {
    const auto params = model::Params::with_beta(0.65, 0.1, 20, p);
    std::printf("%6.1f %14.4f %14.4f\n", p, model::mean_gain_prob(params),
                model::mean_gain_det(params));
  }

  bench::section("approximation check at beta = 0");
  std::printf("%6s %14s %14s\n", "p", "exact(s=2000)", "eq(8)~");
  for (double p = 0.0; p <= 1.001; p += 0.25) {
    const auto params = model::Params::with_beta(0.65, 0.0, 2000, p);
    std::printf("%6.2f %14.4f %14.4f\n", p, model::mean_gain_prob(params),
                model::mean_gain_prob_approx(params));
  }
  return 0;
}
