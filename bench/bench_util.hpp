#pragma once

#include <cstdio>
#include <string>

// Shared formatting helpers for the experiment harnesses. Output is
// plain aligned text so the tables diff cleanly across runs.

namespace vds::bench {

inline void banner(const std::string& experiment_id,
                   const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s  %s\n", experiment_id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

}  // namespace vds::bench
