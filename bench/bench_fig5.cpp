// E6 -- Figure 5: expected correction gain G_corr(alpha, beta) for
// p = 1.0 (perfect prediction, the paper's best case), s = 20, from the
// exact equations (10)-(14).

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "model/limits.hpp"
#include "model/surface.hpp"

using namespace vds;

int main() {
  bench::banner("E6", "Figure 5: G_corr(alpha, beta) surface at p = 1.0");

  const model::Axis alpha{0.5, 1.0, 11};
  const model::Axis beta{0.0, 1.0, 11};
  const model::GainSurface surface(alpha, beta, /*p=*/1.0, /*s=*/20);

  surface.write_matrix(std::cout);

  bench::section("anchors");
  std::printf("  G(0.65, 0.1) = %.4f   (G_max limit: %.4f, paper: ~2)\n",
              surface.at(3, 1), model::g_max(1.0, 0.65, 0.1));
  std::printf("  surface range: [%.4f, %.4f]\n", surface.min_gain(),
              surface.max_gain());
  bench::note("with perfect prediction the SMT VDS recovers about twice "
              "as fast as the conventional VDS over the whole "
              "realistic (alpha, beta) region.");
  return 0;
}
