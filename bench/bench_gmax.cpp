// E7 -- The G_max limit (paper §4.3): closed-form limit of the expected
// correction gain for s -> infinity, its paper anchors, and the
// convergence claim "beyond s = 20, G_corr is already very close to the
// limit".

#include <cstdio>

#include "bench_util.hpp"
#include "model/gain.hpp"
#include "model/limits.hpp"

using namespace vds;

int main() {
  bench::banner("E7", "G_max = lim_{s->inf} mean G_corr");

  bench::section("anchor table (beta = 0.1)");
  struct Anchor {
    double p;
    double alpha;
    const char* paper;
  };
  const Anchor anchors[] = {
      {0.5, 0.65, "1.38 (pessimistic random guessing)"},
      {1.0, 0.65, "~2   (perfect prediction)"},
      {0.5, 0.90, "~1.0 (Alewife-style 10% multithreading benefit)"},
  };
  std::printf("%6s %8s %12s   %s\n", "p", "alpha", "G_max", "paper");
  for (const auto& anchor : anchors) {
    std::printf("%6.2f %8.2f %12.4f   %s\n", anchor.p, anchor.alpha,
                model::g_max(anchor.p, anchor.alpha, 0.1), anchor.paper);
  }

  bench::section("G_max over p at alpha = 0.65, beta = 0.1");
  std::printf("%6s %12s %16s\n", "p", "G_max", "gain iff p >=");
  for (double p = 0.0; p <= 1.001; p += 0.1) {
    std::printf("%6.1f %12.4f %16.4f\n", p, model::g_max(p, 0.65, 0.1),
                model::min_p_for_gain(0.65));
  }

  bench::section("convergence in the checkpoint interval s");
  std::printf("%8s %14s %14s\n", "s", "mean G_corr", "gap to G_max");
  for (const int s : {1, 2, 5, 10, 20, 50, 100, 500, 2000}) {
    const auto params = model::Params::with_beta(0.65, 0.1, s, 0.5);
    std::printf("%8d %14.4f %14.4f\n", s, model::mean_gain_corr(params),
                model::convergence_gap(params));
  }
  std::printf("  smallest s within 5%% of the limit: %d\n",
              model::s_for_convergence(0.5, 0.65, 0.1, 0.05));
  bench::note("the paper's s = 20 sits within a few percent of the "
              "infinite-interval limit, justifying its choice for the "
              "figures.");
  return 0;
}
