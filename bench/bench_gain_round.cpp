// E2 -- Equation (4): normal-processing speedup G_round of the SMT VDS
// over the conventional VDS, exact and in the c, t' << t approximation,
// across alpha and beta.

#include <cstdio>

#include "bench_util.hpp"
#include "model/gain.hpp"

using namespace vds;

int main() {
  bench::banner("E2", "eq (4): normal-processing gain G_round(alpha, beta)");

  std::printf("\n%8s", "alpha");
  const double betas[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.5};
  for (const double beta : betas) std::printf("  beta=%-5.2f", beta);
  std::printf("  %10s\n", "1/alpha");

  for (int step = 0; step <= 10; ++step) {
    const double alpha = 0.50 + 0.05 * step;
    std::printf("%8.2f", alpha);
    for (const double beta : betas) {
      const auto params = model::Params::with_beta(alpha, beta, 20, 0.5);
      std::printf("  %10.4f", model::gain_round(params));
    }
    std::printf("  %10.4f\n", 1.0 / alpha);
  }

  bench::section("paper anchors");
  {
    const auto p4 = model::Params::with_beta(0.65, 0.1, 20, 0.5);
    std::printf("  Pentium-4 operating point (alpha=0.65, beta=0.1): "
                "G_round = %.4f (~35%% runtime reduction reported [13])\n",
                model::gain_round(p4));
    bench::note("G_round -> 1/alpha as overheads vanish; the SMT system "
                "always wins the fault-free phase because the context "
                "switches disappear.");
  }
  return 0;
}
