// E13 -- Related-work comparison (paper §2.2): Reinhardt/Mukherjee
// lockstep SRT [9] detects within a cycle but pays continuous compare
// overhead and cannot expose permanent faults; the physical duplex is
// fastest but doubles the hardware. This harness tabulates throughput,
// detection latency and permanent-fault behaviour for all four systems
// on statistically identical fault streams.

#include <cstdio>

#include "baseline/duplex.hpp"
#include "baseline/srt.hpp"
#include "bench_util.hpp"
#include "core/conventional.hpp"
#include "core/smt_engine.hpp"

using namespace vds;

namespace {

constexpr std::uint64_t kJobRounds = 20000;
constexpr double kHorizon = 300000.0;

fault::FaultConfig stream(double rate, double permanent_weight) {
  fault::FaultConfig fc;
  fc.rate = rate;
  fc.weight_transient = 1.0 - permanent_weight;
  fc.weight_permanent = permanent_weight;
  return fc;
}

void print_row(const char* name, const core::RunReport& report,
               int processors) {
  std::printf("  %-14s %5s %12.1f %14.6f %12.4f %9llu %9llu %7s\n", name,
              report.completed ? "ok" : (report.failed_safe ? "SAFE"
                                                            : "abort"),
              report.total_time,
              report.throughput() / processors,
              report.detection_latency.empty()
                  ? 0.0
                  : report.detection_latency.mean(),
              static_cast<unsigned long long>(report.detections),
              static_cast<unsigned long long>(report.rollbacks),
              report.silent_corruption ? "YES" : "no");
}

void compare(double rate, double permanent_weight, std::uint64_t seed) {
  std::printf("\n  rate=%.3f, permanent fraction=%.2f\n", rate,
              permanent_weight);
  std::printf("  %-14s %5s %12s %14s %12s %9s %9s %7s\n", "system", "end",
              "time", "thr./cpu", "det.lat", "detects", "rollbk",
              "silent");

  {
    core::VdsOptions options;
    options.job_rounds = kJobRounds;
    options.scheme = core::RecoveryScheme::kStopAndRetry;
    options.permanent_affects_others_prob = 0.0;
    sim::Rng rng(seed);
    auto timeline = fault::generate_timeline(stream(rate, permanent_weight),
                                             rng, kHorizon);
    core::ConventionalVds vds(options, sim::Rng(seed + 1));
    print_row("VDS conv", vds.run(timeline), 1);
  }
  {
    core::VdsOptions options;
    options.job_rounds = kJobRounds;
    options.scheme = core::RecoveryScheme::kRollForwardDet;
    options.permanent_affects_others_prob = 0.0;
    sim::Rng rng(seed);
    auto timeline = fault::generate_timeline(stream(rate, permanent_weight),
                                             rng, kHorizon);
    core::SmtVds vds(options, sim::Rng(seed + 1));
    print_row("VDS smt", vds.run(timeline), 1);
  }
  {
    baseline::SrtConfig config;
    config.job_rounds = kJobRounds;
    sim::Rng rng(seed);
    auto timeline = fault::generate_timeline(stream(rate, permanent_weight),
                                             rng, kHorizon);
    baseline::LockstepSrt srt(config, sim::Rng(seed + 1));
    print_row("SRT lockstep", srt.run(timeline), 1);
  }
  {
    baseline::DuplexConfig config;
    config.job_rounds = kJobRounds;
    sim::Rng rng(seed);
    auto timeline = fault::generate_timeline(stream(rate, permanent_weight),
                                             rng, kHorizon);
    baseline::PhysicalDuplex duplex(config, sim::Rng(seed + 1));
    print_row("duplex (2cpu)", duplex.run(timeline), 2);
  }
}

}  // namespace

int main() {
  bench::banner("E13", "VDS vs lockstep SRT [9] vs physical duplex");
  compare(0.005, 0.0, 11);
  compare(0.02, 0.0, 12);
  compare(0.01, 0.05, 13);

  bench::note("SRT detects orders of magnitude faster but loses "
              "throughput to its always-on comparison and misses "
              "permanent faults entirely (identical copies). The "
              "diversity-based VDS detects at round granularity yet "
              "tolerates isolated permanent faults; the duplex buys raw "
              "speed with twice the hardware (compare thr./cpu).");
  return 0;
}
