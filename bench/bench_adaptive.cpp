// E15 (extension) -- adaptive scheme selection: the paper's §5 remark
// that "we may be able to apply more sophisticated algorithms" realized
// as a controller that picks deterministic vs probabilistic roll-
// forward per recovery from the predictor's measured accuracy. This
// harness compares fixed and adaptive configurations across fault
// streams with and without learnable structure.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/smt_engine.hpp"

using namespace vds;

namespace {

struct Row {
  const char* name;
  bool adaptive;
  core::RecoveryScheme scheme;
};

void run_stream(const char* stream_name, double bias, std::uint64_t seed) {
  std::printf("\n  stream '%s' (victim bias %.2f)\n", stream_name, bias);
  std::printf("  %-14s %10s %8s %8s %10s %12s\n", "config", "time",
              "rf_kept", "rf_disc", "p (meas)", "adaptive d/p");

  const Row rows[] = {
      {"fixed det", false, core::RecoveryScheme::kRollForwardDet},
      {"fixed prob", false, core::RecoveryScheme::kRollForwardProb},
      {"adaptive", true, core::RecoveryScheme::kRollForwardDet},
  };

  for (const Row& row : rows) {
    core::VdsOptions options;
    options.t = 1.0;
    options.c = 0.1;
    options.t_cmp = 0.1;
    options.alpha = 0.65;
    options.s = 20;
    options.job_rounds = 30000;
    options.scheme = row.scheme;
    options.adaptive_scheme = row.adaptive;

    fault::FaultConfig config;
    config.rate = 0.02;
    config.victim1_bias = bias;

    sim::Rng fault_rng(seed);
    auto timeline = fault::generate_timeline(config, fault_rng, 200000.0);
    core::SmtVds vds(options, sim::Rng(seed + 1));
    vds.set_predictor(std::make_unique<fault::TwoBitPredictor>(16));
    const auto report = vds.run(timeline);

    char adaptive_cell[32] = "-";
    if (row.adaptive) {
      std::snprintf(adaptive_cell, sizeof adaptive_cell, "%llu/%llu",
                    static_cast<unsigned long long>(
                        report.adaptive_det_recoveries),
                    static_cast<unsigned long long>(
                        report.adaptive_prob_recoveries));
    }
    std::printf("  %-14s %10.1f %8llu %8llu %10.3f %12s\n", row.name,
                report.total_time,
                static_cast<unsigned long long>(report.roll_forwards_kept),
                static_cast<unsigned long long>(
                    report.roll_forwards_discarded),
                report.predictor_accuracy(), adaptive_cell);
  }
}

}  // namespace

int main() {
  bench::banner("E15",
                "adaptive det/prob scheme selection (Section-5 extension)");
  run_stream("unbiased", 0.5, 31);
  run_stream("weakly biased", 0.7, 32);
  run_stream("strongly biased", 0.95, 33);
  bench::note("the controller warms up deterministically, then tracks "
              "the measured p: on structured streams it converges to the "
              "probabilistic roll-forward (more expected progress), on "
              "unstructured ones it keeps the guaranteed deterministic "
              "progress -- matching whichever fixed choice is better "
              "without knowing the stream in advance.");
  return 0;
}
