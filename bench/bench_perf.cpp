// Performance micro-benchmarks (google-benchmark) of the simulation
// substrates themselves: event-queue throughput, protocol-engine round
// rate, SMT-core simulation speed, and state digesting. These guard
// against regressions that would make the experiment harnesses slow.

#include <benchmark/benchmark.h>

#include <vector>

#include "checkpoint/state.hpp"
#include "core/smt_engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "smt/core.hpp"
#include "smt/workload.hpp"

namespace {

void BM_EventQueueScheduleDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  vds::sim::Rng rng(1);
  for (auto _ : state) {
    vds::sim::EventQueue queue;
    for (std::size_t k = 0; k < n; ++k) {
      queue.schedule(rng.uniform(), [] {});
    }
    while (auto event = queue.pop()) {
      benchmark::DoNotOptimize(event->when);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EventQueueScheduleDrain)->Arg(1024)->Arg(16384);

void BM_StateAdvance(benchmark::State& state) {
  vds::checkpoint::VersionState version(7, 64);
  std::uint64_t round = 0;
  for (auto _ : state) {
    version.advance_round(++round);
    benchmark::DoNotOptimize(version.digest());
  }
}
BENCHMARK(BM_StateAdvance);

void BM_SmtVdsFaultFreeRounds(benchmark::State& state) {
  vds::core::VdsOptions options;
  options.job_rounds = static_cast<std::uint64_t>(state.range(0));
  options.scheme = vds::core::RecoveryScheme::kRollForwardDet;
  for (auto _ : state) {
    vds::core::SmtVds vds(options, vds::sim::Rng(1));
    vds::fault::FaultTimeline timeline{std::vector<vds::fault::Fault>{}};
    const auto report = vds.run(timeline);
    benchmark::DoNotOptimize(report.total_time);
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_SmtVdsFaultFreeRounds)->Arg(1000)->Arg(10000);

void BM_SmtVdsUnderFaults(benchmark::State& state) {
  vds::core::VdsOptions options;
  options.job_rounds = 2000;
  options.scheme = vds::core::RecoveryScheme::kRollForwardProb;
  vds::fault::FaultConfig config;
  config.rate = 0.02;
  for (auto _ : state) {
    vds::sim::Rng rng(3);
    auto timeline = vds::fault::generate_timeline(config, rng, 10000.0);
    vds::core::SmtVds vds(options, vds::sim::Rng(4));
    const auto report = vds.run(timeline);
    benchmark::DoNotOptimize(report.detections);
  }
}
BENCHMARK(BM_SmtVdsUnderFaults);

void BM_SmtCoreCyclesPerSecond(benchmark::State& state) {
  vds::sim::Rng rng(5);
  const auto trace = vds::smt::generate_trace(
      vds::smt::balanced_workload(
          static_cast<std::uint64_t>(state.range(0))),
      rng);
  vds::smt::CoreConfig config;
  for (auto _ : state) {
    vds::smt::Core core(config);
    const auto result = core.run(trace, trace);
    benchmark::DoNotOptimize(result.cycles);
  }
  state.SetItemsProcessed(2 * state.range(0) * state.iterations());
}
BENCHMARK(BM_SmtCoreCyclesPerSecond)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
