// E23 (extension) -- journal encoding cost: the v3 binary record
// format against the v2 text format on one real campaign. Three
// measurements:
//   1. bytes on disk per journaled cell (the steady-state write
//      amplification a long campaign pays per result) -- v3 must stay
//      at least 2x smaller than v2 or the line prints REGRESSION;
//   2. bitwise fidelity: the records loaded back from both encodings
//      must compare equal field for field (MISMATCH otherwise);
//   3. append and load throughput for each encoding.
// CI greps this output for REGRESSION/MISMATCH.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/journal.hpp"
#include "runtime/mc_campaign.hpp"

using namespace vds;

namespace {

runtime::McConfig campaign_config() {
  runtime::McConfig config;
  config.rounds = {1, 4, 8, 16};
  config.replicas = 50;  // 4 kinds x 4 rounds x 50 = 800 cells
  config.round_time = 2.0 * 0.65 + 0.1;
  config.seed = 23;
  config.threads = 2;
  return config;
}

core::VdsOptions engine_options() {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = 20;
  options.job_rounds = 60;
  options.scheme = core::RecoveryScheme::kRollForwardDet;
  options.permanent_affects_others_prob = 0.0;
  return options;
}

std::uint64_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

double seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::banner("E23", "journal encoding: v3 binary vs v2 text");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "vds_bench_journal")
          .string();
  std::filesystem::create_directories(dir);
  const std::string v2_path = dir + "/v2.journal";
  const std::string v3_path = dir + "/v3.journal";
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());

  const runtime::McRunner runner =
      runtime::make_smt_runner(engine_options());

  bench::section("bytes per journaled cell (800-cell campaign)");
  runtime::McConfig config = campaign_config();
  config.journal_path = v2_path;
  config.journal_format = runtime::JournalFormat::kV2Text;
  const runtime::McSummary v2_run = runtime::run_mc_campaign(config, runner);
  config.journal_path = v3_path;
  config.journal_format = runtime::JournalFormat::kV3Binary;
  const runtime::McSummary v3_run = runtime::run_mc_campaign(config, runner);

  const std::uint64_t cells = v2_run.cells_executed;
  const std::uint64_t v2_bytes = file_bytes(v2_path);
  const std::uint64_t v3_bytes = file_bytes(v3_path);
  const double v2_per_cell =
      static_cast<double>(v2_bytes) / static_cast<double>(cells);
  const double v3_per_cell =
      static_cast<double>(v3_bytes) / static_cast<double>(cells);
  const double ratio = v2_per_cell / v3_per_cell;
  std::printf("  %-10s %12s %14s\n", "format", "bytes", "bytes/cell");
  std::printf("  %-10s %12llu %14.2f\n", "v2 text",
              static_cast<unsigned long long>(v2_bytes), v2_per_cell);
  std::printf("  %-10s %12llu %14.2f\n", "v3 binary",
              static_cast<unsigned long long>(v3_bytes), v3_per_cell);
  std::printf("  v2/v3 size ratio: %.2fx %s\n", ratio,
              ratio >= 2.0 ? "(>= 2x, OK)" : "REGRESSION (< 2x)");

  bench::section("bitwise fidelity of the loaded records");
  const runtime::JournalLoad v2_load =
      runtime::Journal::inspect(v2_path);
  const runtime::JournalLoad v3_load =
      runtime::Journal::inspect(v3_path);
  // The two runs journal in completion order, which the thread
  // scheduler shuffles; per-cell results are deterministic, so compare
  // in canonical cell order.
  auto v2_records = v2_load.records;
  auto v3_records = v3_load.records;
  const auto by_cell = [](const runtime::JournalRecord& a,
                          const runtime::JournalRecord& b) {
    return a.index < b.index;
  };
  std::sort(v2_records.begin(), v2_records.end(), by_cell);
  std::sort(v3_records.begin(), v3_records.end(), by_cell);
  const bool same = v2_records == v3_records &&
                    v2_records.size() == cells &&
                    v2_load.corrupt == 0 && v3_load.corrupt == 0;
  std::printf("  v2 records %zu, v3 records %zu, digest %s: %s\n",
              v2_load.records.size(), v3_load.records.size(),
              v2_run.digest() == v3_run.digest() ? "equal" : "differs",
              same && v2_run.digest() == v3_run.digest()
                  ? "bitwise identical"
                  : "MISMATCH");

  bench::section("append + load throughput (50k records each)");
  const std::size_t kAppends = 50000;
  std::printf("  %-10s %14s %14s\n", "format", "append rec/s", "load rec/s");
  for (const auto format : {runtime::JournalFormat::kV2Text,
                            runtime::JournalFormat::kV3Binary}) {
    const bool binary = format == runtime::JournalFormat::kV3Binary;
    const std::string path = dir + (binary ? "/tp3.journal" : "/tp2.journal");
    std::remove(path.c_str());
    const auto write_start = std::chrono::steady_clock::now();
    {
      runtime::Journal journal(path, 23, format);
      for (std::size_t i = 0; i < kAppends; ++i) {
        journal.append(v2_load.records[i % v2_load.records.size()]);
      }
    }
    const double write_s = seconds_since(write_start);
    const auto read_start = std::chrono::steady_clock::now();
    const runtime::JournalLoad loaded = runtime::Journal::load(path, 23);
    const double read_s = seconds_since(read_start);
    if (loaded.records.size() != kAppends || loaded.corrupt != 0) {
      std::printf("  %-10s MISMATCH: reloaded %zu records, %llu corrupt\n",
                  binary ? "v3 binary" : "v2 text", loaded.records.size(),
                  static_cast<unsigned long long>(loaded.corrupt));
      continue;
    }
    std::printf("  %-10s %14.0f %14.0f\n", binary ? "v3 binary" : "v2 text",
                static_cast<double>(kAppends) / write_s,
                static_cast<double>(kAppends) / read_s);
    std::remove(path.c_str());
  }

  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
  bench::note("v3 keeps the full f64 payload; the size win comes from "
              "varint cell/outcome/rounds fields and eliding the two "
              "sentinel-valued doubles, not from rounding.");
  return 0;
}
