// E12 -- Checkpoint/test interval sensitivity (paper §2.2, citing Ziv &
// Bruck [14]): short test intervals improve reliability while stable-
// storage cost argues for long checkpoint intervals. This harness
// sweeps the checkpoint interval s and the stable-storage write cost
// and reports throughput, detection latency and recovery losses on
// both engines.

#include <cstdio>

#include "bench_util.hpp"
#include "core/conventional.hpp"
#include "core/smt_engine.hpp"

using namespace vds;

namespace {

core::RunReport run_smt(int s, double write_latency, double fault_rate,
                        std::uint64_t seed) {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = s;
  options.job_rounds = 20000;
  options.scheme = core::RecoveryScheme::kRollForwardDet;
  options.checkpoint_write_latency = write_latency;
  options.checkpoint_read_latency = write_latency;

  fault::FaultConfig fc;
  fc.rate = fault_rate;
  sim::Rng rng(seed);
  auto timeline = fault::generate_timeline(fc, rng, 200000.0);
  core::SmtVds vds(options, sim::Rng(seed + 1));
  return vds.run(timeline);
}

}  // namespace

int main() {
  bench::banner("E12", "checkpoint interval s: cost/latency trade-off");

  bench::section("free checkpoints, fault rate 0.01 (SMT, deterministic "
                 "roll-forward)");
  std::printf("%6s %12s %12s %12s %12s %10s\n", "s", "total time",
              "throughput", "det.latency", "recovery t", "rollbacks");
  for (const int s : {2, 5, 10, 20, 50, 100, 200}) {
    const auto report = run_smt(s, 0.0, 0.01, 42);
    std::printf("%6d %12.1f %12.5f %12.3f %12.3f %10llu\n", s,
                report.total_time, report.throughput(),
                report.detection_latency.empty()
                    ? 0.0
                    : report.detection_latency.mean(),
                report.recovery_time.empty() ? 0.0
                                             : report.recovery_time.mean(),
                static_cast<unsigned long long>(report.rollbacks));
  }
  bench::note("larger s lengthens retries (recovery ~ i grows with s) "
              "but saves nothing when checkpoints are free -- the "
              "paper's reason to test often.");

  bench::section("expensive stable storage (write = read = 5 t)");
  std::printf("%6s %12s %12s %12s\n", "s", "total time", "throughput",
              "checkpoints");
  for (const int s : {2, 5, 10, 20, 50, 100, 200}) {
    const auto report = run_smt(s, 5.0, 0.01, 42);
    std::printf("%6d %12.1f %12.5f %12llu\n", s, report.total_time,
                report.throughput(),
                static_cast<unsigned long long>(report.checkpoints));
  }
  bench::note("with costly stable storage the optimum moves to longer "
              "checkpoint intervals while the per-round comparisons keep "
              "detection latency short: the paper's 'test states more "
              "often than saving checkpoints'.");

  bench::section("fault-rate sensitivity at s = 20 (free checkpoints)");
  std::printf("%10s %12s %12s %10s\n", "rate", "total time", "throughput",
              "detections");
  for (const double rate : {0.001, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    const auto report = run_smt(20, 0.0, rate, 7);
    std::printf("%10.3f %12.1f %12.5f %10llu\n", rate, report.total_time,
                report.throughput(),
                static_cast<unsigned long long>(report.detections));
  }
  return 0;
}
