// E3 -- Equations (6)/(7): deterministic roll-forward gain, per
// detection round and averaged, with the alpha < 0.723 break-even the
// paper quotes.

#include <cstdio>

#include "bench_util.hpp"
#include "model/gain.hpp"

using namespace vds;

int main() {
  bench::banner("E3",
                "eqs (6)/(7): deterministic roll-forward gain G_det");

  bench::section("per-round gain G_det(i), s = 20, beta = 0.1");
  std::printf("%6s %12s %12s\n", "i", "exact", "approx");
  const auto params = model::Params::with_beta(0.65, 0.1, 20, 0.5);
  for (int i = 1; i <= 20; ++i) {
    std::printf("%6d %12.4f %12.4f\n", i, model::gain_det(params, i),
                model::gain_det_approx(params, i));
  }
  bench::note("plateau 3/(4 alpha) up to i = 4s/5 = 16, then the "
              "checkpoint cap bites ((2s-i)/(2 i alpha)).");

  bench::section("mean gain vs alpha (beta = 0.1, s = 20)");
  std::printf("%8s %12s %12s\n", "alpha", "exact", "eq(7)~");
  for (int step = 0; step <= 10; ++step) {
    const double alpha = 0.50 + 0.05 * step;
    const auto p = model::Params::with_beta(alpha, 0.1, 20, 0.5);
    std::printf("%8.2f %12.4f %12.4f\n", alpha, model::mean_gain_det(p),
                model::mean_gain_det_approx(p));
  }

  bench::section("break-even");
  std::printf("  mean gain > 1 iff alpha < (1 + 2 ln(5/4))/2 = %.4f "
              "(paper: 0.723)\n",
              model::det_alpha_threshold());
  return 0;
}
