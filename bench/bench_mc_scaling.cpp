// E18 (extension) -- thread scaling of the Monte Carlo campaign
// runtime. A 1000-replica transient-fault campaign (the expectation
// behind Ḡ_det over fault position, estimated by sampling instead of
// the closed form) is executed at 1, 2, 4 and 8 worker threads; wall
// time, speedup and the merged-summary digest are reported. The
// digest must be identical at every thread count: cells draw from
// per-cell RNG substreams and shards merge in canonical order, so the
// work decomposition cannot perturb a single bit of the result.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "runtime/mc_campaign.hpp"
#include "runtime/thread_pool.hpp"

using namespace vds;

namespace {

runtime::McConfig campaign_config() {
  runtime::McConfig config;
  config.kinds = {fault::FaultKind::kTransient};
  config.rounds = {4, 8, 12, 16, 20};
  config.replicas = 200;  // 5 rounds x 200 = 1000 transient injections
  config.round_time = 2.0 * 0.65 + 0.1;
  config.seed = 42;
  return config;
}

core::VdsOptions engine_options() {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = 20;
  options.job_rounds = 60;
  options.scheme = core::RecoveryScheme::kRollForwardDet;
  options.permanent_affects_others_prob = 0.0;
  return options;
}

}  // namespace

int main() {
  bench::banner("E18", "Monte Carlo campaign runtime: thread scaling");
  const unsigned hardware = runtime::ThreadPool::hardware_threads();
  std::printf("  hardware threads available: %u\n", hardware);
  if (hardware < 8) {
    bench::note("fewer than 8 hardware threads -- speedups above the "
                "hardware count measure scheduling overhead, not "
                "parallelism; determinism checks still apply.");
  }

  const runtime::McRunner runner =
      runtime::make_smt_runner(engine_options());

  double base_seconds = 0.0;
  std::uint64_t base_digest = 0;
  bool digests_match = true;

  std::printf("\n  %8s %10s %9s %11s  %s\n", "threads", "wall [s]",
              "speedup", "efficiency", "digest");
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    runtime::McConfig config = campaign_config();
    config.threads = threads;

    const auto start = std::chrono::steady_clock::now();
    const runtime::McSummary summary =
        runtime::run_mc_campaign(config, runner);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const std::uint64_t digest = summary.digest();
    if (threads == 1) {
      base_seconds = seconds;
      base_digest = digest;
    }
    digests_match &= digest == base_digest;
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    std::printf("  %8u %10.3f %8.2fx %10.1f%%  %016llx%s\n", threads,
                seconds, speedup, 100.0 * speedup / threads,
                static_cast<unsigned long long>(digest),
                digest == base_digest ? "" : "  <-- MISMATCH");
  }

  std::printf("\n  merged summary bit-identical across thread counts: %s\n",
              digests_match ? "yes" : "NO");
  bench::note("every cell draws from Rng::substream(cell index) and "
              "shards reduce in canonical order, so thread count "
              "changes wall time only -- never a result bit.");
  return digests_match ? 0 : 1;
}
