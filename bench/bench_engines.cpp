// E26 -- Detection design space (extension): all six engine kinds of
// the registry (docs/ENGINES.md) on one shared fault timeline over a
// fault-rate sweep. Per (engine, rate) row: end state, total time,
// throughput, detection latency, detections, rollbacks, compares,
// silent corruption -- the throughput/latency/coverage trade the
// handbook narrates. Two gates CI greps for: the engines CSV dataset
// must render byte-identically at 1 and 4 worker threads (MISMATCH
// otherwise), and identical seeds must reproduce identical reports
// for every kind (REGRESSION otherwise).

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/engine_factory.hpp"
#include "scenario/scenario.hpp"

using namespace vds;

namespace {

constexpr double kRates[] = {0.002, 0.01, 0.02, 0.05};
constexpr double kHorizon = 400000.0;

scenario::Scenario point(scenario::EngineKind kind, double rate) {
  scenario::Scenario s;
  s.engine = kind;
  s.predictor = "two_bit";
  s.rounds = 10000;
  s.rate = rate;
  s.crash_weight = 0.1;
  s.permanent_weight = 0.05;
  s.bias = 0.7;
  return s;
}

core::RunReport run_point(const scenario::Scenario& s) {
  sim::Rng rng(7);
  auto timeline = scenario::make_timeline(s, rng, kHorizon);
  const auto engine = scenario::make_engine(s, sim::Rng(8), sim::Rng(8));
  return engine->run(timeline);
}

// The vds_sweep `engines` dataset row, reproduced here so the
// byte-identity gate covers the same rendering path the tool uses.
std::string csv_body(runtime::ThreadPool& pool) {
  const auto& kinds = scenario::kAllEngineKinds;
  const std::size_t n = std::size(kinds) * std::size(kRates);
  return runtime::render_rows(pool, n, [&](std::size_t i) {
    const auto kind = kinds[i / std::size(kRates)];
    const double rate = kRates[i % std::size(kRates)];
    const auto report = run_point(point(kind, rate));
    const auto name = scenario::to_string(kind);
    char buf[192];
    std::snprintf(buf, sizeof buf, "%.*s,%.3f,%.2f,%.4f\n",
                  static_cast<int>(name.size()), name.data(), rate,
                  report.total_time, report.throughput());
    return std::string(buf);
  });
}

void table() {
  std::printf("\n  %-7s %6s %5s %12s %10s %9s %8s %8s %9s %7s\n", "engine",
              "rate", "end", "time", "thr.", "det.lat", "detects",
              "rollbk", "compares", "silent");
  for (const auto kind : scenario::kAllEngineKinds) {
    for (const double rate : kRates) {
      const auto report = run_point(point(kind, rate));
      const auto name = scenario::to_string(kind);
      std::printf(
          "  %-7.*s %6.3f %5s %12.1f %10.4f %9.3f %8llu %8llu %9llu %7s\n",
          static_cast<int>(name.size()), name.data(), rate,
          report.completed ? "ok" : (report.failed_safe ? "SAFE" : "abort"),
          report.total_time, report.throughput(),
          report.detection_latency.empty() ? 0.0
                                           : report.detection_latency.mean(),
          static_cast<unsigned long long>(report.detections),
          static_cast<unsigned long long>(report.rollbacks),
          static_cast<unsigned long long>(report.comparisons),
          report.silent_corruption ? "YES" : "no");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::banner("E26", "six-engine detection comparison (extension)");
  bench::note("shared timeline per rate: only the engine differs per row");
  table();

  bench::section("gates");
  bool ok = true;
  runtime::ThreadPool one(1);
  runtime::ThreadPool four(4);
  if (csv_body(one) != csv_body(four)) {
    std::printf("  MISMATCH: engines dataset differs between 1 and 4 "
                "threads\n");
    ok = false;
  } else {
    std::printf("  engines dataset byte-identical at 1 and 4 threads\n");
  }
  for (const auto kind : scenario::kAllEngineKinds) {
    const auto a = run_point(point(kind, 0.02));
    const auto b = run_point(point(kind, 0.02));
    if (a.total_time != b.total_time || a.detections != b.detections ||
        a.rollbacks != b.rollbacks || a.comparisons != b.comparisons ||
        a.completed != b.completed) {
      const auto name = scenario::to_string(kind);
      std::printf("  REGRESSION: %.*s is not seed-deterministic\n",
                  static_cast<int>(name.size()), name.data());
      ok = false;
    }
  }
  if (ok) std::printf("  all six kinds seed-deterministic\n");
  return ok ? 0 : 1;
}
