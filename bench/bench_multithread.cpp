// E11 -- Section 5 outlook: processors with more than two hardware
// threads. 3 threads let the probabilistic scheme roll forward i rounds
// *with* detection; 5 threads do the same for the deterministic scheme.
// This harness evaluates the closed-form extension and cross-checks the
// engine's multithreaded recovery.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/smt_engine.hpp"
#include "model/gain.hpp"

using namespace vds;

int main() {
  bench::banner("E11", "Section-5 extension: 3- and 5-thread roll-forward");

  bench::section("mean correction gain vs k-thread efficiency "
                 "(alpha2 = 0.65, beta = 0.1, s = 20, p = 0.5)");
  const auto params = model::Params::with_beta(0.65, 0.1, 20, 0.5);
  std::printf("%10s %14s %14s | %12s %12s\n", "alpha_k", "3T prob",
              "5T det", "2T prob", "2T det");
  for (double alpha_k = 0.25; alpha_k <= 1.001; alpha_k += 0.05) {
    const double g3 = alpha_k > 1.0 / 3.0
                          ? model::mean_gain_corr_3threads(params, alpha_k)
                          : 0.0;
    const double g5 = model::mean_gain_corr_5threads(params, alpha_k);
    std::printf("%10.2f %14.4f %14.4f | %12.4f %12.4f\n", alpha_k, g3, g5,
                model::mean_gain_prob(params), model::mean_gain_det(params));
  }
  bench::note("the extensions win once the k-thread slowdown alpha_k "
              "stays below roughly 2*alpha2/k -- more threads only help "
              "if the core actually scales.");

  bench::section("engine cross-check: single fault at round 8, s = 20");
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.alpha3 = 0.5;
  options.alpha5 = 0.35;
  options.s = 20;
  options.job_rounds = 40;

  const double round_time = 2.0 * options.alpha * options.t + options.t_cmp;
  fault::Fault f;
  f.kind = fault::FaultKind::kTransient;
  f.victim = fault::Victim::kVersion1;
  f.when = 7.0 * round_time + 0.4;

  struct Variant {
    const char* name;
    core::RecoveryScheme scheme;
    int threads;
  };
  const Variant variants[] = {
      {"2T det", core::RecoveryScheme::kRollForwardDet, 2},
      {"2T prob", core::RecoveryScheme::kRollForwardProb, 2},
      {"3T prob", core::RecoveryScheme::kRollForwardProb, 3},
      {"5T det", core::RecoveryScheme::kRollForwardDet, 5},
  };
  std::printf("  %-8s %10s %12s %12s\n", "variant", "progress",
              "recovery t", "total t");
  for (const auto& variant : variants) {
    core::VdsOptions opt = options;
    opt.scheme = variant.scheme;
    opt.hardware_threads = variant.threads;
    core::SmtVds vds(opt, sim::Rng(3));
    vds.set_predictor(std::make_unique<fault::OraclePredictor>());
    fault::FaultTimeline timeline({f});
    const auto report = vds.run(timeline);
    std::printf("  %-8s %10llu %12.3f %12.3f\n", variant.name,
                static_cast<unsigned long long>(
                    report.roll_forward_rounds_gained),
                report.recovery_time.empty()
                    ? 0.0
                    : report.recovery_time.mean(),
                report.total_time);
  }
  bench::note("3T/5T achieve the full min(i, s-i) = 8 rounds of "
              "verified progress; whether their longer k-thread "
              "recovery window pays off depends on alpha_k, exactly as "
              "the closed form predicts.");
  return 0;
}
