// E20 (extension) -- cost of the harness robustness machinery. The
// same 1000-cell campaign runs (a) bare, (b) with a CRC32C-checksummed
// journal, (c) with the per-cell watchdog armed, and (d) under a chaos
// storm (injected attempt failures, hangs, silent journal corruption
// and torn writes) followed by a --resume recovery pass. Wall time is
// reported relative to the bare run, and every variant must land on
// the bare run's digest: the failure path may cost time, never bits.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.hpp"
#include "runtime/mc_campaign.hpp"

using namespace vds;

namespace {

core::VdsOptions engine_options() {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = 20;
  options.job_rounds = 60;
  options.scheme = core::RecoveryScheme::kRollForwardDet;
  options.permanent_affects_others_prob = 0.0;
  return options;
}

runtime::McConfig campaign_config() {
  runtime::McConfig config;
  config.kinds = {fault::FaultKind::kTransient};
  config.rounds = {4, 8, 12, 16, 20};
  config.replicas = 200;  // 5 rounds x 200 = 1000 cells
  config.round_time = 2.0 * 0.65 + 0.1;
  config.seed = 42;
  config.threads = 4;
  config.retry_backoff_ms = 0.05;
  return config;
}

struct Measured {
  double seconds = 0.0;
  runtime::McSummary summary;
};

Measured run(const runtime::McConfig& config,
             const runtime::McRunner& runner) {
  Measured m;
  const auto start = std::chrono::steady_clock::now();
  m.summary = runtime::run_mc_campaign(config, runner);
  m.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  return m;
}

void row(const char* label, const Measured& m, double base_seconds,
         std::uint64_t base_digest) {
  std::printf("  %-26s %9.3f %9.1f%%  %016llx%s\n", label, m.seconds,
              base_seconds > 0.0
                  ? 100.0 * (m.seconds - base_seconds) / base_seconds
                  : 0.0,
              static_cast<unsigned long long>(m.summary.digest()),
              m.summary.digest() == base_digest ? "" : "  <-- MISMATCH");
}

}  // namespace

int main() {
  bench::banner("E20", "recovery machinery overhead (journal CRCs, "
                       "watchdog, chaos + resume)");

  const runtime::McRunner runner =
      runtime::make_smt_runner(engine_options());
  const std::string journal =
      (std::filesystem::temp_directory_path() / "vds_e20.journal")
          .string();
  std::filesystem::remove(journal);

  std::printf("\n  %-26s %9s %10s  %s\n", "variant", "wall [s]",
              "overhead", "digest");

  const Measured bare = run(campaign_config(), runner);
  const std::uint64_t golden = bare.summary.digest();
  row("bare", bare, bare.seconds, golden);

  runtime::McConfig config = campaign_config();
  config.journal_path = journal;
  const Measured journaled = run(config, runner);
  row("journal (CRC32C)", journaled, bare.seconds, golden);

  config = campaign_config();
  config.cell_timeout = 5.0;  // armed, never trips
  const Measured watchdog = run(config, runner);
  row("watchdog armed", watchdog, bare.seconds, golden);

  // Chaos storm: 20% of first attempts fail, 2% hang; every tenth
  // journal record is silently corrupted and some appends tear.
  std::filesystem::remove(journal);
  config = campaign_config();
  config.journal_path = journal;
  config.cell_timeout = 0.5;
  config.chaos =
      "cell.fail=0.2:1,cell.hang=0.02:1,journal.corrupt=0.1,"
      "journal.torn=0.05";
  const Measured storm = run(config, runner);
  row("chaos storm", storm, bare.seconds, golden);
  std::printf("    (retried %llu cells, quarantined %llu)\n",
              static_cast<unsigned long long>(storm.summary.cells_retried),
              static_cast<unsigned long long>(
                  storm.summary.cells_quarantined));

  // Recovery pass: resume the storm's journal under a clean config.
  config = campaign_config();
  config.journal_path = journal;
  config.resume = true;
  const Measured recovery = run(config, runner);
  row("resume after storm", recovery, bare.seconds, golden);
  std::printf("    (resumed %llu cells, re-executed %llu, skipped %llu "
              "corrupt records)\n",
              static_cast<unsigned long long>(
                  recovery.summary.cells_resumed),
              static_cast<unsigned long long>(
                  recovery.summary.cells_executed),
              static_cast<unsigned long long>(
                  recovery.summary.records_corrupt));
  std::filesystem::remove(journal);

  const bool all_match = journaled.summary.digest() == golden &&
                         watchdog.summary.digest() == golden &&
                         storm.summary.digest() == golden &&
                         recovery.summary.digest() == golden;
  std::printf("\n  every variant reproduces the bare digest: %s\n",
              all_match ? "yes" : "NO");
  bench::note("the storm variant's digest matches because chaos only "
              "attacks attempts and the journal file; retries re-derive "
              "each cell's RNG substream from scratch and the CRC "
              "reader discards what the corruption touched.");
  return all_match ? 0 : 1;
}
