// E8 -- Figures 2/3 + eqs (2)/(5): the discrete-event engines execute
// the full recovery flows; this harness injects one fault per run at
// every detection round i and tabulates simulated-vs-analytic
// correction times, roll-forward progress and gains for all three SMT
// schemes against the conventional stop-and-retry baseline.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/conventional.hpp"
#include "core/smt_engine.hpp"
#include "model/gain.hpp"
#include "model/timing.hpp"

using namespace vds;

namespace {

core::VdsOptions make_options(core::RecoveryScheme scheme) {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = 20;
  options.job_rounds = 40;
  options.scheme = scheme;
  return options;
}

fault::Fault fault_in_round(const core::VdsOptions& options,
                            std::uint64_t round, bool smt) {
  const double round_time =
      smt ? 2.0 * options.alpha * options.t + options.t_cmp
          : 2.0 * (options.t + options.c) + options.t_cmp;
  fault::Fault f;
  f.kind = fault::FaultKind::kTransient;
  f.victim = fault::Victim::kVersion1;
  f.when = static_cast<double>(round - 1) * round_time + 0.3;
  f.word = 4;
  f.bit = 13;
  return f;
}

struct SchemeRun {
  double recovery_time = 0.0;
  std::uint64_t progress = 0;
};

SchemeRun run_smt(core::RecoveryScheme scheme, std::uint64_t ic) {
  core::VdsOptions options = make_options(scheme);
  core::SmtVds vds(options, sim::Rng(ic * 7 + 1));
  vds.set_predictor(std::make_unique<fault::OraclePredictor>());
  fault::FaultTimeline timeline({fault_in_round(options, ic, true)});
  const auto report = vds.run(timeline);
  SchemeRun out;
  out.recovery_time = report.recovery_time.empty()
                          ? 0.0
                          : report.recovery_time.mean();
  out.progress = report.roll_forward_rounds_gained;
  return out;
}

}  // namespace

int main() {
  bench::banner("E8",
                "engine vs model: per-round correction times and gains");

  const auto params = make_options(core::RecoveryScheme::kStopAndRetry)
                          .to_model_params(1.0);

  bench::section("correction phase per detection round i (s = 20)");
  std::printf("%4s | %9s %9s | %9s %9s | %4s %4s %4s | %8s %8s %8s\n",
              "i", "T1corr", "sim", "THT2corr", "sim", "rfD", "rfP",
              "rfO", "G_det", "G_prob", "G_hit");

  for (std::uint64_t ic = 1; ic <= 20; ++ic) {
    // Conventional baseline.
    core::VdsOptions conv_options =
        make_options(core::RecoveryScheme::kStopAndRetry);
    core::ConventionalVds conv(conv_options, sim::Rng(ic));
    fault::FaultTimeline conv_tl({fault_in_round(conv_options, ic, false)});
    const auto conv_report = conv.run(conv_tl);
    const double conv_sim = conv_report.recovery_time.empty()
                                ? 0.0
                                : conv_report.recovery_time.mean();

    const auto det = run_smt(core::RecoveryScheme::kRollForwardDet, ic);
    const auto prob = run_smt(core::RecoveryScheme::kRollForwardProb, ic);
    const auto pred =
        run_smt(core::RecoveryScheme::kRollForwardPredict, ic);

    const double i = static_cast<double>(ic);
    // Engine-level gain: conventional correction + value of the rounds
    // the roll-forward contributed, per unit of SMT correction time.
    const auto engine_gain = [&](const SchemeRun& run) {
      return (conv_sim + static_cast<double>(run.progress) *
                             model::t1_round(params)) /
             run.recovery_time;
    };

    std::printf(
        "%4llu | %9.3f %9.3f | %9.3f %9.3f | %4llu %4llu %4llu "
        "| %8.3f %8.3f %8.3f\n",
        static_cast<unsigned long long>(ic), model::t1_corr(params, i),
        conv_sim, model::tht2_corr(params, i), det.recovery_time,
        static_cast<unsigned long long>(det.progress),
        static_cast<unsigned long long>(prob.progress),
        static_cast<unsigned long long>(pred.progress),
        engine_gain(det), engine_gain(prob), engine_gain(pred));
  }

  bench::section("model reference (continuous-i formulas, p = 1)");
  std::printf("%4s %8s %8s %8s\n", "i", "G_det", "G_prob", "G_hit");
  for (int i = 1; i <= 20; ++i) {
    std::printf("%4d %8.3f %8.3f %8.3f\n", i,
                model::gain_det(params, i), model::gain_prob(params, i),
                model::gain_hit(params, i));
  }
  bench::note("engine gains use integer (floored) roll-forward lengths; "
              "the model's continuous i/2 and i/4 explain the small "
              "stair-step differences.");
  return 0;
}
