// E14 -- The diversity assumption (paper §2.1): a permanent fault must
// not corrupt two versions identically. This harness generates variant
// pairs at increasing diversity levels with the automatic generator
// (Jochim-style [4]) and measures stuck-at permanent-fault coverage on
// the functional machine, plus the structural diversity metrics.

#include <cstdio>

#include "bench_util.hpp"
#include "diversity/coverage.hpp"
#include "diversity/transforms.hpp"
#include "diversity/generator.hpp"
#include "smt/workload.hpp"

using namespace vds;

namespace {

constexpr std::uint64_t kBase = 512;
constexpr std::uint64_t kN = 64;

void seed(smt::Machine& machine) {
  smt::seed_kernel_inputs(machine, kBase, kN, 2025);
}

diversity::CoverageCampaign campaign() {
  diversity::CoverageCampaign c;
  c.output_base = kBase + kN;
  c.output_len = kN + 1;
  c.units = {smt::OpClass::kAlu, smt::OpClass::kMul};
  c.bits = {0, 1, 2, 3, 4, 5, 7, 11, 15, 23, 31};
  return c;
}

}  // namespace

int main() {
  bench::banner("E14", "permanent-fault coverage vs version diversity");

  const smt::Program base = smt::make_kernel_program(kBase, kN);

  struct Level {
    const char* name;
    diversity::Recipe recipe;
  };
  const Level levels[] = {
      {"identical", diversity::recipe_none()},
      {"light", diversity::recipe_light()},
      {"medium", diversity::recipe_medium()},
      {"full", diversity::recipe_full()},
  };

  std::printf("\n  %-10s %8s %8s %9s %9s %9s %9s %8s\n", "level",
              "editdist", "mixdist", "injected", "effective", "detected",
              "silent", "coverage");
  for (const auto& level : levels) {
    diversity::Generator generator{sim::Rng(99)};
    const smt::Program variant = generator.variant(base, level.recipe);
    const auto metrics = diversity::measure_diversity(base, variant);
    const auto result =
        diversity::run_coverage(base, variant, campaign(), seed);
    std::printf("  %-10s %8zu %8.3f %9zu %9zu %9zu %9zu %8.3f\n",
                level.name, metrics.edit_distance,
                metrics.class_mix_distance, result.faults_injected,
                result.effective, result.detected,
                result.silent_corruptions, result.coverage());
  }

  bench::section("multiple independent variant pairs (full recipe)");
  std::printf("  %-6s %9s %9s %8s\n", "seed", "effective", "detected",
              "coverage");
  for (std::uint64_t s = 1; s <= 8; ++s) {
    diversity::Generator generator{sim::Rng(s)};
    const smt::Program variant =
        generator.variant(base, diversity::recipe_full());
    const auto result =
        diversity::run_coverage(base, variant, campaign(), seed);
    std::printf("  %-6llu %9zu %9zu %8.3f\n",
                static_cast<unsigned long long>(s), result.effective,
                result.detected, result.coverage());
  }

  bench::section("data-encoding diversity: identity vs complement pair "
                 "(memory-path faults)");
  {
    const smt::Program variant = diversity::complement_memory(base);
    diversity::CoverageCampaign mem_campaign = campaign();
    mem_campaign.units = {smt::OpClass::kMem};
    mem_campaign.bits = {0, 1, 2, 3, 7, 15, 31};
    std::printf("  %-22s %9s %9s %8s\n", "pair", "effective",
                "detected", "coverage");
    const auto plain =
        diversity::run_coverage(base, base, mem_campaign, seed);
    std::printf("  %-22s %9zu %9zu %8.3f\n", "identity/identity",
                plain.effective, plain.detected, plain.coverage());
    mem_campaign.encoding_b = diversity::Encoding::kComplement;
    const auto encoded =
        diversity::run_coverage(base, variant, mem_campaign, seed);
    std::printf("  %-22s %9zu %9zu %8.3f\n", "identity/complement",
                encoded.effective, encoded.detected, encoded.coverage());
  }

  bench::note("identical copies never detect a permanent fault (the SRT "
              "failure mode); unit-usage-changing diversity (strength "
              "reduction in particular) exposes ALU/MUL stuck-ats. "
              "Memory-path faults need the data-encoding diversity "
              "(complemented storage, Lovric [6]) shown in the last "
              "section.");
  return 0;
}
