// E21 (extension) -- cost of the observability layer. The same
// 1000-cell campaign runs (a) with the metrics registry disabled (the
// default for every tool run without --metrics), (b) with counters and
// timings enabled, and (c) with trace spans collected on top. Wall
// time is reported relative to the disabled run; the contract from
// DESIGN section 8 is that enabling metrics costs low single-digit
// percent and leaves the campaign digest untouched. In a
// VDS_METRICS=OFF build the instrumented variants measure the empty
// stubs, so the table doubles as proof that compiling the layer out
// removes its cost entirely.

#include <chrono>
#include <cstdio>
#include <sstream>

#include "bench_util.hpp"
#include "runtime/mc_campaign.hpp"
#include "runtime/metrics.hpp"

using namespace vds;
namespace metrics = runtime::metrics;

namespace {

core::VdsOptions engine_options() {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = 20;
  options.job_rounds = 60;
  options.scheme = core::RecoveryScheme::kRollForwardDet;
  options.permanent_affects_others_prob = 0.0;
  return options;
}

runtime::McConfig campaign_config() {
  runtime::McConfig config;
  config.kinds = {fault::FaultKind::kTransient};
  config.rounds = {4, 8, 12, 16, 20};
  config.replicas = 200;  // 5 rounds x 200 = 1000 cells
  config.round_time = 2.0 * 0.65 + 0.1;
  config.seed = 42;
  config.threads = 4;
  return config;
}

struct Measured {
  double seconds = 0.0;
  std::uint64_t digest = 0;
};

Measured run(const runtime::McRunner& runner) {
  Measured m;
  const auto start = std::chrono::steady_clock::now();
  const runtime::McSummary summary =
      runtime::run_mc_campaign(campaign_config(), runner);
  m.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  m.digest = summary.digest();
  return m;
}

/// Best-of-N wall time: campaign runs are short enough that a single
/// sample is mostly scheduler noise.
Measured best_of(const runtime::McRunner& runner, int repeats) {
  Measured best = run(runner);
  for (int i = 1; i < repeats; ++i) {
    const Measured m = run(runner);
    if (m.seconds < best.seconds) best.seconds = m.seconds;
  }
  return best;
}

void row(const char* label, const Measured& m, double base_seconds,
         std::uint64_t base_digest) {
  std::printf("  %-22s %9.3f %+9.1f%%  %016llx%s\n", label, m.seconds,
              base_seconds > 0.0
                  ? 100.0 * (m.seconds - base_seconds) / base_seconds
                  : 0.0,
              static_cast<unsigned long long>(m.digest),
              m.digest == base_digest ? "" : "  <-- MISMATCH");
}

}  // namespace

int main() {
  bench::banner("E21", "observability overhead (counters, timings, "
                       "trace spans)");
  std::printf("\n  metrics layer compiled in: %s\n",
              VDS_METRICS_ENABLED ? "yes" : "no (VDS_METRICS=OFF)");

  const runtime::McRunner runner =
      runtime::make_smt_runner(engine_options());
  auto& reg = metrics::registry();
  constexpr int kRepeats = 3;

  std::printf("\n  %-22s %9s %10s  %s\n", "variant", "wall [s]",
              "overhead", "digest");

  reg.set_enabled(false);
  reg.set_tracing(false);
  const Measured off = best_of(runner, kRepeats);
  row("metrics off", off, off.seconds, off.digest);

  reg.reset();
  reg.set_enabled(true);
  const Measured counting = best_of(runner, kRepeats);
  row("counters + timings", counting, off.seconds, off.digest);

  reg.reset();
  reg.set_tracing(true);
  const Measured tracing = best_of(runner, kRepeats);
  reg.set_tracing(false);
  row("+ trace spans", tracing, off.seconds, off.digest);

  // Spans fire even without tracing; their disabled path must be a
  // single relaxed load. Measure it directly: 10M no-op spans.
  {
    constexpr std::uint64_t kSpans = 10'000'000;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kSpans; ++i) {
      const metrics::Span span("bench.noop", "bench");
    }
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(kSpans);
    std::printf("\n  untraced span cost: %.2f ns\n", ns);
  }

  std::ostringstream snapshot;
  reg.write_snapshot(snapshot);
  std::printf("  snapshot size with campaign counters: %zu bytes\n",
              snapshot.str().size());
  reg.set_enabled(false);
  reg.reset();

  const bool digests_match =
      counting.digest == off.digest && tracing.digest == off.digest;
  std::printf("\n  instrumented runs reproduce the bare digest: %s\n",
              digests_match ? "yes" : "NO");
  bench::note("counters are thread-sharded relaxed atomics and never "
              "feed back into the simulation, so enabling them may "
              "cost time but can never move a result bit.");
  return digests_match ? 0 : 1;
}
