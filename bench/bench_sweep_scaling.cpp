// E19 (extension) -- thread scaling of the parallel figure/sweep
// engine. The Figure 4 gain surface (p = 0.5, s = 20) is evaluated on
// a dense grid at 1, 2, 4 and 8 worker threads; wall time and speedup
// are reported and the rendered CSV is compared byte for byte across
// thread counts. Every grid cell is a pure function of (alpha, beta)
// and rows reduce in canonical index order, so any divergence means a
// scheduling bug -- the bench exits non-zero on the first differing
// byte (speedup numbers are informational: they depend on the host's
// core count).

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "model/surface.hpp"
#include "runtime/thread_pool.hpp"

using namespace vds;

namespace {

// ~360k closed-form gain evaluations: enough work that the row tasks
// dominate pool overhead, small enough to stay under a second serial.
constexpr std::size_t kSamples = 600;

std::string render_fig4(runtime::ThreadPool* pool) {
  const model::GainSurface surface(model::Axis{0.5, 1.0, kSamples},
                                   model::Axis{0.0, 1.0, kSamples}, 0.5,
                                   20, pool);
  std::ostringstream csv;
  surface.write_csv(csv);
  return csv.str();
}

}  // namespace

int main() {
  bench::banner("E19", "figure/sweep engine: thread scaling + determinism");
  const unsigned hardware = runtime::ThreadPool::hardware_threads();
  std::printf("  hardware threads available: %u\n", hardware);
  std::printf("  fig4 grid: %zu x %zu cells\n", kSamples, kSamples);
  if (hardware < 4) {
    bench::note("fewer than 4 hardware threads -- speedups measure "
                "scheduling overhead, not parallelism; the determinism "
                "check is unaffected.");
  }

  const std::string serial = render_fig4(nullptr);

  double base_seconds = 0.0;
  bool identical = true;
  std::printf("\n  %8s %10s %9s %11s  %s\n", "threads", "wall [s]",
              "speedup", "efficiency", "csv vs serial");
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    runtime::ThreadPool pool(threads);
    const auto start = std::chrono::steady_clock::now();
    const std::string csv = render_fig4(&pool);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (threads == 1) base_seconds = seconds;
    const bool same = csv == serial;
    identical &= same;
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    std::printf("  %8u %10.3f %8.2fx %10.1f%%  %s\n", threads, seconds,
                speedup, 100.0 * speedup / threads,
                same ? "identical" : "DIVERGED");
  }

  std::printf("\n  CSV byte-identical across all thread counts: %s\n",
              identical ? "yes" : "NO");
  bench::note("each alpha-row fills from pure per-cell evaluations and "
              "min/max folds in canonical row order, so the work "
              "decomposition cannot perturb a single output byte.");
  return identical ? 0 : 1;
}
