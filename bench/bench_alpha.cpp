// E9 -- The processor parameter alpha: the paper takes alpha = 0.65
// from Pentium-4 measurements [13]. Our substitute testbed is the
// cycle-level SMT core; this harness measures alpha across workload
// mixes, fetch policies and resource configurations, showing the model
// input spans the paper's whole evaluation range.

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bench_util.hpp"
#include "model/gain.hpp"
#include "smt/metrics.hpp"
#include "smt/workload.hpp"

using namespace vds;

namespace {

double clamped_model_gain(double alpha) {
  const double a = std::clamp(alpha, 0.5, 1.0);
  return model::mean_gain_corr(model::Params::with_beta(a, 0.1, 20, 0.5));
}

void measure_row(const char* name, const smt::WorkloadConfig& config,
                 const smt::CoreConfig& core, smt::FetchPolicy policy,
                 sim::Rng& rng) {
  const auto trace_a = smt::generate_trace(config, rng);
  const auto trace_b = smt::generate_trace(config, rng);
  const auto m = smt::measure_alpha(core, policy, trace_a, trace_b);
  std::printf("  %-12s %8.4f %10.3f %10.3f %10.3f %12.4f\n", name,
              m.alpha, m.ipc_a_alone, m.ipc_together,
              m.throughput_speedup, clamped_model_gain(m.alpha));
}

}  // namespace

int main() {
  bench::banner("E9", "measured alpha on the cycle-level SMT core");
  const std::uint64_t kInstrs = 30000;
  sim::Rng rng(2024);

  const std::pair<const char*, smt::WorkloadConfig> workloads[] = {
      {"compute", smt::compute_bound_workload(kInstrs)},
      {"memory", smt::memory_bound_workload(kInstrs)},
      {"branchy", smt::branchy_workload(kInstrs)},
      {"serial", smt::serial_chain_workload(kInstrs)},
      {"balanced", smt::balanced_workload(kInstrs)},
  };

  bench::section("default 4-wide core, ICOUNT fetch");
  std::printf("  %-12s %8s %10s %10s %10s %12s\n", "workload", "alpha",
              "ipc_alone", "ipc_smt", "speedup", "VDS gain");
  smt::CoreConfig core;
  for (const auto& [name, config] : workloads) {
    measure_row(name, config, core, smt::FetchPolicy::kIcount, rng);
  }
  bench::note("compute-bound code lands near the paper's Pentium-4 "
              "alpha = 0.65; latency-bound code approaches the ideal "
              "0.5.");

  bench::section("fetch policy ablation (balanced workload)");
  std::printf("  %-12s %8s %10s %10s %10s %12s\n", "policy", "alpha",
              "ipc_alone", "ipc_smt", "speedup", "VDS gain");
  measure_row("round-robin", smt::balanced_workload(kInstrs), core,
              smt::FetchPolicy::kRoundRobin, rng);
  measure_row("icount", smt::balanced_workload(kInstrs), core,
              smt::FetchPolicy::kIcount, rng);

  bench::section("issue width ablation (compute workload)");
  std::printf("  %-12s %8s %10s %10s %10s %12s\n", "width", "alpha",
              "ipc_alone", "ipc_smt", "speedup", "VDS gain");
  for (const std::uint32_t width : {2u, 3u, 4u, 6u, 8u}) {
    smt::CoreConfig wide = core;
    wide.issue_width = width;
    wide.max_issue_per_thread = width;
    wide.alu_units = std::max(2u, width - 1);
    char label[16];
    std::snprintf(label, sizeof label, "%u-wide", width);
    measure_row(label, smt::compute_bound_workload(kInstrs), wide,
                smt::FetchPolicy::kIcount, rng);
  }
  bench::note("narrow cores serialize the threads (alpha -> 1); wide "
              "cores overlap them (alpha -> 0.5): exactly the knob the "
              "paper's sensitivity analysis sweeps.");

  bench::section("cache sharing ablation (memory workload)");
  std::printf("  %-12s %8s %10s %10s %10s %12s\n", "cache", "alpha",
              "ipc_alone", "ipc_smt", "speedup", "VDS gain");
  {
    auto config = smt::memory_bound_workload(kInstrs);
    config.footprint_words = 2048;
    smt::CoreConfig shared = core;
    shared.shared_cache = true;
    measure_row("shared", config, shared, smt::FetchPolicy::kIcount, rng);
    smt::CoreConfig split = core;
    split.shared_cache = false;
    measure_row("partitioned", config, split, smt::FetchPolicy::kIcount,
                rng);
    smt::CoreConfig two_level = core;
    two_level.l2_enabled = true;
    measure_row("shared+L2", config, two_level, smt::FetchPolicy::kIcount,
                rng);
  }
  return 0;
}
