// E1 -- Figure 1(a)/(b): execution models of a VDS on a conventional
// and on a hyperthreaded processor; validates the simulated protocol
// timing against equations (1) and (3) and prints an execution trace
// that reconstructs the paper's timing diagrams.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/conventional.hpp"
#include "core/smt_engine.hpp"
#include "model/timing.hpp"

using namespace vds;

namespace {

core::VdsOptions make_options() {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.1;
  options.t_cmp = 0.1;
  options.alpha = 0.65;
  options.s = 20;
  options.job_rounds = 5;
  return options;
}

}  // namespace

int main() {
  bench::banner("E1", "Figure 1: VDS execution models and round timing");
  const core::VdsOptions options = make_options();
  const auto params = options.to_model_params();

  bench::section("conventional processor (Figure 1a)");
  {
    core::ConventionalVds vds(options, sim::Rng(1));
    fault::FaultTimeline timeline{std::vector<fault::Fault>{}};
    sim::Trace trace;
    const auto report = vds.run(timeline, &trace);
    trace.dump(std::cout);
    const double t1_round = model::t1_round(params);
    std::printf("\n  T_1,round  model (eq 1) = %.4f\n", t1_round);
    std::printf("  T_1,round  simulated    = %.4f\n",
                report.total_time / 5.0);
  }

  bench::section("hyperthreaded processor (Figure 1b)");
  {
    core::SmtVds vds(options, sim::Rng(1));
    fault::FaultTimeline timeline{std::vector<fault::Fault>{}};
    sim::Trace trace;
    const auto report = vds.run(timeline, &trace);
    trace.dump(std::cout);
    const double tht2_round = model::tht2_round(params);
    std::printf("\n  T_HT2,round model (eq 3) = %.4f\n", tht2_round);
    std::printf("  T_HT2,round simulated    = %.4f\n",
                report.total_time / 5.0);
  }

  bench::section("recovery timing with a fault at round 3 (eqs 2, 5)");
  {
    core::VdsOptions opt = make_options();
    opt.job_rounds = 10;
    const double conv_round = model::t1_round(params);
    const double smt_round = model::tht2_round(params);

    fault::Fault fault;
    fault.kind = fault::FaultKind::kTransient;
    fault.when = 2.0 * conv_round + 0.5;
    core::ConventionalVds conv(opt, sim::Rng(2));
    fault::FaultTimeline conv_timeline({fault});
    const auto conv_report = conv.run(conv_timeline);
    std::printf("  conventional: T_1,corr   model = %.4f  simulated = %.4f\n",
                model::t1_corr(params, 3.0),
                conv_report.recovery_time.mean());

    opt.scheme = core::RecoveryScheme::kRollForwardDet;
    fault.when = 2.0 * smt_round + 0.5;
    fault.victim = fault::Victim::kVersion1;
    core::SmtVds smt(opt, sim::Rng(2));
    fault::FaultTimeline smt_timeline({fault});
    const auto smt_report = smt.run(smt_timeline);
    std::printf("  SMT:          T_HT2,corr model = %.4f  simulated = %.4f\n",
                model::tht2_corr(params, 3.0),
                smt_report.recovery_time.mean());
  }
  return 0;
}
