#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/report.hpp"
#include "runtime/mc_campaign.hpp"
#include "scenario/campaign_spec.hpp"
#include "scenario/scenario.hpp"

namespace vds::serve {

/// What a request asks the server to do.
enum class RequestType : std::uint8_t {
  kCampaign,  ///< Monte Carlo campaign -> vds.mc_summary.v1 body
  kRun,       ///< single one-shot run  -> vds.run_report.v1 body
  kStats,     ///< health/metrics probe -> vds.serve_stats.v1 line
};

/// One parsed `vds.serve_request.v1` envelope. The wire form is a
/// single line of JSON:
///
///   {"schema": "vds.serve_request.v1", "id": "r1", "type": "campaign",
///    "deadline_ms": 500,
///    "scenario": { "schema": "vds.scenario.v1", ... },
///    "campaign": { "replicas": 100, "rounds": [1, 5, 10], ... }}
///
/// `id` and `type` are required; `scenario` is required for campaign
/// and run requests (a full vds.scenario.v1 object, exactly what
/// `vds_cli --emit-scenario` prints); `campaign` (campaign requests
/// only) takes the keys campaign_spec_from_json accepts; `deadline_ms`
/// is an optional per-request deadline measured from admission.
struct ServeRequest {
  std::string id;
  RequestType type = RequestType::kCampaign;
  scenario::Scenario scenario;
  scenario::CampaignSpec campaign;
  double deadline_ms = 0.0;  ///< 0 = no deadline
};

// vds.serve_error.v1 codes. Every rejected request gets one of these
// on its own line — never a silent drop.
inline constexpr std::string_view kErrBadRequest = "bad_request";
inline constexpr std::string_view kErrQueueFull = "queue_full";
inline constexpr std::string_view kErrDeadline = "deadline";
inline constexpr std::string_view kErrDrain = "drain";
inline constexpr std::string_view kErrInternal = "internal";

/// Parses one request line. Throws std::invalid_argument (or
/// scenario::JsonError) on anything malformed: bad JSON, wrong or
/// missing schema tag, unknown keys, invalid scenario/campaign
/// fields. A campaign request whose scenario omits "rounds" gets
/// vds_mc's job-length default (60) instead of vds_cli's (10000), so
/// defaulted serve campaigns digest-match defaulted vds_mc runs.
[[nodiscard]] ServeRequest parse_request(std::string_view line);

/// Best-effort id extraction for error reporting on requests that
/// fail strict parsing ("" when even that is hopeless).
[[nodiscard]] std::string request_id_hint(std::string_view line);

/// One vds.serve_error.v1 line (no trailing newline):
///   {"schema": "vds.serve_error.v1", "id": ..., "code": ..., "message": ...}
[[nodiscard]] std::string format_error(std::string_view id,
                                       std::string_view code,
                                       std::string_view message);

/// One vds.serve_response.v1 line wrapping a vds.mc_summary.v1 body.
/// `status` is "ok", or "partial" when a deadline stopped dispatch
/// (body present either way; partial bodies carry deadline_exceeded /
/// cells_skipped). The body bytes come from the same write_snapshot
/// code path as `vds_mc --json-out`, so equal digests mean bitwise
/// identical summaries.
[[nodiscard]] std::string format_campaign_response(
    std::string_view id, const runtime::McConfig& config,
    const runtime::McSummary& summary, double queue_ms, double service_ms);

/// One vds.serve_response.v1 line wrapping a vds.run_report.v1 body
/// (the same envelope writer as `vds_cli --json`).
[[nodiscard]] std::string format_run_response(
    std::string_view id, const scenario::Scenario& scenario,
    std::uint64_t faults_scheduled, const core::RunReport& report,
    double queue_ms, double service_ms);

/// Point-in-time server health, answered synchronously by a stats
/// request (it never queues behind campaign work).
struct StatsSnapshot {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_drain = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t transport_errors = 0;  ///< response writes to a dead peer
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t outstanding = 0;
  // Wall-clock distributions over completed requests, milliseconds.
  std::uint64_t queue_count = 0;
  double queue_mean = 0.0, queue_p50 = 0.0, queue_p99 = 0.0;
  std::uint64_t service_count = 0;
  double service_mean = 0.0, service_p50 = 0.0, service_p99 = 0.0;
};

/// One vds.serve_stats.v1 line.
[[nodiscard]] std::string format_stats(std::string_view id,
                                       const StatsSnapshot& stats);

}  // namespace vds::serve
