#include "serve/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/mc_campaign.hpp"

namespace vds::serve {

namespace {

constexpr int kPollMs = 100;  // bound every blocking wait for drain checks

/// One connection's read loop: feed lines to the server until the
/// peer closes or a drain signal lands. The sink owns the connection
/// fd, so responses still in the dispatcher can be written (and the
/// fd closed) after this returns.
void read_connection(Server& server, std::shared_ptr<FdSink> sink, int fd) {
  LineReader reader(fd);
  std::string line;
  for (;;) {
    switch (reader.next(line)) {
      case LineReader::Status::kLine:
        if (!line.empty()) server.submit(line, sink);
        break;
      case LineReader::Status::kOverlong:
        sink->write_line(format_error(
            "", kErrBadRequest,
            "request line exceeds " + std::to_string(kMaxLineBytes) +
                " bytes"));
        break;
      case LineReader::Status::kEof:
      case LineReader::Status::kDrain:
      case LineReader::Status::kError:
        // Stop reading; the write side stays open inside the sink
        // until its last response (possibly a drain error) is out.
        ::shutdown(fd, SHUT_RD);
        return;
    }
  }
}

/// Shared accept loop for both socket transports. Runs until a drain
/// signal: stops accepting, waits for the reader threads (each exits
/// within kPollMs of the flag), then finishes the server so queued
/// requests get their drain errors before the sinks close.
int serve_socket(Server& server, int listen_fd) {
  std::vector<std::thread> readers;
  for (;;) {
    const int fd = accept_or_drain(listen_fd);
    if (fd < 0) break;
    auto sink = std::make_shared<FdSink>(fd, /*owns_fd=*/true);
    sink->on_error([&server](int) { server.note_transport_error(); });
    readers.emplace_back(
        [&server, sink = std::move(sink), fd] {
          read_connection(server, sink, fd);
        });
  }
  ::close(listen_fd);
  for (std::thread& reader : readers) reader.join();
  server.finish();
  return runtime::drain_requested() ? 130 : 3;
}

}  // namespace

int accept_or_drain(int listen_fd) {
  for (;;) {
    if (runtime::drain_requested()) return -1;
    struct pollfd pfd = {listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return -1;
  }
}

int listen_unix(const std::string& path) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return -1;
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket from a prior run
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    const int error = errno;
    ::close(listen_fd);
    errno = error;
    return -1;
  }
  return listen_fd;
}

int listen_tcp(std::uint16_t port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return -1;
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    const int error = errno;
    ::close(listen_fd);
    errno = error;
    return -1;
  }
  return listen_fd;
}

FdSink::~FdSink() {
  if (owns_fd_) ::close(fd_);
}

void FdSink::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_.load()) return;  // peer already gone; drop silently
  std::string out = line;
  out.push_back('\n');
  const char* data = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    const ssize_t wrote = ::write(fd_, data, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      // Peer gone (ECONNRESET/EPIPE et al.). Record and surface the
      // failure once — a fabric worker uses this to tell a dead
      // coordinator from a slow one, and vds_serve counts it in
      // vds.serve_stats.v1.
      error_.store(errno);
      failed_.store(true);
      if (on_error_) on_error_(errno);
      return;
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
}

LineReader::Status LineReader::next(std::string& line) {
  for (;;) {
    const Status status = poll_next(line, kPollMs);
    if (status != Status::kTimeout) return status;
  }
}

LineReader::Status LineReader::poll_next(std::string& line, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      if (discarding_) {
        discarding_ = false;
        return Status::kOverlong;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return Status::kLine;
    }
    if (buffer_.size() > kMaxLineBytes) {
      discarding_ = true;
    }
    if (discarding_) buffer_.clear();
    if (eof_) {
      if (!buffer_.empty()) {  // final line without a trailing newline
        line = std::move(buffer_);
        buffer_.clear();
        return Status::kLine;
      }
      return Status::kEof;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return Status::kTimeout;
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(std::min<long long>(left, kPollMs)));
    if (runtime::drain_requested()) return Status::kDrain;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (ready == 0) continue;
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (got == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

int serve_stdio(Server& server) {
  auto sink = std::make_shared<FdSink>(STDOUT_FILENO, /*owns_fd=*/false);
  sink->on_error([&server](int) { server.note_transport_error(); });
  LineReader reader(STDIN_FILENO);
  std::string line;
  for (;;) {
    switch (reader.next(line)) {
      case LineReader::Status::kLine:
        if (!line.empty()) server.submit(line, sink);
        break;
      case LineReader::Status::kOverlong:
        sink->write_line(format_error(
            "", kErrBadRequest,
            "request line exceeds " + std::to_string(kMaxLineBytes) +
                " bytes"));
        break;
      case LineReader::Status::kDrain:
        server.finish();
        return 130;
      case LineReader::Status::kEof:
        // Everything accepted gets answered before finish() returns.
        server.finish();
        return runtime::drain_requested() ? 130 : 0;
      case LineReader::Status::kError:
        server.finish();
        return 3;
    }
  }
}

int serve_unix(Server& server, const std::string& path) {
  const int listen_fd = listen_unix(path);
  if (listen_fd < 0) {
    std::perror("vds_serve: bind/listen");
    return 3;
  }
  const int code = serve_socket(server, listen_fd);
  ::unlink(path.c_str());
  return code;
}

int serve_tcp(Server& server, std::uint16_t port) {
  const int listen_fd = listen_tcp(port);
  if (listen_fd < 0) {
    std::perror("vds_serve: bind/listen");
    return 3;
  }
  return serve_socket(server, listen_fd);
}

int connect_unix(const std::string& path) {
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int error = errno;
    ::close(fd);
    errno = error;
    return -1;
  }
  return fd;
}

int connect_tcp(std::uint16_t port) {
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int error = errno;
    ::close(fd);
    errno = error;
    return -1;
  }
  return fd;
}

}  // namespace vds::serve
