#include "serve/protocol.hpp"

#include <sstream>
#include <stdexcept>

#include "runtime/journal.hpp"
#include "scenario/json_reader.hpp"
#include "scenario/report_json.hpp"

namespace vds::serve {

namespace {

using scenario::JsonValue;

[[noreturn]] void request_fail(const std::string& what) {
  throw std::invalid_argument("serve request: " + what);
}

RequestType parse_type(const std::string& name) {
  if (name == "campaign") return RequestType::kCampaign;
  if (name == "run") return RequestType::kRun;
  if (name == "stats") return RequestType::kStats;
  request_fail("unknown type '" + name +
               "' (expected campaign, run or stats)");
}

}  // namespace

ServeRequest parse_request(std::string_view line) {
  const JsonValue doc = scenario::parse_json(line);
  if (!doc.is_object()) request_fail("must be a JSON object");
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr ||
      schema->as_string("schema") != "vds.serve_request.v1") {
    request_fail("missing or unsupported schema (want vds.serve_request.v1)");
  }

  ServeRequest request;
  const JsonValue* scenario_doc = nullptr;
  const JsonValue* campaign_doc = nullptr;
  bool have_type = false;
  for (const auto& [key, value] : doc.members) {
    if (key == "schema") continue;
    if (key == "id") {
      request.id = value.as_string(key);
    } else if (key == "type") {
      request.type = parse_type(value.as_string(key));
      have_type = true;
    } else if (key == "deadline_ms") {
      request.deadline_ms = value.as_double(key);
      if (request.deadline_ms <= 0.0) {
        request_fail("deadline_ms must be > 0");
      }
    } else if (key == "scenario") {
      scenario_doc = &value;
    } else if (key == "campaign") {
      campaign_doc = &value;
    } else {
      request_fail("unknown key '" + key + "'");
    }
  }
  if (request.id.empty()) request_fail("missing or empty id");
  if (!have_type) request_fail("missing type");

  if (request.type == RequestType::kStats) {
    if (scenario_doc != nullptr || campaign_doc != nullptr) {
      request_fail("stats requests take no scenario/campaign");
    }
    return request;
  }

  if (scenario_doc == nullptr) request_fail("missing scenario");
  request.scenario = scenario::Scenario::from_json_value(*scenario_doc);
  if (request.type == RequestType::kCampaign) {
    // vds_mc parity: its traditional default job length is 60 rounds,
    // not the Scenario default of 10000.
    if (scenario_doc->find("rounds") == nullptr) {
      request.scenario.rounds = 60;
    }
    if (campaign_doc != nullptr) {
      request.campaign = scenario::campaign_spec_from_json(*campaign_doc);
    }
  } else if (campaign_doc != nullptr) {
    request_fail("run requests take no campaign");
  }
  return request;
}

std::string request_id_hint(std::string_view line) {
  try {
    const JsonValue doc = scenario::parse_json(line);
    const JsonValue* id = doc.find("id");
    if (id != nullptr && id->kind == JsonValue::Kind::kString) {
      return id->text;
    }
  } catch (...) {
    // unparseable line: no id to echo
  }
  return "";
}

std::string format_error(std::string_view id, std::string_view code,
                         std::string_view message) {
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  json.begin_object();
  json.field("schema", "vds.serve_error.v1");
  json.field("id", id);
  json.field("code", code);
  json.field("message", message);
  json.end_object();
  return os.str();
}

namespace {

/// The shared response head; the caller appends the body and closes.
void begin_response(runtime::JsonWriter& json, std::string_view id,
                    std::string_view status, double queue_ms,
                    double service_ms) {
  json.begin_object();
  json.field("schema", "vds.serve_response.v1");
  json.field("id", id);
  json.field("status", status);
  json.field("queue_ms", queue_ms);
  json.field("service_ms", service_ms);
  json.key("body");
}

}  // namespace

std::string format_campaign_response(std::string_view id,
                                     const runtime::McConfig& config,
                                     const runtime::McSummary& summary,
                                     double queue_ms, double service_ms) {
  const bool partial =
      summary.deadline_exceeded || summary.cells_skipped > 0;
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  begin_response(json, id, partial ? "partial" : "ok", queue_ms,
                 service_ms);
  runtime::write_snapshot(json, config, summary);
  json.end_object();
  return os.str();
}

std::string format_run_response(std::string_view id,
                                const scenario::Scenario& scenario,
                                std::uint64_t faults_scheduled,
                                const core::RunReport& report,
                                double queue_ms, double service_ms) {
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  begin_response(json, id, "ok", queue_ms, service_ms);
  scenario::write_run_report(json, scenario, faults_scheduled, report);
  json.end_object();
  return os.str();
}

std::string format_stats(std::string_view id, const StatsSnapshot& stats) {
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  json.begin_object();
  json.field("schema", "vds.serve_stats.v1");
  json.field("id", id);
  json.field("accepted", stats.accepted);
  json.field("rejected_queue_full", stats.rejected_queue_full);
  json.field("rejected_deadline", stats.rejected_deadline);
  json.field("rejected_drain", stats.rejected_drain);
  json.field("bad_requests", stats.bad_requests);
  json.field("transport_errors", stats.transport_errors);
  json.field("completed", stats.completed);
  json.field("batches", stats.batches);
  json.field("queue_depth", stats.queue_depth);
  json.field("outstanding", stats.outstanding);
  json.key("queue_wait_ms").begin_object();
  json.field("count", stats.queue_count);
  json.field("mean", stats.queue_mean);
  json.field("p50", stats.queue_p50);
  json.field("p99", stats.queue_p99);
  json.end_object();
  json.key("service_ms").begin_object();
  json.field("count", stats.service_count);
  json.field("mean", stats.service_mean);
  json.field("p50", stats.service_p50);
  json.field("p99", stats.service_p99);
  json.end_object();
  json.end_object();
  return os.str();
}

}  // namespace vds::serve
