#include "serve/server.hpp"

#include <exception>
#include <utility>
#include <vector>

#include "runtime/mc_campaign.hpp"
#include "runtime/metrics.hpp"
#include "scenario/report_json.hpp"

namespace vds::serve {

namespace {

using runtime::metrics::Determinism;

// Request-path event counts. All of them depend on client timing and
// queue occupancy, so none can promise --threads determinism.
struct ServeCounters {
  runtime::metrics::Counter& accepted;
  runtime::metrics::Counter& rejected;
  runtime::metrics::Counter& completed;
  runtime::metrics::Counter& batches;
  runtime::metrics::Timing& queue_ms;
  runtime::metrics::Timing& service_ms;
};

ServeCounters& serve_counters() {
  auto& reg = runtime::metrics::registry();
  static ServeCounters counters{
      reg.counter("serve.requests_accepted", Determinism::kScheduling),
      reg.counter("serve.requests_rejected", Determinism::kScheduling),
      reg.counter("serve.requests_completed", Determinism::kScheduling),
      reg.counter("serve.batches", Determinism::kScheduling),
      reg.timing("serve.queue_ms", 0.0, 1000.0, 128),
      reg.timing("serve.service_ms", 0.0, 10000.0, 256),
  };
  return counters;
}

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options), pool_(options.threads) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Server::~Server() { finish(); }

void Server::submit(const std::string& line,
                    std::shared_ptr<ResponseSink> sink) {
  ServeRequest request;
  try {
    request = parse_request(line);
  } catch (const std::exception& error) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counts_.bad_requests;
    }
    serve_counters().rejected.add();
    sink->write_line(format_error(request_id_hint(line), kErrBadRequest,
                                  error.what()));
    return;
  }

  if (request.type == RequestType::kStats) {
    // Health probes answer from the submitting thread: they must work
    // precisely when the queue is at its worst.
    sink->write_line(format_stats(request.id, stats_snapshot()));
    return;
  }

  if (runtime::drain_requested()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counts_.rejected_drain;
    }
    serve_counters().rejected.add();
    sink->write_line(
        format_error(request.id, kErrDrain, "server draining on signal"));
    return;
  }

  Pending pending;
  pending.sink = std::move(sink);
  pending.enqueued = Clock::now();
  if (request.deadline_ms > 0.0) {
    pending.deadline =
        pending.enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(request.deadline_ms));
  }
  pending.request = std::move(request);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) {
      lock.unlock();
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++counts_.rejected_drain;
      }
      serve_counters().rejected.add();
      pending.sink->write_line(format_error(pending.request.id, kErrDrain,
                                            "server shutting down"));
      return;
    }
    if (outstanding_ >= options_.queue_limit) {
      lock.unlock();
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++counts_.rejected_queue_full;
      }
      serve_counters().rejected.add();
      pending.sink->write_line(format_error(
          pending.request.id, kErrQueueFull,
          "queue limit " + std::to_string(options_.queue_limit) +
              " outstanding requests reached"));
      return;
    }
    ++outstanding_;
    queue_.push_back(std::move(pending));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counts_.accepted;
  }
  serve_counters().accepted.add();
  cv_.notify_one();
}

void Server::finish() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void Server::reject(const Pending& pending, std::string_view code,
                    std::string_view message) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (code == kErrDeadline) {
      ++counts_.rejected_deadline;
    } else if (code == kErrDrain) {
      ++counts_.rejected_drain;
    }
  }
  serve_counters().rejected.add();
  pending.sink->write_line(
      format_error(pending.request.id, code, std::string(message)));
  std::lock_guard<std::mutex> lock(mutex_);
  --outstanding_;
}

void Server::record_done(const Pending& pending,
                         Clock::time_point dispatched) {
  const auto now = Clock::now();
  const double queue_ms = ms_between(pending.enqueued, dispatched);
  const double service_ms = ms_between(dispatched, now);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counts_.completed;
    queue_acc_.add(queue_ms);
    queue_hist_.add(queue_ms);
    service_acc_.add(service_ms);
    service_hist_.add(service_ms);
  }
  serve_counters().completed.add();
  serve_counters().queue_ms.record_ms(queue_ms);
  serve_counters().service_ms.record_ms(service_ms);
  std::lock_guard<std::mutex> lock(mutex_);
  --outstanding_;
}

void Server::dispatcher_loop() {
  for (;;) {
    std::deque<Pending> batch;
    bool draining = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Bounded wait so a drain signal (only a flag set from the
      // handler; it cannot notify a cv) is noticed promptly.
      cv_.wait_for(lock, std::chrono::milliseconds(50),
                   [&] { return stop_ || !queue_.empty(); });
      draining = runtime::drain_requested();
      if (draining) {
        batch.swap(queue_);
      } else {
        while (!queue_.empty() && batch.size() < options_.batch_max) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      if (batch.empty() && stop_ && queue_.empty()) return;
    }
    if (draining) {
      // The batch in flight already finished (we are the only thread
      // that runs batches); everything still queued fails loudly.
      for (const Pending& pending : batch) {
        reject(pending, kErrDrain, "server draining on signal");
      }
      continue;  // keep looping until finish() sets stop_
    }
    if (!batch.empty()) process_batch(batch);
  }
}

void Server::process_batch(std::deque<Pending>& batch) {
  struct RunState {
    scenario::RunOutcome outcome;
    bool failed = false;
    std::string error;
  };
  struct Job {
    Pending* pending = nullptr;
    runtime::McConfig config;
    std::unique_ptr<runtime::McExecution> exec;  // campaign requests
    std::shared_ptr<RunState> run;               // run requests
  };

  const auto dispatched = Clock::now();
  std::vector<Job> jobs;
  jobs.reserve(batch.size());

  // Enqueue every request's cells before the single barrier: this is
  // the batching — cells from different requests interleave freely on
  // the pool because each one re-derives its RNG substream from its
  // own (seed, index), so coalescing cannot perturb any result.
  for (Pending& pending : batch) {
    if (pending.deadline != Clock::time_point{} &&
        Clock::now() >= pending.deadline) {
      reject(pending, kErrDeadline, "deadline expired before dispatch");
      continue;
    }
    Job job;
    job.pending = &pending;
    if (pending.request.type == RequestType::kCampaign) {
      job.config = scenario::to_mc_config(pending.request.campaign,
                                          pending.request.scenario);
      // The server owns execution policy: shared pool (threads field
      // unused), no journal, no chaos, drain must not truncate an
      // admitted request, deadlines come from the request.
      job.config.honor_global_drain = false;
      job.config.deadline = pending.deadline;
      try {
        job.exec = std::make_unique<runtime::McExecution>(
            job.config,
            scenario::make_mc_runner(pending.request.scenario));
      } catch (const std::exception& error) {
        reject(pending, kErrInternal, error.what());
        continue;
      }
      job.exec->enqueue(pool_);
    } else {
      job.run = std::make_shared<RunState>();
      auto run = job.run;
      auto scenario_copy = pending.request.scenario;
      pool_.submit([run, scenario_copy] {
        try {
          run->outcome = scenario::run_scenario_once(scenario_copy);
        } catch (const std::exception& error) {
          run->failed = true;
          run->error = error.what();
        } catch (...) {
          run->failed = true;
          run->error = "unknown error";
        }
      });
    }
    jobs.push_back(std::move(job));
  }

  // The dispatcher is the pool's only wait_idle caller, so one
  // request's failure can never be stolen by another's barrier.
  try {
    pool_.wait_idle();
  } catch (const std::exception& error) {
    // Serve-mode configs have no journal, so cell tasks have nothing
    // to throw; treat any surprise as fatal for the whole batch.
    for (Job& job : jobs) {
      reject(*job.pending, kErrInternal, error.what());
    }
    return;
  }

  for (Job& job : jobs) {
    Pending& pending = *job.pending;
    const double queue_ms = ms_between(pending.enqueued, dispatched);
    std::string line;
    if (job.exec) {
      const runtime::McSummary summary = job.exec->reduce(pool_);
      line = format_campaign_response(
          pending.request.id, job.config, summary, queue_ms,
          ms_between(dispatched, Clock::now()));
    } else {
      if (job.run->failed) {
        reject(pending, kErrInternal, job.run->error);
        continue;
      }
      line = format_run_response(
          pending.request.id, pending.request.scenario,
          job.run->outcome.faults_scheduled, job.run->outcome.report,
          queue_ms, ms_between(dispatched, Clock::now()));
    }
    pending.sink->write_line(line);
    record_done(pending, dispatched);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counts_.batches;
  }
  serve_counters().batches.add();
}

void Server::note_transport_error() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++counts_.transport_errors;
}

StatsSnapshot Server::stats_snapshot() {
  StatsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = counts_;
    snapshot.queue_count = queue_acc_.count();
    snapshot.queue_mean = queue_acc_.mean();
    snapshot.queue_p50 = queue_hist_.quantile(0.5);
    snapshot.queue_p99 = queue_hist_.quantile(0.99);
    snapshot.service_count = service_acc_.count();
    snapshot.service_mean = service_acc_.mean();
    snapshot.service_p50 = service_hist_.quantile(0.5);
    snapshot.service_p99 = service_hist_.quantile(0.99);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.queue_depth = queue_.size();
    snapshot.outstanding = outstanding_;
  }
  return snapshot;
}

}  // namespace vds::serve
