#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "runtime/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "sim/stats.hpp"

namespace vds::serve {

struct ServerOptions {
  /// Warm pool workers shared by every request; 0 = hardware.
  unsigned threads = 0;
  /// Admission bound on OUTSTANDING requests (queued + in service).
  /// A submission beyond it is rejected immediately with a
  /// vds.serve_error.v1 code=queue_full line — never queued
  /// unboundedly, never silently dropped.
  std::size_t queue_limit = 64;
  /// Requests coalesced per dispatch: their cells all land on the
  /// shared pool before the single barrier, so a small request rides
  /// along with a large one instead of waiting behind it.
  std::size_t batch_max = 8;
};

/// Where a client's response lines go. One sink per connection;
/// write_line must be safe to call from the dispatcher thread and the
/// connection's reader thread concurrently (implementations lock).
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  /// Writes `line` plus a trailing newline, atomically per call.
  virtual void write_line(const std::string& line) = 0;
};

/// The long-lived campaign server. Requests arrive as single
/// vds.serve_request.v1 lines via submit() (any thread); campaign/run
/// work queues for the dispatcher thread, which batches compatible
/// requests onto one warm ThreadPool — compatible meaning any mix of
/// campaigns and runs, because every cell re-derives its RNG substream
/// from (seed, index) and is immune to interleaving. stats requests
/// are answered synchronously in submit().
///
/// Responses are bitwise-identical to the one-shot tools: campaign
/// bodies reuse vds_mc's write_snapshot (equal digests = bitwise-equal
/// summaries), run bodies reuse vds_cli's envelope writer.
///
/// Shutdown: a global drain request (SIGTERM/SIGINT) lets the batch
/// in flight finish — campaign configs run with honor_global_drain
/// off — then fails every still-queued request with code=drain; the
/// tool exits 130. finish() (stdin EOF) instead completes everything
/// queued and exits 0.
class Server {
 public:
  explicit Server(ServerOptions options);

  /// Joins the dispatcher (calling finish() if nobody has).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request line: parse, admit (or reject with a
  /// structured error), enqueue. Every line produces exactly one
  /// response or error line on `sink`, though possibly much later.
  void submit(const std::string& line, std::shared_ptr<ResponseSink> sink);

  /// No more input: blocks until every accepted request has been
  /// answered (or, under drain, failed with code=drain) and the
  /// dispatcher has exited.
  void finish();

  [[nodiscard]] StatsSnapshot stats_snapshot();

  /// Counts one failed response write (the connection's peer vanished
  /// — ECONNRESET/EPIPE). Called from FdSink's error callback; shows
  /// up as `transport_errors` in vds.serve_stats.v1.
  void note_transport_error();

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    ServeRequest request;
    std::shared_ptr<ResponseSink> sink;
    Clock::time_point enqueued{};
    Clock::time_point deadline{};  ///< epoch = none
  };

  void dispatcher_loop();
  void process_batch(std::deque<Pending>& batch);
  void record_done(const Pending& pending, Clock::time_point dispatched);
  void reject(const Pending& pending, std::string_view code,
              std::string_view message);

  ServerOptions options_;
  runtime::ThreadPool pool_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::size_t outstanding_ = 0;  // queued + in service
  bool stop_ = false;

  std::mutex stats_mutex_;
  StatsSnapshot counts_;  // distribution fields unused; see hists
  vds::sim::Accumulator queue_acc_;
  vds::sim::Histogram queue_hist_{0.0, 1000.0, 128};
  vds::sim::Accumulator service_acc_;
  vds::sim::Histogram service_hist_{0.0, 10000.0, 256};

  std::thread dispatcher_;
};

}  // namespace vds::serve
