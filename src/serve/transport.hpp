#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "serve/server.hpp"

namespace vds::serve {

/// Largest accepted request line. Anything longer is discarded up to
/// its newline and answered with a bad_request error — the reader
/// never buffers unboundedly on a client that forgets the newline.
inline constexpr std::size_t kMaxLineBytes = 1u << 20;  // 1 MiB

/// ResponseSink over a raw file descriptor. One instance per
/// connection; a mutex makes each write_line atomic against the
/// dispatcher and reader threads. Optionally owns (closes) the fd —
/// response lines can outlive the reader thread, so the fd must live
/// as long as the last Pending's shared_ptr, which is exactly the
/// sink's own lifetime.
class FdSink : public ResponseSink {
 public:
  /// Invoked exactly once, with the errno of the first failed write.
  using ErrorCallback = std::function<void(int)>;

  explicit FdSink(int fd, bool owns_fd) : fd_(fd), owns_fd_(owns_fd) {}
  ~FdSink() override;
  void write_line(const std::string& line) override;

  /// Registers the callback fired on the first write failure
  /// (ECONNRESET/EPIPE et al. — the peer vanished). Later writes are
  /// dropped without re-firing. Set before the sink is shared with
  /// other threads.
  void on_error(ErrorCallback callback) { on_error_ = std::move(callback); }

  /// True once any write to the peer has failed.
  [[nodiscard]] bool failed() const noexcept { return failed_.load(); }

  /// The errno of the first failed write (0 while `failed()` is
  /// false).
  [[nodiscard]] int error() const noexcept { return error_.load(); }

 private:
  int fd_;
  bool owns_fd_;
  std::mutex mutex_;
  std::atomic<bool> failed_{false};
  std::atomic<int> error_{0};
  ErrorCallback on_error_;
};

/// Incremental newline-delimited reader over a file descriptor.
/// Reads are bounded (poll + 100 ms timeout) so a drain signal is
/// noticed promptly even on an idle connection.
class LineReader {
 public:
  enum class Status {
    kLine,      ///< `line` holds one complete request line
    kOverlong,  ///< a line exceeded kMaxLineBytes and was discarded
    kEof,       ///< peer closed after the last complete line
    kDrain,     ///< global drain requested while waiting for input
    kError,     ///< unrecoverable read error
    kTimeout,   ///< poll_next: no complete line within the deadline
  };

  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks until one of the states above. Complete lines already
  /// buffered are returned before the drain flag is consulted, so
  /// requests fully received before the signal still get (drain
  /// error) responses instead of vanishing.
  [[nodiscard]] Status next(std::string& line);

  /// `next` with a deadline: returns kTimeout if no complete line
  /// arrived within `timeout_ms`. The partial line stays buffered and
  /// a later call picks it up — the fabric coordinator interleaves
  /// reads with lease-expiry sweeps this way.
  [[nodiscard]] Status poll_next(std::string& line, int timeout_ms);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
  bool discarding_ = false;
};

// Each loop returns the tool's exit code: 0 when input ended and every
// accepted request was answered, 130 when a drain signal stopped the
// server (in-flight work finished, queued requests answered with
// code=drain), 3 on a transport failure.

/// stdin -> requests, stdout -> responses. Exits 0 at EOF.
int serve_stdio(Server& server);

/// Unix stream socket at `path` (replaced if present). Accepts any
/// number of concurrent connections; exits only via drain (130).
int serve_unix(Server& server, const std::string& path);

/// TCP on 127.0.0.1:`port`. Same lifecycle as serve_unix.
int serve_tcp(Server& server, std::uint16_t port);

// Listener plumbing shared with the fabric coordinator. Each returns
// a bound, listening fd, or -1 with errno set (the Unix variant
// replaces a stale socket file first).

[[nodiscard]] int listen_unix(const std::string& path);
[[nodiscard]] int listen_tcp(std::uint16_t port);

/// accept(2) with the global drain flag polled every 100 ms. Returns
/// the connection fd, or -1 once drain is requested or the listener
/// dies.
[[nodiscard]] int accept_or_drain(int listen_fd);

// Client-side connectors (fabric workers dial the coordinator with
// these). Both return the connected fd, or -1 with errno set.

/// Connects to the Unix stream socket at `path`.
[[nodiscard]] int connect_unix(const std::string& path);

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] int connect_tcp(std::uint16_t port);

}  // namespace vds::serve
