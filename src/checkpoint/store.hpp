#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "checkpoint/state.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace vds::checkpoint {

/// A checkpoint: the agreed version state at the end of a round, plus a
/// CRC so that stable-storage corruption is detectable on restore.
struct Checkpoint {
  std::uint64_t round = 0;       ///< global round index the state is valid at
  VersionState state;
  std::uint32_t crc = 0;
  vds::sim::SimTime saved_at = 0.0;
  /// SEC-DED check bytes, one per state word, when the store runs with
  /// EccMode::kSecded. Single-bit storage rot then becomes correctable
  /// instead of merely detectable.
  std::vector<std::uint8_t> ecc;
};

/// How the store protects checkpoints against stable-storage rot.
enum class EccMode : std::uint8_t {
  kCrcOnly,  ///< detect corruption via CRC-32 (restore fails)
  kSecded,   ///< Hamming(72,64) per word: correct single-bit errors,
             ///< detect double-bit errors, CRC as the final arbiter
};

/// Outcome of a protected restore.
enum class RestoreStatus : std::uint8_t {
  kClean,          ///< stored data intact
  kCorrected,      ///< rot found and repaired by SEC-DED
  kUnrecoverable,  ///< corruption beyond the code's reach
};

/// Latency model for stable storage. The paper notes stable-storage
/// access is "relatively expensive", motivating long checkpoint
/// intervals versus short test intervals [14]; benches E12 sweep these.
struct StoreLatency {
  double write = 0.0;  ///< time to persist one checkpoint
  double read = 0.0;   ///< time to restore one checkpoint
};

/// In-memory model of stable checkpoint storage with bounded history.
class CheckpointStore {
 public:
  /// keep_last == 0 keeps the full history.
  explicit CheckpointStore(StoreLatency latency = {},
                           std::size_t keep_last = 2,
                           EccMode ecc = EccMode::kCrcOnly);

  /// Persists a checkpoint; returns the modeled write latency.
  double save(std::uint64_t round, const VersionState& state,
              vds::sim::SimTime now);

  /// Most recent checkpoint, if any. Restoration cost is latency().read;
  /// the caller accounts for it in simulated time.
  [[nodiscard]] std::optional<Checkpoint> latest() const;

  /// Checkpoint for the greatest round <= `round`, if any.
  [[nodiscard]] std::optional<Checkpoint> latest_at_or_before(
      std::uint64_t round) const;

  /// True when the stored CRC matches the state (detects storage rot).
  [[nodiscard]] static bool verify(const Checkpoint& checkpoint) noexcept;

  /// Flips one bit of a stored checkpoint's state (storage-rot
  /// injection for tests and fault campaigns). `which` selects the
  /// checkpoint from the newest (0 = latest). Returns false when no
  /// such checkpoint exists.
  bool corrupt_stored_bit(std::size_t which, std::size_t word,
                          unsigned bit);

  /// Restores the most recent checkpoint with ECC scrubbing: under
  /// EccMode::kSecded single-bit rot is corrected in place; the CRC
  /// then arbitrates. Returns kUnrecoverable when the state cannot be
  /// trusted (the caller must fail safe or fall further back).
  [[nodiscard]] RestoreStatus restore_latest(Checkpoint& out);

  [[nodiscard]] EccMode ecc_mode() const noexcept { return ecc_; }
  [[nodiscard]] std::uint64_t corrections() const noexcept {
    return corrections_;
  }

  [[nodiscard]] const StoreLatency& latency() const noexcept {
    return latency_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return history_.size(); }
  [[nodiscard]] std::uint64_t saves() const noexcept { return saves_; }
  [[nodiscard]] const vds::sim::Accumulator& write_time() const noexcept {
    return write_time_;
  }

  void clear();

 private:
  StoreLatency latency_;
  std::size_t keep_last_;
  EccMode ecc_;
  std::deque<Checkpoint> history_;
  std::uint64_t saves_ = 0;
  std::uint64_t corrections_ = 0;
  vds::sim::Accumulator write_time_;
};

}  // namespace vds::checkpoint
