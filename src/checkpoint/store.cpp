#include "checkpoint/store.hpp"

#include <bit>

#include "checkpoint/codes.hpp"

namespace vds::checkpoint {

CheckpointStore::CheckpointStore(StoreLatency latency, std::size_t keep_last,
                                 EccMode ecc)
    : latency_(latency), keep_last_(keep_last), ecc_(ecc) {}

double CheckpointStore::save(std::uint64_t round, const VersionState& state,
                             vds::sim::SimTime now) {
  Checkpoint checkpoint;
  checkpoint.round = round;
  checkpoint.state = state;
  checkpoint.crc = crc32_words(state.data());
  checkpoint.saved_at = now;
  if (ecc_ == EccMode::kSecded) {
    checkpoint.ecc.reserve(state.words());
    for (const auto word : state.data()) {
      checkpoint.ecc.push_back(secded_encode(word).check);
    }
  }
  history_.push_back(std::move(checkpoint));
  if (keep_last_ != 0) {
    while (history_.size() > keep_last_) history_.pop_front();
  }
  ++saves_;
  write_time_.add(latency_.write);
  return latency_.write;
}

std::optional<Checkpoint> CheckpointStore::latest() const {
  if (history_.empty()) return std::nullopt;
  return history_.back();
}

std::optional<Checkpoint> CheckpointStore::latest_at_or_before(
    std::uint64_t round) const {
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->round <= round) return *it;
  }
  return std::nullopt;
}

bool CheckpointStore::verify(const Checkpoint& checkpoint) noexcept {
  return crc32_words(checkpoint.state.data()) == checkpoint.crc;
}

bool CheckpointStore::corrupt_stored_bit(std::size_t which,
                                         std::size_t word, unsigned bit) {
  if (which >= history_.size()) return false;
  Checkpoint& checkpoint = history_[history_.size() - 1 - which];
  checkpoint.state.flip_bit(word, bit);
  return true;
}

RestoreStatus CheckpointStore::restore_latest(Checkpoint& out) {
  if (history_.empty()) return RestoreStatus::kUnrecoverable;
  Checkpoint checkpoint = history_.back();

  bool corrected_any = false;
  if (ecc_ == EccMode::kSecded &&
      checkpoint.ecc.size() == checkpoint.state.words()) {
    for (std::size_t w = 0; w < checkpoint.state.words(); ++w) {
      Secded codeword{checkpoint.state.word(w), checkpoint.ecc[w]};
      const SecdedStatus status = secded_decode(codeword);
      switch (status) {
        case SecdedStatus::kOk:
          break;
        case SecdedStatus::kCorrectedData: {
          // Apply the repaired word by flipping exactly the bits that
          // changed (the state API exposes flips, not stores; a single
          // corrected data error differs in one bit).
          std::uint64_t diff = codeword.data ^ checkpoint.state.word(w);
          while (diff != 0) {
            const unsigned bit =
                static_cast<unsigned>(std::countr_zero(diff));
            checkpoint.state.flip_bit(w, bit);
            diff &= diff - 1;
          }
          corrected_any = true;
          ++corrections_;
          break;
        }
        case SecdedStatus::kCorrectedCheck:
          checkpoint.ecc[w] = codeword.check;
          corrected_any = true;
          ++corrections_;
          break;
        case SecdedStatus::kDoubleError:
          return RestoreStatus::kUnrecoverable;
      }
    }
  }

  if (!verify(checkpoint)) return RestoreStatus::kUnrecoverable;
  // Persist the scrubbed copy so later restores start clean.
  history_.back() = checkpoint;
  out = std::move(checkpoint);
  return corrected_any ? RestoreStatus::kCorrected : RestoreStatus::kClean;
}

void CheckpointStore::clear() {
  history_.clear();
  saves_ = 0;
  corrections_ = 0;
  write_time_.reset();
}

}  // namespace vds::checkpoint
