#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vds::checkpoint {

/// The state a version carries between rounds. In the real system this
/// is the process image; here it is a word vector that evolves through
/// a deterministic per-round mixing function, so that (a) two fault-free
/// versions that executed the same rounds have identical state, (b) a
/// single injected bit flip diverges the state for all later rounds,
/// and (c) states can be compared/digested cheaply -- exactly the
/// properties the VDS protocol relies on.
class VersionState {
 public:
  /// Creates the canonical initial state for a given job seed.
  /// All versions of the same job start from the same state.
  VersionState(std::uint64_t job_seed, std::size_t words);

  VersionState() = default;

  /// Advances the state by one round of "computation": a deterministic,
  /// invertibility-free mixing of every word with the round index.
  /// Diverse versions use a per-version `diversity_salt` that changes
  /// *how* the state is computed but not *what* it represents: the
  /// comparison below is performed on the canonical digest, which is
  /// salt-independent for fault-free execution.
  void advance_round(std::uint64_t round_index) noexcept;

  /// Injects a transient fault: flips bit `bit` of word `word`
  /// (both reduced modulo the respective sizes).
  void flip_bit(std::size_t word, unsigned bit) noexcept;

  /// 64-bit FNV-1a digest of the full state. Two states are "equal" for
  /// the VDS comparison iff their digests match (the engine also offers
  /// exact comparison; see equals()).
  [[nodiscard]] std::uint64_t digest() const noexcept;

  /// Exact word-for-word comparison.
  [[nodiscard]] bool equals(const VersionState& other) const noexcept;

  [[nodiscard]] std::size_t words() const noexcept { return data_.size(); }
  [[nodiscard]] std::uint64_t word(std::size_t i) const {
    return data_.at(i);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& data() const noexcept {
    return data_;
  }

  /// Number of rounds this state has advanced through.
  [[nodiscard]] std::uint64_t rounds_applied() const noexcept {
    return rounds_applied_;
  }

  friend bool operator==(const VersionState& a,
                         const VersionState& b) noexcept {
    return a.equals(b);
  }

 private:
  std::vector<std::uint64_t> data_;
  std::uint64_t rounds_applied_ = 0;
};

}  // namespace vds::checkpoint
