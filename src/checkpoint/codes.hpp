#pragma once

#include <cstdint>
#include <span>

namespace vds::checkpoint {

/// Error-detecting / error-correcting codes backing the paper's memory
/// assumption (§2.1): data of a version living in memory is protected by
/// an error-detecting code so that a stray write from the other version
/// is caught rather than silently merged.

/// Even parity bit over a 64-bit word.
[[nodiscard]] bool parity64(std::uint64_t word) noexcept;

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) over bytes.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// CRC-32 over a word span (little-endian byte order).
[[nodiscard]] std::uint32_t crc32_words(
    std::span<const std::uint64_t> words) noexcept;

/// Hamming(72,64) SEC-DED codeword for one 64-bit data word:
/// 7 Hamming parity bits + 1 overall parity bit.
struct Secded {
  std::uint64_t data = 0;
  std::uint8_t check = 0;  ///< bits 0..6: Hamming parity, bit 7: overall
};

/// Result of SEC-DED decoding.
enum class SecdedStatus : std::uint8_t {
  kOk,              ///< no error
  kCorrectedData,   ///< single-bit data error corrected
  kCorrectedCheck,  ///< single-bit check error corrected
  kDoubleError,     ///< uncorrectable double error detected
};

[[nodiscard]] Secded secded_encode(std::uint64_t data) noexcept;

/// Decodes (and corrects, where possible) a possibly corrupted codeword.
/// On return, `codeword.data` holds the corrected data for kOk /
/// kCorrected*; undefined for kDoubleError.
[[nodiscard]] SecdedStatus secded_decode(Secded& codeword) noexcept;

}  // namespace vds::checkpoint
