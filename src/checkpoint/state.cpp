#include "checkpoint/state.hpp"

namespace vds::checkpoint {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

VersionState::VersionState(std::uint64_t job_seed, std::size_t words) {
  data_.resize(words == 0 ? 1 : words);
  std::uint64_t x = job_seed ^ 0x9e3779b97f4a7c15ull;
  for (auto& word : data_) {
    x = mix(x + 0x2545f4914f6cdd1dull);
    word = x;
  }
}

void VersionState::advance_round(std::uint64_t round_index) noexcept {
  // Every word depends on its predecessor and the round index, so any
  // earlier single-bit corruption propagates through all later rounds
  // (no silent self-healing).
  std::uint64_t carry = mix(round_index + 0x5851f42d4c957f2dull);
  for (auto& word : data_) {
    word = mix(word ^ carry);
    carry = word;
  }
  ++rounds_applied_;
}

void VersionState::flip_bit(std::size_t word, unsigned bit) noexcept {
  if (data_.empty()) return;
  data_[word % data_.size()] ^= (1ull << (bit % 64u));
}

std::uint64_t VersionState::digest() const noexcept {
  std::uint64_t h = kFnvOffset;
  for (const auto word : data_) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (word >> (8 * byte)) & 0xffull;
      h *= kFnvPrime;
    }
  }
  return h;
}

bool VersionState::equals(const VersionState& other) const noexcept {
  return data_ == other.data_;
}

}  // namespace vds::checkpoint
