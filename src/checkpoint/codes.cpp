#include "checkpoint/codes.hpp"

#include <array>
#include <bit>

namespace vds::checkpoint {
namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() noexcept {
  static const auto table = make_crc_table();
  return table;
}

constexpr bool is_power_of_two(unsigned x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Maps the 64 data bits onto codeword positions 1..71, skipping the
/// 7 parity positions (powers of two). Returns position of data bit i.
constexpr std::array<unsigned, 64> make_data_positions() noexcept {
  std::array<unsigned, 64> positions{};
  unsigned idx = 0;
  for (unsigned pos = 1; pos <= 71 && idx < 64; ++pos) {
    if (!is_power_of_two(pos)) positions[idx++] = pos;
  }
  return positions;
}

constexpr auto kDataPositions = make_data_positions();

/// Expands a Secded codeword into a 72-entry position-indexed bit array
/// (index 0 unused; index 1..71 codeword; overall parity kept separate).
struct Expanded {
  std::array<bool, 72> bit{};
  bool overall = false;
};

Expanded expand(const Secded& codeword) noexcept {
  Expanded ex;
  for (unsigned i = 0; i < 64; ++i) {
    ex.bit[kDataPositions[i]] = ((codeword.data >> i) & 1ull) != 0;
  }
  for (unsigned p = 0; p < 7; ++p) {
    ex.bit[1u << p] = ((codeword.check >> p) & 1u) != 0;
  }
  ex.overall = ((codeword.check >> 7) & 1u) != 0;
  return ex;
}

Secded compress(const Expanded& ex) noexcept {
  Secded codeword;
  for (unsigned i = 0; i < 64; ++i) {
    if (ex.bit[kDataPositions[i]]) codeword.data |= (1ull << i);
  }
  for (unsigned p = 0; p < 7; ++p) {
    if (ex.bit[1u << p]) codeword.check |= static_cast<std::uint8_t>(1u << p);
  }
  if (ex.overall) codeword.check |= 0x80u;
  return codeword;
}

unsigned syndrome_of(const Expanded& ex) noexcept {
  unsigned syndrome = 0;
  for (unsigned pos = 1; pos <= 71; ++pos) {
    if (ex.bit[pos]) syndrome ^= pos;
  }
  return syndrome;
}

bool overall_parity_of(const Expanded& ex) noexcept {
  bool parity = false;
  for (unsigned pos = 1; pos <= 71; ++pos) parity ^= ex.bit[pos];
  return parity;
}

}  // namespace

bool parity64(std::uint64_t word) noexcept {
  return (std::popcount(word) & 1) != 0;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const auto b : bytes) {
    c = crc_table()[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_words(std::span<const std::uint64_t> words) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const auto word : words) {
    for (int byte = 0; byte < 8; ++byte) {
      const auto b =
          static_cast<std::uint8_t>((word >> (8 * byte)) & 0xFFull);
      c = crc_table()[(c ^ b) & 0xFFu] ^ (c >> 8);
    }
  }
  return c ^ 0xFFFFFFFFu;
}

Secded secded_encode(std::uint64_t data) noexcept {
  Secded codeword;
  codeword.data = data;
  Expanded ex = expand(codeword);

  // Hamming parity: parity bit at position 2^p covers positions with
  // bit p set; choose its value so the total syndrome becomes zero.
  const unsigned syndrome = syndrome_of(ex);
  for (unsigned p = 0; p < 7; ++p) {
    if ((syndrome >> p) & 1u) ex.bit[1u << p] = !ex.bit[1u << p];
  }
  ex.overall = overall_parity_of(ex);
  return compress(ex);
}

SecdedStatus secded_decode(Secded& codeword) noexcept {
  Expanded ex = expand(codeword);
  const unsigned syndrome = syndrome_of(ex);
  const bool parity_mismatch = overall_parity_of(ex) != ex.overall;

  if (syndrome == 0 && !parity_mismatch) return SecdedStatus::kOk;
  if (syndrome == 0 && parity_mismatch) {
    // The overall parity bit itself flipped.
    ex.overall = !ex.overall;
    codeword = compress(ex);
    return SecdedStatus::kCorrectedCheck;
  }
  if (parity_mismatch) {
    // Single-bit error at the syndrome position.
    if (syndrome <= 71) {
      ex.bit[syndrome] = !ex.bit[syndrome];
      codeword = compress(ex);
      return is_power_of_two(syndrome) ? SecdedStatus::kCorrectedCheck
                                       : SecdedStatus::kCorrectedData;
    }
    return SecdedStatus::kDoubleError;  // syndrome outside the code
  }
  return SecdedStatus::kDoubleError;
}

}  // namespace vds::checkpoint
