#include "core/campaign.hpp"

#include "sim/rng.hpp"

namespace vds::core {

std::string_view to_string(InjectionOutcome outcome) noexcept {
  switch (outcome) {
    case InjectionOutcome::kNoEffect: return "no_effect";
    case InjectionOutcome::kRecovered: return "recovered";
    case InjectionOutcome::kRolledBack: return "rolled_back";
    case InjectionOutcome::kSilent: return "SILENT";
    case InjectionOutcome::kFailSafe: return "fail_safe";
    case InjectionOutcome::kNotCompleted: return "not_completed";
  }
  return "?";
}

double CampaignSummary::safety() const {
  const std::uint64_t effective =
      count(InjectionOutcome::kRecovered) +
      count(InjectionOutcome::kRolledBack) +
      count(InjectionOutcome::kSilent) +
      count(InjectionOutcome::kFailSafe);
  if (effective == 0) return 1.0;
  return 1.0 - static_cast<double>(count(InjectionOutcome::kSilent)) /
                   static_cast<double>(effective);
}

void CampaignSummary::merge(const CampaignSummary& other) noexcept {
  for (std::size_t k = 0; k < by_outcome.size(); ++k) {
    by_outcome[k] += other.by_outcome[k];
  }
  injections += other.injections;
}

InjectionOutcome classify_outcome(const RunReport& report) noexcept {
  if (report.failed_safe) return InjectionOutcome::kFailSafe;
  if (!report.completed) return InjectionOutcome::kNotCompleted;
  if (report.silent_corruption) return InjectionOutcome::kSilent;
  if (report.recoveries_ok > 0) return InjectionOutcome::kRecovered;
  if (report.rollbacks > 0) return InjectionOutcome::kRolledBack;
  return InjectionOutcome::kNoEffect;
}

std::vector<InjectionResult> run_injection_campaign(
    const InjectionCampaign& campaign, const EngineRunner& runner) {
  std::vector<InjectionResult> results;
  results.reserve(campaign.kinds.size() * campaign.rounds.size());
  vds::sim::Rng rng(campaign.seed);

  for (const vds::fault::FaultKind kind : campaign.kinds) {
    for (const std::uint64_t round : campaign.rounds) {
      vds::fault::Fault fault;
      fault.kind = kind;
      fault.victim = rng.bernoulli(0.5)
                         ? vds::fault::Victim::kVersion1
                         : vds::fault::Victim::kVersion2;
      fault.location = static_cast<std::uint32_t>(rng.uniform_index(16));
      fault.word = static_cast<std::uint32_t>(rng.uniform_index(1u << 16));
      fault.bit = static_cast<std::uint8_t>(rng.uniform_index(64));
      fault.when = (static_cast<double>(round) - 1.0) *
                       campaign.round_time +
                   campaign.offset * campaign.round_time;
      vds::fault::FaultTimeline timeline({fault});

      const RunReport report = runner(timeline);

      InjectionResult result;
      result.kind = kind;
      result.round = round;
      result.outcome = classify_outcome(report);
      result.detection_latency = report.detection_latency.empty()
                                     ? -1.0
                                     : report.detection_latency.mean();
      result.recovery_time = report.recovery_time.empty()
                                 ? 0.0
                                 : report.recovery_time.mean();
      results.push_back(result);
    }
  }
  return results;
}

CampaignSummary summarize(const std::vector<InjectionResult>& results) {
  CampaignSummary summary;
  for (const InjectionResult& result : results) {
    ++summary.by_outcome[static_cast<std::size_t>(result.outcome)];
    ++summary.injections;
  }
  return summary;
}

}  // namespace vds::core
