#include "core/recovery_policy.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/platform_cores.hpp"
#include "fault/predictor.hpp"
#include "runtime/metrics.hpp"

namespace vds::core {

namespace metrics = vds::runtime::metrics;

using vds::checkpoint::VersionState;
using vds::fault::Fault;
using vds::fault::FaultEvidence;
using vds::fault::FaultKind;
using vds::fault::VersionGuess;
using vds::sim::TraceKind;

// --- conventional stop-and-retry ---------------------------------------

void StopAndRetryPolicy::recover(ProtocolCore& core) {
  auto& c = static_cast<ConventionalCore&>(core);
  const std::uint64_t ic = c.i_ + 1;  // mismatch found at round ic
  c.record(TraceKind::kRetryStart, "V" + std::to_string(c.spare_id_),
           "replay " + std::to_string(ic) + " rounds");

  // Version 3 loads the checkpoint...
  c.drain(c.clock_, c.clock_ + c.opt_.checkpoint_read_latency, nullptr);
  c.clock_ += c.opt_.checkpoint_read_latency;
  VersionState retry = c.store_.latest()->state;
  bool retry_crashed = false;

  // ...and replays the interval, round by round, itself exposed to
  // new faults while it runs.
  for (std::uint64_t r = 1; r <= ic; ++r) {
    c.vset_.advance(retry, c.base_ + r, c.spare_id_);
    c.drain(c.clock_, c.clock_ + c.opt_.t, nullptr, &retry,
            &retry_crashed);
    c.clock_ += c.opt_.t;
    if (c.processor_crash_) break;
  }
  if (c.handle_processor_crash()) return;
  c.record(TraceKind::kRetryEnd, "V" + std::to_string(c.spare_id_), "");

  // Majority vote: two comparisons.
  c.drain(c.clock_, c.clock_ + 2.0 * c.opt_.t_cmp, nullptr);
  c.clock_ += 2.0 * c.opt_.t_cmp;
  c.rep_.comparisons += 2;
  if (c.handle_processor_crash()) return;

  const bool s_matches_a = !retry_crashed && !c.a_.crashed &&
                           retry.digest() == c.a_.state.digest();
  const bool s_matches_b = !retry_crashed && !c.b_.crashed &&
                           retry.digest() == c.b_.state.digest();

  if (s_matches_a == s_matches_b) {
    // Either all three agree (cannot happen after a mismatch) or all
    // three differ: no majority -> rollback (paper §3.1).
    c.record(TraceKind::kMajorityVote, "VDS", "no majority");
    c.rollback();
    return;
  }

  EngineSlot& faulty = s_matches_a ? c.b_ : c.a_;
  c.record(TraceKind::kMajorityVote, "VDS",
           "V" + std::to_string(faulty.version_id) + " faulty");

  // The fault-free retry state replaces the faulty version; version 3
  // takes over that slot and the previous occupant becomes the spare.
  faulty.state = retry;
  faulty.crashed = false;
  std::swap(faulty.version_id, c.spare_id_);
  c.record(TraceKind::kStateCopy, "VDS",
           "V" + std::to_string(faulty.version_id) + " joins duplex");

  c.i_ = ic;
  c.consecutive_failures_ = 0;
  ++c.rep_.recoveries_ok;
  c.clear_pending();
  c.maybe_checkpoint();
}

// --- adaptive scheme selection -----------------------------------------

RecoveryScheme AdaptiveSchemeSelector::choose(ProtocolCore& core) {
  // Our extension of the paper's Section-5 outlook: trust the
  // predictor's measured accuracy to decide between guaranteed
  // (deterministic) and larger-expected (probabilistic) roll-forward.
  const bool trusted =
      core.rep_.predictions >=
      static_cast<std::uint64_t>(core.opt_.adaptive_warmup);
  const RecoveryScheme chosen =
      trusted &&
              core.rep_.predictor_accuracy() >= core.opt_.adaptive_p_threshold
          ? RecoveryScheme::kRollForwardProb
          : RecoveryScheme::kRollForwardDet;
  if (last_choice_ != chosen) {
    if (core.rep_.adaptive_det_recoveries +
            core.rep_.adaptive_prob_recoveries >
        0) {
      ++core.rep_.scheme_switches;
    }
    last_choice_ = chosen;
  }
  if (chosen == RecoveryScheme::kRollForwardProb) {
    ++core.rep_.adaptive_prob_recoveries;
  } else {
    ++core.rep_.adaptive_det_recoveries;
  }
  return chosen;
}

// --- SMT roll-forward recovery -----------------------------------------

std::uint64_t SmtRecoveryPolicy::intended_roll_forward(
    const VdsOptions& opt, RecoveryScheme scheme,
    std::uint64_t ic) const noexcept {
  switch (scheme) {
    case RecoveryScheme::kRollForwardDet:
      return opt.hardware_threads >= 5 ? ic : ic / 4;
    case RecoveryScheme::kRollForwardProb:
      return opt.hardware_threads >= 3 ? ic : ic / 2;
    case RecoveryScheme::kRollForwardPredict:
      return ic;
    default:
      return 0;
  }
}

double SmtRecoveryPolicy::recovery_window(const VdsOptions& opt,
                                          RecoveryScheme scheme,
                                          std::uint64_t ic) const noexcept {
  if (scheme == RecoveryScheme::kStopAndRetry) {
    // Thread 2 idles; a single active thread runs at conventional
    // speed (paper footnote 1).
    return static_cast<double>(ic) * opt.t;
  }
  int k = 2;
  double alpha_k = opt.alpha;
  if (scheme == RecoveryScheme::kRollForwardProb &&
      opt.hardware_threads >= 3) {
    k = 3;
    alpha_k = opt.alpha3;
  } else if (scheme == RecoveryScheme::kRollForwardDet &&
             opt.hardware_threads >= 5) {
    k = 5;
    alpha_k = opt.alpha5;
  }
  return static_cast<double>(k) * static_cast<double>(ic) * alpha_k *
         opt.t;
}

void SmtRecoveryPolicy::recover(ProtocolCore& core) {
  auto& c = static_cast<SmtCore&>(core);
  vds::fault::Predictor& predictor = c.predictor();
  const std::uint64_t ic = c.i_ + 1;

  const RecoveryScheme scheme = selector_->choose(c);
  metrics::registry()
      .counter("engine.scheme." + std::string(short_name(scheme)),
               metrics::Determinism::kDeterministic)
      .add();

  const std::uint64_t cap =
      static_cast<std::uint64_t>(c.opt_.s) >= ic
          ? static_cast<std::uint64_t>(c.opt_.s) - ic
          : 0;
  const std::uint64_t rf =
      std::min(intended_roll_forward(c.opt_, scheme, ic), cap);
  const bool scheme_prob = scheme == RecoveryScheme::kRollForwardProb;
  const bool scheme_det = scheme == RecoveryScheme::kRollForwardDet;
  const bool scheme_predict =
      scheme == RecoveryScheme::kRollForwardPredict;
  // With the adaptive selector, deterministic recoveries still consult
  // (and feed back) the predictor so its accuracy keeps learning.
  const bool consult_predictor =
      scheme_prob || scheme_predict || selector_->consults_predictor();

  // --- prediction (who is faulty?) -----------------------------------
  FaultEvidence evidence;
  int guessed_faulty_slot = -1;  // 0 = slot A, 1 = slot B
  if (consult_predictor) {
    evidence.round = c.base_ + ic;
    evidence.location = c.pending_location_;
    evidence.digest_v1 = c.a_.state.digest();
    evidence.digest_v2 = c.b_.state.digest();
    if (c.a_.crashed) evidence.crashed = VersionGuess::kVersion1;
    if (c.b_.crashed) evidence.crashed = VersionGuess::kVersion2;
    // An oracle predictor is told the ground truth out-of-band.
    if (auto* oracle =
            dynamic_cast<vds::fault::OraclePredictor*>(&predictor)) {
      oracle->plant_truth(c.pending_slot_ == 1 ? VersionGuess::kVersion2
                                               : VersionGuess::kVersion1);
    }
    const VersionGuess guess = predictor.predict(evidence);
    guessed_faulty_slot = guess == VersionGuess::kVersion1 ? 0 : 1;
    c.record(TraceKind::kPrediction, "VDS",
             std::string("guess faulty = slot ") +
                 (guessed_faulty_slot == 0 ? "A" : "B"));
  }

  // --- load checkpoint ------------------------------------------------
  c.drain_background(c.clock_,
                     c.clock_ + c.opt_.checkpoint_read_latency);
  c.clock_ += c.opt_.checkpoint_read_latency;
  c.record(TraceKind::kRetryStart, "T1",
           "V" + std::to_string(c.spare_id_) + " replays " +
               std::to_string(ic) + " rounds");
  if (rf > 0) {
    c.record(TraceKind::kRollForwardStart, "T2",
             std::string(to_string(scheme)) + " rf=" + std::to_string(rf));
  }

  // --- drain the whole recovery window and bucket the faults ---------
  const double window = recovery_window(c.opt_, scheme, ic);
  std::vector<Fault> window_faults =
      c.timeline_.drain_window(c.clock_, c.clock_ + window);
  c.clock_ += window;

  bool retry_hit = false;
  bool retry_crashed = false;
  std::uint32_t retry_word = 0;
  std::uint8_t retry_bit = 0;
  // Roll-forward corruption per segment (probabilistic/predict use
  // segment 0/1; deterministic uses 0..3).
  bool segment_hit[4] = {false, false, false, false};
  std::uint32_t flip_word[4] = {0, 0, 0, 0};
  std::uint8_t flip_bit[4] = {0, 0, 0, 0};

  for (const Fault& fault : window_faults) {
    ++c.rep_.faults_seen;
    c.record(TraceKind::kFaultInjected, "fault", fault.describe());
    switch (fault.kind) {
      case FaultKind::kTransient:
      case FaultKind::kCrash: {
        if (fault.kind == FaultKind::kTransient) {
          ++c.rep_.transient_faults;
        } else {
          ++c.rep_.crash_faults;
        }
        // Thread 1 (the retry) and thread 2 (roll-forward) are both
        // occupied; the victim thread is effectively random.
        if (c.rng_.bernoulli(0.5) || rf == 0) {
          retry_hit = true;
          retry_word = fault.word;
          retry_bit = fault.bit;
          if (fault.kind == FaultKind::kCrash) retry_crashed = true;
        } else {
          const auto seg = static_cast<std::size_t>(c.rng_.uniform_index(
              scheme_det ? 4 : (scheme_prob ? 2 : 1)));
          segment_hit[seg] = true;
          flip_word[seg] = fault.word;
          flip_bit[seg] = fault.bit;
        }
        break;
      }
      case FaultKind::kPermanent:
        c.activate_permanent(fault, c.spare_id_);
        break;
      case FaultKind::kProcessorCrash:
        ++c.rep_.processor_crashes;
        c.processor_crash_ = true;
        break;
    }
    if (c.processor_crash_) break;
  }
  if (c.handle_processor_crash()) return;

  // --- thread 1: version 3 replays the interval -----------------------
  VersionState retry = c.store_.latest()->state;
  for (std::uint64_t r = 1; r <= ic; ++r) {
    c.vset_.advance(retry, c.base_ + r, c.spare_id_);
  }
  if (retry_hit && !retry_crashed) {
    c.flip_distinct(retry, retry_word, retry_bit);
  }
  c.record(TraceKind::kRetryEnd, "T1", "");

  // --- thread 2: roll-forward ----------------------------------------
  // Candidate states at round ic: P = slot A, Q = slot B.
  VersionState roll_a;  // "T": advanced by version in slot A
  VersionState roll_b;  // "U": advanced by version in slot B
  VersionState roll_qa;
  VersionState roll_qb;
  int chosen_source_slot = -1;  // probabilistic/predict: P(0) or Q(1)

  if (rf > 0 && (scheme_prob || scheme_predict)) {
    // Start from the state of the *predicted fault-free* version.
    chosen_source_slot = guessed_faulty_slot == 0 ? 1 : 0;
    const VersionState& source =
        chosen_source_slot == 0 ? c.a_.state : c.b_.state;
    roll_a = source;
    roll_b = source;
    for (std::uint64_t r = 1; r <= rf; ++r) {
      c.vset_.advance(roll_a, c.base_ + ic + r, c.a_.version_id);
      if (scheme_prob) {
        c.vset_.advance(roll_b, c.base_ + ic + r, c.b_.version_id);
      }
    }
    if (segment_hit[0]) {
      c.flip_distinct(roll_a, flip_word[0], flip_bit[0]);
    }
    if (scheme_prob && segment_hit[1]) {
      c.flip_distinct(roll_b, flip_word[1], flip_bit[1]);
    }
  } else if (rf > 0 && scheme_det) {
    roll_a = c.a_.state;   // from P, advanced by version A
    roll_b = c.a_.state;   // from P, advanced by version B
    roll_qa = c.b_.state;  // from Q, advanced by version A
    roll_qb = c.b_.state;  // from Q, advanced by version B
    for (std::uint64_t r = 1; r <= rf; ++r) {
      c.vset_.advance(roll_a, c.base_ + ic + r, c.a_.version_id);
      c.vset_.advance(roll_b, c.base_ + ic + r, c.b_.version_id);
      c.vset_.advance(roll_qa, c.base_ + ic + r, c.a_.version_id);
      c.vset_.advance(roll_qb, c.base_ + ic + r, c.b_.version_id);
    }
    if (segment_hit[0]) {
      c.flip_distinct(roll_a, flip_word[0], flip_bit[0]);
    }
    if (segment_hit[1]) {
      c.flip_distinct(roll_b, flip_word[1], flip_bit[1]);
    }
    if (segment_hit[2]) {
      c.flip_distinct(roll_qa, flip_word[2], flip_bit[2]);
    }
    if (segment_hit[3]) {
      c.flip_distinct(roll_qb, flip_word[3], flip_bit[3]);
    }
  }

  // --- majority vote ---------------------------------------------------
  c.drain_background(c.clock_, c.clock_ + 2.0 * c.opt_.t_cmp);
  c.clock_ += 2.0 * c.opt_.t_cmp;
  c.rep_.comparisons += 2;
  if (c.handle_processor_crash()) return;

  const bool s_matches_a = !retry_crashed && !c.a_.crashed &&
                           retry.digest() == c.a_.state.digest();
  const bool s_matches_b = !retry_crashed && !c.b_.crashed &&
                           retry.digest() == c.b_.state.digest();

  if (s_matches_a == s_matches_b) {
    c.record(TraceKind::kMajorityVote, "VDS", "no majority");
    // The vote failed; the predictor gets no usable feedback.
    c.rollback();
    return;
  }

  const int faulty_slot = s_matches_a ? 1 : 0;
  EngineSlot& faulty = faulty_slot == 0 ? c.a_ : c.b_;
  c.record(TraceKind::kMajorityVote, "VDS",
           "V" + std::to_string(faulty.version_id) + " faulty");

  // Predictor bookkeeping.
  if (consult_predictor) {
    ++c.rep_.predictions;
    const bool hit = guessed_faulty_slot == faulty_slot;
    if (hit) ++c.rep_.prediction_hits;
    predictor.feedback(evidence, faulty_slot == 0
                                     ? VersionGuess::kVersion1
                                     : VersionGuess::kVersion2);
  }

  // Version 3 replaces the faulty version.
  faulty.state = retry;
  faulty.crashed = false;
  std::swap(faulty.version_id, c.spare_id_);
  c.record(TraceKind::kStateCopy, "VDS",
           "V" + std::to_string(faulty.version_id) + " joins duplex");

  // --- apply the roll-forward if it survived ---------------------------
  std::uint64_t progress = 0;
  if (rf > 0) {
    if (scheme_prob) {
      const bool chose_good = chosen_source_slot != faulty_slot;
      const bool clean = roll_a.digest() == roll_b.digest();
      if (chose_good && clean) {
        c.a_.state = roll_a;
        c.b_.state = roll_a;
        progress = rf;
      }
    } else if (scheme_det) {
      const VersionState& t_state = faulty_slot == 0 ? roll_qa : roll_a;
      const VersionState& u_state = faulty_slot == 0 ? roll_qb : roll_b;
      if (t_state.digest() == u_state.digest()) {
        c.a_.state = t_state;
        c.b_.state = t_state;
        progress = rf;
      }
    } else if (scheme_predict) {
      const bool chose_good = chosen_source_slot != faulty_slot;
      if (chose_good) {
        // No comparison protects this path: a fault that struck the
        // roll-forward is committed silently (the §4 hazard).
        c.a_.state = roll_a;
        c.b_.state = roll_a;
        progress = rf;
      }
    }
  }

  if (progress > 0) {
    ++c.rep_.roll_forwards_kept;
    c.rep_.roll_forward_rounds_gained += progress;
    c.record(TraceKind::kRollForwardEnd, "T2",
             "kept " + std::to_string(progress) + " rounds");
  } else if (rf > 0) {
    ++c.rep_.roll_forwards_discarded;
    c.record(TraceKind::kRollForwardDiscarded, "T2", "");
  }

  c.i_ = ic + progress;
  c.consecutive_failures_ = 0;
  ++c.rep_.recoveries_ok;
  c.clear_pending();
  c.maybe_checkpoint();
}

// --- registry ----------------------------------------------------------

std::unique_ptr<RecoveryPolicy> make_recovery_policy(
    const VdsOptions& options, Platform platform) {
  if (options.scheme == RecoveryScheme::kRollback) {
    return std::make_unique<RollbackPolicy>();
  }
  if (platform == Platform::kConventional) {
    return std::make_unique<StopAndRetryPolicy>();
  }
  std::unique_ptr<SchemeSelector> selector;
  if (options.adaptive_scheme) {
    selector = std::make_unique<AdaptiveSchemeSelector>();
  } else {
    selector = std::make_unique<FixedSchemeSelector>(options.scheme);
  }
  return std::make_unique<SmtRecoveryPolicy>(std::move(selector));
}

}  // namespace vds::core
