#pragma once

#include "core/protocol_core.hpp"
#include "fault/predictor.hpp"

namespace vds::core {

/// Conventional (single-context) processor adapter, paper §3.1 /
/// Figure 1(a): versions alternate in rounds separated by context
/// switches. Simulated time advances phase by phase; each phase drains
/// the fault timeline over its window and applies the faults to
/// whatever occupies the processor during that window.
class ConventionalCore final : public ProtocolCore {
 public:
  ConventionalCore(const VdsOptions& options, vds::sim::Rng& rng,
                   vds::fault::FaultTimeline& timeline,
                   vds::sim::Trace* trace, RecoveryPolicy& policy)
      : ProtocolCore(options, rng, timeline, trace, policy) {}

  /// Applies one fault. `occupant` is the slot computing during the
  /// fault window (nullptr when the processor is switching/comparing,
  /// in which case a memory-resident victim is picked at random);
  /// `retry_state` points at the retry state when version 3 occupies
  /// the CPU.
  void apply_fault(const vds::fault::Fault& fault, EngineSlot* occupant,
                   vds::checkpoint::VersionState* retry_state,
                   bool* retry_crashed);

  void drain(double from, double to, EngineSlot* occupant,
             vds::checkpoint::VersionState* retry_state = nullptr,
             bool* retry_crashed = nullptr);

 protected:
  void step_round() override;
  void apply_background_fault(const vds::fault::Fault& fault) override {
    apply_fault(fault, nullptr, nullptr, nullptr);
  }
};

/// SMT processor adapter, paper §3.2 / Figure 1(b): both versions run
/// in parallel hardware threads (a round pair costs 2*alpha*t, no
/// context switches); the fault's victim attribute decides which
/// hardware thread it strikes.
class SmtCore final : public ProtocolCore {
 public:
  SmtCore(const VdsOptions& options, vds::sim::Rng& rng,
          vds::fault::Predictor& predictor,
          vds::fault::FaultTimeline& timeline, vds::sim::Trace* trace,
          RecoveryPolicy& policy)
      : ProtocolCore(options, rng, timeline, trace, policy),
        predictor_(predictor) {}

  /// Applies a fault drained over a *normal round* window, where both
  /// duplex versions occupy the processor simultaneously.
  void apply_normal(const vds::fault::Fault& fault);

  /// Activates a permanent hardware fault against `victim_version`.
  void activate_permanent(const vds::fault::Fault& fault,
                          int victim_version);

  [[nodiscard]] vds::fault::Predictor& predictor() noexcept {
    return predictor_;
  }

 protected:
  void step_round() override;
  void apply_background_fault(const vds::fault::Fault& fault) override {
    apply_normal(fault);
  }

 private:
  EngineSlot& resolve_victim(const vds::fault::Fault& fault);

  vds::fault::Predictor& predictor_;
};

}  // namespace vds::core
