#pragma once

#include <algorithm>
#include <cstdint>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "fault/injector.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace vds::core {

/// Divergent multi-version execution (DME): two *structurally
/// decorrelated* versions run concurrently on the SMT contexts and
/// compare states after every round. Unlike the VDS versions (diverse
/// encodings of one algorithm with identical resource usage) the DME
/// versions use different algorithms/data structures, controlled by a
/// single decorrelation parameter d in [0, 1]:
///
///  * effective alphas diverge — version 2's structurally different
///    code is slower by up to `alpha_penalty` at d = 1, and the round
///    completes only when the slower version finishes;
///  * per-version fault-activation probabilities diverge — a permanent
///    defect activates *differently* in the two versions (and is thus
///    detected) with probability d, and a transient hitting shared
///    state corrupts both versions identically (common mode, silent)
///    with probability (1 - d) * common_mode.
///
/// d = 0 degenerates to lockstep-like identical copies (permanent
/// faults silent, common-mode transients silent); d = 1 is full
/// structural diversity (every permanent activates divergently, no
/// common mode). This replaces the fixed common-mode/coverage
/// assumptions of the VDS diversity substrate (E14) with a tunable
/// axis. With only two versions there is no 2-of-3 vote: recovery is
/// rollback, and a persistent divergent defect ends in fail-safe
/// shutdown after repeated failures rather than silent corruption.
struct DmeConfig {
  double t = 1.0;       ///< round of useful work (same unit as VDS)
  double alpha = 0.65;  ///< SMT slowdown of version 1 (the baseline)
  /// Structural-decorrelation parameter d in [0, 1].
  double decorrelation = 0.5;
  /// Fraction of transient faults that are common mode at d = 0.
  double common_mode = 0.3;
  /// Version 2's slowdown grows linearly to alpha * (1 + alpha_penalty)
  /// (capped at 1) at full decorrelation.
  double alpha_penalty = 0.25;
  double t_cmp = 0.1;  ///< state-comparison time per round
  int s = 20;          ///< checkpoint interval in rounds
  std::uint64_t job_rounds = 1000;
  double checkpoint_write_latency = 0.0;
  double checkpoint_read_latency = 0.0;
  /// Consecutive failed recoveries before fail-safe shutdown.
  int max_consecutive_failures = 8;
  double max_time = 1e12;

  void validate() const;

  [[nodiscard]] double alpha1() const noexcept { return alpha; }
  [[nodiscard]] double alpha2() const noexcept {
    return std::min(1.0, alpha * (1.0 + alpha_penalty * decorrelation));
  }
};

/// DME reference implementation against the common fault timeline;
/// reuses core::RunReport for comparable accounting.
class DmeEngine final : public Engine {
 public:
  DmeEngine(DmeConfig config, vds::sim::Rng rng);

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "dme";
  }

  /// `trace` is accepted for Engine uniformity and ignored.
  RunReport run(vds::fault::FaultTimeline& timeline,
                vds::sim::Trace* trace = nullptr) override;

  [[nodiscard]] const DmeConfig& config() const noexcept { return config_; }

 private:
  DmeConfig config_;
  vds::sim::Rng rng_;
};

}  // namespace vds::core
