#include "core/dme_engine.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/metrics.hpp"

namespace vds::core {

namespace metrics = vds::runtime::metrics;

using vds::fault::Fault;
using vds::fault::FaultKind;

void DmeConfig::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("DmeConfig: ") + what);
  };
  if (!(t > 0.0) || !std::isfinite(t)) fail("t must be finite and > 0");
  if (!(alpha >= 0.5) || alpha > 1.0) fail("alpha in [0.5, 1]");
  // The negated form rejects NaN along with out-of-range values.
  if (!(decorrelation >= 0.0 && decorrelation <= 1.0)) {
    fail("decorrelation in [0, 1]");
  }
  if (!(common_mode >= 0.0 && common_mode <= 1.0)) {
    fail("common_mode in [0, 1]");
  }
  if (!(alpha_penalty >= 0.0) || !std::isfinite(alpha_penalty)) {
    fail("alpha_penalty must be finite and >= 0");
  }
  if (!(t_cmp >= 0.0) || !std::isfinite(t_cmp)) {
    fail("t_cmp must be finite and >= 0");
  }
  if (s < 1) fail("s >= 1");
  if (job_rounds == 0) fail("job_rounds >= 1");
  if (!(checkpoint_write_latency >= 0.0) ||
      !std::isfinite(checkpoint_write_latency) ||
      !(checkpoint_read_latency >= 0.0) ||
      !std::isfinite(checkpoint_read_latency)) {
    fail("checkpoint latencies must be finite and >= 0");
  }
  if (max_consecutive_failures < 1) fail("max_consecutive_failures >= 1");
  if (!(max_time > 0.0) || !std::isfinite(max_time)) {
    fail("max_time must be finite and > 0");
  }
}

namespace {

// All counts below are pure functions of (config, timeline, engine
// seed), never of scheduling, so they fold into deterministic global
// counters once per run — the DME engine's golden-counter surface.
void fold_dme_metrics(const RunReport& rep, std::uint64_t common_mode,
                      std::uint64_t divergent_permanents) {
  using metrics::Determinism;
  auto& reg = metrics::registry();
  static auto& runs = reg.counter("dme.runs", Determinism::kDeterministic);
  static auto& completed =
      reg.counter("dme.completed", Determinism::kDeterministic);
  static auto& detections =
      reg.counter("dme.detections", Determinism::kDeterministic);
  static auto& common =
      reg.counter("dme.common_mode_faults", Determinism::kDeterministic);
  static auto& divergent =
      reg.counter("dme.divergent_permanents", Determinism::kDeterministic);
  static auto& rollbacks =
      reg.counter("dme.rollbacks", Determinism::kDeterministic);
  static auto& failed_safe =
      reg.counter("dme.failed_safe", Determinism::kDeterministic);
  static auto& silent =
      reg.counter("dme.silent_corruptions", Determinism::kDeterministic);
  runs.add();
  completed.add(rep.completed ? 1 : 0);
  detections.add(rep.detections);
  common.add(common_mode);
  divergent.add(divergent_permanents);
  rollbacks.add(rep.rollbacks);
  failed_safe.add(rep.failed_safe ? 1 : 0);
  silent.add(rep.silent_corruption ? 1 : 0);
}

}  // namespace

DmeEngine::DmeEngine(DmeConfig config, vds::sim::Rng rng)
    : config_(config), rng_(rng) {
  config_.validate();
}

RunReport DmeEngine::run(vds::fault::FaultTimeline& timeline,
                         vds::sim::Trace* /*trace*/) {
  RunReport rep;
  const double d = config_.decorrelation;
  // The round finishes when the slower version finishes, then the two
  // states are compared.
  const double round_time =
      2.0 * config_.t * std::max(config_.alpha1(), config_.alpha2()) +
      config_.t_cmp;
  const double p_common = (1.0 - d) * config_.common_mode;

  double clock = 0.0;
  std::uint64_t base = 0;  // rounds committed at last checkpoint
  std::uint64_t i = 0;     // rounds since checkpoint
  int consecutive_failures = 0;
  bool permanent_divergent = false;
  std::uint64_t common_mode_faults = 0;
  std::uint64_t divergent_permanents = 0;

  while (base + i < config_.job_rounds && clock <= config_.max_time &&
         !rep.failed_safe) {
    const auto faults = timeline.drain_window(clock, clock + round_time);
    clock += round_time;
    bool detected = false;
    bool processor_crash = false;
    for (const Fault& fault : faults) {
      ++rep.faults_seen;
      bool fault_detected = false;
      switch (fault.kind) {
        case FaultKind::kTransient:
          ++rep.transient_faults;
          // A transient landing in state the versions share corrupts
          // both identically and the compare passes — common mode.
          if (rng_.uniform() < p_common) {
            ++common_mode_faults;
            rep.silent_corruption = true;
          } else {
            fault_detected = true;
          }
          break;
        case FaultKind::kCrash:
          ++rep.crash_faults;
          fault_detected = true;
          break;
        case FaultKind::kPermanent:
          ++rep.permanent_faults;
          // Structurally different code exercises a broken unit
          // differently with probability d: the versions then diverge
          // at every compare from here on. Otherwise the defect hits
          // both identically — silent.
          if (rng_.uniform() < d) {
            ++divergent_permanents;
            permanent_divergent = true;
          } else {
            rep.silent_corruption = true;
          }
          break;
        case FaultKind::kProcessorCrash:
          ++rep.processor_crashes;
          processor_crash = true;
          fault_detected = true;
          break;
      }
      if (fault_detected) {
        detected = true;
        rep.detection_latency.add(clock - fault.when);
      }
    }
    ++rep.comparisons;
    // A divergent permanent defect manifests in every compare.
    if (permanent_divergent) detected = true;

    if (detected || processor_crash) {
      ++rep.detections;
      const double recovery_start = clock;
      // Two versions, no majority: rollback is the only recovery.
      clock += config_.checkpoint_read_latency;
      i = 0;
      ++rep.rollbacks;
      rep.recovery_time.add(clock - recovery_start);
      if (++consecutive_failures >= config_.max_consecutive_failures) {
        rep.failed_safe = true;
      }
      continue;
    }

    consecutive_failures = 0;
    ++i;
    if (i >= static_cast<std::uint64_t>(config_.s) ||
        base + i >= config_.job_rounds) {
      clock += config_.checkpoint_write_latency;
      ++rep.checkpoints;
      base += i;
      i = 0;
    }
  }

  rep.total_time = clock;
  rep.rounds_committed = std::min(base + i, config_.job_rounds);
  rep.completed = rep.rounds_committed >= config_.job_rounds;
  fold_dme_metrics(rep, common_mode_faults, divergent_permanents);
  return rep;
}

}  // namespace vds::core
