#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "model/params.hpp"

namespace vds::core {

/// Recovery strategy executed when a state comparison mismatches
/// (paper §2.2 and §3.2/§4).
enum class RecoveryScheme : std::uint8_t {
  kRollback,           ///< both versions restart from the last checkpoint
  kStopAndRetry,       ///< v3 replays the interval, 2-of-3 vote (the
                       ///< conventional-processor scheme, eq (2))
  kRollForwardDet,     ///< SMT: deterministic roll-forward, i/4 from each
                       ///< candidate state (Figure 3)
  kRollForwardProb,    ///< SMT: probabilistic roll-forward, i/2 from one
                       ///< chosen state (Figure 2)
  kRollForwardPredict, ///< SMT §4: predicted fault-free version runs i
                       ///< rounds, no detection during roll-forward
};

/// Every scheme, for exhaustive iteration (tests, sweeps, CLI matrices).
inline constexpr std::array<RecoveryScheme, 5> kAllRecoverySchemes = {
    RecoveryScheme::kRollback,           RecoveryScheme::kStopAndRetry,
    RecoveryScheme::kRollForwardDet,     RecoveryScheme::kRollForwardProb,
    RecoveryScheme::kRollForwardPredict,
};

/// Canonical name ("rollback", "stop_and_retry", "roll_forward_det", ...).
[[nodiscard]] std::string_view to_string(RecoveryScheme scheme) noexcept;

/// Compact CLI-stable alias ("rollback", "retry", "det", "prob",
/// "predict") — the spelling used by every tool flag and JSON field.
[[nodiscard]] std::string_view short_name(RecoveryScheme scheme) noexcept;

/// Parses either the canonical `to_string` name or the `short_name`
/// alias; std::nullopt for anything else. Round-trips exhaustively:
/// `parse_recovery_scheme(to_string(s)) == s` for every scheme.
[[nodiscard]] std::optional<RecoveryScheme> parse_recovery_scheme(
    std::string_view name) noexcept;

/// Configuration of a VDS execution (either engine).
struct VdsOptions {
  // --- timing (same roles as model::Params) ---
  double t = 1.0;      ///< round compute time
  double c = 0.1;      ///< context-switch time (conventional processor)
  double t_cmp = 0.1;  ///< state-comparison time
  double alpha = 0.65; ///< SMT slowdown factor (SMT engine only)
  int s = 20;          ///< checkpoint interval in rounds

  // --- job ---
  std::uint64_t job_rounds = 1000;  ///< useful rounds to complete
  std::uint64_t job_seed = 1;       ///< seeds the initial version state
  std::size_t state_words = 16;     ///< size of a version's state

  // --- recovery ---
  RecoveryScheme scheme = RecoveryScheme::kStopAndRetry;
  /// Consecutive failed recoveries (no majority / repeated rollback)
  /// before the VDS gives up and shuts down fail-safe.
  int max_consecutive_failures = 8;

  // --- checkpointing ---
  double checkpoint_write_latency = 0.0;  ///< stable-storage write time
  double checkpoint_read_latency = 0.0;   ///< restore time

  // --- multithread extension (SMT engine, paper §5 outlook) ---
  /// 2 = the paper's main scheme. 3 enables the probabilistic variant
  /// with detection during roll-forward at full progress; 5 the
  /// deterministic variant at full progress.
  int hardware_threads = 2;
  /// Slowdown factor when k > 2 threads share the core (alpha_k);
  /// each k-thread round costs k * alpha_k * t.
  double alpha3 = 0.55;
  double alpha5 = 0.45;

  // --- adaptive scheme selection (SMT engine) ---
  /// Extension of the paper's §5 "more sophisticated algorithms"
  /// remark: when set, the engine chooses the roll-forward scheme per
  /// recovery from the predictor's measured accuracy -- probabilistic
  /// roll-forward (larger expected progress) once the predictor proves
  /// itself, deterministic roll-forward (guaranteed progress) otherwise.
  bool adaptive_scheme = false;
  /// Measured accuracy needed before the probabilistic scheme is used.
  double adaptive_p_threshold = 0.6;
  /// Detections observed before the accuracy estimate is trusted.
  int adaptive_warmup = 4;

  // --- permanent faults ---
  /// Probability that version diversity exposes a given permanent fault
  /// (i.e. the versions produce *different* wrong results, so the
  /// comparison fires). 1.0 = ideal systematic diversity.
  double permanent_detectable_prob = 1.0;
  /// Probability that a version *other than the victim* also exercises
  /// the broken unit. 0 = diversity perfectly separates hardware usage
  /// (permanent faults are always tolerable via the spare version);
  /// 1 = every version uses the unit (recovery impossible, fail-safe).
  double permanent_affects_others_prob = 0.5;

  /// Upper bound on simulated time (guards runaway fault storms).
  double max_time = 1e12;

  void validate() const;

  /// The analytical-model view of these options (eq (14) closure not
  /// assumed: c and t_cmp are taken as configured).
  [[nodiscard]] model::Params to_model_params(double p = 0.5) const;
};

}  // namespace vds::core
