#include "core/version_set.hpp"

#include <stdexcept>

namespace vds::core {
namespace {

std::uint64_t hash2(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ull + b;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 29;
  return x;
}

}  // namespace

VersionSet::VersionSet(const VdsOptions& options)
    : options_(options),
      golden_(options.job_seed, options.state_words) {
  options_.validate();
}

vds::checkpoint::VersionState VersionSet::initial_state() const {
  return vds::checkpoint::VersionState(options_.job_seed,
                                       options_.state_words);
}

void VersionSet::advance(vds::checkpoint::VersionState& state,
                         std::uint64_t round_index, int version_id) const {
  state.advance_round(round_index);
  if (permanent_ && ((permanent_->affected_mask >> (version_id - 1)) & 1u)) {
    // A defective unit corrupts each round's result of every version
    // that exercises it. Exposed-by-diversity faults hit the versions
    // in version-specific ways (the versions use the hardware
    // differently), so their states diverge and the comparison fires;
    // unexposed faults corrupt the affected versions identically --
    // silently.
    const std::uint64_t salt =
        permanent_->exposed ? static_cast<std::uint64_t>(version_id) : 0ull;
    const std::uint64_t h = hash2(permanent_->location, salt);
    state.flip_bit(static_cast<std::size_t>(h >> 8),
                   static_cast<unsigned>(h & 63u));
  }
}

void VersionSet::set_permanent(std::uint32_t location, bool exposed,
                               std::uint8_t affected_mask) noexcept {
  permanent_ = Permanent{location, exposed, affected_mask};
}

const vds::checkpoint::VersionState& VersionSet::golden_at(
    std::uint64_t round) {
  if (round < golden_round_) {
    throw std::logic_error("VersionSet::golden_at: rounds must not decrease");
  }
  while (golden_round_ < round) {
    ++golden_round_;
    golden_.advance_round(golden_round_);
  }
  return golden_;
}

}  // namespace vds::core
