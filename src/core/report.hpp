#pragma once

#include <cstdint>
#include <string>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace vds::core {

/// Everything a VDS engine measured over one run.
struct RunReport {
  // --- outcome ---
  bool completed = false;          ///< job_rounds committed
  bool failed_safe = false;        ///< gave up after repeated failures
  bool silent_corruption = false;  ///< committed state deviates from the
                                   ///< golden fault-free state (the
                                   ///< dangerous outcome)
  vds::sim::SimTime total_time = 0.0;
  std::uint64_t rounds_committed = 0;

  // --- faults ---
  std::uint64_t faults_seen = 0;
  std::uint64_t transient_faults = 0;
  std::uint64_t crash_faults = 0;
  std::uint64_t permanent_faults = 0;
  std::uint64_t processor_crashes = 0;

  // --- detection/recovery ---
  std::uint64_t detections = 0;
  std::uint64_t recoveries_ok = 0;   ///< majority vote identified the victim
  std::uint64_t rollbacks = 0;       ///< fell back to the checkpoint
  std::uint64_t comparisons = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t roll_forwards_kept = 0;
  std::uint64_t roll_forwards_discarded = 0;
  std::uint64_t roll_forward_rounds_gained = 0;

  // --- prediction (kRollForwardPredict / kRollForwardProb) ---
  std::uint64_t predictions = 0;
  std::uint64_t prediction_hits = 0;

  // --- adaptive scheme selection ---
  std::uint64_t adaptive_det_recoveries = 0;
  std::uint64_t adaptive_prob_recoveries = 0;
  std::uint64_t scheme_switches = 0;

  /// Time from fault injection to its detection (per detected fault).
  vds::sim::Accumulator detection_latency;
  /// Wall duration of each recovery episode.
  vds::sim::Accumulator recovery_time;

  [[nodiscard]] double predictor_accuracy() const noexcept {
    return predictions == 0 ? 0.5
                            : static_cast<double>(prediction_hits) /
                                  static_cast<double>(predictions);
  }

  /// Useful rounds per unit time.
  [[nodiscard]] double throughput() const noexcept {
    return total_time <= 0.0 ? 0.0
                             : static_cast<double>(rounds_committed) /
                                   total_time;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace vds::core
