#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "fault/injector.hpp"
#include "replay/replay_core.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace vds::core {

/// Record/replay detection in the spirit of RepTFD (Li et al., 2012):
/// the primary thread context runs the job at near-full speed while
/// recording each round's inputs and non-deterministic events; the
/// otherwise-idle second SMT context replays completed rounds in
/// windows and compares outcome digests. Detection latency is the
/// replay lag (one recording window plus the compare), and coverage
/// follows from the compare granularity: a mismatch localizes the
/// fault to a window, never to a round.
///
/// Recovery is asymmetric: a mismatch or a single-context crash
/// restores from the replayer's *verified* state (only the unverified
/// replay-lag rounds are lost), while a processor crash loses both
/// contexts and falls back to the last stable-storage checkpoint.
/// Record and replay execute the same code on the same hardware, so a
/// permanent defect corrupts both executions identically and stays
/// silent — the diversity gap this engine trades for its low fault-free
/// overhead.
struct ReplayConfig {
  double t = 1.0;       ///< round of useful work (same unit as VDS)
  double alpha = 0.65;  ///< SMT slowdown with both contexts busy
  /// Fractional slowdown of the primary from writing the record log.
  double record_overhead = 0.05;
  /// Rounds per replay/compare batch; the compare granularity and the
  /// dominant term of the detection latency.
  int window = 4;
  double compare_time = 0.1;  ///< digest comparison at a window boundary
  int s = 20;                 ///< stable-storage checkpoint interval
  std::uint64_t job_rounds = 1000;
  double checkpoint_write_latency = 0.0;
  double checkpoint_read_latency = 0.0;
  /// Consecutive failed windows before fail-safe shutdown.
  int max_consecutive_failures = 8;
  double max_time = 1e12;

  void validate() const;
};

/// Replay-detection reference implementation against the common fault
/// timeline; reuses core::RunReport for comparable accounting.
class ReplayVds final : public Engine {
 public:
  ReplayVds(ReplayConfig config, vds::sim::Rng rng);

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "replay";
  }

  /// `trace` is accepted for Engine uniformity and ignored (windows
  /// are compared below protocol-event granularity).
  RunReport run(vds::fault::FaultTimeline& timeline,
                vds::sim::Trace* trace = nullptr) override;

  [[nodiscard]] const ReplayConfig& config() const noexcept {
    return config_;
  }

 private:
  ReplayConfig config_;
  vds::sim::Rng rng_;
};

}  // namespace vds::core
