#pragma once

#include <cstdint>
#include <optional>

#include "checkpoint/state.hpp"
#include "core/options.hpp"

namespace vds::core {

/// Round-level execution substrate shared by both engines: advances
/// version states deterministically, applies permanent-fault corruption
/// and maintains a fault-free golden reference for end-of-run silent-
/// corruption checks.
///
/// Determinism contract: the fault-free state after N rounds is a pure
/// function of (job_seed, N); any replay (the v3 retry, a roll-forward
/// re-execution, a rollback) that advances through the same round
/// indices reproduces the same state. That is exactly the property the
/// VDS comparison/vote relies on.
class VersionSet {
 public:
  explicit VersionSet(const VdsOptions& options);

  /// The canonical initial state.
  [[nodiscard]] vds::checkpoint::VersionState initial_state() const;

  /// Advances `state` through one round with global index `round_index`
  /// (1-based), as executed by `version_id` (1, 2 or 3). If a permanent
  /// fault is active, the version's result is additionally corrupted --
  /// differently per version when the fault is exposed by diversity,
  /// identically otherwise (the dangerous case).
  void advance(vds::checkpoint::VersionState& state,
               std::uint64_t round_index, int version_id) const;

  /// Activates a permanent hardware fault in unit `location`.
  /// `affected_mask` says which versions actually exercise the broken
  /// unit (bit 0 = version 1, bit 1 = version 2, bit 2 = version 3):
  /// systematic diversity makes the versions use the hardware
  /// differently, so a broken unit typically corrupts only some of
  /// them -- the versions that avoid it can carry the system (§1, [6]).
  /// `exposed` = false models a fault that corrupts the affected
  /// versions *identically* (diversity failed): undetectable.
  void set_permanent(std::uint32_t location, bool exposed,
                     std::uint8_t affected_mask = 0b111) noexcept;
  [[nodiscard]] bool permanent_active() const noexcept {
    return permanent_.has_value();
  }
  [[nodiscard]] bool permanent_exposed() const noexcept {
    return permanent_ && permanent_->exposed;
  }
  [[nodiscard]] bool permanent_affects(int version_id) const noexcept {
    return permanent_ &&
           (permanent_->affected_mask >> (version_id - 1)) & 1u;
  }

  /// Golden fault-free state after `round` rounds. Must be called with
  /// non-decreasing `round` values (states are advanced incrementally).
  [[nodiscard]] const vds::checkpoint::VersionState& golden_at(
      std::uint64_t round);

 private:
  struct Permanent {
    std::uint32_t location = 0;
    bool exposed = true;
    std::uint8_t affected_mask = 0b111;
  };

  VdsOptions options_;
  std::optional<Permanent> permanent_;
  vds::checkpoint::VersionState golden_;
  std::uint64_t golden_round_ = 0;
};

}  // namespace vds::core
