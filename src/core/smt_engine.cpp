#include "core/smt_engine.hpp"

#include "core/platform_cores.hpp"
#include "core/recovery_policy.hpp"

namespace vds::core {

SmtVds::SmtVds(VdsOptions options, vds::sim::Rng rng)
    : options_(options), rng_(rng) {
  options_.validate();
  predictor_ = std::make_unique<vds::fault::RandomPredictor>(
      rng_.split(0x9ed1c7));
}

void SmtVds::set_predictor(
    std::unique_ptr<vds::fault::Predictor> predictor) {
  if (predictor) predictor_ = std::move(predictor);
}

RunReport SmtVds::run(vds::fault::FaultTimeline& timeline,
                      vds::sim::Trace* trace) {
  const auto policy = make_recovery_policy(options_, Platform::kSmt);
  SmtCore core(options_, rng_, *predictor_, timeline, trace, *policy);
  return core.run();
}

}  // namespace vds::core
