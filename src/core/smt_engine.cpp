#include "core/smt_engine.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "checkpoint/store.hpp"
#include "fault/detector.hpp"

namespace vds::core {
namespace {

using vds::checkpoint::VersionState;
using vds::fault::Fault;
using vds::fault::FaultEvidence;
using vds::fault::FaultKind;
using vds::fault::VersionGuess;
using vds::sim::TraceKind;

struct Slot {
  VersionState state;
  int version_id = 0;
  bool crashed = false;
};

/// Procedural interpreter of the SMT-VDS protocol (Figures 1(b), 2, 3).
class Runner {
 public:
  Runner(const VdsOptions& options, vds::sim::Rng& rng,
         vds::fault::Predictor& predictor,
         vds::fault::FaultTimeline& timeline, vds::sim::Trace* trace)
      : opt_(options), rng_(rng), predictor_(predictor),
        timeline_(timeline), trace_(trace), vset_(options),
        store_({options.checkpoint_write_latency,
                options.checkpoint_read_latency},
               /*keep_last=*/2) {
    a_.state = vset_.initial_state();
    b_.state = a_.state;
    a_.version_id = 1;
    b_.version_id = 2;
    store_.save(0, a_.state, 0.0);
  }

  RunReport run() {
    bool aborted = false;
    while (base_ + i_ < opt_.job_rounds) {
      if (clock_ > opt_.max_time || rep_.failed_safe) {
        aborted = true;
        break;
      }
      step_round();
    }
    rep_.total_time = clock_;
    rep_.rounds_committed = std::min(base_ + i_, opt_.job_rounds);
    rep_.completed = !aborted && !rep_.failed_safe &&
                     rep_.rounds_committed >= opt_.job_rounds;
    if (rep_.completed) {
      const auto& golden = vset_.golden_at(rep_.rounds_committed);
      rep_.silent_corruption = a_.state.digest() != golden.digest() ||
                               b_.state.digest() != golden.digest();
      record(TraceKind::kJobDone, "VDS", "");
    }
    return rep_;
  }

 private:
  void record(TraceKind kind, std::string actor, std::string detail) {
    if (trace_ != nullptr) {
      trace_->record(clock_, std::move(actor), kind, std::move(detail));
    }
  }

  // --- fault plumbing --------------------------------------------------

  /// Applies faults drained over a *normal round* window, where both
  /// duplex versions occupy the processor simultaneously: the fault's
  /// victim attribute decides which hardware thread it strikes.
  void apply_normal(const Fault& fault) {
    ++rep_.faults_seen;
    record(TraceKind::kFaultInjected, "fault", fault.describe());
    switch (fault.kind) {
      case FaultKind::kTransient: {
        ++rep_.transient_faults;
        Slot& victim = resolve_victim(fault);
        victim.state.flip_bit(fault.word, fault.bit);
        note_pending(fault, &victim == &a_ ? 0 : 1);
        return;
      }
      case FaultKind::kCrash: {
        ++rep_.crash_faults;
        Slot& victim = resolve_victim(fault);
        victim.crashed = true;
        note_pending(fault, &victim == &a_ ? 0 : 1);
        return;
      }
      case FaultKind::kPermanent: {
        activate_permanent(fault, resolve_victim(fault).version_id);
        return;
      }
      case FaultKind::kProcessorCrash: {
        ++rep_.processor_crashes;
        processor_crash_ = true;
        return;
      }
    }
  }

  Slot& resolve_victim(const Fault& fault) {
    switch (fault.victim) {
      case vds::fault::Victim::kVersion1: return a_;
      case vds::fault::Victim::kVersion2: return b_;
      case vds::fault::Victim::kAnyActive:
        return rng_.bernoulli(0.5) ? a_ : b_;
    }
    return a_;
  }

  void activate_permanent(const Fault& fault, int victim_version) {
    ++rep_.permanent_faults;
    const bool exposed = rng_.bernoulli(opt_.permanent_detectable_prob);
    std::uint8_t mask = 0;
    for (int version = 1; version <= 3; ++version) {
      const bool affected =
          version == victim_version ||
          rng_.bernoulli(opt_.permanent_affects_others_prob);
      if (affected) mask |= static_cast<std::uint8_t>(1u << (version - 1));
    }
    vset_.set_permanent(fault.location, exposed, mask);
    if (exposed && ((mask >> (a_.version_id - 1)) & 1u ||
                    (mask >> (b_.version_id - 1)) & 1u)) {
      note_pending(fault, -1);
    }
  }

  void note_pending(const Fault& fault, int slot_hit) {
    if (pending_since_ < 0.0) {
      pending_since_ = fault.when;
      pending_location_ = fault.location;
      pending_slot_ = slot_hit;
      pending_crash_ = fault.kind == FaultKind::kCrash;
      pending_word_ = fault.word;
      pending_bit_ = fault.bit;
    }
  }

  /// Applies a transient flip while enforcing the paper's fault-model
  /// assumption (§2.1) that no fault corrupts two versions in the same
  /// way: a recovery-window fault whose flip would coincide with the
  /// pending fault's flip (same state word and bit) is nudged to the
  /// neighbouring bit. Without this, coinciding flips make a corrupted
  /// retry state *equal* a corrupted version state and invert the vote.
  void flip_distinct(VersionState& state, std::uint32_t word,
                     std::uint8_t bit) const {
    const std::size_t words = opt_.state_words;
    if (pending_since_ >= 0.0 &&
        word % words == pending_word_ % words &&
        bit % 64 == pending_bit_ % 64) {
      bit = static_cast<std::uint8_t>((bit + 1) % 64);
    }
    state.flip_bit(word, bit);
  }

  void clear_pending() {
    pending_since_ = -1.0;
    pending_slot_ = -1;
    pending_crash_ = false;
  }

  // --- protocol --------------------------------------------------------

  void step_round() {
    const std::uint64_t round = base_ + i_ + 1;
    const double round_time = 2.0 * opt_.alpha * opt_.t;

    // Both versions compute their round in parallel hardware threads.
    record(TraceKind::kRoundStart, "HT",
           "round " + std::to_string(round) + " V" +
               std::to_string(a_.version_id) + "||V" +
               std::to_string(b_.version_id));
    vset_.advance(a_.state, round, a_.version_id);
    vset_.advance(b_.state, round, b_.version_id);
    for (const Fault& fault : timeline_.drain_window(
             clock_, clock_ + round_time)) {
      apply_normal(fault);
    }
    clock_ += round_time;
    record(TraceKind::kRoundEnd, "HT", "");
    if (handle_processor_crash()) return;

    // State comparison.
    for (const Fault& fault :
         timeline_.drain_window(clock_, clock_ + opt_.t_cmp)) {
      apply_normal(fault);
    }
    clock_ += opt_.t_cmp;
    ++rep_.comparisons;
    if (handle_processor_crash()) return;

    const bool mismatch =
        a_.crashed || b_.crashed ||
        vds::fault::compare_states(a_.state, b_.state) ==
            vds::fault::CompareOutcome::kMismatch;
    record(mismatch ? TraceKind::kCompareMismatch : TraceKind::kCompare,
           "VDS", "round " + std::to_string(round));

    if (!mismatch) {
      ++i_;
      clear_pending();
      maybe_checkpoint();
      return;
    }

    ++rep_.detections;
    record(TraceKind::kFaultDetected, "VDS",
           "at round " + std::to_string(i_ + 1));
    if (pending_since_ >= 0.0) {
      rep_.detection_latency.add(clock_ - pending_since_);
    }
    const double recovery_start = clock_;
    if (opt_.scheme == RecoveryScheme::kRollback) {
      rollback();
    } else {
      recover();
    }
    rep_.recovery_time.add(clock_ - recovery_start);
  }

  void maybe_checkpoint() {
    if (i_ < static_cast<std::uint64_t>(opt_.s) &&
        base_ + i_ < opt_.job_rounds) {
      return;
    }
    for (const Fault& fault : timeline_.drain_window(
             clock_, clock_ + opt_.checkpoint_write_latency)) {
      apply_normal(fault);
    }
    clock_ += store_.save(base_ + i_, a_.state, clock_);
    ++rep_.checkpoints;
    record(TraceKind::kCheckpoint, "VDS",
           "round " + std::to_string(base_ + i_));
    base_ += i_;
    i_ = 0;
    consecutive_failures_ = 0;
  }

  /// Intended roll-forward length for the active scheme at detection
  /// round ic, before the checkpoint-interval cap.
  [[nodiscard]] std::uint64_t intended_roll_forward(
      RecoveryScheme scheme, std::uint64_t ic) const noexcept {
    switch (scheme) {
      case RecoveryScheme::kRollForwardDet:
        return opt_.hardware_threads >= 5 ? ic : ic / 4;
      case RecoveryScheme::kRollForwardProb:
        return opt_.hardware_threads >= 3 ? ic : ic / 2;
      case RecoveryScheme::kRollForwardPredict:
        return ic;
      default:
        return 0;
    }
  }

  /// Duration of the retry/roll-forward window. With k = 2 hardware
  /// threads this is eq (5)'s 2*i*alpha*t; the Section-5 variants keep
  /// k threads busy at the k-thread slowdown factor.
  [[nodiscard]] double recovery_window(RecoveryScheme scheme,
                                       std::uint64_t ic) const noexcept {
    if (scheme == RecoveryScheme::kStopAndRetry) {
      // Thread 2 idles; a single active thread runs at conventional
      // speed (paper footnote 1).
      return static_cast<double>(ic) * opt_.t;
    }
    int k = 2;
    double alpha_k = opt_.alpha;
    if (scheme == RecoveryScheme::kRollForwardProb &&
        opt_.hardware_threads >= 3) {
      k = 3;
      alpha_k = opt_.alpha3;
    } else if (scheme == RecoveryScheme::kRollForwardDet &&
               opt_.hardware_threads >= 5) {
      k = 5;
      alpha_k = opt_.alpha5;
    }
    return static_cast<double>(k) * static_cast<double>(ic) * alpha_k *
           opt_.t;
  }

  /// Unified SMT recovery: v3 retry in thread 1 + scheme-dependent
  /// roll-forward in thread 2 (Figures 2 and 3).
  void recover() {
    const std::uint64_t ic = i_ + 1;

    // Adaptive scheme selection (our extension of the paper's Section-5
    // outlook): trust the predictor's measured accuracy to decide
    // between guaranteed (deterministic) and larger-expected
    // (probabilistic) roll-forward.
    RecoveryScheme scheme = opt_.scheme;
    if (opt_.adaptive_scheme) {
      const bool trusted =
          rep_.predictions >=
          static_cast<std::uint64_t>(opt_.adaptive_warmup);
      const RecoveryScheme chosen =
          trusted && rep_.predictor_accuracy() >= opt_.adaptive_p_threshold
              ? RecoveryScheme::kRollForwardProb
              : RecoveryScheme::kRollForwardDet;
      if (last_adaptive_choice_ != chosen) {
        if (rep_.adaptive_det_recoveries + rep_.adaptive_prob_recoveries >
            0) {
          ++rep_.scheme_switches;
        }
        last_adaptive_choice_ = chosen;
      }
      scheme = chosen;
      if (chosen == RecoveryScheme::kRollForwardProb) {
        ++rep_.adaptive_prob_recoveries;
      } else {
        ++rep_.adaptive_det_recoveries;
      }
    }

    const std::uint64_t cap =
        static_cast<std::uint64_t>(opt_.s) >= ic
            ? static_cast<std::uint64_t>(opt_.s) - ic
            : 0;
    const std::uint64_t rf =
        std::min(intended_roll_forward(scheme, ic), cap);
    const bool scheme_prob = scheme == RecoveryScheme::kRollForwardProb;
    const bool scheme_det = scheme == RecoveryScheme::kRollForwardDet;
    const bool scheme_predict =
        scheme == RecoveryScheme::kRollForwardPredict;
    // In adaptive-deterministic recoveries the predictor is still
    // consulted (and fed back) so its accuracy estimate keeps learning.
    const bool consult_predictor =
        scheme_prob || scheme_predict || opt_.adaptive_scheme;

    // --- prediction (who is faulty?) -----------------------------------
    int guessed_faulty_slot = -1;  // 0 = slot A, 1 = slot B
    if (consult_predictor) {
      FaultEvidence evidence;
      evidence.round = base_ + ic;
      evidence.location = pending_location_;
      evidence.digest_v1 = a_.state.digest();
      evidence.digest_v2 = b_.state.digest();
      if (a_.crashed) evidence.crashed = VersionGuess::kVersion1;
      if (b_.crashed) evidence.crashed = VersionGuess::kVersion2;
      // An oracle predictor is told the ground truth out-of-band.
      if (auto* oracle =
              dynamic_cast<vds::fault::OraclePredictor*>(&predictor_)) {
        oracle->plant_truth(pending_slot_ == 1 ? VersionGuess::kVersion2
                                               : VersionGuess::kVersion1);
      }
      const VersionGuess guess = predictor_.predict(evidence);
      guessed_faulty_slot = guess == VersionGuess::kVersion1 ? 0 : 1;
      evidence_ = evidence;
      record(TraceKind::kPrediction, "VDS",
             std::string("guess faulty = slot ") +
                 (guessed_faulty_slot == 0 ? "A" : "B"));
    }

    // --- load checkpoint ------------------------------------------------
    for (const Fault& fault : timeline_.drain_window(
             clock_, clock_ + opt_.checkpoint_read_latency)) {
      apply_normal(fault);
    }
    clock_ += opt_.checkpoint_read_latency;
    record(TraceKind::kRetryStart, "T1",
           "V" + std::to_string(spare_id_) + " replays " +
               std::to_string(ic) + " rounds");
    if (rf > 0) {
      record(TraceKind::kRollForwardStart, "T2",
             std::string(to_string(scheme)) + " rf=" +
                 std::to_string(rf));
    }

    // --- drain the whole recovery window and bucket the faults ---------
    const double window = recovery_window(scheme, ic);
    std::vector<Fault> window_faults =
        timeline_.drain_window(clock_, clock_ + window);
    clock_ += window;

    bool retry_hit = false;
    bool retry_crashed = false;
    std::uint32_t retry_word = 0;
    std::uint8_t retry_bit = 0;
    // Roll-forward corruption per segment (probabilistic/predict use
    // segment 0/1; deterministic uses 0..3).
    bool segment_hit[4] = {false, false, false, false};
    std::uint32_t flip_word[4] = {0, 0, 0, 0};
    std::uint8_t flip_bit[4] = {0, 0, 0, 0};

    for (const Fault& fault : window_faults) {
      ++rep_.faults_seen;
      record(TraceKind::kFaultInjected, "fault", fault.describe());
      switch (fault.kind) {
        case FaultKind::kTransient:
        case FaultKind::kCrash: {
          if (fault.kind == FaultKind::kTransient) {
            ++rep_.transient_faults;
          } else {
            ++rep_.crash_faults;
          }
          // Thread 1 (the retry) and thread 2 (roll-forward) are both
          // occupied; the victim thread is effectively random.
          if (rng_.bernoulli(0.5) || rf == 0) {
            retry_hit = true;
            retry_word = fault.word;
            retry_bit = fault.bit;
            if (fault.kind == FaultKind::kCrash) retry_crashed = true;
          } else {
            const auto seg = static_cast<std::size_t>(
                rng_.uniform_index(scheme_det ? 4 : (scheme_prob ? 2 : 1)));
            segment_hit[seg] = true;
            flip_word[seg] = fault.word;
            flip_bit[seg] = fault.bit;
          }
          break;
        }
        case FaultKind::kPermanent:
          activate_permanent(fault, spare_id_);
          break;
        case FaultKind::kProcessorCrash:
          ++rep_.processor_crashes;
          processor_crash_ = true;
          break;
      }
      if (processor_crash_) break;
    }
    if (handle_processor_crash()) return;

    // --- thread 1: version 3 replays the interval -----------------------
    VersionState retry = store_.latest()->state;
    for (std::uint64_t r = 1; r <= ic; ++r) {
      vset_.advance(retry, base_ + r, spare_id_);
    }
    if (retry_hit && !retry_crashed) {
      flip_distinct(retry, retry_word, retry_bit);
    }
    record(TraceKind::kRetryEnd, "T1", "");

    // --- thread 2: roll-forward ----------------------------------------
    // Candidate states at round ic: P = slot A, Q = slot B.
    VersionState roll_a;  // "T": advanced by version in slot A
    VersionState roll_b;  // "U": advanced by version in slot B
    VersionState roll_qa;
    VersionState roll_qb;
    int chosen_source_slot = -1;  // probabilistic/predict: P(0) or Q(1)

    if (rf > 0 && (scheme_prob || scheme_predict)) {
      // Start from the state of the *predicted fault-free* version.
      chosen_source_slot = guessed_faulty_slot == 0 ? 1 : 0;
      const VersionState& source =
          chosen_source_slot == 0 ? a_.state : b_.state;
      roll_a = source;
      roll_b = source;
      for (std::uint64_t r = 1; r <= rf; ++r) {
        vset_.advance(roll_a, base_ + ic + r, a_.version_id);
        if (scheme_prob) {
          vset_.advance(roll_b, base_ + ic + r, b_.version_id);
        }
      }
      if (segment_hit[0]) flip_distinct(roll_a, flip_word[0], flip_bit[0]);
      if (scheme_prob && segment_hit[1]) {
        flip_distinct(roll_b, flip_word[1], flip_bit[1]);
      }
    } else if (rf > 0 && scheme_det) {
      roll_a = a_.state;   // from P, advanced by version A
      roll_b = a_.state;   // from P, advanced by version B
      roll_qa = b_.state;  // from Q, advanced by version A
      roll_qb = b_.state;  // from Q, advanced by version B
      for (std::uint64_t r = 1; r <= rf; ++r) {
        vset_.advance(roll_a, base_ + ic + r, a_.version_id);
        vset_.advance(roll_b, base_ + ic + r, b_.version_id);
        vset_.advance(roll_qa, base_ + ic + r, a_.version_id);
        vset_.advance(roll_qb, base_ + ic + r, b_.version_id);
      }
      if (segment_hit[0]) flip_distinct(roll_a, flip_word[0], flip_bit[0]);
      if (segment_hit[1]) flip_distinct(roll_b, flip_word[1], flip_bit[1]);
      if (segment_hit[2]) flip_distinct(roll_qa, flip_word[2], flip_bit[2]);
      if (segment_hit[3]) flip_distinct(roll_qb, flip_word[3], flip_bit[3]);
    }

    // --- majority vote ---------------------------------------------------
    for (const Fault& fault : timeline_.drain_window(
             clock_, clock_ + 2.0 * opt_.t_cmp)) {
      apply_normal(fault);
    }
    clock_ += 2.0 * opt_.t_cmp;
    rep_.comparisons += 2;
    if (handle_processor_crash()) return;

    const bool s_matches_a = !retry_crashed && !a_.crashed &&
                             retry.digest() == a_.state.digest();
    const bool s_matches_b = !retry_crashed && !b_.crashed &&
                             retry.digest() == b_.state.digest();

    if (s_matches_a == s_matches_b) {
      record(TraceKind::kMajorityVote, "VDS", "no majority");
      if (scheme_prob || scheme_predict) {
        // The vote failed; the predictor gets no usable feedback.
      }
      rollback();
      return;
    }

    const int faulty_slot = s_matches_a ? 1 : 0;
    Slot& faulty = faulty_slot == 0 ? a_ : b_;
    record(TraceKind::kMajorityVote, "VDS",
           "V" + std::to_string(faulty.version_id) + " faulty");

    // Predictor bookkeeping.
    if (consult_predictor) {
      ++rep_.predictions;
      const bool hit = guessed_faulty_slot == faulty_slot;
      if (hit) ++rep_.prediction_hits;
      predictor_.feedback(evidence_, faulty_slot == 0
                                         ? VersionGuess::kVersion1
                                         : VersionGuess::kVersion2);
    }

    // Version 3 replaces the faulty version.
    faulty.state = retry;
    faulty.crashed = false;
    std::swap(faulty.version_id, spare_id_);
    record(TraceKind::kStateCopy, "VDS",
           "V" + std::to_string(faulty.version_id) + " joins duplex");

    // --- apply the roll-forward if it survived ---------------------------
    std::uint64_t progress = 0;
    if (rf > 0) {
      if (scheme_prob) {
        const bool chose_good = chosen_source_slot != faulty_slot;
        const bool clean = roll_a.digest() == roll_b.digest();
        if (chose_good && clean) {
          a_.state = roll_a;
          b_.state = roll_a;
          progress = rf;
        }
      } else if (scheme_det) {
        const VersionState& t_state = faulty_slot == 0 ? roll_qa : roll_a;
        const VersionState& u_state = faulty_slot == 0 ? roll_qb : roll_b;
        if (t_state.digest() == u_state.digest()) {
          a_.state = t_state;
          b_.state = t_state;
          progress = rf;
        }
      } else if (scheme_predict) {
        const bool chose_good = chosen_source_slot != faulty_slot;
        if (chose_good) {
          // No comparison protects this path: a fault that struck the
          // roll-forward is committed silently (the §4 hazard).
          a_.state = roll_a;
          b_.state = roll_a;
          progress = rf;
        }
      }
    }

    if (progress > 0) {
      ++rep_.roll_forwards_kept;
      rep_.roll_forward_rounds_gained += progress;
      record(TraceKind::kRollForwardEnd, "T2",
             "kept " + std::to_string(progress) + " rounds");
    } else if (rf > 0) {
      ++rep_.roll_forwards_discarded;
      record(TraceKind::kRollForwardDiscarded, "T2", "");
    }

    i_ = ic + progress;
    consecutive_failures_ = 0;
    ++rep_.recoveries_ok;
    clear_pending();
    maybe_checkpoint();
  }

  void rollback() {
    for (const Fault& fault : timeline_.drain_window(
             clock_, clock_ + opt_.checkpoint_read_latency)) {
      apply_normal(fault);
    }
    clock_ += opt_.checkpoint_read_latency;
    const auto checkpoint = store_.latest();
    a_.state = checkpoint->state;
    b_.state = checkpoint->state;
    a_.crashed = b_.crashed = false;
    i_ = 0;
    ++rep_.rollbacks;
    ++consecutive_failures_;
    clear_pending();
    record(TraceKind::kRollback, "VDS",
           "to round " + std::to_string(base_));
    if (consecutive_failures_ >= opt_.max_consecutive_failures) {
      rep_.failed_safe = true;
      record(TraceKind::kFailSafeShutdown, "VDS",
             "after " + std::to_string(consecutive_failures_) +
                 " consecutive failures");
    }
  }

  [[nodiscard]] bool handle_processor_crash() {
    if (!processor_crash_) return false;
    processor_crash_ = false;
    record(TraceKind::kInfo, "VDS", "processor crash: rollback");
    rollback();
    return true;
  }

  // --- members ---------------------------------------------------------
  const VdsOptions& opt_;
  vds::sim::Rng& rng_;
  vds::fault::Predictor& predictor_;
  vds::fault::FaultTimeline& timeline_;
  vds::sim::Trace* trace_;
  VersionSet vset_;
  vds::checkpoint::CheckpointStore store_;
  RunReport rep_;

  Slot a_;
  Slot b_;
  int spare_id_ = 3;

  std::uint64_t base_ = 0;
  std::uint64_t i_ = 0;
  double clock_ = 0.0;
  int consecutive_failures_ = 0;
  bool processor_crash_ = false;

  double pending_since_ = -1.0;
  std::uint32_t pending_location_ = 0;
  int pending_slot_ = -1;
  bool pending_crash_ = false;
  std::uint32_t pending_word_ = 0;
  std::uint8_t pending_bit_ = 0;
  FaultEvidence evidence_;
  RecoveryScheme last_adaptive_choice_ = RecoveryScheme::kRollForwardDet;
};

}  // namespace

SmtVds::SmtVds(VdsOptions options, vds::sim::Rng rng)
    : options_(options), rng_(rng) {
  options_.validate();
  predictor_ = std::make_unique<vds::fault::RandomPredictor>(
      rng_.split(0x9ed1c7));
}

void SmtVds::set_predictor(
    std::unique_ptr<vds::fault::Predictor> predictor) {
  if (predictor) predictor_ = std::move(predictor);
}

RunReport SmtVds::run(vds::fault::FaultTimeline& timeline,
                      vds::sim::Trace* trace) {
  Runner runner(options_, rng_, *predictor_, timeline, trace);
  return runner.run();
}

}  // namespace vds::core
