#pragma once

#include "core/engine.hpp"
#include "core/options.hpp"
#include "core/report.hpp"
#include "core/version_set.hpp"
#include "checkpoint/store.hpp"
#include "fault/injector.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace vds::core {

/// VDS on a conventional (single-context) processor, paper §3.1 /
/// Figure 1(a): versions 1 and 2 alternate in rounds separated by
/// context switches; states are compared after each round pair;
/// checkpoints are taken every s rounds; a mismatch at round i triggers
/// stop-and-retry -- version 3 replays the i rounds from the checkpoint
/// and a 2-out-of-3 vote identifies the faulty version (eq (2)).
///
/// This engine is the paper's own baseline; the SMT engine (SmtVds) is
/// compared against it.
class ConventionalVds final : public Engine {
 public:
  explicit ConventionalVds(VdsOptions options, vds::sim::Rng rng);

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "conv";
  }

  /// Executes the job against a fault timeline. `trace` may be null.
  RunReport run(vds::fault::FaultTimeline& timeline,
                vds::sim::Trace* trace = nullptr) override;

  [[nodiscard]] const VdsOptions& options() const noexcept {
    return options_;
  }

 private:
  VdsOptions options_;
  vds::sim::Rng rng_;
};

}  // namespace vds::core
