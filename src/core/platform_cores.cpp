#include "core/platform_cores.hpp"

#include <string>

namespace vds::core {

using vds::checkpoint::VersionState;
using vds::fault::Fault;
using vds::fault::FaultKind;
using vds::sim::TraceKind;

// --- conventional processor --------------------------------------------

void ConventionalCore::apply_fault(const Fault& fault, EngineSlot* occupant,
                                   VersionState* retry_state,
                                   bool* retry_crashed) {
  ++rep_.faults_seen;
  record(TraceKind::kFaultInjected, "fault", fault.describe());
  switch (fault.kind) {
    case FaultKind::kTransient: {
      ++rep_.transient_faults;
      if (retry_state != nullptr) {
        flip_distinct(*retry_state, fault.word, fault.bit);
        note_pending(fault, /*slot_hit=*/-1);
        return;
      }
      EngineSlot& victim = occupant != nullptr
                               ? *occupant
                               : (rng_.bernoulli(0.5) ? a_ : b_);
      victim.state.flip_bit(fault.word, fault.bit);
      note_pending(fault, &victim == &a_ ? 0 : 1);
      return;
    }
    case FaultKind::kCrash: {
      ++rep_.crash_faults;
      if (retry_crashed != nullptr) {
        *retry_crashed = true;
        note_pending(fault, -1);
        return;
      }
      EngineSlot& victim = occupant != nullptr
                               ? *occupant
                               : (rng_.bernoulli(0.5) ? a_ : b_);
      victim.crashed = true;
      note_pending(fault, &victim == &a_ ? 0 : 1);
      pending_crash_ = true;
      return;
    }
    case FaultKind::kPermanent: {
      ++rep_.permanent_faults;
      const bool exposed =
          rng_.bernoulli(opt_.permanent_detectable_prob);
      // The version computing now certainly exercises the broken
      // unit; the others may or may not, depending on diversity.
      const int victim_version =
          occupant != nullptr ? occupant->version_id
          : retry_state != nullptr
              ? spare_id_
              : (rng_.bernoulli(0.5) ? a_.version_id : b_.version_id);
      std::uint8_t mask = 0;
      for (int version = 1; version <= 3; ++version) {
        const bool affected =
            version == victim_version ||
            rng_.bernoulli(opt_.permanent_affects_others_prob);
        if (affected) {
          mask |= static_cast<std::uint8_t>(1u << (version - 1));
        }
      }
      vset_.set_permanent(fault.location, exposed, mask);
      if (exposed && ((mask >> (a_.version_id - 1)) & 1u ||
                      (mask >> (b_.version_id - 1)) & 1u)) {
        note_pending(fault, -1);
      }
      return;
    }
    case FaultKind::kProcessorCrash: {
      ++rep_.processor_crashes;
      processor_crash_ = true;
      return;
    }
  }
}

void ConventionalCore::drain(double from, double to, EngineSlot* occupant,
                             VersionState* retry_state,
                             bool* retry_crashed) {
  for (const Fault& fault : timeline_.drain_window(from, to)) {
    apply_fault(fault, occupant, retry_state, retry_crashed);
  }
}

void ConventionalCore::step_round() {
  const std::uint64_t round = base_ + i_ + 1;

  // Version in slot A computes its round.
  record(TraceKind::kRoundStart, "V" + std::to_string(a_.version_id),
         "round " + std::to_string(round));
  vset_.advance(a_.state, round, a_.version_id);
  drain(clock_, clock_ + opt_.t, &a_);
  clock_ += opt_.t;
  record(TraceKind::kRoundEnd, "V" + std::to_string(a_.version_id), "");
  if (handle_processor_crash()) return;

  // Context switch.
  record(TraceKind::kContextSwitch, "os", "");
  drain(clock_, clock_ + opt_.c, nullptr);
  clock_ += opt_.c;
  if (handle_processor_crash()) return;

  // Version in slot B computes its round.
  record(TraceKind::kRoundStart, "V" + std::to_string(b_.version_id),
         "round " + std::to_string(round));
  vset_.advance(b_.state, round, b_.version_id);
  drain(clock_, clock_ + opt_.t, &b_);
  clock_ += opt_.t;
  record(TraceKind::kRoundEnd, "V" + std::to_string(b_.version_id), "");
  if (handle_processor_crash()) return;

  record(TraceKind::kContextSwitch, "os", "");
  drain(clock_, clock_ + opt_.c, nullptr);
  clock_ += opt_.c;
  if (handle_processor_crash()) return;

  // State comparison + mismatch handling (shared protocol tail).
  compare_and_dispatch(round);
}

// --- SMT processor -----------------------------------------------------

void SmtCore::apply_normal(const Fault& fault) {
  ++rep_.faults_seen;
  record(TraceKind::kFaultInjected, "fault", fault.describe());
  switch (fault.kind) {
    case FaultKind::kTransient: {
      ++rep_.transient_faults;
      EngineSlot& victim = resolve_victim(fault);
      victim.state.flip_bit(fault.word, fault.bit);
      note_pending(fault, &victim == &a_ ? 0 : 1);
      return;
    }
    case FaultKind::kCrash: {
      ++rep_.crash_faults;
      EngineSlot& victim = resolve_victim(fault);
      victim.crashed = true;
      note_pending(fault, &victim == &a_ ? 0 : 1);
      return;
    }
    case FaultKind::kPermanent: {
      activate_permanent(fault, resolve_victim(fault).version_id);
      return;
    }
    case FaultKind::kProcessorCrash: {
      ++rep_.processor_crashes;
      processor_crash_ = true;
      return;
    }
  }
}

EngineSlot& SmtCore::resolve_victim(const Fault& fault) {
  switch (fault.victim) {
    case vds::fault::Victim::kVersion1: return a_;
    case vds::fault::Victim::kVersion2: return b_;
    case vds::fault::Victim::kAnyActive:
      return rng_.bernoulli(0.5) ? a_ : b_;
  }
  return a_;
}

void SmtCore::activate_permanent(const Fault& fault, int victim_version) {
  ++rep_.permanent_faults;
  const bool exposed = rng_.bernoulli(opt_.permanent_detectable_prob);
  std::uint8_t mask = 0;
  for (int version = 1; version <= 3; ++version) {
    const bool affected =
        version == victim_version ||
        rng_.bernoulli(opt_.permanent_affects_others_prob);
    if (affected) mask |= static_cast<std::uint8_t>(1u << (version - 1));
  }
  vset_.set_permanent(fault.location, exposed, mask);
  if (exposed && ((mask >> (a_.version_id - 1)) & 1u ||
                  (mask >> (b_.version_id - 1)) & 1u)) {
    note_pending(fault, -1);
  }
}

void SmtCore::step_round() {
  const std::uint64_t round = base_ + i_ + 1;
  const double round_time = 2.0 * opt_.alpha * opt_.t;

  // Both versions compute their round in parallel hardware threads.
  record(TraceKind::kRoundStart, "HT",
         "round " + std::to_string(round) + " V" +
             std::to_string(a_.version_id) + "||V" +
             std::to_string(b_.version_id));
  vset_.advance(a_.state, round, a_.version_id);
  vset_.advance(b_.state, round, b_.version_id);
  drain_background(clock_, clock_ + round_time);
  clock_ += round_time;
  record(TraceKind::kRoundEnd, "HT", "");
  if (handle_processor_crash()) return;

  // State comparison + mismatch handling (shared protocol tail).
  compare_and_dispatch(round);
}

}  // namespace vds::core
