#include "core/protocol_core.hpp"

#include <algorithm>
#include <utility>

#include "fault/detector.hpp"
#include "runtime/metrics.hpp"

namespace vds::core {

namespace {

namespace metrics = vds::runtime::metrics;

// The engine's observable counterparts of the paper's equations. All
// protocol event counts are pure functions of (options, seed,
// timeline) — never of scheduling — so each one folds into a
// deterministic global counter once, when the run finishes.
void fold_into_metrics(const RunReport& rep) {
  using metrics::Determinism;
  struct EngineCounters {
    metrics::Counter& runs;
    metrics::Counter& completed;
    metrics::Counter& failed_safe;
    metrics::Counter& silent_corruptions;
    metrics::Counter& rounds_committed;
    metrics::Counter& comparisons;
    metrics::Counter& checkpoints;
    metrics::Counter& detections;
    metrics::Counter& rollbacks;
    metrics::Counter& recoveries_ok;
    metrics::Counter& roll_forwards_kept;
    metrics::Counter& roll_forwards_discarded;
    metrics::Counter& roll_forward_rounds_gained;
    metrics::Counter& faults_seen;
    metrics::Counter& predictions;
    metrics::Counter& prediction_hits;
  };
  auto& reg = metrics::registry();
  static EngineCounters c{
      reg.counter("engine.runs", Determinism::kDeterministic),
      reg.counter("engine.completed", Determinism::kDeterministic),
      reg.counter("engine.failed_safe", Determinism::kDeterministic),
      reg.counter("engine.silent_corruptions", Determinism::kDeterministic),
      reg.counter("engine.rounds_committed", Determinism::kDeterministic),
      reg.counter("engine.comparisons", Determinism::kDeterministic),
      reg.counter("engine.checkpoints", Determinism::kDeterministic),
      reg.counter("engine.detections", Determinism::kDeterministic),
      reg.counter("engine.rollbacks", Determinism::kDeterministic),
      reg.counter("engine.recoveries_ok", Determinism::kDeterministic),
      reg.counter("engine.roll_forwards_kept", Determinism::kDeterministic),
      reg.counter("engine.roll_forwards_discarded",
                  Determinism::kDeterministic),
      reg.counter("engine.roll_forward_rounds_gained",
                  Determinism::kDeterministic),
      reg.counter("engine.faults_seen", Determinism::kDeterministic),
      reg.counter("engine.predictions", Determinism::kDeterministic),
      reg.counter("engine.prediction_hits", Determinism::kDeterministic),
  };
  c.runs.add();
  c.completed.add(rep.completed ? 1 : 0);
  c.failed_safe.add(rep.failed_safe ? 1 : 0);
  c.silent_corruptions.add(rep.silent_corruption ? 1 : 0);
  c.rounds_committed.add(rep.rounds_committed);
  c.comparisons.add(rep.comparisons);
  c.checkpoints.add(rep.checkpoints);
  c.detections.add(rep.detections);
  c.rollbacks.add(rep.rollbacks);
  c.recoveries_ok.add(rep.recoveries_ok);
  c.roll_forwards_kept.add(rep.roll_forwards_kept);
  c.roll_forwards_discarded.add(rep.roll_forwards_discarded);
  c.roll_forward_rounds_gained.add(rep.roll_forward_rounds_gained);
  c.faults_seen.add(rep.faults_seen);
  c.predictions.add(rep.predictions);
  c.prediction_hits.add(rep.prediction_hits);
}

}  // namespace

using vds::checkpoint::VersionState;
using vds::fault::Fault;
using vds::sim::TraceKind;

ProtocolCore::ProtocolCore(const VdsOptions& options, vds::sim::Rng& rng,
                           vds::fault::FaultTimeline& timeline,
                           vds::sim::Trace* trace, RecoveryPolicy& policy)
    : opt_(options), rng_(rng), timeline_(timeline), trace_(trace),
      vset_(options),
      store_({options.checkpoint_write_latency,
              options.checkpoint_read_latency},
             /*keep_last=*/2),
      policy_(policy) {
  a_.state = vset_.initial_state();
  b_.state = a_.state;
  a_.version_id = 1;
  b_.version_id = 2;
  store_.save(0, a_.state, 0.0);  // initial checkpoint (setup, free)
}

RunReport ProtocolCore::run() {
  const metrics::Span run_span("engine.run", "engine");
  bool aborted = false;
  while (base_ + i_ < opt_.job_rounds) {
    if (clock_ > opt_.max_time || rep_.failed_safe) {
      aborted = true;
      break;
    }
    step_round();
  }
  rep_.total_time = clock_;
  rep_.rounds_committed = std::min(base_ + i_, opt_.job_rounds);
  rep_.completed = !aborted && !rep_.failed_safe &&
                   rep_.rounds_committed >= opt_.job_rounds;
  if (rep_.completed) {
    const auto& golden = vset_.golden_at(rep_.rounds_committed);
    rep_.silent_corruption = a_.state.digest() != golden.digest() ||
                             b_.state.digest() != golden.digest();
    record(TraceKind::kJobDone, "VDS", "");
  }
  fold_into_metrics(rep_);
  return rep_;
}

void ProtocolCore::record(TraceKind kind, std::string actor,
                          std::string detail) {
  if (trace_ != nullptr) {
    trace_->record(clock_, std::move(actor), kind, std::move(detail));
  }
}

void ProtocolCore::drain_background(double from, double to) {
  for (const Fault& fault : timeline_.drain_window(from, to)) {
    apply_background_fault(fault);
  }
}

void ProtocolCore::note_pending(const Fault& fault, int slot_hit) {
  if (pending_since_ < 0.0) {
    pending_since_ = fault.when;
    pending_location_ = fault.location;
    pending_slot_ = slot_hit;
    pending_crash_ = fault.kind == vds::fault::FaultKind::kCrash;
    pending_word_ = fault.word;
    pending_bit_ = fault.bit;
  }
}

void ProtocolCore::clear_pending() {
  pending_since_ = -1.0;
  pending_slot_ = -1;
  pending_crash_ = false;
}

void ProtocolCore::flip_distinct(VersionState& state, std::uint32_t word,
                                 std::uint8_t bit) const {
  const std::size_t words = opt_.state_words;
  if (pending_since_ >= 0.0 && word % words == pending_word_ % words &&
      bit % 64 == pending_bit_ % 64) {
    bit = static_cast<std::uint8_t>((bit + 1) % 64);
  }
  state.flip_bit(word, bit);
}

void ProtocolCore::maybe_checkpoint() {
  if (i_ < static_cast<std::uint64_t>(opt_.s) &&
      base_ + i_ < opt_.job_rounds) {
    return;
  }
  drain_background(clock_, clock_ + opt_.checkpoint_write_latency);
  clock_ += store_.save(base_ + i_, a_.state, clock_);
  ++rep_.checkpoints;
  record(TraceKind::kCheckpoint, "VDS",
         "round " + std::to_string(base_ + i_));
  base_ += i_;
  i_ = 0;
  consecutive_failures_ = 0;
}

void ProtocolCore::rollback() {
  drain_background(clock_, clock_ + opt_.checkpoint_read_latency);
  clock_ += opt_.checkpoint_read_latency;
  const auto checkpoint = store_.latest();
  a_.state = checkpoint->state;
  b_.state = checkpoint->state;
  a_.crashed = b_.crashed = false;
  i_ = 0;
  ++rep_.rollbacks;
  ++consecutive_failures_;
  clear_pending();
  record(TraceKind::kRollback, "VDS",
         "to round " + std::to_string(base_));
  if (consecutive_failures_ >= opt_.max_consecutive_failures) {
    rep_.failed_safe = true;
    record(TraceKind::kFailSafeShutdown, "VDS",
           "after " + std::to_string(consecutive_failures_) +
               " consecutive failures");
  }
}

bool ProtocolCore::handle_processor_crash() {
  if (!processor_crash_) return false;
  processor_crash_ = false;
  record(TraceKind::kInfo, "VDS", "processor crash: rollback");
  rollback();
  return true;
}

void ProtocolCore::compare_and_dispatch(std::uint64_t round) {
  drain_background(clock_, clock_ + opt_.t_cmp);
  clock_ += opt_.t_cmp;
  ++rep_.comparisons;
  if (handle_processor_crash()) return;

  const bool mismatch =
      a_.crashed || b_.crashed ||
      vds::fault::compare_states(a_.state, b_.state) ==
          vds::fault::CompareOutcome::kMismatch;
  record(mismatch ? TraceKind::kCompareMismatch : TraceKind::kCompare,
         "VDS", "round " + std::to_string(round));

  if (!mismatch) {
    ++i_;
    clear_pending();
    maybe_checkpoint();
    return;
  }

  ++rep_.detections;
  record(TraceKind::kFaultDetected, "VDS",
         "at round " + std::to_string(i_ + 1));
  if (pending_since_ >= 0.0) {
    rep_.detection_latency.add(clock_ - pending_since_);
  }
  // Dynamic counter name, but this is the rare recovery path — a map
  // lookup per invocation is fine.
  metrics::registry()
      .counter("engine.recoveries." + std::string(policy_.name()),
               metrics::Determinism::kDeterministic)
      .add();
  const double recovery_start = clock_;
  policy_.recover(*this);
  rep_.recovery_time.add(clock_ - recovery_start);
}

}  // namespace vds::core
