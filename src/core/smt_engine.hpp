#pragma once

#include <memory>

#include "core/engine.hpp"
#include "core/options.hpp"
#include "core/report.hpp"
#include "core/version_set.hpp"
#include "fault/injector.hpp"
#include "fault/predictor.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace vds::core {

/// VDS on a simultaneous multithreaded processor, paper §3.2 / Figure
/// 1(b): both versions run in parallel hardware threads (a round pair
/// costs 2*alpha*t, no context switches). On a mismatch at round i,
/// thread 1 replays version 3 from the checkpoint while thread 2 rolls
/// forward according to the configured scheme:
///
///  * kRollForwardDet    -- Figure 3: i/4 rounds of both versions from
///                          both candidate states (guaranteed progress)
///  * kRollForwardProb   -- Figure 2: i/2 rounds of both versions from
///                          one chosen candidate state
///  * kRollForwardPredict-- §4: i rounds of the predicted fault-free
///                          version, no detection during roll-forward
///  * kStopAndRetry      -- no roll-forward (thread 2 idles)
///  * kRollback          -- no retry at all
///
/// With options.hardware_threads == 3 (probabilistic) or 5
/// (deterministic), the §5 outlook variants run: full min(i, s-i)
/// progress while keeping detection during roll-forward.
class SmtVds final : public Engine {
 public:
  SmtVds(VdsOptions options, vds::sim::Rng rng);

  /// Installs the faulty-version predictor used by the probabilistic
  /// and prediction schemes. Defaults to RandomPredictor (p = 0.5).
  void set_predictor(std::unique_ptr<vds::fault::Predictor> predictor);

  [[nodiscard]] vds::fault::Predictor* predictor() noexcept {
    return predictor_.get();
  }

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "smt";
  }

  /// Executes the job against a fault timeline. `trace` may be null.
  RunReport run(vds::fault::FaultTimeline& timeline,
                vds::sim::Trace* trace = nullptr) override;

  [[nodiscard]] const VdsOptions& options() const noexcept {
    return options_;
  }

 private:
  VdsOptions options_;
  vds::sim::Rng rng_;
  std::unique_ptr<vds::fault::Predictor> predictor_;
};

}  // namespace vds::core
