#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "fault/fault_model.hpp"
#include "fault/injector.hpp"

namespace vds::core {

/// Outcome classification of one injected fault, in the style of the
/// fault-injection evaluations the paper builds on (Lovric [6]:
/// "...and Their Evaluation by Fault Injection").
enum class InjectionOutcome : std::uint8_t {
  kNoEffect,      ///< run completed, no detection, results correct
                  ///< (fault was absorbed / ineffective)
  kRecovered,     ///< detected and repaired by vote (+ roll-forward)
  kRolledBack,    ///< detected, vote failed, interval re-executed
  kSilent,        ///< run completed with corrupted results (worst case)
  kFailSafe,      ///< engine shut down fail-safe
  kNotCompleted,  ///< run aborted for another reason (budget etc.)
};

[[nodiscard]] std::string_view to_string(InjectionOutcome outcome) noexcept;

/// Classifies one run report into an outcome (shared by the
/// sequential grid campaign and the Monte Carlo runtime).
[[nodiscard]] InjectionOutcome classify_outcome(
    const RunReport& report) noexcept;

/// One cell of the campaign grid.
struct InjectionResult {
  vds::fault::FaultKind kind = vds::fault::FaultKind::kTransient;
  std::uint64_t round = 0;  ///< detection-interval round the fault hit
  InjectionOutcome outcome = InjectionOutcome::kNoEffect;
  double detection_latency = -1.0;  ///< -1 when never detected
  double recovery_time = 0.0;
};

/// Aggregated campaign statistics.
struct CampaignSummary {
  std::array<std::uint64_t, 6> by_outcome{};  ///< indexed by InjectionOutcome
  std::uint64_t injections = 0;

  [[nodiscard]] std::uint64_t count(InjectionOutcome outcome) const {
    return by_outcome[static_cast<std::size_t>(outcome)];
  }
  /// Fraction of effective faults (everything except kNoEffect /
  /// kNotCompleted) that ended in a safe state (recovered, rolled back
  /// or fail-safe) rather than silent corruption.
  [[nodiscard]] double safety() const;

  /// Folds another (shard) summary into this one. Counts are exact,
  /// so the merge is associative and commutative — shards produced by
  /// parallel workers combine to the same totals in any order.
  void merge(const CampaignSummary& other) noexcept;

  [[nodiscard]] bool operator==(const CampaignSummary&) const = default;
};

/// Campaign configuration: which single faults to inject, one run per
/// grid cell. `runner` executes the engine under test against the
/// provided timeline and returns its report; the campaign classifies.
struct InjectionCampaign {
  std::vector<vds::fault::FaultKind> kinds = {
      vds::fault::FaultKind::kTransient, vds::fault::FaultKind::kCrash,
      vds::fault::FaultKind::kPermanent,
      vds::fault::FaultKind::kProcessorCrash};
  /// Rounds (since the checkpoint) at which to inject, 1-based.
  std::vector<std::uint64_t> rounds = {1, 5, 10, 15, 20};
  /// Round-pair duration of the engine under test (locates the
  /// injection instant inside the target round).
  double round_time = 1.4;
  /// Fractional offset within the round window.
  double offset = 0.3;
  std::uint64_t seed = 1;
};

using EngineRunner =
    std::function<RunReport(vds::fault::FaultTimeline& timeline)>;

/// Runs the campaign: for every (kind, round) cell, builds a single-
/// fault timeline and invokes `runner` on a fresh engine.
[[nodiscard]] std::vector<InjectionResult> run_injection_campaign(
    const InjectionCampaign& campaign, const EngineRunner& runner);

[[nodiscard]] CampaignSummary summarize(
    const std::vector<InjectionResult>& results);

}  // namespace vds::core
