#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "checkpoint/store.hpp"
#include "core/options.hpp"
#include "core/report.hpp"
#include "core/version_set.hpp"
#include "fault/injector.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace vds::core {

/// One duplex slot: the version currently occupying it, its state and
/// whether it crashed since the last comparison.
struct EngineSlot {
  vds::checkpoint::VersionState state;
  int version_id = 0;
  bool crashed = false;
};

class ProtocolCore;

/// Strategy executed when a round comparison mismatches (paper §3/§4).
/// Concrete policies: RollbackPolicy (checkpoint restart, both
/// platforms), StopAndRetryPolicy (the conventional-processor serial
/// retry + 2-of-3 vote, eq (2)) and SmtRecoveryPolicy (parallel v3
/// retry + det/prob/predict roll-forward, Figures 2/3, optionally
/// driven by an adaptive scheme selector). See recovery_policy.hpp.
class RecoveryPolicy {
 public:
  virtual ~RecoveryPolicy() = default;

  /// Handles the mismatch detected at round `core.i_ + 1`. Must leave
  /// the core consistent: either rolled back, or recovered with `i_`
  /// advanced and a checkpoint considered.
  virtual void recover(ProtocolCore& core) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Shared interpreter spine of the VDS protocol: the round loop,
/// state comparison, checkpointing, rollback and the fail-safe
/// counter, identical on both platforms. Platform adapters
/// (ConventionalCore, SmtCore in platform_cores.hpp) supply the round
/// timing and the fault-application semantics; a RecoveryPolicy
/// supplies the mismatch handling. One ProtocolCore interprets one
/// run and is then discarded — engines construct a fresh core (and
/// policy) per `run()` call, so runs never share protocol state.
///
/// The data members are deliberately open: ProtocolCore is the
/// internal coordination surface between platform adapters and
/// recovery policies, not a public API — external code drives engines
/// through core::Engine.
class ProtocolCore {
 public:
  ProtocolCore(const VdsOptions& options, vds::sim::Rng& rng,
               vds::fault::FaultTimeline& timeline, vds::sim::Trace* trace,
               RecoveryPolicy& policy);
  virtual ~ProtocolCore() = default;

  ProtocolCore(const ProtocolCore&) = delete;
  ProtocolCore& operator=(const ProtocolCore&) = delete;

  /// Executes the job: rounds until `job_rounds` are committed, the
  /// time budget is exhausted or the VDS has failed safe.
  RunReport run();

  // --- building blocks shared by platform adapters and policies ----

  void record(vds::sim::TraceKind kind, std::string actor,
              std::string detail);

  /// Drains the timeline over [from, to) and applies each fault with
  /// the platform's background-victim semantics.
  void drain_background(double from, double to);

  /// Notes the first undetected fault of the current interval (the
  /// detection-latency anchor).
  void note_pending(const vds::fault::Fault& fault, int slot_hit);
  void clear_pending();

  /// Applies a transient flip while enforcing the paper's fault-model
  /// assumption (§2.1) that no fault corrupts two versions in the same
  /// way: a recovery-window fault whose flip would coincide with the
  /// pending fault's flip (same state word and bit) is nudged to the
  /// neighbouring bit. Without this, coinciding flips make a corrupted
  /// retry state *equal* a corrupted version state and invert the vote.
  void flip_distinct(vds::checkpoint::VersionState& state,
                     std::uint32_t word, std::uint8_t bit) const;

  /// Commits the interval into a checkpoint once `s` compared rounds
  /// accumulated (or the job finished).
  void maybe_checkpoint();

  /// Restores both slots from the last checkpoint and advances the
  /// fail-safe counter.
  void rollback();

  /// Consumes a pending processor crash: rolls back and reports true.
  [[nodiscard]] bool handle_processor_crash();

  // --- shared protocol state ---------------------------------------
  const VdsOptions& opt_;
  vds::sim::Rng& rng_;
  vds::fault::FaultTimeline& timeline_;
  vds::sim::Trace* trace_;
  VersionSet vset_;
  vds::checkpoint::CheckpointStore store_;
  RunReport rep_;

  EngineSlot a_;
  EngineSlot b_;
  int spare_id_ = 3;

  std::uint64_t base_ = 0;  ///< rounds committed at the last checkpoint
  std::uint64_t i_ = 0;     ///< compared rounds since the checkpoint
  double clock_ = 0.0;
  int consecutive_failures_ = 0;
  bool processor_crash_ = false;

  double pending_since_ = -1.0;  ///< first undetected fault's time
  std::uint32_t pending_location_ = 0;
  int pending_slot_ = -1;
  bool pending_crash_ = false;
  std::uint32_t pending_word_ = 0;
  std::uint8_t pending_bit_ = 0;

 protected:
  /// One complete protocol round: platform-specific compute phases,
  /// ending in compare_and_dispatch().
  virtual void step_round() = 0;

  /// Applies one fault drained while no single version exclusively
  /// occupies the compute resource (context switch, comparison,
  /// checkpoint I/O) — platform victim semantics.
  virtual void apply_background_fault(const vds::fault::Fault& fault) = 0;

  /// Shared tail of every round: comparison phase, mismatch check,
  /// and — on mismatch — detection accounting plus recovery-policy
  /// dispatch.
  void compare_and_dispatch(std::uint64_t round);

 private:
  RecoveryPolicy& policy_;
};

}  // namespace vds::core
