#include "core/report.hpp"

#include <sstream>

namespace vds::core {

std::string RunReport::to_string() const {
  std::ostringstream os;
  os << "run{" << (completed ? "completed" : failed_safe ? "FAIL-SAFE"
                                                         : "aborted");
  if (silent_corruption) os << " SILENT-CORRUPTION";
  os << " time=" << total_time << " rounds=" << rounds_committed
     << " faults=" << faults_seen << " (t=" << transient_faults
     << " c=" << crash_faults << " p=" << permanent_faults
     << " pc=" << processor_crashes << ")"
     << " detections=" << detections << " recoveries=" << recoveries_ok
     << " rollbacks=" << rollbacks << " checkpoints=" << checkpoints
     << " rf_kept=" << roll_forwards_kept
     << " rf_disc=" << roll_forwards_discarded
     << " rf_rounds=" << roll_forward_rounds_gained;
  if (predictions != 0) {
    os << " pred=" << prediction_hits << "/" << predictions;
  }
  if (adaptive_det_recoveries + adaptive_prob_recoveries != 0) {
    os << " adaptive(det=" << adaptive_det_recoveries
       << ",prob=" << adaptive_prob_recoveries
       << ",switches=" << scheme_switches << ")";
  }
  if (!detection_latency.empty()) {
    os << " det_lat=" << detection_latency.mean();
  }
  if (!recovery_time.empty()) {
    os << " rec_time=" << recovery_time.mean();
  }
  os << "}";
  return os.str();
}

}  // namespace vds::core
