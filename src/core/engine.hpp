#pragma once

#include <string_view>

#include "core/report.hpp"
#include "fault/injector.hpp"
#include "sim/trace.hpp"

namespace vds::core {

/// Uniform face of every protocol engine (SMT VDS, conventional VDS,
/// lockstep SRT, physical duplex): run one job against a fault
/// timeline and account for it in a RunReport. Campaign drivers
/// (core::run_injection_campaign, runtime::run_mc_campaign) and the
/// CLIs sweep engines exclusively through this interface; new engines
/// plug in by implementing it and registering a constructor in
/// scenario::make_engine.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Canonical engine kind name ("smt", "conv", "srt", "duplex") —
  /// stable across releases: it names the engine in CLI flags,
  /// scenario JSON and run-report JSON.
  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;

  /// Executes the job against a fault timeline. `trace` may be null;
  /// engines without protocol-event tracing ignore it.
  virtual RunReport run(vds::fault::FaultTimeline& timeline,
                        vds::sim::Trace* trace = nullptr) = 0;
};

}  // namespace vds::core
