#include "core/options.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace vds::core {

std::string_view to_string(RecoveryScheme scheme) noexcept {
  switch (scheme) {
    case RecoveryScheme::kRollback: return "rollback";
    case RecoveryScheme::kStopAndRetry: return "stop_and_retry";
    case RecoveryScheme::kRollForwardDet: return "roll_forward_det";
    case RecoveryScheme::kRollForwardProb: return "roll_forward_prob";
    case RecoveryScheme::kRollForwardPredict: return "roll_forward_predict";
  }
  return "unknown";
}

std::string_view short_name(RecoveryScheme scheme) noexcept {
  switch (scheme) {
    case RecoveryScheme::kRollback: return "rollback";
    case RecoveryScheme::kStopAndRetry: return "retry";
    case RecoveryScheme::kRollForwardDet: return "det";
    case RecoveryScheme::kRollForwardProb: return "prob";
    case RecoveryScheme::kRollForwardPredict: return "predict";
  }
  return "unknown";
}

std::optional<RecoveryScheme> parse_recovery_scheme(
    std::string_view name) noexcept {
  for (const RecoveryScheme scheme : kAllRecoverySchemes) {
    if (name == to_string(scheme) || name == short_name(scheme)) {
      return scheme;
    }
  }
  return std::nullopt;
}

void VdsOptions::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("VdsOptions: " + what);
  };
  if (!(t > 0.0) || !std::isfinite(t)) fail("t must be finite and > 0");
  if (!(c >= 0.0) || !std::isfinite(c) || !(t_cmp >= 0.0) ||
      !std::isfinite(t_cmp)) {
    fail("c and t_cmp must be finite and >= 0");
  }
  if (!(alpha >= 0.5) || alpha > 1.0) fail("alpha must be in [0.5, 1]");
  if (s < 1) fail("s must be >= 1");
  if (job_rounds == 0) fail("job_rounds must be >= 1");
  if (state_words == 0) fail("state_words must be >= 1");
  if (max_consecutive_failures < 1) {
    fail("max_consecutive_failures must be >= 1");
  }
  if (!(checkpoint_write_latency >= 0.0) ||
      !std::isfinite(checkpoint_write_latency) ||
      !(checkpoint_read_latency >= 0.0) ||
      !std::isfinite(checkpoint_read_latency)) {
    fail("checkpoint latencies must be finite and >= 0");
  }
  if (hardware_threads != 2 && hardware_threads != 3 &&
      hardware_threads != 5) {
    fail("hardware_threads must be 2, 3 or 5");
  }
  if (!(alpha3 > 1.0 / 3.0) || alpha3 > 1.0) fail("alpha3 in (1/3, 1]");
  if (!(alpha5 > 1.0 / 5.0) || alpha5 > 1.0) fail("alpha5 in (1/5, 1]");
  if (adaptive_p_threshold < 0.0 || adaptive_p_threshold > 1.0) {
    fail("adaptive_p_threshold in [0, 1]");
  }
  if (adaptive_warmup < 0) fail("adaptive_warmup must be >= 0");
  if (permanent_detectable_prob < 0.0 || permanent_detectable_prob > 1.0) {
    fail("permanent_detectable_prob in [0, 1]");
  }
  if (permanent_affects_others_prob < 0.0 ||
      permanent_affects_others_prob > 1.0) {
    fail("permanent_affects_others_prob in [0, 1]");
  }
  if (!(max_time > 0.0) || !std::isfinite(max_time)) {
    fail("max_time must be finite and > 0");
  }
}

model::Params VdsOptions::to_model_params(double p) const {
  model::Params params;
  params.t = t;
  params.c = c;
  params.t_cmp = t_cmp;
  params.alpha = alpha;
  params.s = s;
  params.p = p;
  params.validate();
  return params;
}

}  // namespace vds::core
