#include "core/replay_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "runtime/metrics.hpp"

namespace vds::core {

namespace metrics = vds::runtime::metrics;

using vds::fault::Fault;
using vds::fault::FaultKind;
using vds::fault::Victim;
using vds::replay::RecordLog;
using vds::replay::Replayer;
using vds::replay::RoundRecord;
using vds::replay::WindowVerdict;

void ReplayConfig::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("ReplayConfig: ") + what);
  };
  if (!(t > 0.0) || !std::isfinite(t)) fail("t must be finite and > 0");
  if (!(alpha >= 0.5) || alpha > 1.0) fail("alpha in [0.5, 1]");
  if (!(record_overhead >= 0.0) || !std::isfinite(record_overhead)) {
    fail("record_overhead must be finite and >= 0");
  }
  if (window < 1) fail("window >= 1");
  if (!(compare_time >= 0.0) || !std::isfinite(compare_time)) {
    fail("compare_time must be finite and >= 0");
  }
  if (s < 1) fail("s >= 1");
  if (job_rounds == 0) fail("job_rounds >= 1");
  if (!(checkpoint_write_latency >= 0.0) ||
      !std::isfinite(checkpoint_write_latency) ||
      !(checkpoint_read_latency >= 0.0) ||
      !std::isfinite(checkpoint_read_latency)) {
    fail("checkpoint latencies must be finite and >= 0");
  }
  if (max_consecutive_failures < 1) fail("max_consecutive_failures >= 1");
  if (!(max_time > 0.0) || !std::isfinite(max_time)) {
    fail("max_time must be finite and > 0");
  }
}

namespace {

// All counts below are pure functions of (config, timeline), never of
// scheduling, so they fold into deterministic global counters once per
// run — the replay engine's golden-counter surface.
void fold_replay_metrics(const RunReport& rep, std::uint64_t windows,
                         std::uint64_t mismatches,
                         std::uint64_t rounds_recorded) {
  using metrics::Determinism;
  auto& reg = metrics::registry();
  static auto& runs =
      reg.counter("replay.runs", Determinism::kDeterministic);
  static auto& completed =
      reg.counter("replay.completed", Determinism::kDeterministic);
  static auto& windows_compared =
      reg.counter("replay.windows_compared", Determinism::kDeterministic);
  static auto& window_mismatches =
      reg.counter("replay.window_mismatches", Determinism::kDeterministic);
  static auto& recorded =
      reg.counter("replay.rounds_recorded", Determinism::kDeterministic);
  static auto& verified =
      reg.counter("replay.rounds_verified", Determinism::kDeterministic);
  static auto& rollbacks =
      reg.counter("replay.rollbacks", Determinism::kDeterministic);
  static auto& silent =
      reg.counter("replay.silent_corruptions", Determinism::kDeterministic);
  runs.add();
  completed.add(rep.completed ? 1 : 0);
  windows_compared.add(windows);
  window_mismatches.add(mismatches);
  recorded.add(rounds_recorded);
  verified.add(rep.rounds_committed);
  rollbacks.add(rep.rollbacks);
  silent.add(rep.silent_corruption ? 1 : 0);
}

}  // namespace

ReplayVds::ReplayVds(ReplayConfig config, vds::sim::Rng rng)
    : config_(config), rng_(rng) {
  config_.validate();
}

RunReport ReplayVds::run(vds::fault::FaultTimeline& timeline,
                         vds::sim::Trace* /*trace*/) {
  RunReport rep;
  const double record_round =
      config_.alpha * config_.t * (1.0 + config_.record_overhead);
  // A drained window (no recording left to overlap) replays alone on
  // the core at full speed.
  const double tail_replay_round = config_.t;
  const std::uint64_t window =
      static_cast<std::uint64_t>(config_.window);

  double clock = 0.0;
  std::uint64_t verified = 0;       // rounds verified by replay
  std::uint64_t checkpoint_round = 0;
  std::uint64_t primary_state = 0x5eed5eed5eed5eedull;
  std::uint64_t checkpoint_state = primary_state;
  RecordLog log;
  Replayer replayer(primary_state);
  std::vector<RoundRecord> in_flight;  // window replaying this step
  std::uint64_t in_flight_corrupt = 0;
  double pending_since = -1.0;  // earliest undetected fault
  int consecutive_failures = 0;
  bool permanent_struck = false;
  std::uint64_t windows_compared = 0;
  std::uint64_t window_mismatches = 0;
  std::uint64_t rounds_recorded = 0;

  const auto note_pending = [&](double when) {
    if (pending_since < 0.0 || when < pending_since) pending_since = when;
  };

  // Restores both contexts and the log to `state` at `round`.
  const auto restore = [&](std::uint64_t round, std::uint64_t state) {
    verified = std::min(verified, round);
    primary_state = state;
    replayer.reset(state);
    log.rewind_to(round);
    in_flight.clear();
    in_flight_corrupt = 0;
    pending_since = -1.0;
  };

  // One detected failure: accounts the detection, restores, and trips
  // fail-safe after repeated failures.
  const auto recover = [&](std::uint64_t round, std::uint64_t state,
                           double extra_latency) {
    ++rep.detections;
    ++rep.rollbacks;
    if (pending_since >= 0.0) {
      rep.detection_latency.add(clock - pending_since);
    }
    const double recovery_start = clock;
    clock += extra_latency;
    restore(round, state);
    rep.recovery_time.add(clock - recovery_start);
    if (++consecutive_failures >= config_.max_consecutive_failures) {
      rep.failed_safe = true;
    }
  };

  while (verified < config_.job_rounds && clock <= config_.max_time &&
         !rep.failed_safe) {
    // --- record the next window; the previous one replays
    // concurrently on the second context -------------------------------
    bool context_crash = false;
    bool replayer_crashed = false;
    bool processor_crash = false;
    const bool tail = log.next_index() >= config_.job_rounds;
    const std::uint64_t to_record =
        tail ? 0
             : std::min<std::uint64_t>(window,
                                       config_.job_rounds - log.next_index());
    const double step_round =
        tail ? tail_replay_round : record_round;
    const std::uint64_t step_rounds =
        tail ? static_cast<std::uint64_t>(in_flight.size()) : to_record;

    for (std::uint64_t n = 0; n < step_rounds; ++n) {
      const auto faults = timeline.drain_window(clock, clock + step_round);
      clock += step_round;
      std::uint64_t primary_corrupt = 0;
      for (const Fault& fault : faults) {
        ++rep.faults_seen;
        switch (fault.kind) {
          case FaultKind::kTransient: {
            ++rep.transient_faults;
            // During the tail drain only the replayer is executing, so
            // every transient lands on it.
            const bool hits_replayer =
                tail || fault.victim == Victim::kVersion2;
            const std::uint64_t bits =
                0x1ull << (fault.bit % 63u) | (std::uint64_t{fault.word} << 1);
            if (hits_replayer) {
              in_flight_corrupt ^= bits | 1u;
            } else {
              primary_corrupt ^= bits | 1u;
            }
            note_pending(fault.when);
            break;
          }
          case FaultKind::kCrash:
            ++rep.crash_faults;
            note_pending(fault.when);
            context_crash = true;
            replayer_crashed = tail || fault.victim == Victim::kVersion2;
            break;
          case FaultKind::kPermanent:
            // Record and replay run the same code on the same broken
            // unit: both digests corrupt identically — silent.
            ++rep.permanent_faults;
            permanent_struck = true;
            break;
          case FaultKind::kProcessorCrash:
            ++rep.processor_crashes;
            note_pending(fault.when);
            processor_crash = true;
            break;
        }
      }
      if (!tail) {
        const std::uint64_t index = log.next_index();
        const std::uint64_t input =
            vds::replay::round_input(/*job_seed=*/1, index);
        primary_state =
            vds::replay::round_outcome(primary_state, index, input) ^
            primary_corrupt;
        log.append({index, input, primary_state});
        ++rounds_recorded;
      }
      if (context_crash || processor_crash) break;
    }

    if (processor_crash) {
      // Both contexts lost; only the stable-storage checkpoint survives.
      recover(checkpoint_round, checkpoint_state,
              config_.checkpoint_read_latency);
      continue;
    }
    if (context_crash) {
      // One context stopped: detected at once. A primary crash leaves
      // the replayer's in-memory verified state intact (cheap restore);
      // a crash of the replayer itself loses that state, so only the
      // stable-storage checkpoint is trustworthy.
      if (replayer_crashed) {
        recover(checkpoint_round, checkpoint_state,
                config_.checkpoint_read_latency);
      } else {
        recover(verified, replayer.state(), 0.0);
      }
      continue;
    }

    // --- compare the window whose replay just finished ----------------
    if (!in_flight.empty()) {
      clock += config_.compare_time;
      ++rep.comparisons;
      ++windows_compared;
      const WindowVerdict verdict =
          replayer.replay(in_flight, in_flight_corrupt);
      in_flight_corrupt = 0;
      if (verdict.match) {
        verified += verdict.rounds;
        consecutive_failures = 0;
        pending_since = -1.0;
        if (verified - checkpoint_round >=
                static_cast<std::uint64_t>(config_.s) ||
            verified >= config_.job_rounds) {
          clock += config_.checkpoint_write_latency;
          ++rep.checkpoints;
          checkpoint_round = verified;
          checkpoint_state = replayer.state();
        }
        in_flight.clear();
      } else {
        ++window_mismatches;
        // Two executions, no vote: conservatively discard everything
        // past the verified frontier and re-execute.
        recover(verified, replayer.state(), 0.0);
        continue;
      }
    }

    // --- hand the freshly recorded window to the replayer -------------
    in_flight = log.take_window(static_cast<std::size_t>(window));
  }

  rep.total_time = clock;
  rep.rounds_committed = std::min(verified, config_.job_rounds);
  rep.completed = rep.rounds_committed >= config_.job_rounds;
  if (rep.completed && permanent_struck) rep.silent_corruption = true;
  fold_replay_metrics(rep, windows_compared, window_mismatches,
                      rounds_recorded);
  return rep;
}

}  // namespace vds::core
