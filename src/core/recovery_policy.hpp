#pragma once

#include <memory>

#include "core/protocol_core.hpp"
#include "fault/predictor.hpp"

namespace vds::core {

/// The platform a recovery policy will run on. Recovery is where the
/// platforms differ most (paper §3.1 vs §3.2): the conventional
/// processor can only stop and serially retry, the SMT processor
/// retries and rolls forward in parallel hardware threads.
enum class Platform {
  kConventional,
  kSmt,
};

/// kRollback on either platform: no retry at all — both versions
/// restart from the last checkpoint.
class RollbackPolicy final : public RecoveryPolicy {
 public:
  void recover(ProtocolCore& core) override { core.rollback(); }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rollback";
  }
};

/// Conventional-processor stop-and-retry with 2-out-of-3 vote (paper
/// eq (2) timing): version 3 serially replays the interval from the
/// checkpoint, itself exposed to new faults while it runs.
/// Requires a ConventionalCore.
class StopAndRetryPolicy final : public RecoveryPolicy {
 public:
  void recover(ProtocolCore& core) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "stop_and_retry";
  }
};

/// Chooses the roll-forward scheme for each SMT recovery. The fixed
/// selector returns the configured scheme; the adaptive selector
/// implements the paper's §5 outlook — switching between guaranteed
/// (deterministic) and larger-expected (probabilistic) roll-forward
/// based on the predictor's measured accuracy.
class SchemeSelector {
 public:
  virtual ~SchemeSelector() = default;

  /// Picks the scheme for the recovery about to run (and does any
  /// selection bookkeeping on core.rep_).
  [[nodiscard]] virtual RecoveryScheme choose(ProtocolCore& core) = 0;

  /// Whether the predictor must be consulted (and fed back) even when
  /// the chosen scheme would not need it, so its accuracy estimate
  /// keeps learning.
  [[nodiscard]] virtual bool consults_predictor() const noexcept = 0;
};

class FixedSchemeSelector final : public SchemeSelector {
 public:
  explicit FixedSchemeSelector(RecoveryScheme scheme) noexcept
      : scheme_(scheme) {}
  [[nodiscard]] RecoveryScheme choose(ProtocolCore&) override {
    return scheme_;
  }
  [[nodiscard]] bool consults_predictor() const noexcept override {
    return false;
  }

 private:
  RecoveryScheme scheme_;
};

class AdaptiveSchemeSelector final : public SchemeSelector {
 public:
  [[nodiscard]] RecoveryScheme choose(ProtocolCore& core) override;
  [[nodiscard]] bool consults_predictor() const noexcept override {
    return true;
  }

 private:
  RecoveryScheme last_choice_ = RecoveryScheme::kRollForwardDet;
};

/// Unified SMT recovery (Figures 2 and 3): v3 retry in hardware
/// thread 1 + scheme-dependent roll-forward in thread 2, ending in a
/// 2-out-of-3 majority vote. Requires an SmtCore.
class SmtRecoveryPolicy final : public RecoveryPolicy {
 public:
  explicit SmtRecoveryPolicy(std::unique_ptr<SchemeSelector> selector)
      : selector_(std::move(selector)) {}

  void recover(ProtocolCore& core) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "smt_roll_forward";
  }

 private:
  [[nodiscard]] std::uint64_t intended_roll_forward(
      const VdsOptions& opt, RecoveryScheme scheme,
      std::uint64_t ic) const noexcept;
  [[nodiscard]] double recovery_window(const VdsOptions& opt,
                                       RecoveryScheme scheme,
                                       std::uint64_t ic) const noexcept;

  std::unique_ptr<SchemeSelector> selector_;
};

/// Builds the recovery policy `options` asks for on `platform`:
/// kRollback maps to RollbackPolicy everywhere; any retrying scheme
/// maps to StopAndRetryPolicy on the conventional processor and to
/// SmtRecoveryPolicy (with a fixed or adaptive scheme selector) on the
/// SMT processor. One policy instance serves one engine run.
[[nodiscard]] std::unique_ptr<RecoveryPolicy> make_recovery_policy(
    const VdsOptions& options, Platform platform);

}  // namespace vds::core
