#include "core/conventional.hpp"

#include <algorithm>
#include <string>

#include "fault/detector.hpp"

namespace vds::core {
namespace {

using vds::checkpoint::VersionState;
using vds::fault::Fault;
using vds::fault::FaultKind;
using vds::sim::TraceKind;

/// One of the two processes carrying a version.
struct Slot {
  VersionState state;
  int version_id = 0;
  bool crashed = false;
};

/// Procedural interpreter of the conventional-VDS protocol. Simulated
/// time advances phase by phase; each phase drains the fault timeline
/// over its window and applies the faults to whatever occupies the
/// processor during that window.
class Runner {
 public:
  Runner(const VdsOptions& options, vds::sim::Rng& rng,
         vds::fault::FaultTimeline& timeline, vds::sim::Trace* trace)
      : opt_(options), rng_(rng), timeline_(timeline), trace_(trace),
        vset_(options),
        store_({options.checkpoint_write_latency,
                options.checkpoint_read_latency},
               /*keep_last=*/2) {
    a_.state = vset_.initial_state();
    b_.state = a_.state;
    a_.version_id = 1;
    b_.version_id = 2;
    store_.save(0, a_.state, 0.0);  // initial checkpoint (setup, free)
  }

  RunReport run() {
    bool aborted = false;
    while (base_ + i_ < opt_.job_rounds) {
      if (clock_ > opt_.max_time || rep_.failed_safe) {
        aborted = true;
        break;
      }
      step_round();
    }
    rep_.total_time = clock_;
    rep_.rounds_committed = std::min(base_ + i_, opt_.job_rounds);
    rep_.completed = !aborted && !rep_.failed_safe &&
                     rep_.rounds_committed >= opt_.job_rounds;
    if (rep_.completed) {
      const auto& golden = vset_.golden_at(rep_.rounds_committed);
      rep_.silent_corruption = a_.state.digest() != golden.digest() ||
                               b_.state.digest() != golden.digest();
      record(TraceKind::kJobDone, "VDS", "");
    }
    return rep_;
  }

 private:
  // --- tracing ---------------------------------------------------------
  void record(TraceKind kind, std::string actor, std::string detail) {
    if (trace_ != nullptr) {
      trace_->record(clock_, std::move(actor), kind, std::move(detail));
    }
  }

  // --- fault plumbing --------------------------------------------------

  /// Applies one fault. `occupant` is the slot computing during the
  /// fault window (nullptr when the processor is switching/comparing,
  /// in which case a memory-resident victim is picked at random);
  /// `retry` points at the retry state when version 3 occupies the CPU.
  void apply_fault(const Fault& fault, Slot* occupant,
                   VersionState* retry_state, bool* retry_crashed) {
    ++rep_.faults_seen;
    record(TraceKind::kFaultInjected, "fault", fault.describe());
    switch (fault.kind) {
      case FaultKind::kTransient: {
        ++rep_.transient_faults;
        if (retry_state != nullptr) {
          // Enforce the paper's fault-model assumption (§2.1) that no
          // two versions are corrupted identically: nudge a flip that
          // would coincide with the pending fault's flip. A coinciding
          // flip would make the corrupted retry equal the corrupted
          // version state and invert the majority vote.
          std::uint8_t bit = fault.bit;
          if (pending_since_ >= 0.0 &&
              fault.word % opt_.state_words ==
                  pending_word_ % opt_.state_words &&
              bit % 64 == pending_bit_ % 64) {
            bit = static_cast<std::uint8_t>((bit + 1) % 64);
          }
          retry_state->flip_bit(fault.word, bit);
          note_pending(fault, /*slot_hit=*/-1);
          return;
        }
        Slot& victim = occupant != nullptr
                           ? *occupant
                           : (rng_.bernoulli(0.5) ? a_ : b_);
        victim.state.flip_bit(fault.word, fault.bit);
        note_pending(fault, &victim == &a_ ? 0 : 1);
        return;
      }
      case FaultKind::kCrash: {
        ++rep_.crash_faults;
        if (retry_crashed != nullptr) {
          *retry_crashed = true;
          note_pending(fault, -1);
          return;
        }
        Slot& victim = occupant != nullptr
                           ? *occupant
                           : (rng_.bernoulli(0.5) ? a_ : b_);
        victim.crashed = true;
        note_pending(fault, &victim == &a_ ? 0 : 1);
        pending_crash_ = true;
        return;
      }
      case FaultKind::kPermanent: {
        ++rep_.permanent_faults;
        const bool exposed =
            rng_.bernoulli(opt_.permanent_detectable_prob);
        // The version computing now certainly exercises the broken
        // unit; the others may or may not, depending on diversity.
        const int victim_version =
            occupant != nullptr ? occupant->version_id
            : retry_state != nullptr
                ? spare_id_
                : (rng_.bernoulli(0.5) ? a_.version_id : b_.version_id);
        std::uint8_t mask = 0;
        for (int version = 1; version <= 3; ++version) {
          const bool affected =
              version == victim_version ||
              rng_.bernoulli(opt_.permanent_affects_others_prob);
          if (affected) {
            mask |= static_cast<std::uint8_t>(1u << (version - 1));
          }
        }
        vset_.set_permanent(fault.location, exposed, mask);
        if (exposed && ((mask >> (a_.version_id - 1)) & 1u ||
                        (mask >> (b_.version_id - 1)) & 1u)) {
          note_pending(fault, -1);
        }
        return;
      }
      case FaultKind::kProcessorCrash: {
        ++rep_.processor_crashes;
        processor_crash_ = true;
        return;
      }
    }
  }

  void drain(double from, double to, Slot* occupant,
             VersionState* retry_state = nullptr,
             bool* retry_crashed = nullptr) {
    for (const Fault& fault : timeline_.drain_window(from, to)) {
      apply_fault(fault, occupant, retry_state, retry_crashed);
    }
  }

  void note_pending(const Fault& fault, int slot_hit) {
    if (pending_since_ < 0.0) {
      pending_since_ = fault.when;
      pending_location_ = fault.location;
      pending_slot_ = slot_hit;
      pending_word_ = fault.word;
      pending_bit_ = fault.bit;
    }
  }

  void clear_pending() {
    pending_since_ = -1.0;
    pending_crash_ = false;
    pending_slot_ = -1;
  }

  // --- protocol phases -------------------------------------------------

  void step_round() {
    const std::uint64_t round = base_ + i_ + 1;

    // Version in slot A computes its round.
    record(TraceKind::kRoundStart, "V" + std::to_string(a_.version_id),
           "round " + std::to_string(round));
    vset_.advance(a_.state, round, a_.version_id);
    drain(clock_, clock_ + opt_.t, &a_);
    clock_ += opt_.t;
    record(TraceKind::kRoundEnd, "V" + std::to_string(a_.version_id), "");
    if (handle_processor_crash()) return;

    // Context switch.
    record(TraceKind::kContextSwitch, "os", "");
    drain(clock_, clock_ + opt_.c, nullptr);
    clock_ += opt_.c;
    if (handle_processor_crash()) return;

    // Version in slot B computes its round.
    record(TraceKind::kRoundStart, "V" + std::to_string(b_.version_id),
           "round " + std::to_string(round));
    vset_.advance(b_.state, round, b_.version_id);
    drain(clock_, clock_ + opt_.t, &b_);
    clock_ += opt_.t;
    record(TraceKind::kRoundEnd, "V" + std::to_string(b_.version_id), "");
    if (handle_processor_crash()) return;

    record(TraceKind::kContextSwitch, "os", "");
    drain(clock_, clock_ + opt_.c, nullptr);
    clock_ += opt_.c;
    if (handle_processor_crash()) return;

    // State comparison.
    drain(clock_, clock_ + opt_.t_cmp, nullptr);
    clock_ += opt_.t_cmp;
    ++rep_.comparisons;
    if (handle_processor_crash()) return;

    const bool mismatch =
        a_.crashed || b_.crashed ||
        vds::fault::compare_states(a_.state, b_.state) ==
            vds::fault::CompareOutcome::kMismatch;
    record(mismatch ? TraceKind::kCompareMismatch : TraceKind::kCompare,
           "VDS", "round " + std::to_string(round));

    if (!mismatch) {
      ++i_;
      clear_pending();
      maybe_checkpoint();
      return;
    }

    ++rep_.detections;
    record(TraceKind::kFaultDetected, "VDS",
           "at round " + std::to_string(i_ + 1));
    if (pending_since_ >= 0.0) {
      rep_.detection_latency.add(clock_ - pending_since_);
    }
    const double recovery_start = clock_;
    if (opt_.scheme == RecoveryScheme::kRollback) {
      rollback();
    } else {
      stop_and_retry();
    }
    rep_.recovery_time.add(clock_ - recovery_start);
  }

  void maybe_checkpoint() {
    if (i_ < static_cast<std::uint64_t>(opt_.s) &&
        base_ + i_ < opt_.job_rounds) {
      return;
    }
    drain(clock_, clock_ + opt_.checkpoint_write_latency, nullptr);
    clock_ += store_.save(base_ + i_, a_.state, clock_);
    ++rep_.checkpoints;
    record(TraceKind::kCheckpoint, "VDS",
           "round " + std::to_string(base_ + i_));
    base_ += i_;
    i_ = 0;
    consecutive_failures_ = 0;
  }

  /// Stop-and-retry with 2-out-of-3 vote (paper eq (2) timing).
  void stop_and_retry() {
    const std::uint64_t ic = i_ + 1;  // mismatch found at round ic
    record(TraceKind::kRetryStart, "V" + std::to_string(spare_id_),
           "replay " + std::to_string(ic) + " rounds");

    // Version 3 loads the checkpoint...
    drain(clock_, clock_ + opt_.checkpoint_read_latency, nullptr);
    clock_ += opt_.checkpoint_read_latency;
    VersionState retry = store_.latest()->state;
    bool retry_crashed = false;

    // ...and replays the interval, round by round, itself exposed to
    // new faults while it runs.
    for (std::uint64_t r = 1; r <= ic; ++r) {
      vset_.advance(retry, base_ + r, spare_id_);
      drain(clock_, clock_ + opt_.t, nullptr, &retry, &retry_crashed);
      clock_ += opt_.t;
      if (processor_crash_) break;
    }
    if (handle_processor_crash()) return;
    record(TraceKind::kRetryEnd, "V" + std::to_string(spare_id_), "");

    // Majority vote: two comparisons.
    drain(clock_, clock_ + 2.0 * opt_.t_cmp, nullptr);
    clock_ += 2.0 * opt_.t_cmp;
    rep_.comparisons += 2;
    if (handle_processor_crash()) return;

    const bool s_matches_a =
        !retry_crashed && !a_.crashed &&
        retry.digest() == a_.state.digest();
    const bool s_matches_b =
        !retry_crashed && !b_.crashed &&
        retry.digest() == b_.state.digest();

    if (s_matches_a == s_matches_b) {
      // Either all three agree (cannot happen after a mismatch) or all
      // three differ: no majority -> rollback (paper §3.1).
      record(TraceKind::kMajorityVote, "VDS", "no majority");
      rollback();
      return;
    }

    Slot& faulty = s_matches_a ? b_ : a_;
    record(TraceKind::kMajorityVote, "VDS",
           "V" + std::to_string(faulty.version_id) + " faulty");

    // The fault-free retry state replaces the faulty version; version 3
    // takes over that slot and the previous occupant becomes the spare.
    faulty.state = retry;
    faulty.crashed = false;
    std::swap(faulty.version_id, spare_id_);
    record(TraceKind::kStateCopy, "VDS",
           "V" + std::to_string(faulty.version_id) + " joins duplex");

    i_ = ic;
    consecutive_failures_ = 0;
    ++rep_.recoveries_ok;
    clear_pending();
    maybe_checkpoint();
  }

  void rollback() {
    drain(clock_, clock_ + opt_.checkpoint_read_latency, nullptr);
    clock_ += opt_.checkpoint_read_latency;
    const auto checkpoint = store_.latest();
    a_.state = checkpoint->state;
    b_.state = checkpoint->state;
    a_.crashed = b_.crashed = false;
    i_ = 0;
    ++rep_.rollbacks;
    ++consecutive_failures_;
    clear_pending();
    record(TraceKind::kRollback, "VDS",
           "to round " + std::to_string(base_));
    if (consecutive_failures_ >= opt_.max_consecutive_failures) {
      rep_.failed_safe = true;
      record(TraceKind::kFailSafeShutdown, "VDS",
             "after " + std::to_string(consecutive_failures_) +
                 " consecutive failures");
    }
  }

  [[nodiscard]] bool handle_processor_crash() {
    if (!processor_crash_) return false;
    processor_crash_ = false;
    record(TraceKind::kInfo, "VDS", "processor crash: rollback");
    rollback();
    return true;
  }

  // --- members ---------------------------------------------------------
  const VdsOptions& opt_;
  vds::sim::Rng& rng_;
  vds::fault::FaultTimeline& timeline_;
  vds::sim::Trace* trace_;
  VersionSet vset_;
  vds::checkpoint::CheckpointStore store_;
  RunReport rep_;

  Slot a_;
  Slot b_;
  int spare_id_ = 3;

  std::uint64_t base_ = 0;  ///< rounds committed at the last checkpoint
  std::uint64_t i_ = 0;     ///< compared rounds since the checkpoint
  double clock_ = 0.0;
  int consecutive_failures_ = 0;
  bool processor_crash_ = false;

  double pending_since_ = -1.0;  ///< first undetected fault's time
  std::uint32_t pending_location_ = 0;
  int pending_slot_ = -1;
  bool pending_crash_ = false;
  std::uint32_t pending_word_ = 0;
  std::uint8_t pending_bit_ = 0;
};

}  // namespace

ConventionalVds::ConventionalVds(VdsOptions options, vds::sim::Rng rng)
    : options_(options), rng_(rng) {
  options_.validate();
}

RunReport ConventionalVds::run(vds::fault::FaultTimeline& timeline,
                               vds::sim::Trace* trace) {
  Runner runner(options_, rng_, timeline, trace);
  return runner.run();
}

}  // namespace vds::core
