#include "core/conventional.hpp"

#include "core/platform_cores.hpp"
#include "core/recovery_policy.hpp"

namespace vds::core {

ConventionalVds::ConventionalVds(VdsOptions options, vds::sim::Rng rng)
    : options_(options), rng_(rng) {
  options_.validate();
}

RunReport ConventionalVds::run(vds::fault::FaultTimeline& timeline,
                               vds::sim::Trace* trace) {
  const auto policy =
      make_recovery_policy(options_, Platform::kConventional);
  ConventionalCore core(options_, rng_, timeline, trace, *policy);
  return core.run();
}

}  // namespace vds::core
