#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/options.hpp"
#include "core/dme_engine.hpp"
#include "core/replay_engine.hpp"
#include "baseline/duplex.hpp"
#include "baseline/srt.hpp"
#include "fault/fault_model.hpp"

namespace vds::runtime {
class JsonWriter;
}  // namespace vds::runtime

namespace vds::scenario {

class JsonValue;

/// Which protocol engine a scenario drives.
enum class EngineKind : std::uint8_t {
  kSmt,      ///< SmtVds: VDS on the SMT processor (paper §3.2)
  kConv,     ///< ConventionalVds: VDS on a conventional processor (§3.1)
  kSrt,      ///< LockstepSrt: lockstep redundant threading baseline
  kDuplex,   ///< PhysicalDuplex: two-processor duplex baseline
  kReplay,   ///< ReplayVds: record/replay detection on the idle context
  kDme,      ///< DmeEngine: divergent multi-version execution
};

inline constexpr EngineKind kAllEngineKinds[] = {
    EngineKind::kSmt, EngineKind::kConv, EngineKind::kSrt,
    EngineKind::kDuplex, EngineKind::kReplay, EngineKind::kDme};

/// Canonical engine name: "smt", "conv", "srt", "duplex", "replay",
/// "dme" — the same spelling used by Engine::kind(), CLI flags and
/// scenario JSON.
[[nodiscard]] std::string_view to_string(EngineKind kind) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] EngineKind parse_engine_kind(std::string_view name);

/// Human-readable list of every registered engine kind, in registry
/// order: "smt, conv, srt, duplex, replay or dme". Error messages and
/// usage text derive from this so they can never drift from the
/// registry.
[[nodiscard]] const std::string& engine_kind_list();

/// One complete, validated experiment specification: which engine to
/// run, its timing/recovery configuration, the fault process and the
/// predictor. The single source of configuration truth shared by
/// vds_cli, vds_mc and vds_sweep — each tool builds engine/fault
/// configs exclusively through the conversion methods below, so a
/// scenario means the same thing everywhere. Round-trips through JSON
/// (schema vds.scenario.v1) via to_json/from_json.
struct Scenario {
  EngineKind engine = EngineKind::kSmt;

  // --- recovery / job (defaults = vds_cli defaults) ---
  core::RecoveryScheme scheme = core::RecoveryScheme::kRollForwardDet;
  std::string predictor = "random";
  bool adaptive = false;
  double alpha = 0.65;   ///< SMT slowdown factor
  double beta = 0.1;     ///< c = t_cmp = beta * t
  int s = 20;            ///< checkpoint interval in rounds
  std::uint64_t rounds = 10000;  ///< job length in rounds
  int threads = 2;       ///< SMT hardware threads (2, 3 or 5)
  std::uint64_t seed = 1;

  // --- fault process ---
  double rate = 0.01;            ///< Poisson fault rate
  double crash_weight = 0.0;
  double permanent_weight = 0.0;
  double bias = 0.5;             ///< P(fault hits version 1)
  std::uint32_t locations = 16;
  double skew = 1.0;             ///< location uniformity in (0, 1]

  // --- baseline-engine extras (defaults = their config defaults) ---
  double srt_compare_overhead = 0.10;
  int srt_chunks_per_round = 100;
  int duplex_processors = 2;

  // --- replay/dme-engine extras (defaults = their config defaults) ---
  int replay_window = 4;
  double replay_record_overhead = 0.05;
  double dme_decorrelation = 0.5;
  double dme_common_mode = 0.3;

  /// Cross-field validation: every conversion below must succeed and
  /// the predictor must be a registered name. Throws
  /// std::invalid_argument with a "Scenario: ..." message.
  void validate() const;

  // --- conversions (exactly the wiring the tools used to hand-roll) --
  [[nodiscard]] core::VdsOptions vds_options() const;
  [[nodiscard]] baseline::SrtConfig srt_config() const;
  [[nodiscard]] baseline::DuplexConfig duplex_config() const;
  [[nodiscard]] core::ReplayConfig replay_config() const;
  [[nodiscard]] core::DmeConfig dme_config() const;
  [[nodiscard]] fault::FaultConfig fault_config() const;

  /// Generous fault-timeline horizon: the job can stretch under
  /// recoveries.
  [[nodiscard]] double horizon() const noexcept {
    return static_cast<double>(rounds) * 20.0 + 1000.0;
  }

  /// Serializes as a vds.scenario.v1 JSON document.
  void to_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json_string() const;

  /// Writes the same document through an existing writer — lets a
  /// caller embed the scenario object inside a larger envelope (the
  /// fabric config handshake does this, compactly).
  void write_json(runtime::JsonWriter& json) const;

  /// Parses and validates a vds.scenario.v1 document. Strict: unknown
  /// keys, a wrong/missing schema tag, malformed values and
  /// out-of-range fields all throw (std::invalid_argument or
  /// JsonError). Absent optional fields keep their defaults.
  [[nodiscard]] static Scenario from_json(std::string_view text);

  /// Same strictness starting from an already-parsed document —
  /// vds_serve embeds scenarios inside request envelopes and hands
  /// the inner object here without re-serializing.
  [[nodiscard]] static Scenario from_json_value(const JsonValue& doc);

  /// FNV-1a over the canonical JSON serialization: equal scenarios
  /// hash equal, any field change rehashes.
  [[nodiscard]] std::uint64_t fingerprint() const;

  [[nodiscard]] bool operator==(const Scenario&) const = default;
};

}  // namespace vds::scenario
