#pragma once

#include <cstdint>

#include "core/report.hpp"
#include "scenario/scenario.hpp"

namespace vds::runtime {
class JsonWriter;
}

namespace vds::scenario {

/// A one-shot engine run plus the context the report envelope needs.
struct RunOutcome {
  core::RunReport report;
  std::uint64_t faults_scheduled = 0;
};

/// Runs the scenario once with vds_cli's exact derivations (fault
/// timeline from Rng(seed), engine from Rng(seed+1), predictor from
/// Rng(seed+2)), so any caller — vds_cli, vds_serve — produces the
/// identical report for the same scenario.
[[nodiscard]] RunOutcome run_scenario_once(const Scenario& scenario);

/// Writes the `vds.run_report.v1` envelope (schema, engine, scheme,
/// predictor, seed, faults_scheduled, report). One writer shared by
/// vds_cli --json and vds_serve, so the documents match byte for byte
/// modulo the writer's whitespace mode.
void write_run_report(runtime::JsonWriter& json, const Scenario& scenario,
                      std::uint64_t faults_scheduled,
                      const core::RunReport& report);

}  // namespace vds::scenario
