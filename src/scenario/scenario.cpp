#include "scenario/scenario.hpp"

#include <climits>
#include <iterator>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "runtime/journal.hpp"
#include "scenario/engine_factory.hpp"
#include "scenario/json_reader.hpp"

namespace vds::scenario {

std::string_view to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kSmt: return "smt";
    case EngineKind::kConv: return "conv";
    case EngineKind::kSrt: return "srt";
    case EngineKind::kDuplex: return "duplex";
    case EngineKind::kReplay: return "replay";
    case EngineKind::kDme: return "dme";
  }
  return "unknown";
}

const std::string& engine_kind_list() {
  static const std::string list = [] {
    std::string out;
    constexpr std::size_t count = std::size(kAllEngineKinds);
    for (std::size_t i = 0; i < count; ++i) {
      if (i > 0) out += i + 1 == count ? " or " : ", ";
      out += to_string(kAllEngineKinds[i]);
    }
    return out;
  }();
  return list;
}

EngineKind parse_engine_kind(std::string_view name) {
  for (const EngineKind kind : kAllEngineKinds) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown engine '" + std::string(name) +
                              "' (expected " + engine_kind_list() + ")");
}

void Scenario::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("Scenario: " + what);
  };
  if (rounds == 0) fail("rounds must be >= 1");
  if (!known_predictor(predictor)) {
    fail("unknown predictor '" + predictor + "'");
  }
  try {
    // The selected engine's configuration must construct cleanly;
    // engine-agnostic pieces are always checked.
    switch (engine) {
      case EngineKind::kSmt:
      case EngineKind::kConv:
        vds_options().validate();
        break;
      case EngineKind::kSrt:
        srt_config().validate();
        break;
      case EngineKind::kDuplex:
        duplex_config().validate();
        break;
      case EngineKind::kReplay:
        replay_config().validate();
        break;
      case EngineKind::kDme:
        dme_config().validate();
        break;
    }
    fault_config().validate();
  } catch (const std::invalid_argument& error) {
    fail(error.what());
  }
}

core::VdsOptions Scenario::vds_options() const {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = beta;
  options.t_cmp = beta;
  options.alpha = alpha;
  options.s = s;
  options.job_rounds = rounds;
  options.scheme = scheme;
  options.adaptive_scheme = adaptive;
  options.hardware_threads = threads;
  return options;
}

baseline::SrtConfig Scenario::srt_config() const {
  baseline::SrtConfig config;
  config.alpha = alpha;
  config.s = s;
  config.job_rounds = rounds;
  config.compare_overhead = srt_compare_overhead;
  config.chunks_per_round = srt_chunks_per_round;
  return config;
}

baseline::DuplexConfig Scenario::duplex_config() const {
  baseline::DuplexConfig config;
  config.t_cmp = beta;
  config.s = s;
  config.job_rounds = rounds;
  config.processors = duplex_processors;
  return config;
}

core::ReplayConfig Scenario::replay_config() const {
  core::ReplayConfig config;
  config.alpha = alpha;
  config.compare_time = beta;
  config.s = s;
  config.job_rounds = rounds;
  config.window = replay_window;
  config.record_overhead = replay_record_overhead;
  return config;
}

core::DmeConfig Scenario::dme_config() const {
  core::DmeConfig config;
  config.alpha = alpha;
  config.t_cmp = beta;
  config.s = s;
  config.job_rounds = rounds;
  config.decorrelation = dme_decorrelation;
  config.common_mode = dme_common_mode;
  return config;
}

fault::FaultConfig Scenario::fault_config() const {
  fault::FaultConfig config;
  config.rate = rate;
  config.weight_transient = 1.0 - crash_weight - permanent_weight;
  config.weight_crash = crash_weight;
  config.weight_permanent = permanent_weight;
  config.victim1_bias = bias;
  config.locations = locations;
  config.location_uniformity = skew;
  return config;
}

void Scenario::to_json(std::ostream& os) const {
  runtime::JsonWriter json(os);
  write_json(json);
}

void Scenario::write_json(runtime::JsonWriter& json) const {
  json.begin_object();
  json.field("schema", "vds.scenario.v1");
  json.field("engine", to_string(engine));
  json.field("scheme", core::short_name(scheme));
  json.field("predictor", predictor);
  json.field("adaptive", adaptive);
  json.field("alpha", alpha);
  json.field("beta", beta);
  json.field("s", s);
  json.field("rounds", rounds);
  json.field("threads", threads);
  json.field("seed", seed);
  json.key("fault");
  json.begin_object();
  json.field("rate", rate);
  json.field("crash_weight", crash_weight);
  json.field("permanent_weight", permanent_weight);
  json.field("bias", bias);
  json.field("locations", static_cast<std::uint64_t>(locations));
  json.field("skew", skew);
  json.end_object();
  json.key("srt");
  json.begin_object();
  json.field("compare_overhead", srt_compare_overhead);
  json.field("chunks_per_round", srt_chunks_per_round);
  json.end_object();
  json.key("duplex");
  json.begin_object();
  json.field("processors", duplex_processors);
  json.end_object();
  json.key("replay");
  json.begin_object();
  json.field("window", replay_window);
  json.field("record_overhead", replay_record_overhead);
  json.end_object();
  json.key("dme");
  json.begin_object();
  json.field("decorrelation", dme_decorrelation);
  json.field("common_mode", dme_common_mode);
  json.end_object();
  json.end_object();
}

std::string Scenario::to_json_string() const {
  std::ostringstream os;
  to_json(os);
  return os.str();
}

namespace {

[[noreturn]] void from_json_fail(const std::string& what) {
  throw std::invalid_argument("Scenario: " + what);
}

int checked_int(const JsonValue& value, std::string_view key) {
  const std::int64_t wide = value.as_int(key);
  if (wide < INT_MIN || wide > INT_MAX) {
    from_json_fail(std::string(key) + " out of int range");
  }
  return static_cast<int>(wide);
}

/// Walks `object` strictly: every member must be consumed by one of
/// the handlers in `apply`; anything else is an unknown key.
template <typename Apply>
void for_each_member_strict(const JsonValue& object,
                            std::string_view where, Apply&& apply) {
  if (!object.is_object()) {
    from_json_fail(std::string(where) + " must be a JSON object");
  }
  for (const auto& [key, value] : object.members) {
    if (!apply(key, value)) {
      from_json_fail("unknown key '" + key + "' in " + std::string(where));
    }
  }
}

}  // namespace

Scenario Scenario::from_json(std::string_view text) {
  return from_json_value(parse_json(text));
}

Scenario Scenario::from_json_value(const JsonValue& doc) {
  if (!doc.is_object()) from_json_fail("document must be a JSON object");
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr ||
      schema->as_string("schema") != "vds.scenario.v1") {
    from_json_fail("missing or unsupported schema (want vds.scenario.v1)");
  }

  Scenario scenario;
  for_each_member_strict(doc, "scenario", [&](const std::string& key,
                                              const JsonValue& value) {
    if (key == "schema") return true;  // checked above
    if (key == "engine") {
      scenario.engine = parse_engine_kind(value.as_string(key));
      return true;
    }
    if (key == "scheme") {
      const auto parsed =
          core::parse_recovery_scheme(value.as_string(key));
      if (!parsed) {
        from_json_fail("unknown scheme '" + value.as_string(key) + "'");
      }
      scenario.scheme = *parsed;
      return true;
    }
    if (key == "predictor") {
      scenario.predictor = value.as_string(key);
      return true;
    }
    if (key == "adaptive") {
      scenario.adaptive = value.as_bool(key);
      return true;
    }
    if (key == "alpha") {
      scenario.alpha = value.as_double(key);
      return true;
    }
    if (key == "beta") {
      scenario.beta = value.as_double(key);
      return true;
    }
    if (key == "s") {
      scenario.s = checked_int(value, key);
      return true;
    }
    if (key == "rounds") {
      scenario.rounds = value.as_u64(key);
      return true;
    }
    if (key == "threads") {
      scenario.threads = checked_int(value, key);
      return true;
    }
    if (key == "seed") {
      scenario.seed = value.as_u64(key);
      return true;
    }
    if (key == "fault") {
      for_each_member_strict(
          value, "fault", [&](const std::string& fkey,
                              const JsonValue& fvalue) {
            if (fkey == "rate") {
              scenario.rate = fvalue.as_double(fkey);
            } else if (fkey == "crash_weight") {
              scenario.crash_weight = fvalue.as_double(fkey);
            } else if (fkey == "permanent_weight") {
              scenario.permanent_weight = fvalue.as_double(fkey);
            } else if (fkey == "bias") {
              scenario.bias = fvalue.as_double(fkey);
            } else if (fkey == "locations") {
              const std::uint64_t wide = fvalue.as_u64(fkey);
              if (wide > 0xFFFFFFFFull) {
                from_json_fail("locations out of u32 range");
              }
              scenario.locations = static_cast<std::uint32_t>(wide);
            } else if (fkey == "skew") {
              scenario.skew = fvalue.as_double(fkey);
            } else {
              return false;
            }
            return true;
          });
      return true;
    }
    if (key == "srt") {
      for_each_member_strict(
          value, "srt", [&](const std::string& skey,
                            const JsonValue& svalue) {
            if (skey == "compare_overhead") {
              scenario.srt_compare_overhead = svalue.as_double(skey);
            } else if (skey == "chunks_per_round") {
              scenario.srt_chunks_per_round = checked_int(svalue, skey);
            } else {
              return false;
            }
            return true;
          });
      return true;
    }
    if (key == "duplex") {
      for_each_member_strict(
          value, "duplex", [&](const std::string& dkey,
                               const JsonValue& dvalue) {
            if (dkey == "processors") {
              scenario.duplex_processors = checked_int(dvalue, dkey);
            } else {
              return false;
            }
            return true;
          });
      return true;
    }
    if (key == "replay") {
      for_each_member_strict(
          value, "replay", [&](const std::string& rkey,
                               const JsonValue& rvalue) {
            if (rkey == "window") {
              scenario.replay_window = checked_int(rvalue, rkey);
            } else if (rkey == "record_overhead") {
              scenario.replay_record_overhead = rvalue.as_double(rkey);
            } else {
              return false;
            }
            return true;
          });
      return true;
    }
    if (key == "dme") {
      for_each_member_strict(
          value, "dme", [&](const std::string& mkey,
                            const JsonValue& mvalue) {
            if (mkey == "decorrelation") {
              scenario.dme_decorrelation = mvalue.as_double(mkey);
            } else if (mkey == "common_mode") {
              scenario.dme_common_mode = mvalue.as_double(mkey);
            } else {
              return false;
            }
            return true;
          });
      return true;
    }
    return false;
  });

  scenario.validate();
  return scenario;
}

std::uint64_t Scenario::fingerprint() const {
  return runtime::fnv1a(to_json_string());
}

}  // namespace vds::scenario
