#include "scenario/json_reader.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace vds::scenario {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : src_(source) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != src_.size()) {
      throw JsonError("trailing characters after JSON document", pos_);
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what, pos_);
  }

  void skip_whitespace() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= src_.size()) fail("unexpected end of input");
    return src_[pos_];
  }

  void expect(char wanted) {
    if (peek() != wanted) {
      fail(std::string("expected '") + wanted + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (src_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string_token();
      skip_whitespace();
      expect(':');
      JsonValue member = parse_value();
      for (const auto& [existing, unused] : value.members) {
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      value.members.emplace_back(std::move(key), std::move(member));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  JsonValue parse_string_value() {
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    value.text = parse_string_token();
    return value;
  }

  std::string parse_string_token() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= src_.size()) fail("unterminated string");
      const char c = src_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= src_.size()) fail("unterminated escape");
      const char escape = src_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            if (pos_ >= src_.size()) fail("truncated \\u escape");
            const char h = src_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (the writer only escapes
          // ASCII control characters, so this covers round-trips).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (consume_literal("true")) {
      value.boolean = true;
    } else if (consume_literal("false")) {
      value.boolean = false;
    } else {
      fail("invalid literal");
    }
    return value;
  }

  JsonValue parse_null() {
    if (!consume_literal("null")) fail("invalid literal");
    JsonValue value;
    value.kind = JsonValue::Kind::kNull;
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < src_.size() && src_[pos_] == '-') ++pos_;
    const auto digits = [&]() {
      std::size_t count = 0;
      while (pos_ < src_.size() && src_[pos_] >= '0' && src_[pos_] <= '9') {
        ++pos_;
        ++count;
      }
      return count;
    };
    if (digits() == 0) fail("invalid number");
    if (pos_ < src_.size() && src_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("invalid number: missing fraction digits");
    }
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("invalid number: missing exponent digits");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.text = std::string(src_.substr(start, pos_ - start));
    return value;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_fail(std::string_view context, const char* wanted) {
  throw JsonError(std::string(context) + ": expected " + wanted, 0);
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool JsonValue::as_bool(std::string_view context) const {
  if (kind != Kind::kBool) type_fail(context, "a boolean");
  return boolean;
}

double JsonValue::as_double(std::string_view context) const {
  if (kind != Kind::kNumber) type_fail(context, "a number");
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) type_fail(context, "a number");
  if (errno == ERANGE && !std::isfinite(parsed)) {
    type_fail(context, "a representable number");
  }
  return parsed;
}

std::uint64_t JsonValue::as_u64(std::string_view context) const {
  if (kind != Kind::kNumber || text.empty() || text[0] == '-' ||
      text.find_first_of(".eE") != std::string::npos) {
    type_fail(context, "a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    type_fail(context, "a non-negative integer in u64 range");
  }
  return parsed;
}

std::int64_t JsonValue::as_int(std::string_view context) const {
  if (kind != Kind::kNumber ||
      text.find_first_of(".eE") != std::string::npos) {
    type_fail(context, "an integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    type_fail(context, "an integer in i64 range");
  }
  return parsed;
}

const std::string& JsonValue::as_string(std::string_view context) const {
  if (kind != Kind::kString) type_fail(context, "a string");
  return text;
}

JsonValue parse_json(std::string_view source) {
  return Parser(source).parse_document();
}

}  // namespace vds::scenario
