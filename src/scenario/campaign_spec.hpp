#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_model.hpp"
#include "runtime/mc_campaign.hpp"
#include "scenario/scenario.hpp"

namespace vds::scenario {

class JsonValue;

/// The Monte Carlo campaign-shaping knobs, factored out of vds_mc so
/// vds_serve request envelopes and vds_mc flags build the *same*
/// runtime::McConfig from the same inputs — the config-mapping parity
/// behind the serve-vs-batch bitwise-identity guarantee. Execution
/// knobs the server owns (threads, journal, chaos) stay here too so
/// to_mc_config is total, but campaign_spec_from_json refuses to set
/// them from a request.
struct CampaignSpec {
  std::uint64_t replicas = 100;
  std::vector<std::uint64_t> grid = {1, 5, 10, 15, 20};
  std::vector<vds::fault::FaultKind> kinds;  ///< empty = all four
  bool jitter = true;
  double fixed_offset = 0.3;
  std::uint64_t seed = 1;
  unsigned threads = 0;
  std::string journal;
  bool resume = false;
  /// Format for a newly created journal (resume keeps the file's own).
  runtime::JournalFormat journal_format = runtime::JournalFormat::kV3Binary;
  /// Half-open dispatch range; the full-coverage default runs every
  /// cell. Execution knobs like journal/threads — not settable from a
  /// serve request.
  std::uint64_t cell_lo = 0;
  std::uint64_t cell_hi = ~0ull;
  double cell_timeout = 0.0;
  unsigned max_retries = 2;
  std::string chaos;
  /// Adaptive sampling: relative CI target (0 keeps the fixed
  /// lattice). When armed, `max_replicas` caps each stratum (0 =
  /// reuse `replicas`) and `replicas` loses its fixed-count meaning.
  double target_ci = 0.0;
  std::uint64_t min_replicas = 8;
  std::uint64_t max_replicas = 0;
  std::uint64_t batch = 32;
};

/// Canonical fault-kind names ("transient", "crash", "permanent",
/// "processor_crash"); throws std::invalid_argument on anything else.
[[nodiscard]] vds::fault::FaultKind parse_fault_kind(
    std::string_view name);

/// Engine-parameter fingerprint folded into the journal fingerprint
/// so a journal can only be resumed against the same engine. The
/// first six folds reproduce the pre-scenario fingerprint byte for
/// byte; newer fields fold only when they differ from the defaults,
/// keeping old journals resumable.
[[nodiscard]] std::uint64_t engine_fingerprint(const Scenario& scenario);

/// Builds the campaign config exactly as vds_mc always has: grid and
/// execution knobs from `spec`, round_time = 2*alpha + beta and the
/// runner fingerprint from `scenario`.
[[nodiscard]] runtime::McConfig to_mc_config(const CampaignSpec& spec,
                                             const Scenario& scenario);

/// The scenario's campaign runner (engine stream split(1), predictor
/// stream split(2) — the deterministic draw-order contract). Captures
/// `scenario` by value so the runner outlives the caller's frame;
/// vds_serve keeps it queued long after the request parser returned.
[[nodiscard]] runtime::McRunner make_mc_runner(Scenario scenario);

/// Strict parse of a campaign object (the "campaign" member of a
/// vds.serve request envelope). Accepted keys mirror the mc_summary
/// config section: replicas, rounds (the grid), kinds, jitter_offset,
/// fixed_offset, seed, cell_timeout, max_retries, and the adaptive
/// sampling knobs target_ci, min_replicas, max_replicas, batch.
/// Unknown keys, malformed values and empty grids throw
/// std::invalid_argument.
[[nodiscard]] CampaignSpec campaign_spec_from_json(const JsonValue& doc);

/// Inverse of campaign_spec_from_json: writes the campaign object
/// with exactly the keys that parser accepts (execution knobs —
/// threads, journal, chaos — are omitted by design). Round-trip
/// identity: campaign_spec_from_json(campaign_spec_to_json(spec))
/// rebuilds the campaign-shaping fields, so both ends of a fabric
/// handshake compute the same fingerprint.
void campaign_spec_to_json(runtime::JsonWriter& json,
                           const CampaignSpec& spec);

}  // namespace vds::scenario
