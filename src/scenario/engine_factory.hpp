#pragma once

#include <memory>
#include <string_view>

#include "core/engine.hpp"
#include "fault/injector.hpp"
#include "fault/predictor.hpp"
#include "scenario/scenario.hpp"
#include "sim/rng.hpp"

namespace vds::scenario {

/// The faulty-version predictor registry (previously duplicated in
/// vds_cli and vds_mc). Known names: random, oracle, static1, static2,
/// last, two_bit, history, tournament, perceptron, crash. Throws
/// std::invalid_argument on anything else.
[[nodiscard]] std::unique_ptr<vds::fault::Predictor> make_predictor(
    std::string_view name, vds::sim::Rng rng);

[[nodiscard]] bool known_predictor(std::string_view name) noexcept;

/// Constructs the scenario's engine, validated and fully wired:
/// SmtVds gets the scenario's predictor seeded from `predictor_rng`;
/// the other engines ignore `predictor_rng`. The two RNGs are separate
/// parameters (not drawn internally) so callers control draw order —
/// e.g. vds_mc's `rng.split(1)` / `rng.split(2)` sequence.
[[nodiscard]] std::unique_ptr<vds::core::Engine> make_engine(
    const Scenario& scenario, vds::sim::Rng engine_rng,
    vds::sim::Rng predictor_rng);

/// Generates the scenario's fault timeline over `horizon` (0 = the
/// scenario's own horizon()).
[[nodiscard]] vds::fault::FaultTimeline make_timeline(
    const Scenario& scenario, vds::sim::Rng& rng, double horizon = 0.0);

}  // namespace vds::scenario
