#include "scenario/report_json.hpp"

#include "runtime/journal.hpp"
#include "scenario/engine_factory.hpp"
#include "sim/rng.hpp"

namespace vds::scenario {

RunOutcome run_scenario_once(const Scenario& scenario) {
  vds::sim::Rng fault_rng(scenario.seed);
  auto timeline = make_timeline(scenario, fault_rng);
  RunOutcome outcome;
  outcome.faults_scheduled = timeline.size();
  // Engine and predictor seeds derive from the scenario seed exactly
  // as before the scenario layer existed: seed+1 / seed+2.
  const auto engine =
      make_engine(scenario, vds::sim::Rng(scenario.seed + 1),
                  vds::sim::Rng(scenario.seed + 2));
  outcome.report = engine->run(timeline);
  return outcome;
}

void write_run_report(runtime::JsonWriter& json, const Scenario& scenario,
                      std::uint64_t faults_scheduled,
                      const core::RunReport& report) {
  json.begin_object();
  json.field("schema", "vds.run_report.v1");
  json.field("engine", to_string(scenario.engine));
  json.field("scheme", vds::core::short_name(scenario.scheme));
  json.field("predictor", scenario.predictor);
  json.field("seed", scenario.seed);
  json.field("faults_scheduled", faults_scheduled);
  json.key("report");
  vds::runtime::write_json(json, report);
  json.end_object();
}

}  // namespace vds::scenario
