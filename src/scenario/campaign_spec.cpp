#include "scenario/campaign_spec.hpp"

#include <stdexcept>
#include <utility>

#include "runtime/journal.hpp"
#include "scenario/engine_factory.hpp"
#include "scenario/json_reader.hpp"

namespace vds::scenario {

vds::fault::FaultKind parse_fault_kind(std::string_view name) {
  using vds::fault::FaultKind;
  if (name == "transient") return FaultKind::kTransient;
  if (name == "crash") return FaultKind::kCrash;
  if (name == "permanent") return FaultKind::kPermanent;
  if (name == "processor_crash") return FaultKind::kProcessorCrash;
  throw std::invalid_argument(
      "unknown fault kind '" + std::string(name) +
      "' (expected transient, crash, permanent or processor_crash)");
}

std::uint64_t engine_fingerprint(const Scenario& scenario) {
  std::uint64_t h =
      vds::runtime::fnv1a(vds::core::short_name(scenario.scheme));
  h = vds::runtime::fnv1a(scenario.predictor, h);
  h = vds::runtime::fnv1a(&scenario.alpha, sizeof scenario.alpha, h);
  h = vds::runtime::fnv1a(&scenario.beta, sizeof scenario.beta, h);
  h = vds::runtime::fnv1a(&scenario.s, sizeof scenario.s, h);
  h = vds::runtime::fnv1a(&scenario.rounds, sizeof scenario.rounds, h);
  if (scenario.engine != EngineKind::kSmt) {
    h = vds::runtime::fnv1a(to_string(scenario.engine), h);
  }
  // Engine-specific extras hash only for their own kind, so every
  // pre-existing fingerprint (and journal) is untouched.
  if (scenario.engine == EngineKind::kReplay) {
    h = vds::runtime::fnv1a(&scenario.replay_window,
                            sizeof scenario.replay_window, h);
    h = vds::runtime::fnv1a(&scenario.replay_record_overhead,
                            sizeof scenario.replay_record_overhead, h);
  }
  if (scenario.engine == EngineKind::kDme) {
    h = vds::runtime::fnv1a(&scenario.dme_decorrelation,
                            sizeof scenario.dme_decorrelation, h);
    h = vds::runtime::fnv1a(&scenario.dme_common_mode,
                            sizeof scenario.dme_common_mode, h);
  }
  if (scenario.adaptive) h = vds::runtime::fnv1a("adaptive", h);
  if (scenario.threads != 2) {
    h = vds::runtime::fnv1a(&scenario.threads, sizeof scenario.threads, h);
  }
  return h;
}

runtime::McConfig to_mc_config(const CampaignSpec& spec,
                               const Scenario& scenario) {
  runtime::McConfig config;
  if (!spec.kinds.empty()) config.kinds = spec.kinds;
  config.rounds = spec.grid;
  config.replicas = spec.replicas;
  config.round_time = 2.0 * scenario.alpha + scenario.beta;
  config.jitter_offset = spec.jitter;
  config.fixed_offset = spec.fixed_offset;
  config.seed = spec.seed;
  config.threads = spec.threads;
  config.journal_path = spec.journal;
  config.resume = spec.resume;
  config.journal_format = spec.journal_format;
  config.cell_lo = spec.cell_lo;
  config.cell_hi = spec.cell_hi;
  config.cell_timeout = spec.cell_timeout;
  config.max_retries = spec.max_retries;
  config.chaos = spec.chaos;
  config.target_ci = spec.target_ci;
  config.min_replicas = spec.min_replicas;
  config.batch = spec.batch;
  // With sampling armed, McConfig::replicas is the per-stratum
  // maximum; an explicit max_replicas overrides the replicas default.
  if (spec.target_ci > 0.0 && spec.max_replicas > 0) {
    config.replicas = spec.max_replicas;
  }
  config.runner_fingerprint = engine_fingerprint(scenario);
  return config;
}

runtime::McRunner make_mc_runner(Scenario scenario) {
  return [scenario = std::move(scenario)](
             const runtime::McCell&, vds::fault::FaultTimeline& timeline,
             vds::sim::Rng& rng) {
    // split() mutates the cell RNG, so the draw order (engine stream
    // first, predictor stream second) is part of the deterministic
    // contract -- sequence it with named locals.
    auto engine_rng = rng.split(1);
    auto predictor_rng = rng.split(2);
    const auto engine = make_engine(scenario, engine_rng, predictor_rng);
    return engine->run(timeline);
  };
}

namespace {

[[noreturn]] void spec_fail(const std::string& what) {
  throw std::invalid_argument("campaign: " + what);
}

}  // namespace

CampaignSpec campaign_spec_from_json(const JsonValue& doc) {
  if (!doc.is_object()) spec_fail("must be a JSON object");
  CampaignSpec spec;
  for (const auto& [key, value] : doc.members) {
    if (key == "replicas") {
      spec.replicas = value.as_u64(key);
      if (spec.replicas == 0) spec_fail("replicas must be >= 1");
    } else if (key == "rounds") {
      if (value.kind != JsonValue::Kind::kArray) {
        spec_fail("rounds must be an array of round numbers");
      }
      spec.grid.clear();
      for (const JsonValue& item : value.items) {
        const std::uint64_t round = item.as_u64(key);
        if (round == 0) spec_fail("rounds must be positive");
        spec.grid.push_back(round);
      }
      if (spec.grid.empty()) spec_fail("rounds must not be empty");
    } else if (key == "kinds") {
      if (value.kind != JsonValue::Kind::kArray) {
        spec_fail("kinds must be an array of fault-kind names");
      }
      spec.kinds.clear();
      for (const JsonValue& item : value.items) {
        spec.kinds.push_back(parse_fault_kind(item.as_string(key)));
      }
      if (spec.kinds.empty()) spec_fail("kinds must not be empty");
    } else if (key == "jitter_offset") {
      spec.jitter = value.as_bool(key);
    } else if (key == "fixed_offset") {
      spec.jitter = false;
      spec.fixed_offset = value.as_double(key);
    } else if (key == "seed") {
      spec.seed = value.as_u64(key);
    } else if (key == "cell_timeout") {
      spec.cell_timeout = value.as_double(key);
      if (spec.cell_timeout < 0.0) spec_fail("cell_timeout must be >= 0");
    } else if (key == "max_retries") {
      const std::uint64_t wide = value.as_u64(key);
      if (wide > 0xFFFFFFFFull) spec_fail("max_retries out of range");
      spec.max_retries = static_cast<unsigned>(wide);
    } else if (key == "target_ci") {
      spec.target_ci = value.as_double(key);
      if (spec.target_ci < 0.0) spec_fail("target_ci must be >= 0");
    } else if (key == "min_replicas") {
      spec.min_replicas = value.as_u64(key);
      if (spec.min_replicas == 0) spec_fail("min_replicas must be >= 1");
    } else if (key == "max_replicas") {
      spec.max_replicas = value.as_u64(key);
      if (spec.max_replicas == 0) spec_fail("max_replicas must be >= 1");
    } else if (key == "batch") {
      spec.batch = value.as_u64(key);
      if (spec.batch == 0) spec_fail("batch must be >= 1");
    } else {
      // threads/journal/chaos are deliberately not reachable from a
      // request: the server owns execution policy.
      spec_fail("unknown key '" + key + "'");
    }
  }
  if (spec.max_replicas > 0 && spec.target_ci == 0.0) {
    spec_fail("max_replicas requires target_ci > 0");
  }
  return spec;
}

void campaign_spec_to_json(runtime::JsonWriter& json,
                           const CampaignSpec& spec) {
  json.begin_object();
  json.field("replicas", spec.replicas);
  json.key("rounds").begin_array();
  for (const std::uint64_t round : spec.grid) json.value(round);
  json.end_array();
  if (!spec.kinds.empty()) {
    json.key("kinds").begin_array();
    for (const vds::fault::FaultKind kind : spec.kinds) {
      json.value(vds::fault::to_string(kind));
    }
    json.end_array();
  }
  // fixed_offset implies jitter_offset=false on the parse side, so
  // exactly one of the pair is written.
  if (spec.jitter) {
    json.field("jitter_offset", true);
  } else {
    json.field("fixed_offset", spec.fixed_offset);
  }
  json.field("seed", spec.seed);
  if (spec.cell_timeout > 0.0) json.field("cell_timeout", spec.cell_timeout);
  json.field("max_retries", static_cast<std::uint64_t>(spec.max_retries));
  if (spec.target_ci > 0.0) {
    json.field("target_ci", spec.target_ci);
    json.field("min_replicas", spec.min_replicas);
    if (spec.max_replicas > 0) json.field("max_replicas", spec.max_replicas);
    json.field("batch", spec.batch);
  }
  json.end_object();
}

}  // namespace vds::scenario
