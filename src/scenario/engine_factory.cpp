#include "scenario/engine_factory.hpp"

#include <stdexcept>
#include <string>

#include "baseline/duplex.hpp"
#include "baseline/srt.hpp"
#include "core/conventional.hpp"
#include "core/dme_engine.hpp"
#include "core/replay_engine.hpp"
#include "core/smt_engine.hpp"

namespace vds::scenario {

std::unique_ptr<vds::fault::Predictor> make_predictor(
    std::string_view name, vds::sim::Rng rng) {
  using namespace vds::fault;
  if (name == "random") return std::make_unique<RandomPredictor>(rng);
  if (name == "oracle") return std::make_unique<OraclePredictor>();
  if (name == "static1") {
    return std::make_unique<StaticPredictor>(VersionGuess::kVersion1);
  }
  if (name == "static2") {
    return std::make_unique<StaticPredictor>(VersionGuess::kVersion2);
  }
  if (name == "last") return std::make_unique<LastFaultyPredictor>();
  if (name == "two_bit") return std::make_unique<TwoBitPredictor>(16);
  if (name == "history") return std::make_unique<HistoryPredictor>(6, 4);
  if (name == "tournament") {
    return std::make_unique<TournamentPredictor>(6, 4);
  }
  if (name == "perceptron") return std::make_unique<PerceptronPredictor>();
  if (name == "crash") {
    return std::make_unique<CrashEvidencePredictor>(
        std::make_unique<TwoBitPredictor>(16));
  }
  throw std::invalid_argument("unknown predictor '" + std::string(name) +
                              "'");
}

bool known_predictor(std::string_view name) noexcept {
  for (const std::string_view known :
       {"random", "oracle", "static1", "static2", "last", "two_bit",
        "history", "tournament", "perceptron", "crash"}) {
    if (name == known) return true;
  }
  return false;
}

std::unique_ptr<vds::core::Engine> make_engine(
    const Scenario& scenario, vds::sim::Rng engine_rng,
    vds::sim::Rng predictor_rng) {
  scenario.validate();
  switch (scenario.engine) {
    case EngineKind::kSmt: {
      auto engine = std::make_unique<vds::core::SmtVds>(
          scenario.vds_options(), engine_rng);
      engine->set_predictor(
          make_predictor(scenario.predictor, predictor_rng));
      return engine;
    }
    case EngineKind::kConv:
      return std::make_unique<vds::core::ConventionalVds>(
          scenario.vds_options(), engine_rng);
    case EngineKind::kSrt:
      return std::make_unique<vds::baseline::LockstepSrt>(
          scenario.srt_config(), engine_rng);
    case EngineKind::kDuplex:
      return std::make_unique<vds::baseline::PhysicalDuplex>(
          scenario.duplex_config(), engine_rng);
    case EngineKind::kReplay:
      return std::make_unique<vds::core::ReplayVds>(
          scenario.replay_config(), engine_rng);
    case EngineKind::kDme:
      return std::make_unique<vds::core::DmeEngine>(
          scenario.dme_config(), engine_rng);
  }
  throw std::invalid_argument("Scenario: unhandled engine kind");
}

vds::fault::FaultTimeline make_timeline(const Scenario& scenario,
                                        vds::sim::Rng& rng,
                                        double horizon) {
  if (horizon <= 0.0) horizon = scenario.horizon();
  return vds::fault::generate_timeline(scenario.fault_config(), rng,
                                       horizon);
}

}  // namespace vds::scenario
