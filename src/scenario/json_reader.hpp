#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vds::scenario {

/// Malformed JSON input (syntax error, wrong type, out-of-range
/// number). Carries a byte offset for pointing at the problem.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) +
                           ")"),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Minimal JSON document model, the read-side counterpart of
/// runtime::JsonWriter. Parses exactly the JSON the writer emits (plus
/// arbitrary whitespace): objects, arrays, strings with the standard
/// escapes, numbers, booleans and null.
///
/// Numbers keep their raw source token so integer fields survive at
/// full u64 precision (a double round-trip would corrupt seeds above
/// 2^53); `as_u64`/`as_int` parse the token directly.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< string content, or the raw number token
  std::vector<JsonValue> items;                           ///< array
  std::vector<std::pair<std::string, JsonValue>> members; ///< object

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  // Typed accessors; each throws JsonError(offset = 0) on a kind or
  // range mismatch, naming `context` in the message.
  [[nodiscard]] bool as_bool(std::string_view context) const;
  [[nodiscard]] double as_double(std::string_view context) const;
  [[nodiscard]] std::uint64_t as_u64(std::string_view context) const;
  [[nodiscard]] std::int64_t as_int(std::string_view context) const;
  [[nodiscard]] const std::string& as_string(std::string_view context) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an
/// error. Throws JsonError on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view source);

}  // namespace vds::scenario
