#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "scenario/scenario.hpp"

namespace vds::scenario {

/// A user error on the command line (unknown flag, malformed or
/// out-of-range value, missing file). Tools catch this at top level,
/// print the message to stderr and exit non-zero.
class CliError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Throws the canonical strict-parse CliError, always naming both the
/// flag and the offending value:
///   FLAG: expected WANTED, got 'VALUE'
/// Every tool's value diagnostics go through this one formatter so the
/// message shape is uniform (and testable) across vds_cli / vds_mc /
/// vds_sweep / vds_serve.
[[noreturn]] void bad_value(std::string_view flag, std::string_view text,
                            std::string_view wanted);

// --- strict numeric parsing -------------------------------------------
// Each parser consumes the ENTIRE token and range-checks the result;
// "bogus", "1.5x", "" or an out-of-range value throw CliError naming
// the flag AND the value (via bad_value above). (The atof/atoi they
// replace silently produced 0.)

[[nodiscard]] double parse_double(std::string_view flag,
                                  std::string_view text);
[[nodiscard]] std::uint64_t parse_u64(std::string_view flag,
                                      std::string_view text);
[[nodiscard]] int parse_int(std::string_view flag, std::string_view text);
[[nodiscard]] unsigned parse_unsigned(std::string_view flag,
                                      std::string_view text);

/// Cursor over argv. `next()` yields the current token; the `value*`
/// helpers fetch a flag's argument (throwing CliError when argv is
/// exhausted) and parse it strictly.
class ArgCursor {
 public:
  ArgCursor(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] bool done() const noexcept { return k_ >= argc_; }

  /// The next raw token; precondition: !done().
  [[nodiscard]] std::string_view next() { return argv_[k_++]; }

  /// The value following `flag`; throws CliError when missing.
  [[nodiscard]] std::string_view value(std::string_view flag);

  [[nodiscard]] double value_double(std::string_view flag) {
    return parse_double(flag, value(flag));
  }
  [[nodiscard]] std::uint64_t value_u64(std::string_view flag) {
    return parse_u64(flag, value(flag));
  }
  [[nodiscard]] int value_int(std::string_view flag) {
    return parse_int(flag, value(flag));
  }
  [[nodiscard]] unsigned value_unsigned(std::string_view flag) {
    return parse_unsigned(flag, value(flag));
  }

 private:
  int argc_;
  char** argv_;
  int k_ = 1;
};

/// Routes one scenario flag (engine selection, recovery, job, fault
/// process, `--scenario FILE` loading) into `scenario`. Returns false
/// when `arg` is not a scenario flag — the tool then tries its own
/// flags or reports an unknown option. Throws CliError on a malformed
/// value. This is THE shared argument parser: vds_cli, vds_mc and
/// vds_sweep all resolve engine configuration through it.
[[nodiscard]] bool apply_scenario_flag(Scenario& scenario,
                                       std::string_view arg,
                                       ArgCursor& args);

/// Usage text for the flags apply_scenario_flag understands, for
/// embedding in each tool's --help output.
[[nodiscard]] std::string_view scenario_usage() noexcept;

/// Where a run's observability output goes — the shared `--metrics
/// FILE` / `--trace FILE` flags. Both default off; either one arms
/// collection in the global metrics registry. With the layer compiled
/// out (VDS_METRICS=OFF) the flags stay accepted and the files are
/// still written, holding an empty snapshot / empty event array.
struct Observability {
  std::string metrics_path;  ///< vds.metrics.v1 snapshot ("-" = stdout)
  std::string trace_path;    ///< Chrome trace-event JSON array

  [[nodiscard]] bool wanted() const noexcept {
    return !metrics_path.empty() || !trace_path.empty();
  }

  /// Enables counter/timing collection (and span tracing when a trace
  /// file was requested). Call before the measured work starts.
  void arm() const;

  /// Writes the requested files. Call after the work finished; throws
  /// CliError when a file cannot be written.
  void write() const;
};

/// Routes `--metrics FILE` / `--trace FILE` into `obs`; false when
/// `arg` is neither flag.
[[nodiscard]] bool apply_observability_flag(Observability& obs,
                                            std::string_view arg,
                                            ArgCursor& args);

/// Usage text for the observability flags.
[[nodiscard]] std::string_view observability_usage() noexcept;

struct CampaignSpec;

/// Routes one campaign flag (grid shape, seed, journal, sharding,
/// robustness and adaptive-sampling knobs) into `spec`. Returns false
/// when `arg` is not a campaign flag. The shared parser behind vds_mc
/// and vds_fabric, so a fabric coordinator accepts exactly the
/// campaign grammar the one-shot tool does — flag-for-flag.
[[nodiscard]] bool apply_campaign_flag(CampaignSpec& spec,
                                       std::string_view arg,
                                       ArgCursor& args);

/// Usage text for the flags apply_campaign_flag understands.
[[nodiscard]] std::string_view campaign_usage() noexcept;

/// Reads an entire file (CliError on failure) — for `--scenario FILE`.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace vds::scenario
