#include "scenario/cli.hpp"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "runtime/journal.hpp"
#include "runtime/metrics.hpp"
#include "scenario/campaign_spec.hpp"
#include "scenario/engine_factory.hpp"

namespace vds::scenario {

void bad_value(std::string_view flag, std::string_view text,
               std::string_view wanted) {
  throw CliError(std::string(flag) + ": expected " + std::string(wanted) +
                 ", got '" + std::string(text) + "'");
}

double parse_double(std::string_view flag, std::string_view text) {
  const std::string token(text);
  if (token.empty()) bad_value(flag, text, "a number");
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    bad_value(flag, text, "a number");
  }
  if (!std::isfinite(parsed)) {
    bad_value(flag, text, "a finite number");
  }
  return parsed;
}

std::uint64_t parse_u64(std::string_view flag, std::string_view text) {
  const std::string token(text);
  // strtoull silently accepts "-1" by wrapping around; reject signs.
  if (token.empty() || token[0] == '-' || token[0] == '+') {
    bad_value(flag, text, "a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    bad_value(flag, text, "a non-negative integer");
  }
  if (errno == ERANGE) {
    bad_value(flag, text, "an integer in u64 range");
  }
  return parsed;
}

int parse_int(std::string_view flag, std::string_view text) {
  const std::string token(text);
  if (token.empty()) bad_value(flag, text, "an integer");
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    bad_value(flag, text, "an integer");
  }
  if (errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
    bad_value(flag, text, "an integer in int range");
  }
  return static_cast<int>(parsed);
}

unsigned parse_unsigned(std::string_view flag, std::string_view text) {
  const std::uint64_t parsed = parse_u64(flag, text);
  if (parsed > UINT_MAX) {
    bad_value(flag, text, "an integer in unsigned range");
  }
  return static_cast<unsigned>(parsed);
}

std::string_view ArgCursor::value(std::string_view flag) {
  if (done()) {
    throw CliError("missing value for " + std::string(flag));
  }
  return next();
}

bool apply_scenario_flag(Scenario& scenario, std::string_view arg,
                         ArgCursor& args) {
  if (arg == "--scenario") {
    const std::string path(args.value(arg));
    try {
      scenario = Scenario::from_json(read_file(path));
    } catch (const std::exception& error) {
      throw CliError(path + ": " + error.what());
    }
    return true;
  }
  if (arg == "--engine") {
    const std::string_view name = args.value(arg);
    try {
      scenario.engine = parse_engine_kind(name);
    } catch (const std::invalid_argument&) {
      bad_value(arg, name, engine_kind_list());
    }
    return true;
  }
  if (arg == "--scheme") {
    const std::string_view name = args.value(arg);
    const auto parsed = core::parse_recovery_scheme(name);
    if (!parsed) {
      bad_value(arg, name, "rollback, retry, det, prob or predict");
    }
    scenario.scheme = *parsed;
    return true;
  }
  if (arg == "--predictor") {
    const std::string_view name = args.value(arg);
    // Reject here, not in validate(): the diagnostic must name the
    // flag and value like every other strict-parse error.
    if (!known_predictor(name)) {
      bad_value(arg, name, "a registered predictor name");
    }
    scenario.predictor = std::string(name);
    return true;
  }
  if (arg == "--adaptive") {
    scenario.adaptive = true;
    return true;
  }
  if (arg == "--alpha") {
    scenario.alpha = args.value_double(arg);
    return true;
  }
  if (arg == "--beta") {
    scenario.beta = args.value_double(arg);
    return true;
  }
  if (arg == "--s") {
    scenario.s = args.value_int(arg);
    return true;
  }
  if (arg == "--rounds") {
    scenario.rounds = args.value_u64(arg);
    return true;
  }
  if (arg == "--threads") {
    scenario.threads = args.value_int(arg);
    return true;
  }
  if (arg == "--seed") {
    scenario.seed = args.value_u64(arg);
    return true;
  }
  if (arg == "--rate") {
    scenario.rate = args.value_double(arg);
    return true;
  }
  if (arg == "--crash-weight") {
    scenario.crash_weight = args.value_double(arg);
    return true;
  }
  if (arg == "--permanent-weight") {
    scenario.permanent_weight = args.value_double(arg);
    return true;
  }
  if (arg == "--bias") {
    scenario.bias = args.value_double(arg);
    return true;
  }
  if (arg == "--locations") {
    const std::string_view text = args.value(arg);
    const std::uint64_t wide = parse_u64(arg, text);
    if (wide > 0xFFFFFFFFull) {
      bad_value(arg, text, "an integer in u32 range");
    }
    scenario.locations = static_cast<std::uint32_t>(wide);
    return true;
  }
  if (arg == "--skew") {
    scenario.skew = args.value_double(arg);
    return true;
  }
  if (arg == "--replay-window") {
    scenario.replay_window = args.value_int(arg);
    return true;
  }
  if (arg == "--replay-overhead") {
    scenario.replay_record_overhead = args.value_double(arg);
    return true;
  }
  if (arg == "--decorrelation") {
    scenario.dme_decorrelation = args.value_double(arg);
    return true;
  }
  if (arg == "--common-mode") {
    scenario.dme_common_mode = args.value_double(arg);
    return true;
  }
  return false;
}

std::string_view scenario_usage() noexcept {
  return R"(scenario (shared across vds_cli / vds_mc / vds_sweep):
  --scenario FILE                load a vds.scenario.v1 JSON file
                                 (later flags override its fields)
  --engine smt|conv|srt|duplex|replay|dme
                                 protocol engine            [smt]
  --scheme rollback|retry|det|prob|predict   recovery scheme [det]
  --predictor random|oracle|static1|static2|last|two_bit|history|tournament|perceptron|crash
                                 faulty-version predictor   [random]
  --adaptive                     adaptive det/prob selection
  --alpha X                      SMT slowdown factor        [0.65]
  --beta X                       c = t_cmp = beta * t       [0.1]
  --s N                          checkpoint interval        [20]
  --rounds N                     job length in rounds       [10000]
  --threads 2|3|5                hardware threads           [2]
  --seed N                       RNG seed                   [1]
  --rate X                       Poisson fault rate         [0.01]
  --crash-weight X               crash fault fraction       [0]
  --permanent-weight X           permanent fault fraction   [0]
  --bias X                       P(fault hits version 1)    [0.5]
  --locations N                  abstract fault locations   [16]
  --skew X                       location uniformity (0,1]  [1.0]
  --replay-window N              replay: rounds per compare [4]
  --replay-overhead X            replay: record slowdown    [0.05]
  --decorrelation X              dme: structural diversity d [0.5]
  --common-mode X                dme: common-mode fraction at
                                 d = 0                      [0.3]
)";
}

bool apply_observability_flag(Observability& obs, std::string_view arg,
                              ArgCursor& args) {
  if (arg == "--metrics") {
    obs.metrics_path = std::string(args.value(arg));
    return true;
  }
  if (arg == "--trace") {
    obs.trace_path = std::string(args.value(arg));
    return true;
  }
  return false;
}

std::string_view observability_usage() noexcept {
  return R"(observability (shared across vds_cli / vds_mc / vds_sweep):
  --metrics FILE                 write a vds.metrics.v1 snapshot
                                 ("-" = stdout); the "counters"
                                 section is bitwise-stable across
                                 --threads, timings are wall-clock
  --trace FILE                   write Chrome trace-event spans
                                 (load in chrome://tracing / Perfetto)
)";
}

void Observability::arm() const {
  auto& registry = vds::runtime::metrics::registry();
  if (wanted()) registry.set_enabled(true);
  if (!trace_path.empty()) registry.set_tracing(true);
}

namespace {

template <typename WriteFn>
void write_to(const std::string& path, const char* what, WriteFn&& fn) {
  if (path == "-") {
    fn(std::cout);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw CliError(std::string("cannot write ") + what + " '" + path + "'");
  }
  fn(out);
  out.flush();
  if (!out) {
    throw CliError(std::string(what) + " '" + path + "': write failed");
  }
}

}  // namespace

void Observability::write() const {
  auto& registry = vds::runtime::metrics::registry();
  if (!metrics_path.empty()) {
    write_to(metrics_path, "metrics snapshot", [&](std::ostream& os) {
      registry.write_snapshot(os);
    });
  }
  if (!trace_path.empty()) {
    write_to(trace_path, "trace",
             [&](std::ostream& os) { registry.write_trace(os); });
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CliError("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

bool apply_campaign_flag(CampaignSpec& spec, std::string_view arg,
                         ArgCursor& args) {
  if (arg == "--replicas") {
    spec.replicas = args.value_u64(arg);
  } else if (arg == "--grid") {
    spec.grid.clear();
    for (const std::string& part : split_csv(std::string(args.value(arg)))) {
      const std::uint64_t round = parse_u64(arg, part);
      if (round == 0) bad_value(arg, part, "a positive round number");
      spec.grid.push_back(round);
    }
  } else if (arg == "--kinds") {
    spec.kinds.clear();
    for (const std::string& part : split_csv(std::string(args.value(arg)))) {
      try {
        spec.kinds.push_back(parse_fault_kind(part));
      } catch (const std::invalid_argument&) {
        bad_value(arg, part,
                  "transient, crash, permanent or processor_crash");
      }
    }
  } else if (arg == "--fixed-offset") {
    spec.jitter = false;
    spec.fixed_offset = args.value_double(arg);
  } else if (arg == "--threads") {
    spec.threads = args.value_unsigned(arg);
  } else if (arg == "--seed") {
    spec.seed = args.value_u64(arg);
  } else if (arg == "--journal") {
    spec.journal = std::string(args.value(arg));
  } else if (arg == "--journal-format") {
    const std::string_view text = args.value(arg);
    if (text == "v2") {
      spec.journal_format = vds::runtime::JournalFormat::kV2Text;
    } else if (text == "v3") {
      spec.journal_format = vds::runtime::JournalFormat::kV3Binary;
    } else {
      bad_value(arg, text, "v2 or v3");
    }
  } else if (arg == "--resume") {
    spec.resume = true;
  } else if (arg == "--cell-range") {
    const std::string text(args.value(arg));
    const std::size_t colon = text.find(':');
    if (colon == std::string::npos) {
      bad_value(arg, text, "LO:HI (a half-open cell range)");
    }
    spec.cell_lo = parse_u64(arg, text.substr(0, colon));
    spec.cell_hi = parse_u64(arg, text.substr(colon + 1));
    if (spec.cell_lo >= spec.cell_hi) {
      bad_value(arg, text, "LO < HI");
    }
  } else if (arg == "--cell-timeout") {
    const std::string_view text = args.value(arg);
    spec.cell_timeout = parse_double(arg, text);
    if (spec.cell_timeout < 0.0) {
      bad_value(arg, text, "a number >= 0");
    }
  } else if (arg == "--max-retries") {
    spec.max_retries = args.value_unsigned(arg);
  } else if (arg == "--target-ci") {
    const std::string_view text = args.value(arg);
    spec.target_ci = parse_double(arg, text);
    if (spec.target_ci <= 0.0) {
      bad_value(arg, text, "a relative half-width > 0");
    }
  } else if (arg == "--min-replicas") {
    const std::string_view text = args.value(arg);
    spec.min_replicas = parse_u64(arg, text);
    if (spec.min_replicas == 0) {
      bad_value(arg, text, "a replica count >= 1");
    }
  } else if (arg == "--max-replicas") {
    const std::string_view text = args.value(arg);
    spec.max_replicas = parse_u64(arg, text);
    if (spec.max_replicas == 0) {
      bad_value(arg, text, "a replica count >= 1");
    }
  } else if (arg == "--batch") {
    const std::string_view text = args.value(arg);
    spec.batch = parse_u64(arg, text);
    if (spec.batch == 0) {
      bad_value(arg, text, "a wave size >= 1");
    }
  } else if (arg == "--chaos") {
    spec.chaos = std::string(args.value(arg));
  } else {
    return false;
  }
  return true;
}

std::string_view campaign_usage() noexcept {
  return R"(campaign grid:
  --replicas N                   Monte Carlo replicas per grid cell [100]
  --grid r1,r2,...               detection rounds to inject at [1,5,10,15,20]
  --kinds k1,k2,...              transient,crash,permanent,processor_crash
                                 (comma-separated)            [all four]
  --fixed-offset X               disable fault-position jitter, use
                                 fractional offset X within the round

execution:
  --threads N                    worker threads (0 = hardware) [0]
  --seed N                       campaign RNG seed            [1]
  --journal PATH                 append-only progress journal
                                 (CRC32C per record; v1/v2 text and
                                 v3 binary journals all resume fine)
  --journal-format FORMAT        encoding when a *new* journal is
                                 created: v3 (binary, default) or v2
                                 (text); resuming an existing journal
                                 keeps the file's own format
  --resume                       skip cells already in the journal;
                                 corrupt/torn records are counted and
                                 their cells re-executed
  --cell-range LO:HI             dispatch only cells in [LO, HI) —
                                 shard a campaign across processes,
                                 then 'vds_journal merge' the shard
                                 journals and --resume the result

adaptive sampling:
  --target-ci X                  stop each (kind, round) stratum once
                                 the relative 95% Student-t CI
                                 half-width of its tracked statistics
                                 reaches X           [0 = fixed grid]
  --min-replicas N               never stop a stratum earlier    [8]
  --max-replicas N               per-stratum replica cap (replaces
                                 --replicas as the maximum; requires
                                 --target-ci)
  --batch N                      replicas per dispatch wave      [32]

robustness:
  --cell-timeout SECONDS         per-cell watchdog; a hung cell is
                                 retried, then quarantined [0 = off]
  --max-retries N                retries before quarantine    [2]
  --chaos SPEC                   arm deterministic harness fault points,
                                 SPEC = site=prob[:limit],...  (sites:
                                 cell.hang cell.fail journal.corrupt
                                 journal.torn pool.delay); also read
                                 from $VDS_CHAOS
)";
}

}  // namespace vds::scenario
