#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace vds::fault {

/// Fault classes from the paper's fault model (§2.1).
enum class FaultKind : std::uint8_t {
  kTransient,       ///< bit flip in one version's state; silent until the
                    ///< next state comparison
  kCrash,           ///< stops one version immediately; detected at once and
                    ///< identifies the faulty version (the §4 "evidence")
  kPermanent,       ///< persistent hardware defect; detectable only through
                    ///< version diversity (different hardware usage)
  kProcessorCrash,  ///< stops the entire processor incl. all versions;
                    ///< recovery only by rollback
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// Identifier of the version a fault strikes. kAnyActive lets the
/// engine resolve the victim from which version occupies the processor
/// at the fault instant (relevant on the conventional processor, where
/// version slices do not overlap).
enum class Victim : std::uint8_t { kVersion1, kVersion2, kAnyActive };

/// A concrete fault to be injected.
struct Fault {
  vds::sim::SimTime when = 0.0;
  FaultKind kind = FaultKind::kTransient;
  Victim victim = Victim::kAnyActive;
  /// Abstract hardware location the fault originates from (register
  /// index, functional-unit id, ...). Fault streams biased toward few
  /// locations are what history-based predictors exploit (§5).
  std::uint32_t location = 0;
  /// For transient faults: which state word/bit the flip lands in.
  std::uint32_t word = 0;
  std::uint8_t bit = 0;

  [[nodiscard]] std::string describe() const;
};

/// Parameters of the random fault process.
struct FaultConfig {
  double rate = 0.0;  ///< Poisson rate (faults per unit simulated time)
  /// Probability mix of fault kinds (normalized internally).
  double weight_transient = 1.0;
  double weight_crash = 0.0;
  double weight_permanent = 0.0;
  double weight_processor_crash = 0.0;
  /// Number of distinct abstract hardware locations.
  std::uint32_t locations = 16;
  /// Spatial bias in (0, 1]: 1 = uniform over locations; smaller values
  /// concentrate faults on low-numbered locations (geometric-like),
  /// modeling a weak hardware part repeatedly hit by radiation (§5).
  double location_uniformity = 1.0;
  /// Probability that a fault targets version 1 (vs version 2) when the
  /// victim cannot be derived from occupancy. A biased value models one
  /// version exercising the weak hardware part more.
  double victim1_bias = 0.5;

  void validate() const;
};

}  // namespace vds::fault
