#include "fault/detector.hpp"

namespace vds::fault {

CompareOutcome compare_states(const vds::checkpoint::VersionState& a,
                              const vds::checkpoint::VersionState& b) noexcept {
  return a.digest() == b.digest() ? CompareOutcome::kMatch
                                  : CompareOutcome::kMismatch;
}

VoteOutcome majority_vote(const vds::checkpoint::VersionState& p,
                          const vds::checkpoint::VersionState& q,
                          const vds::checkpoint::VersionState& s) noexcept {
  const bool pq = p.digest() == q.digest();
  const bool ps = p.digest() == s.digest();
  const bool qs = q.digest() == s.digest();
  if (pq && ps) return VoteOutcome::kAllAgree;
  if (qs && !ps) return VoteOutcome::kVersion1Faulty;
  if (ps && !qs) return VoteOutcome::kVersion2Faulty;
  if (pq && !ps) {
    // P == Q but the retry disagrees: the retry itself was hit.
    return VoteOutcome::kNoMajority;
  }
  return VoteOutcome::kNoMajority;
}

}  // namespace vds::fault
