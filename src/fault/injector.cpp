#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

namespace vds::fault {

FaultTimeline::FaultTimeline(std::vector<Fault> faults)
    : faults_(std::move(faults)) {
  std::stable_sort(faults_.begin(), faults_.end(),
                   [](const Fault& a, const Fault& b) {
                     return a.when < b.when;
                   });
}

std::vector<Fault> FaultTimeline::drain_window(vds::sim::SimTime from,
                                               vds::sim::SimTime to) {
  std::vector<Fault> out;
  // Skip anything strictly before the window (already consumed or
  // belonging to a phase the caller chose to skip).
  while (cursor_ < faults_.size() && faults_[cursor_].when < from) ++cursor_;
  while (cursor_ < faults_.size() && faults_[cursor_].when < to) {
    out.push_back(faults_[cursor_]);
    ++cursor_;
  }
  return out;
}

vds::sim::SimTime FaultTimeline::next_time() const noexcept {
  if (cursor_ >= faults_.size()) return vds::sim::kTimeInfinity;
  return faults_[cursor_].when;
}

Fault sample_fault_body(const FaultConfig& config, vds::sim::Rng& rng) {
  Fault fault;

  const double total = config.weight_transient + config.weight_crash +
                       config.weight_permanent +
                       config.weight_processor_crash;
  const double roll = rng.uniform() * total;
  if (roll < config.weight_transient) {
    fault.kind = FaultKind::kTransient;
  } else if (roll < config.weight_transient + config.weight_crash) {
    fault.kind = FaultKind::kCrash;
  } else if (roll < config.weight_transient + config.weight_crash +
                        config.weight_permanent) {
    fault.kind = FaultKind::kPermanent;
  } else {
    fault.kind = FaultKind::kProcessorCrash;
  }

  fault.victim = rng.bernoulli(config.victim1_bias) ? Victim::kVersion1
                                                    : Victim::kVersion2;

  // Spatial bias: draw an exponent-skewed index. uniformity == 1 gives a
  // uniform draw; smaller values concentrate probability mass on
  // low-numbered locations (a "weak part" hit repeatedly).
  const double u = rng.uniform();
  const double skewed = std::pow(u, 1.0 / config.location_uniformity);
  fault.location = static_cast<std::uint32_t>(
      std::min<double>(config.locations - 1,
                       skewed * static_cast<double>(config.locations)));

  fault.word = static_cast<std::uint32_t>(rng.uniform_index(1u << 16));
  fault.bit = static_cast<std::uint8_t>(rng.uniform_index(64));
  return fault;
}

FaultTimeline generate_timeline(const FaultConfig& config,
                                vds::sim::Rng& rng,
                                vds::sim::SimTime horizon) {
  config.validate();
  std::vector<Fault> faults;
  if (config.rate > 0.0) {
    vds::sim::SimTime when = 0.0;
    for (;;) {
      when += rng.exponential(config.rate);
      if (when >= horizon) break;
      Fault fault = sample_fault_body(config, rng);
      fault.when = when;
      faults.push_back(fault);
    }
  }
  return FaultTimeline(std::move(faults));
}

FaultTimeline single_fault_at(const FaultConfig& config, vds::sim::Rng& rng,
                              vds::sim::SimTime when) {
  config.validate();
  Fault fault = sample_fault_body(config, rng);
  fault.when = when;
  return FaultTimeline({fault});
}

}  // namespace vds::fault
