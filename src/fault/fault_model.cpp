#include "fault/fault_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vds::fault {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTransient: return "transient";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kPermanent: return "permanent";
    case FaultKind::kProcessorCrash: return "processor_crash";
  }
  return "unknown";
}

std::string Fault::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " @" << when;
  switch (victim) {
    case Victim::kVersion1: os << " ->V1"; break;
    case Victim::kVersion2: os << " ->V2"; break;
    case Victim::kAnyActive: os << " ->active"; break;
  }
  os << " loc=" << location << " word=" << word
     << " bit=" << static_cast<int>(bit);
  return os.str();
}

void FaultConfig::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("FaultConfig: ") + what);
  };
  if (rate < 0.0 || !std::isfinite(rate)) fail("rate must be finite, >= 0");
  const double total = weight_transient + weight_crash + weight_permanent +
                       weight_processor_crash;
  if (!(total > 0.0)) fail("fault kind weights must sum to > 0");
  if (weight_transient < 0 || weight_crash < 0 || weight_permanent < 0 ||
      weight_processor_crash < 0) {
    fail("fault kind weights must be non-negative");
  }
  if (locations == 0) fail("locations must be >= 1");
  if (!(location_uniformity > 0.0) || location_uniformity > 1.0) {
    fail("location_uniformity must be in (0, 1]");
  }
  if (victim1_bias < 0.0 || victim1_bias > 1.0) {
    fail("victim1_bias must be in [0, 1]");
  }
}

}  // namespace vds::fault
