#pragma once

#include <vector>

#include "fault/fault_model.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace vds::fault {

/// A pre-generated, time-sorted sequence of faults. The VDS engines
/// consume faults from the timeline as simulated time advances; this
/// keeps fault generation independent of protocol control flow, so a
/// conventional and an SMT run can be driven by the *same* fault
/// history for a paired comparison.
class FaultTimeline {
 public:
  FaultTimeline() = default;
  explicit FaultTimeline(std::vector<Fault> faults);

  /// All faults with `when` in [from, to). Advances the internal cursor;
  /// calls must be made with non-decreasing windows.
  [[nodiscard]] std::vector<Fault> drain_window(vds::sim::SimTime from,
                                                vds::sim::SimTime to);

  /// Next pending fault time, or infinity if exhausted.
  [[nodiscard]] vds::sim::SimTime next_time() const noexcept;

  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return faults_.size() - cursor_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return faults_.size(); }

  void rewind() noexcept { cursor_ = 0; }

 private:
  std::vector<Fault> faults_;
  std::size_t cursor_ = 0;
};

/// Samples a fault's non-temporal attributes (kind, victim, location,
/// word/bit) from the configured distributions.
[[nodiscard]] Fault sample_fault_body(const FaultConfig& config,
                                      vds::sim::Rng& rng);

/// Generates a Poisson fault process over [0, horizon).
[[nodiscard]] FaultTimeline generate_timeline(const FaultConfig& config,
                                              vds::sim::Rng& rng,
                                              vds::sim::SimTime horizon);

/// Generates exactly one fault at the given time (deterministic body
/// attributes drawn from `rng`). Used by the paired per-round-i
/// validation experiments (E8).
[[nodiscard]] FaultTimeline single_fault_at(const FaultConfig& config,
                                            vds::sim::Rng& rng,
                                            vds::sim::SimTime when);

}  // namespace vds::fault
