#include "fault/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace vds::fault {

double Predictor::accuracy() const noexcept {
  if (total_ == 0) return 0.5;
  return static_cast<double>(hits_) / static_cast<double>(total_);
}

VersionGuess RandomPredictor::predict(const FaultEvidence&) {
  last_ = rng_.bernoulli(0.5) ? VersionGuess::kVersion1
                              : VersionGuess::kVersion2;
  return *last_;
}

void RandomPredictor::feedback(const FaultEvidence&, VersionGuess actual) {
  if (last_) record_outcome(*last_ == actual);
  last_.reset();
}

VersionGuess OraclePredictor::predict(const FaultEvidence&) {
  last_ = truth_;
  return truth_;
}

void OraclePredictor::feedback(const FaultEvidence&, VersionGuess actual) {
  if (last_) record_outcome(*last_ == actual);
  last_.reset();
}

VersionGuess StaticPredictor::predict(const FaultEvidence&) { return guess_; }

void StaticPredictor::feedback(const FaultEvidence&, VersionGuess actual) {
  record_outcome(guess_ == actual);
}

CrashEvidencePredictor::CrashEvidencePredictor(
    std::unique_ptr<Predictor> fallback)
    : fallback_(std::move(fallback)) {}

VersionGuess CrashEvidencePredictor::predict(const FaultEvidence& e) {
  last_was_crash_ = e.crashed.has_value();
  last_ = last_was_crash_ ? *e.crashed : fallback_->predict(e);
  return *last_;
}

void CrashEvidencePredictor::feedback(const FaultEvidence& e,
                                      VersionGuess actual) {
  if (last_) record_outcome(*last_ == actual);
  if (!last_was_crash_) fallback_->feedback(e, actual);
  last_.reset();
}

VersionGuess LastFaultyPredictor::predict(const FaultEvidence&) {
  last_ = state_;
  return state_;
}

void LastFaultyPredictor::feedback(const FaultEvidence&,
                                   VersionGuess actual) {
  if (last_) record_outcome(*last_ == actual);
  state_ = actual;
  last_.reset();
}

TwoBitPredictor::TwoBitPredictor(std::uint32_t table_size)
    : table_(table_size == 0 ? 1 : table_size, 1) {}

std::uint32_t TwoBitPredictor::index(const FaultEvidence& e) const noexcept {
  return e.location % static_cast<std::uint32_t>(table_.size());
}

VersionGuess TwoBitPredictor::predict(const FaultEvidence& e) {
  last_index_ = index(e);
  last_ = table_[last_index_] >= 2 ? VersionGuess::kVersion2
                                   : VersionGuess::kVersion1;
  return *last_;
}

void TwoBitPredictor::feedback(const FaultEvidence& e, VersionGuess actual) {
  if (last_) record_outcome(*last_ == actual);
  const std::uint32_t idx = last_ ? last_index_ : index(e);
  std::uint8_t& counter = table_[idx];
  if (actual == VersionGuess::kVersion2) {
    if (counter < 3) ++counter;
  } else {
    if (counter > 0) --counter;
  }
  last_.reset();
}

HistoryPredictor::HistoryPredictor(std::uint32_t table_bits,
                                   std::uint32_t history_bits)
    : table_(1u << table_bits, 1),
      history_mask_((1u << history_bits) - 1u),
      table_mask_((1u << table_bits) - 1u) {}

std::uint32_t HistoryPredictor::index(const FaultEvidence& e) const noexcept {
  return (e.location ^ (history_ & history_mask_)) & table_mask_;
}

VersionGuess HistoryPredictor::predict(const FaultEvidence& e) {
  last_index_ = index(e);
  last_ = table_[last_index_] >= 2 ? VersionGuess::kVersion2
                                   : VersionGuess::kVersion1;
  return *last_;
}

void HistoryPredictor::feedback(const FaultEvidence& e, VersionGuess actual) {
  if (last_) record_outcome(*last_ == actual);
  const std::uint32_t idx = last_ ? last_index_ : index(e);
  std::uint8_t& counter = table_[idx];
  if (actual == VersionGuess::kVersion2) {
    if (counter < 3) ++counter;
  } else {
    if (counter > 0) --counter;
  }
  history_ = ((history_ << 1) |
              (actual == VersionGuess::kVersion2 ? 1u : 0u)) &
             history_mask_;
  last_.reset();
}

TournamentPredictor::TournamentPredictor(std::uint32_t table_bits,
                                         std::uint32_t history_bits)
    : bimodal_(1u << table_bits), gshare_(table_bits, history_bits),
      chooser_(1u << table_bits, 1),
      table_mask_((1u << table_bits) - 1u) {}

VersionGuess TournamentPredictor::predict(const FaultEvidence& e) {
  last_bimodal_ = bimodal_.predict(e);
  last_gshare_ = gshare_.predict(e);
  last_index_ = e.location & table_mask_;
  last_ = chooser_[last_index_] >= 2 ? last_gshare_ : last_bimodal_;
  return *last_;
}

void TournamentPredictor::feedback(const FaultEvidence& e,
                                   VersionGuess actual) {
  if (last_) record_outcome(*last_ == actual);
  // Train the chooser toward whichever component was right (only when
  // they disagreed -- agreement carries no signal).
  const bool bimodal_right = last_bimodal_ == actual;
  const bool gshare_right = last_gshare_ == actual;
  std::uint8_t& choice = chooser_[last_index_];
  if (gshare_right && !bimodal_right) {
    if (choice < 3) ++choice;
  } else if (bimodal_right && !gshare_right) {
    if (choice > 0) --choice;
  }
  bimodal_.feedback(e, actual);
  gshare_.feedback(e, actual);
  last_.reset();
}

PerceptronPredictor::PerceptronPredictor(std::uint32_t tables,
                                         std::uint32_t history_bits,
                                         std::int32_t threshold)
    : history_bits_(history_bits == 0 ? 1 : history_bits),
      threshold_(threshold),
      weights_(tables == 0 ? 1 : tables,
               std::vector<std::int32_t>(history_bits_ + 1, 0)),
      history_(history_bits_, -1) {}

std::int32_t PerceptronPredictor::dot(std::uint32_t table) const noexcept {
  const auto& w = weights_[table];
  std::int32_t sum = w[0];  // bias
  for (std::uint32_t k = 0; k < history_bits_; ++k) {
    sum += w[k + 1] * history_[k];
  }
  return sum;
}

VersionGuess PerceptronPredictor::predict(const FaultEvidence& e) {
  last_table_ = e.location % static_cast<std::uint32_t>(weights_.size());
  last_sum_ = dot(last_table_);
  last_ = last_sum_ >= 0 ? VersionGuess::kVersion2
                         : VersionGuess::kVersion1;
  return *last_;
}

void PerceptronPredictor::feedback(const FaultEvidence&,
                                   VersionGuess actual) {
  if (last_) record_outcome(*last_ == actual);
  const std::int32_t target =
      actual == VersionGuess::kVersion2 ? 1 : -1;
  const bool wrong =
      last_ && ((last_sum_ >= 0) != (target > 0));
  // Train on mispredictions and on low-confidence correct predictions.
  if (wrong || std::abs(last_sum_) <= threshold_) {
    auto& w = weights_[last_table_];
    constexpr std::int32_t kClamp = 64;
    const auto nudge = [&](std::int32_t& weight, std::int32_t dir) {
      weight = std::clamp(weight + dir, -kClamp, kClamp);
    };
    nudge(w[0], target);
    for (std::uint32_t k = 0; k < history_bits_; ++k) {
      nudge(w[k + 1], target * history_[k]);
    }
  }
  // Shift the outcome into the global history.
  for (std::uint32_t k = history_bits_ - 1; k > 0; --k) {
    history_[k] = history_[k - 1];
  }
  history_[0] = static_cast<std::int8_t>(target);
  last_.reset();
}

}  // namespace vds::fault
