#pragma once

#include <cstdint>
#include <optional>

#include "checkpoint/state.hpp"

namespace vds::fault {

/// Outcome of an end-of-round state comparison.
enum class CompareOutcome : std::uint8_t {
  kMatch,     ///< states identical: no (effective) fault this interval
  kMismatch,  ///< states differ: fault detected, identity unknown
};

/// Outcome of a 2-out-of-3 majority vote among states P (version 1),
/// Q (version 2) and S (retried version 3).
enum class VoteOutcome : std::uint8_t {
  kVersion1Faulty,  ///< Q == S != P
  kVersion2Faulty,  ///< P == S != Q
  kNoMajority,      ///< all three differ: fault during retry, or a
                    ///< permanent fault defeating diversity -> rollback
  kAllAgree,        ///< P == Q == S (vote called without a real fault)
};

/// Digest-based state comparison (what the VDS performs each round).
[[nodiscard]] CompareOutcome compare_states(
    const vds::checkpoint::VersionState& a,
    const vds::checkpoint::VersionState& b) noexcept;

/// Majority vote over the three candidate states.
[[nodiscard]] VoteOutcome majority_vote(
    const vds::checkpoint::VersionState& p,
    const vds::checkpoint::VersionState& q,
    const vds::checkpoint::VersionState& s) noexcept;

/// Statistics a detector accumulates across a run.
struct DetectionStats {
  std::uint64_t comparisons = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t votes = 0;
  std::uint64_t no_majority = 0;
};

}  // namespace vds::fault
