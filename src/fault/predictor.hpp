#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"

namespace vds::fault {

/// Which version a predictor believes is faulty.
enum class VersionGuess : std::uint8_t { kVersion1, kVersion2 };

/// Evidence available to a predictor when a mismatch is detected
/// (paper §4: "sometimes there is evidence that a particular version is
/// most likely to be the faulty one, e.g. in the case of a crash
/// fault"; §5: fault history similar to branch prediction).
struct FaultEvidence {
  std::uint64_t round = 0;  ///< round index of the detection
  /// Set when a version crashed (identifies the victim with certainty).
  std::optional<VersionGuess> crashed;
  /// Abstract hardware location implicated by the failure symptom
  /// (e.g. which unit raised a machine-check); 0-based, < locations.
  std::uint32_t location = 0;
  /// Digests of the two candidate states (available, rarely useful).
  std::uint64_t digest_v1 = 0;
  std::uint64_t digest_v2 = 0;
};

/// Interface of a faulty-version predictor. The VDS asks for a guess at
/// detection time and feeds the majority-vote truth back afterwards, so
/// history-based schemes can learn -- the software analogue of branch
/// prediction the paper proposes (§5).
class Predictor {
 public:
  virtual ~Predictor() = default;

  [[nodiscard]] virtual VersionGuess predict(const FaultEvidence& e) = 0;

  /// Ground truth from the majority vote.
  virtual void feedback(const FaultEvidence& e, VersionGuess actual) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Measured accuracy so far (the empirical p of the model). 0.5 when
  /// no feedback has been recorded.
  [[nodiscard]] double accuracy() const noexcept;

 protected:
  void record_outcome(bool hit) noexcept {
    ++total_;
    if (hit) ++hits_;
  }

  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

/// p = 0.5 baseline: fair coin.
class RandomPredictor final : public Predictor {
 public:
  explicit RandomPredictor(vds::sim::Rng rng) : rng_(rng) {}
  [[nodiscard]] VersionGuess predict(const FaultEvidence&) override;
  void feedback(const FaultEvidence&, VersionGuess actual) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "random";
  }

 private:
  vds::sim::Rng rng_;
  std::optional<VersionGuess> last_;
};

/// p = 1 upper bound: told the truth out-of-band (for calibration).
class OraclePredictor final : public Predictor {
 public:
  [[nodiscard]] VersionGuess predict(const FaultEvidence& e) override;
  void feedback(const FaultEvidence& e, VersionGuess actual) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "oracle";
  }

  /// The engine plants the truth before asking (models perfect
  /// symptom-based identification).
  void plant_truth(VersionGuess truth) noexcept { truth_ = truth; }

 private:
  VersionGuess truth_ = VersionGuess::kVersion1;
  std::optional<VersionGuess> last_;
};

/// Always guesses the same version (degenerate baseline).
class StaticPredictor final : public Predictor {
 public:
  explicit StaticPredictor(VersionGuess guess) : guess_(guess) {}
  [[nodiscard]] VersionGuess predict(const FaultEvidence&) override;
  void feedback(const FaultEvidence&, VersionGuess actual) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "static";
  }

 private:
  VersionGuess guess_;
};

/// Uses crash evidence when present (certain), otherwise delegates.
class CrashEvidencePredictor final : public Predictor {
 public:
  explicit CrashEvidencePredictor(std::unique_ptr<Predictor> fallback);
  [[nodiscard]] VersionGuess predict(const FaultEvidence& e) override;
  void feedback(const FaultEvidence& e, VersionGuess actual) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "crash_evidence";
  }

 private:
  std::unique_ptr<Predictor> fallback_;
  bool last_was_crash_ = false;
  std::optional<VersionGuess> last_;
};

/// Guesses whichever version was voted faulty last time (1-bit
/// "last outcome" history, the simplest branch-prediction analogue).
class LastFaultyPredictor final : public Predictor {
 public:
  [[nodiscard]] VersionGuess predict(const FaultEvidence&) override;
  void feedback(const FaultEvidence&, VersionGuess actual) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "last_faulty";
  }

 private:
  VersionGuess state_ = VersionGuess::kVersion1;
  std::optional<VersionGuess> last_;
};

/// Two-bit saturating counters indexed by fault location -- the direct
/// analogue of a bimodal branch predictor, per table entry remembering
/// which version faults at that hardware location.
class TwoBitPredictor final : public Predictor {
 public:
  explicit TwoBitPredictor(std::uint32_t table_size = 16);
  [[nodiscard]] VersionGuess predict(const FaultEvidence& e) override;
  void feedback(const FaultEvidence& e, VersionGuess actual) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "two_bit";
  }

 private:
  [[nodiscard]] std::uint32_t index(const FaultEvidence& e) const noexcept;
  // Counter semantics: 0,1 -> predict V1; 2,3 -> predict V2.
  std::vector<std::uint8_t> table_;
  std::optional<VersionGuess> last_;
  std::uint32_t last_index_ = 0;
};

/// gshare-style predictor: location XOR global fault history indexes a
/// table of two-bit counters. Captures alternating / patterned fault
/// streams the bimodal table cannot.
class HistoryPredictor final : public Predictor {
 public:
  HistoryPredictor(std::uint32_t table_bits = 6,
                   std::uint32_t history_bits = 4);
  [[nodiscard]] VersionGuess predict(const FaultEvidence& e) override;
  void feedback(const FaultEvidence& e, VersionGuess actual) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "history";
  }

 private:
  [[nodiscard]] std::uint32_t index(const FaultEvidence& e) const noexcept;
  std::vector<std::uint8_t> table_;
  std::uint32_t history_ = 0;
  std::uint32_t history_mask_;
  std::uint32_t table_mask_;
  std::optional<VersionGuess> last_;
  std::uint32_t last_index_ = 0;
};

/// Tournament predictor: a bimodal (two-bit, per-location) and a
/// gshare-style history component run side by side; a per-location
/// chooser table of two-bit counters selects whichever component has
/// been more accurate for that location -- the Alpha 21264 arrangement,
/// transplanted to fault prediction.
class TournamentPredictor final : public Predictor {
 public:
  TournamentPredictor(std::uint32_t table_bits = 6,
                      std::uint32_t history_bits = 4);
  [[nodiscard]] VersionGuess predict(const FaultEvidence& e) override;
  void feedback(const FaultEvidence& e, VersionGuess actual) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "tournament";
  }

 private:
  TwoBitPredictor bimodal_;
  HistoryPredictor gshare_;
  std::vector<std::uint8_t> chooser_;  ///< 0,1 -> bimodal; 2,3 -> gshare
  std::uint32_t table_mask_;
  std::optional<VersionGuess> last_;
  VersionGuess last_bimodal_ = VersionGuess::kVersion1;
  VersionGuess last_gshare_ = VersionGuess::kVersion1;
  std::uint32_t last_index_ = 0;
};

/// Perceptron predictor (Jimenez/Lin style): a small weight vector per
/// location is dotted with the global outcome history; the sign decides
/// the guess and training adjusts weights when wrong or under-confident.
/// Captures linearly separable correlations that counter tables miss.
class PerceptronPredictor final : public Predictor {
 public:
  PerceptronPredictor(std::uint32_t tables = 16,
                      std::uint32_t history_bits = 8,
                      std::int32_t threshold = 12);
  [[nodiscard]] VersionGuess predict(const FaultEvidence& e) override;
  void feedback(const FaultEvidence& e, VersionGuess actual) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "perceptron";
  }

 private:
  [[nodiscard]] std::int32_t dot(std::uint32_t table) const noexcept;

  std::uint32_t history_bits_;
  std::int32_t threshold_;
  // weights_[table][k]: weight of history bit k; index 0 is the bias.
  std::vector<std::vector<std::int32_t>> weights_;
  std::vector<std::int8_t> history_;  ///< +1 = version 2, -1 = version 1
  std::optional<VersionGuess> last_;
  std::uint32_t last_table_ = 0;
  std::int32_t last_sum_ = 0;
};

}  // namespace vds::fault
