#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/journal.hpp"

namespace vds::fabric {

/// The coordinator's lease state machine plus its durable assignment
/// log — the crash-exact heart of the fabric. Pure with respect to
/// time (every transition takes the clock as a parameter) and free of
/// sockets, so the whole lifecycle is unit-testable; the coordinator
/// serializes access with one mutex.
///
/// The campaign's cell range [0, total_cells) is cut into fixed-size
/// leases. Each lease walks open -> granted -> committed; a granted
/// lease whose worker misses heartbeats (or disconnects, or reports
/// failure) falls back to open with capped-exponential backoff and a
/// bumped attempt counter. Every transition is appended to a v3
/// journal (`runtime::LeaseEvent` records, CRC32C-framed) *before*
/// the corresponding message leaves the process — write-ahead, so a
/// coordinator SIGKILL between grant and send at worst re-issues a
/// lease, never forgets one. Replaying the log on `--resume`
/// reconstructs exactly the committed set: completed leases are never
/// re-run, open/granted ones are re-issued.
///
/// Idempotent completion: a commit for an already-committed lease is
/// checked against the committed digest — equal means a late
/// duplicate (coalesced, counted, harmless by determinism), different
/// means two workers disagreed about the same cells (a hard error the
/// coordinator must surface, never average away).
class LeaseTable {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    std::uint64_t total_cells = 0;  ///< campaign cells, [0, total)
    std::uint64_t lease_cells = 0;  ///< cells per lease (last may be short)
    std::uint64_t fingerprint = 0;  ///< campaign fingerprint
    std::string log_path;           ///< assignment log (v3 journal)
    std::string workdir;            ///< per-attempt worker journals
    bool resume = false;            ///< replay an existing log first
    std::chrono::milliseconds expiry{5000};      ///< heartbeat silence limit
    std::chrono::milliseconds backoff_base{100};
    std::chrono::milliseconds backoff_cap{5000};
  };

  /// What `commit` did with a result.
  enum class CommitOutcome {
    kCommitted,  ///< first completion; digest recorded
    kCoalesced,  ///< duplicate with the committed digest; dropped
    kConflict,   ///< duplicate with a DIFFERENT digest; data error
  };

  /// One grant handed to a worker.
  struct Grant {
    std::uint64_t lease = 0;
    std::uint64_t attempt = 1;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::string journal;  ///< per-attempt shard journal path
  };

  /// Assignment-log audit counters (the no-lease-lost /
  /// no-double-count evidence).
  struct Audit {
    std::uint64_t leases = 0;     ///< total leases in the campaign
    std::uint64_t committed = 0;  ///< leases in the committed state
    std::uint64_t granted = 0;    ///< grant events logged (incl. replay)
    std::uint64_t expired = 0;    ///< expiry/failure events logged
    std::uint64_t coalesced = 0;  ///< late duplicates dropped
    std::uint64_t replayed = 0;   ///< commits recovered from the log
  };

  /// Cuts the ranges, replays `log_path` when resuming (throws
  /// std::runtime_error on fingerprint mismatch or a log that
  /// disagrees with the configured ranges), then opens the log for
  /// append.
  explicit LeaseTable(Options options);

  LeaseTable(const LeaseTable&) = delete;
  LeaseTable& operator=(const LeaseTable&) = delete;

  /// Grants the next open lease whose backoff has elapsed, logging
  /// the grant first. nullopt when nothing is ready (all granted or
  /// committed, or every open lease still backing off).
  [[nodiscard]] std::optional<Grant> next_grant(Clock::time_point now);

  /// Commits a worker result. Expired-but-uncommitted leases accept
  /// the commit too (a late result is still bit-exact by determinism
  /// — the race of lease expiry against completion resolves in favor
  /// of the work). kConflict commits nothing; the caller decides how
  /// loudly to fail.
  [[nodiscard]] CommitOutcome commit(std::uint64_t lease,
                                     std::uint64_t attempt,
                                     std::uint64_t digest,
                                     std::uint64_t cells);

  /// Records worker liveness for a granted lease.
  void heartbeat(std::uint64_t lease, Clock::time_point now);

  /// Expires every granted lease whose last heartbeat is older than
  /// `expiry`; each reopens with capped-exponential backoff. Returns
  /// the lease ids expired this sweep.
  std::vector<std::uint64_t> expire_stale(Clock::time_point now);

  /// Worker-reported failure or disconnect while holding `lease`:
  /// reopen it (with backoff) unless already committed.
  void release(std::uint64_t lease, Clock::time_point now);

  [[nodiscard]] bool all_committed() const noexcept;

  /// Shard journal paths of every committed lease (its committed
  /// attempt), lease order — the merge set for the final digest.
  [[nodiscard]] std::vector<std::string> committed_journals() const;

  [[nodiscard]] Audit audit() const noexcept { return audit_; }

  [[nodiscard]] std::uint64_t lease_count() const noexcept;

  [[nodiscard]] std::uint64_t committed_count() const noexcept {
    return audit_.committed;
  }

  /// The per-attempt shard journal path convention — deterministic,
  /// so resume can reconstruct any attempt's path from the log alone.
  [[nodiscard]] std::string journal_path(std::uint64_t lease,
                                         std::uint64_t attempt) const;

 private:
  enum class State { kOpen, kGranted, kCommitted };

  struct Entry {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    State state = State::kOpen;
    std::uint64_t attempt = 0;  ///< last granted attempt (0 = never)
    Clock::time_point last_heartbeat{};
    Clock::time_point backoff_until{};
    std::uint64_t committed_attempt = 0;
    std::uint64_t committed_digest = 0;
    std::uint64_t committed_cells = 0;
  };

  void replay(const runtime::JournalLoad& loaded);
  void log_event(runtime::LeaseEvent event, std::uint64_t lease,
                 const Entry& entry, std::uint64_t digest,
                 std::uint64_t cells);
  void reopen(std::uint64_t lease, Clock::time_point now);

  Options options_;
  std::vector<Entry> entries_;
  std::unique_ptr<runtime::Journal> log_;
  Audit audit_;
};

}  // namespace vds::fabric
