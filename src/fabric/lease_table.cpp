#include "fabric/lease_table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace vds::fabric {

namespace {

[[noreturn]] void table_fail(const std::string& what) {
  throw std::runtime_error("fabric lease table: " + what);
}

}  // namespace

LeaseTable::LeaseTable(Options options) : options_(std::move(options)) {
  if (options_.total_cells == 0) table_fail("campaign has no cells");
  if (options_.lease_cells == 0) table_fail("lease size must be >= 1");
  if (options_.log_path.empty()) table_fail("assignment log path is empty");
  for (std::uint64_t lo = 0; lo < options_.total_cells;
       lo += options_.lease_cells) {
    Entry entry;
    entry.lo = lo;
    entry.hi = std::min(lo + options_.lease_cells, options_.total_cells);
    entries_.push_back(entry);
  }
  audit_.leases = entries_.size();
  if (options_.resume) {
    // Same fingerprint gate as a campaign journal: an assignment log
    // written for a different campaign configuration must not replay.
    replay(runtime::Journal::load(options_.log_path, options_.fingerprint));
  } else {
    std::remove(options_.log_path.c_str());
  }
  log_ = std::make_unique<runtime::Journal>(options_.log_path,
                                            options_.fingerprint);
}

void LeaseTable::replay(const runtime::JournalLoad& loaded) {
  for (const runtime::JournalRecord& record : loaded.leases) {
    if (record.index >= entries_.size()) {
      table_fail("log names lease " + std::to_string(record.index) +
                 " but the campaign only has " +
                 std::to_string(entries_.size()) +
                 " — lease size or cell count changed between runs");
    }
    Entry& entry = entries_[record.index];
    if (record.lease_lo != entry.lo || record.lease_hi != entry.hi) {
      table_fail("log lease " + std::to_string(record.index) +
                 " covers a different cell range than configured — "
                 "lease size changed between runs");
    }
    switch (record.lease_event) {
      case runtime::LeaseEvent::kGranted:
        // A grant with no completion: the worker may be dead or the
        // coordinator died pre-send. Either way the lease reopens —
        // re-running it is always safe, forgetting it never is.
        entry.attempt = std::max(entry.attempt, record.lease_attempt);
        if (entry.state == State::kOpen) ++audit_.granted;
        break;
      case runtime::LeaseEvent::kCompleted:
        if (entry.state == State::kCommitted) {
          if (entry.committed_digest != record.lease_digest) {
            table_fail("log has conflicting completions for lease " +
                       std::to_string(record.index));
          }
          ++audit_.coalesced;
          break;
        }
        entry.state = State::kCommitted;
        entry.attempt = std::max(entry.attempt, record.lease_attempt);
        entry.committed_attempt = record.lease_attempt;
        entry.committed_digest = record.lease_digest;
        entry.committed_cells = record.lease_cells;
        ++audit_.committed;
        ++audit_.replayed;
        break;
      case runtime::LeaseEvent::kExpired:
        if (entry.state != State::kCommitted) ++audit_.expired;
        break;
    }
  }
}

std::string LeaseTable::journal_path(std::uint64_t lease,
                                     std::uint64_t attempt) const {
  return options_.workdir + "/lease-" + std::to_string(lease) + "-a" +
         std::to_string(attempt) + ".journal";
}

void LeaseTable::log_event(runtime::LeaseEvent event, std::uint64_t lease,
                           const Entry& entry, std::uint64_t digest,
                           std::uint64_t cells) {
  runtime::JournalRecord record;
  record.lease = true;
  record.lease_event = event;
  record.index = lease;
  record.lease_attempt = entry.attempt;
  record.lease_lo = entry.lo;
  record.lease_hi = entry.hi;
  record.lease_digest = digest;
  record.lease_cells = cells;
  log_->append(record);  // throws on write failure: no silent grants
}

std::optional<LeaseTable::Grant> LeaseTable::next_grant(
    Clock::time_point now) {
  for (std::uint64_t id = 0; id < entries_.size(); ++id) {
    Entry& entry = entries_[id];
    if (entry.state != State::kOpen || entry.backoff_until > now) continue;
    ++entry.attempt;
    // Write-ahead: the grant hits the log before the lease leaves the
    // process, so a crash here at worst re-issues the lease on resume.
    log_event(runtime::LeaseEvent::kGranted, id, entry, 0, 0);
    entry.state = State::kGranted;
    entry.last_heartbeat = now;
    ++audit_.granted;
    Grant grant;
    grant.lease = id;
    grant.attempt = entry.attempt;
    grant.lo = entry.lo;
    grant.hi = entry.hi;
    grant.journal = journal_path(id, entry.attempt);
    return grant;
  }
  return std::nullopt;
}

LeaseTable::CommitOutcome LeaseTable::commit(std::uint64_t lease,
                                             std::uint64_t attempt,
                                             std::uint64_t digest,
                                             std::uint64_t cells) {
  if (lease >= entries_.size()) table_fail("commit for unknown lease");
  Entry& entry = entries_[lease];
  if (entry.state == State::kCommitted) {
    if (entry.committed_digest == digest) {
      // The late-duplicate race: the lease expired, was re-granted,
      // and both attempts finished. Determinism makes the results
      // identical, so the duplicate is verified and dropped — never
      // double-counted.
      ++audit_.coalesced;
      return CommitOutcome::kCoalesced;
    }
    return CommitOutcome::kConflict;
  }
  Entry committed = entry;
  committed.attempt = attempt;
  log_event(runtime::LeaseEvent::kCompleted, lease, committed, digest,
            cells);
  entry.state = State::kCommitted;
  entry.committed_attempt = attempt;
  entry.committed_digest = digest;
  entry.committed_cells = cells;
  ++audit_.committed;
  return CommitOutcome::kCommitted;
}

void LeaseTable::heartbeat(std::uint64_t lease, Clock::time_point now) {
  if (lease >= entries_.size()) return;
  Entry& entry = entries_[lease];
  if (entry.state == State::kGranted) entry.last_heartbeat = now;
}

void LeaseTable::reopen(std::uint64_t lease, Clock::time_point now) {
  Entry& entry = entries_[lease];
  log_event(runtime::LeaseEvent::kExpired, lease, entry, 0, 0);
  entry.state = State::kOpen;
  // Capped exponential backoff in the attempt count: a range that
  // keeps killing workers (a poison lease) retries ever more slowly
  // instead of hot-looping the fleet.
  const std::uint64_t shift = std::min<std::uint64_t>(
      entry.attempt > 0 ? entry.attempt - 1 : 0, 16);
  const auto backoff = std::min<std::chrono::milliseconds>(
      std::chrono::milliseconds(options_.backoff_base.count() << shift),
      options_.backoff_cap);
  entry.backoff_until = now + backoff;
  ++audit_.expired;
}

std::vector<std::uint64_t> LeaseTable::expire_stale(Clock::time_point now) {
  std::vector<std::uint64_t> expired;
  for (std::uint64_t id = 0; id < entries_.size(); ++id) {
    Entry& entry = entries_[id];
    if (entry.state != State::kGranted) continue;
    if (now - entry.last_heartbeat < options_.expiry) continue;
    reopen(id, now);
    expired.push_back(id);
  }
  return expired;
}

void LeaseTable::release(std::uint64_t lease, Clock::time_point now) {
  if (lease >= entries_.size()) return;
  if (entries_[lease].state != State::kGranted) return;
  reopen(lease, now);
}

bool LeaseTable::all_committed() const noexcept {
  return audit_.committed == entries_.size();
}

std::vector<std::string> LeaseTable::committed_journals() const {
  std::vector<std::string> paths;
  paths.reserve(entries_.size());
  for (std::uint64_t id = 0; id < entries_.size(); ++id) {
    const Entry& entry = entries_[id];
    if (entry.state != State::kCommitted) continue;
    paths.push_back(journal_path(id, entry.committed_attempt));
  }
  return paths;
}

std::uint64_t LeaseTable::lease_count() const noexcept {
  return entries_.size();
}

}  // namespace vds::fabric
