#include "fabric/worker.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include <unistd.h>

#include "fabric/protocol.hpp"
#include "runtime/mc_campaign.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/campaign_spec.hpp"
#include "scenario/json_reader.hpp"
#include "serve/transport.hpp"

namespace vds::fabric {

namespace {

/// Liveness pings while a lease executes: a sampler thread sending a
/// heartbeat every `interval_ms`, reading only the execution's atomic
/// progress counters. Joined (scope exit) before reduce, like
/// vds_mc's ProgressReporter. interval 0 disables the pump — the
/// lease-expiry test runs a silent worker this way.
class HeartbeatPump {
 public:
  HeartbeatPump(serve::FdSink& sink, std::string worker,
                const runtime::McExecution& exec, std::uint64_t lease,
                std::uint64_t interval_ms) {
    if (interval_ms == 0) return;
    thread_ = std::thread([this, &sink, worker = std::move(worker), &exec,
                           lease, interval_ms] {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [this] { return stop_; })) {
          return;
        }
        Heartbeat heartbeat;
        heartbeat.worker = worker;
        heartbeat.lease = lease;
        heartbeat.resolved = exec.progress().resolved;
        sink.write_line(format_heartbeat(heartbeat));
      }
    });
  }

  ~HeartbeatPump() {
    if (!thread_.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  HeartbeatPump(const HeartbeatPump&) = delete;
  HeartbeatPump& operator=(const HeartbeatPump&) = delete;

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Lease outcomes the executor reports back to the read loop.
enum class LeaseOutcome { kOk, kFailed, kDrained };

/// Runs one lease through McExecution and fills in `result`. A thrown
/// campaign error (journal append failure, chaos-parse, ...) becomes
/// a failed result — the lease reopens at the coordinator; it must
/// not kill the worker, which may complete other leases fine.
LeaseOutcome run_lease(const WorkerOptions& options, const Config& config,
                       const runtime::McRunner& runner,
                       const std::string& worker_name, const Lease& lease,
                       serve::FdSink& sink, Result& result) {
  result.worker = worker_name;
  result.lease = lease.lease;
  result.attempt = lease.attempt;

  scenario::CampaignSpec spec = config.campaign;
  spec.threads = options.threads;
  spec.journal = lease.journal;
  spec.resume = false;  // per-attempt journal path; never a stale file
  spec.cell_lo = lease.lo;
  spec.cell_hi = lease.hi;
  spec.chaos = config.chaos;

  runtime::McConfig mc = scenario::to_mc_config(spec, config.scenario);
  runtime::McSummary summary;
  try {
    runtime::McExecution exec(mc, runner);
    runtime::ThreadPool pool(mc.threads);
    exec.arm_chaos(pool);
    {
      const std::uint64_t interval =
          options.heartbeat_ms == WorkerOptions::kUseConfig
              ? config.heartbeat_ms
              : options.heartbeat_ms;
      const HeartbeatPump pump(sink, worker_name, exec, lease.lease,
                               interval);
      exec.enqueue(pool);
      pool.wait_idle();
    }
    summary = exec.reduce(pool);
  } catch (const std::exception& error) {
    result.ok = false;
    result.error = error.what();
    return LeaseOutcome::kFailed;
  }
  if (summary.drained) {
    // Partial shard: report the lease failed so it reopens, then let
    // the caller exit 130. The next attempt gets a fresh journal.
    result.ok = false;
    result.error = "worker draining";
    return LeaseOutcome::kDrained;
  }
  result.ok = true;
  result.digest = summary.digest();
  result.cells = summary.cells_executed;
  return LeaseOutcome::kOk;
}

}  // namespace

int run_worker(const WorkerOptions& options) {
  const int fd = options.socket_path.empty()
                     ? serve::connect_tcp(options.tcp_port)
                     : serve::connect_unix(options.socket_path);
  if (fd < 0) {
    std::perror("vds_fabric: connect");
    return 3;
  }
  serve::FdSink sink(fd, /*owns_fd=*/true);
  serve::LineReader reader(fd);

  std::string worker_name = options.name;
  if (worker_name.empty()) {
    worker_name = "worker-" + std::to_string(::getpid());
  }
  sink.write_line(format_hello(Hello{worker_name}));
  if (sink.failed()) {
    std::fprintf(stderr, "vds_fabric: coordinator closed during hello\n");
    return 3;
  }

  // The config message must come before any lease.
  Config config;
  {
    std::string line;
    switch (reader.next(line)) {
      case serve::LineReader::Status::kLine:
        break;
      case serve::LineReader::Status::kDrain:
        return 130;
      default:
        std::fprintf(stderr, "vds_fabric: connection lost before config\n");
        return 3;
    }
    try {
      const scenario::JsonValue doc = scenario::parse_json(line);
      if (classify(doc) != MessageKind::kConfig) {
        throw std::invalid_argument("expected vds.fabric_config.v1 first");
      }
      config = parse_config(doc);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "vds_fabric: bad config: %s\n", error.what());
      return 3;
    }
  }
  const runtime::McRunner runner = scenario::make_mc_runner(config.scenario);

  for (;;) {
    std::string line;
    switch (reader.next(line)) {
      case serve::LineReader::Status::kLine:
        break;
      case serve::LineReader::Status::kDrain:
        return 130;  // between leases; nothing in flight to report
      case serve::LineReader::Status::kEof:
      case serve::LineReader::Status::kError:
        std::fprintf(stderr, "vds_fabric: coordinator gone (%s)\n",
                     sink.failed() ? "write failed" : "read closed");
        return 3;
      case serve::LineReader::Status::kOverlong:
      case serve::LineReader::Status::kTimeout:
        std::fprintf(stderr, "vds_fabric: protocol violation from "
                             "coordinator\n");
        return 3;
    }
    Lease lease;
    try {
      const scenario::JsonValue doc = scenario::parse_json(line);
      const MessageKind kind = classify(doc);
      if (kind == MessageKind::kDone) {
        if (!options.quiet) {
          std::fprintf(stderr, "fabric: %s done\n", worker_name.c_str());
        }
        return 0;
      }
      if (kind != MessageKind::kLease) {
        throw std::invalid_argument("expected lease or done");
      }
      lease = parse_lease(doc);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "vds_fabric: bad message: %s\n", error.what());
      return 3;
    }

    if (!options.quiet) {
      std::fprintf(stderr,
                   "fabric: %s lease %llu attempt %llu cells [%llu, %llu)\n",
                   worker_name.c_str(),
                   static_cast<unsigned long long>(lease.lease),
                   static_cast<unsigned long long>(lease.attempt),
                   static_cast<unsigned long long>(lease.lo),
                   static_cast<unsigned long long>(lease.hi));
    }
    Result result;
    const LeaseOutcome outcome = run_lease(options, config, runner,
                                           worker_name, lease, sink, result);
    sink.write_line(format_result(result));
    if (outcome == LeaseOutcome::kDrained) return 130;
    if (sink.failed()) {
      std::fprintf(stderr, "vds_fabric: coordinator gone (write failed)\n");
      return 3;
    }
  }
}

}  // namespace vds::fabric
