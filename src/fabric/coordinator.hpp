#pragma once

#include <cstdint>
#include <string>

#include "scenario/campaign_spec.hpp"
#include "scenario/scenario.hpp"

namespace vds::fabric {

/// Everything `vds_fabric` (coordinator mode) resolves from its
/// command line.
struct CoordinatorOptions {
  scenario::Scenario scenario;
  scenario::CampaignSpec campaign;  ///< chaos here ships to workers
  std::string socket_path;          ///< Unix listen socket
  std::uint16_t tcp_port = 0;       ///< used instead when socket empty
  std::string workdir;              ///< assignment log + lease journals
  std::uint64_t lease_cells = 0;    ///< cells per lease; 0 = auto
  std::uint64_t heartbeat_ms = 500;   ///< interval workers are told
  std::uint64_t expiry_ms = 5000;     ///< silence before lease expiry
  std::uint64_t backoff_ms = 100;     ///< reassignment backoff base
  std::uint64_t backoff_cap_ms = 5000;
  bool resume = false;  ///< replay the assignment log first
  std::string json_out;
  bool quiet = false;
};

/// Runs the coordinator until the campaign digest is out (0), a drain
/// signal lands (130 — assignment log left resumable), or a fatal
/// error such as a digest conflict (3). The final snapshot and digest
/// are bitwise identical to a single-process `vds_mc` run of the same
/// scenario/campaign, whatever happened to the workers in between.
[[nodiscard]] int run_coordinator(const CoordinatorOptions& options);

}  // namespace vds::fabric
