#include "fabric/protocol.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "runtime/json_writer.hpp"
#include "scenario/json_reader.hpp"

namespace vds::fabric {

namespace {

constexpr std::string_view kHelloSchema = "vds.fabric_hello.v1";
constexpr std::string_view kConfigSchema = "vds.fabric_config.v1";
constexpr std::string_view kLeaseSchema = "vds.fabric_lease.v1";
constexpr std::string_view kHeartbeatSchema = "vds.fabric_heartbeat.v1";
constexpr std::string_view kResultSchema = "vds.fabric_result.v1";
constexpr std::string_view kDoneSchema = "vds.fabric_done.v1";

[[noreturn]] void proto_fail(const std::string& what) {
  throw std::invalid_argument("fabric protocol: " + what);
}

/// Required object member; proto_fail names the missing key.
const scenario::JsonValue& require(const scenario::JsonValue& doc,
                                   std::string_view key) {
  const scenario::JsonValue* value = doc.find(key);
  if (value == nullptr) proto_fail("missing key '" + std::string(key) + "'");
  return *value;
}

}  // namespace

std::string hex16(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

std::uint64_t parse_hex64(std::string_view text) {
  if (text.empty() || text.size() > 16) {
    proto_fail("malformed hex digest '" + std::string(text) + "'");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    unsigned digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<unsigned>(c - 'a') + 10;
    } else {
      proto_fail("malformed hex digest '" + std::string(text) + "'");
    }
    value = (value << 4) | digit;
  }
  return value;
}

std::string format_hello(const Hello& hello) {
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  json.begin_object();
  json.field("schema", kHelloSchema);
  json.field("worker", hello.worker);
  json.end_object();
  return os.str();
}

std::string format_config(const Config& config) {
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  json.begin_object();
  json.field("schema", kConfigSchema);
  json.key("scenario");
  config.scenario.write_json(json);
  json.key("campaign");
  scenario::campaign_spec_to_json(json, config.campaign);
  if (!config.chaos.empty()) json.field("chaos", config.chaos);
  json.field("heartbeat_ms", config.heartbeat_ms);
  json.end_object();
  return os.str();
}

std::string format_lease(const Lease& lease) {
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  json.begin_object();
  json.field("schema", kLeaseSchema);
  json.field("lease", lease.lease);
  json.field("attempt", lease.attempt);
  json.field("lo", lease.lo);
  json.field("hi", lease.hi);
  json.field("journal", lease.journal);
  json.end_object();
  return os.str();
}

std::string format_heartbeat(const Heartbeat& heartbeat) {
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  json.begin_object();
  json.field("schema", kHeartbeatSchema);
  json.field("worker", heartbeat.worker);
  json.field("lease", heartbeat.lease);
  json.field("resolved", heartbeat.resolved);
  json.end_object();
  return os.str();
}

std::string format_result(const Result& result) {
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  json.begin_object();
  json.field("schema", kResultSchema);
  json.field("worker", result.worker);
  json.field("lease", result.lease);
  json.field("attempt", result.attempt);
  json.field("status", result.ok ? "ok" : "failed");
  if (result.ok) {
    json.field("digest", hex16(result.digest));
    json.field("cells", result.cells);
  } else {
    json.field("error", result.error);
  }
  json.end_object();
  return os.str();
}

std::string format_done() {
  std::ostringstream os;
  runtime::JsonWriter json(os, /*compact=*/true);
  json.begin_object();
  json.field("schema", kDoneSchema);
  json.end_object();
  return os.str();
}

MessageKind classify(const scenario::JsonValue& doc) {
  if (!doc.is_object()) proto_fail("message must be a JSON object");
  const std::string& schema = require(doc, "schema").as_string("schema");
  if (schema == kHelloSchema) return MessageKind::kHello;
  if (schema == kConfigSchema) return MessageKind::kConfig;
  if (schema == kLeaseSchema) return MessageKind::kLease;
  if (schema == kHeartbeatSchema) return MessageKind::kHeartbeat;
  if (schema == kResultSchema) return MessageKind::kResult;
  if (schema == kDoneSchema) return MessageKind::kDone;
  proto_fail("unknown schema '" + schema + "'");
}

Hello parse_hello(const scenario::JsonValue& doc) {
  Hello hello;
  hello.worker = require(doc, "worker").as_string("worker");
  if (hello.worker.empty()) proto_fail("worker name must not be empty");
  return hello;
}

Config parse_config(const scenario::JsonValue& doc) {
  Config config;
  config.scenario =
      scenario::Scenario::from_json_value(require(doc, "scenario"));
  config.campaign =
      scenario::campaign_spec_from_json(require(doc, "campaign"));
  if (const scenario::JsonValue* chaos = doc.find("chaos")) {
    config.chaos = chaos->as_string("chaos");
  }
  config.heartbeat_ms = require(doc, "heartbeat_ms").as_u64("heartbeat_ms");
  return config;
}

Lease parse_lease(const scenario::JsonValue& doc) {
  Lease lease;
  lease.lease = require(doc, "lease").as_u64("lease");
  lease.attempt = require(doc, "attempt").as_u64("attempt");
  lease.lo = require(doc, "lo").as_u64("lo");
  lease.hi = require(doc, "hi").as_u64("hi");
  lease.journal = require(doc, "journal").as_string("journal");
  if (lease.lo >= lease.hi) proto_fail("lease range must satisfy lo < hi");
  if (lease.attempt == 0) proto_fail("lease attempt must be >= 1");
  return lease;
}

Heartbeat parse_heartbeat(const scenario::JsonValue& doc) {
  Heartbeat heartbeat;
  heartbeat.worker = require(doc, "worker").as_string("worker");
  heartbeat.lease = require(doc, "lease").as_u64("lease");
  heartbeat.resolved = require(doc, "resolved").as_u64("resolved");
  return heartbeat;
}

Result parse_result(const scenario::JsonValue& doc) {
  Result result;
  result.worker = require(doc, "worker").as_string("worker");
  result.lease = require(doc, "lease").as_u64("lease");
  result.attempt = require(doc, "attempt").as_u64("attempt");
  if (result.attempt == 0) proto_fail("result attempt must be >= 1");
  const std::string& status = require(doc, "status").as_string("status");
  if (status == "ok") {
    result.ok = true;
    result.digest =
        parse_hex64(require(doc, "digest").as_string("digest"));
    result.cells = require(doc, "cells").as_u64("cells");
  } else if (status == "failed") {
    result.ok = false;
    result.error = require(doc, "error").as_string("error");
  } else {
    proto_fail("unknown result status '" + status + "'");
  }
  return result;
}

}  // namespace vds::fabric
