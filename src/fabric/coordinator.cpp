#include "fabric/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fabric/lease_table.hpp"
#include "fabric/protocol.hpp"
#include "runtime/mc_campaign.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/json_reader.hpp"
#include "serve/transport.hpp"

namespace vds::fabric {

namespace {

using Clock = LeaseTable::Clock;

/// Shared coordinator state: the lease table behind one mutex, plus
/// the first fatal error (a digest conflict or a log write failure)
/// any connection thread hit.
struct Shared {
  std::mutex mutex;
  LeaseTable table;
  std::atomic<bool> fatal{false};
  std::string fatal_message;  // guarded by mutex

  explicit Shared(LeaseTable::Options options)
      : table(std::move(options)) {}

  void fail(const std::string& message) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!fatal.exchange(true)) fatal_message = message;
  }
};

/// stderr chatter, suppressed by --quiet. Never touches stdout — the
/// digest line and JSON snapshot own that.
#define FABRIC_LOG(options, ...)                  \
  do {                                            \
    if (!(options).quiet) {                       \
      std::fprintf(stderr, "fabric: " __VA_ARGS__); \
    }                                             \
  } while (0)

/// One worker connection: handshake, then a grant/collect loop until
/// the campaign commits fully, the peer vanishes, or a drain lands.
/// Every exit path releases an outstanding grant so the lease expiry
/// machinery never has to wait out a heartbeat timeout for a
/// connection the coordinator *watched* die.
void serve_worker(const CoordinatorOptions& options, Shared& shared, int fd) {
  serve::LineReader reader(fd);
  serve::FdSink sink(fd, /*owns_fd=*/true);
  std::string line;
  std::string worker = "?";
  std::optional<std::uint64_t> held;

  const auto release_held = [&] {
    if (!held) return;
    std::lock_guard<std::mutex> lock(shared.mutex);
    shared.table.release(*held, Clock::now());
    held.reset();
  };

  // Handshake: hello in, config out.
  if (reader.next(line) != serve::LineReader::Status::kLine) return;
  try {
    const scenario::JsonValue doc = scenario::parse_json(line);
    if (classify(doc) != MessageKind::kHello) {
      throw std::invalid_argument("expected vds.fabric_hello.v1");
    }
    worker = parse_hello(doc).worker;
  } catch (const std::exception& error) {
    FABRIC_LOG(options, "rejecting connection: %s\n", error.what());
    return;
  }
  Config config;
  config.scenario = options.scenario;
  config.campaign = options.campaign;
  config.chaos = options.campaign.chaos;
  config.heartbeat_ms = options.heartbeat_ms;
  sink.write_line(format_config(config));

  for (;;) {
    if (shared.fatal.load()) break;
    if (sink.failed()) break;  // peer gone mid-write
    if (!held) {
      bool done;
      std::optional<LeaseTable::Grant> grant;
      {
        std::lock_guard<std::mutex> lock(shared.mutex);
        done = shared.table.all_committed();
        if (!done) grant = shared.table.next_grant(Clock::now());
      }
      if (done) {
        sink.write_line(format_done());
        break;
      }
      if (grant) {
        held = grant->lease;
        Lease lease;
        lease.lease = grant->lease;
        lease.attempt = grant->attempt;
        lease.lo = grant->lo;
        lease.hi = grant->hi;
        lease.journal = grant->journal;
        sink.write_line(format_lease(lease));
        FABRIC_LOG(options, "%s <- lease %llu (attempt %llu)\n",
                   worker.c_str(),
                   static_cast<unsigned long long>(grant->lease),
                   static_cast<unsigned long long>(grant->attempt));
      }
    }
    switch (reader.poll_next(line, 200)) {
      case serve::LineReader::Status::kLine: {
        try {
          const scenario::JsonValue doc = scenario::parse_json(line);
          switch (classify(doc)) {
            case MessageKind::kHeartbeat: {
              const Heartbeat heartbeat = parse_heartbeat(doc);
              std::lock_guard<std::mutex> lock(shared.mutex);
              shared.table.heartbeat(heartbeat.lease, Clock::now());
              break;
            }
            case MessageKind::kResult: {
              const Result result = parse_result(doc);
              if (result.lease == held) held.reset();
              if (!result.ok) {
                FABRIC_LOG(options, "%s failed lease %llu: %s\n",
                           worker.c_str(),
                           static_cast<unsigned long long>(result.lease),
                           result.error.c_str());
                std::lock_guard<std::mutex> lock(shared.mutex);
                shared.table.release(result.lease, Clock::now());
                break;
              }
              LeaseTable::CommitOutcome outcome;
              {
                std::lock_guard<std::mutex> lock(shared.mutex);
                outcome = shared.table.commit(result.lease, result.attempt,
                                              result.digest, result.cells);
              }
              if (outcome == LeaseTable::CommitOutcome::kConflict) {
                shared.fail("lease " + std::to_string(result.lease) +
                            ": worker '" + worker + "' reported digest " +
                            hex16(result.digest) +
                            " but a different digest is already "
                            "committed — shards disagree about the same "
                            "cells, refusing to continue");
              }
              break;
            }
            default:
              throw std::invalid_argument("unexpected message from worker");
          }
        } catch (const std::exception& error) {
          FABRIC_LOG(options, "dropping %s: bad message: %s\n",
                     worker.c_str(), error.what());
          release_held();
          return;
        }
        break;
      }
      case serve::LineReader::Status::kTimeout:
        break;  // re-check grants / completion
      case serve::LineReader::Status::kOverlong:
        FABRIC_LOG(options, "dropping %s: overlong message\n",
                   worker.c_str());
        release_held();
        return;
      case serve::LineReader::Status::kDrain:
      case serve::LineReader::Status::kEof:
      case serve::LineReader::Status::kError:
        release_held();
        return;
    }
  }
  release_held();
}

bool make_workdir(const std::string& path) {
  struct stat st = {};
  if (::stat(path.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  return ::mkdir(path.c_str(), 0777) == 0;
}

}  // namespace

int run_coordinator(const CoordinatorOptions& options) {
  if (!make_workdir(options.workdir)) {
    std::fprintf(stderr, "fabric: cannot create workdir '%s'\n",
                 options.workdir.c_str());
    return 3;
  }
  // Workers may run from any directory; the journal paths they get in
  // lease grants must not depend on the coordinator's cwd.
  std::string workdir = options.workdir;
  if (char* absolute = ::realpath(workdir.c_str(), nullptr)) {
    workdir.assign(absolute);
    std::free(absolute);
  }
  const runtime::McConfig mc =
      scenario::to_mc_config(options.campaign, options.scenario);
  const std::uint64_t cells = mc.cells();
  // Auto lease size: aim for ~4 leases per expected worker wave, but
  // never fewer than 1 cell or more than the campaign.
  std::uint64_t lease_cells = options.lease_cells;
  if (lease_cells == 0) lease_cells = std::max<std::uint64_t>(cells / 16, 1);

  LeaseTable::Options table_options;
  table_options.total_cells = cells;
  table_options.lease_cells = lease_cells;
  table_options.fingerprint = mc.fingerprint();
  table_options.log_path = workdir + "/assignment.journal";
  table_options.workdir = workdir;
  table_options.resume = options.resume;
  table_options.expiry = std::chrono::milliseconds(options.expiry_ms);
  table_options.backoff_base = std::chrono::milliseconds(options.backoff_ms);
  table_options.backoff_cap =
      std::chrono::milliseconds(options.backoff_cap_ms);

  std::unique_ptr<Shared> shared;
  try {
    shared = std::make_unique<Shared>(std::move(table_options));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fabric: %s\n", error.what());
    return 3;
  }
  if (!options.quiet) {
    std::fprintf(stderr,
                 "fabric: %llu cells in %llu leases (%llu committed from "
                 "log), fingerprint %s\n",
                 static_cast<unsigned long long>(cells),
                 static_cast<unsigned long long>(shared->table.lease_count()),
                 static_cast<unsigned long long>(
                     shared->table.committed_count()),
                 hex16(mc.fingerprint()).c_str());
  }

  // Expiry monitor: sweeps granted leases for heartbeat silence. Runs
  // until the accept loop below decides the campaign is over.
  std::atomic<bool> stop_monitor{false};
  std::thread monitor([&] {
    while (!stop_monitor.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::lock_guard<std::mutex> lock(shared->mutex);
      for (const std::uint64_t id :
           shared->table.expire_stale(Clock::now())) {
        if (!options.quiet) {
          std::fprintf(stderr,
                       "fabric: lease %llu expired (heartbeat silence); "
                       "reopening\n",
                       static_cast<unsigned long long>(id));
        }
      }
    }
  });

  int listen_fd = -1;
  if (!options.socket_path.empty()) {
    listen_fd = serve::listen_unix(options.socket_path);
  } else {
    listen_fd = serve::listen_tcp(options.tcp_port);
  }
  if (listen_fd < 0) {
    std::perror("fabric: bind/listen");
    stop_monitor.store(true);
    monitor.join();
    return 3;
  }

  // Accept loop. Bounded poll so completion (or a fatal error) is
  // noticed promptly even with no connection attempt in flight.
  std::vector<std::thread> connections;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(shared->mutex);
      if (shared->table.all_committed()) break;
    }
    if (shared->fatal.load()) break;
    if (runtime::drain_requested()) break;
    struct pollfd pfd = {listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back(
        [&, fd] { serve_worker(options, *shared, fd); });
  }
  ::close(listen_fd);
  if (!options.socket_path.empty()) ::unlink(options.socket_path.c_str());
  for (std::thread& connection : connections) connection.join();
  stop_monitor.store(true);
  monitor.join();

  if (shared->fatal.load()) {
    std::fprintf(stderr, "fabric: fatal: %s\n",
                 shared->fatal_message.c_str());
    return 3;
  }
  if (runtime::drain_requested()) {
    std::fprintf(stderr,
                 "fabric: drained with %llu/%llu leases committed; "
                 "relaunch with --resume to finish\n",
                 static_cast<unsigned long long>(
                     shared->table.committed_count()),
                 static_cast<unsigned long long>(
                     shared->table.lease_count()));
    return 130;
  }

  // Reduce: merge every committed shard journal, then resume the
  // merged journal over the full range in-process. Cells lost to
  // journal chaos in a worker re-execute here, so the digest below is
  // the digest an uninterrupted single-process run produces.
  const LeaseTable::Audit audit = shared->table.audit();
  try {
    const std::string merged = workdir + "/merged.journal";
    const runtime::JournalMergeStats stats = runtime::merge_journals(
        shared->table.committed_journals(), merged);
    scenario::CampaignSpec final_spec = options.campaign;
    final_spec.journal = merged;
    final_spec.resume = true;
    final_spec.cell_lo = 0;
    final_spec.cell_hi = ~0ull;
    final_spec.chaos.clear();  // chaos was the workers' burden
    runtime::McConfig final_config =
        scenario::to_mc_config(final_spec, options.scenario);
    const runtime::McRunner runner =
        scenario::make_mc_runner(options.scenario);
    runtime::McExecution exec(final_config, runner);
    runtime::ThreadPool pool(final_config.threads);
    exec.enqueue(pool);
    pool.wait_idle();
    const runtime::McSummary summary = exec.reduce(pool);

    if (!options.quiet) {
      std::fprintf(stderr,
                   "fabric: merged %llu shard journals (%llu records, "
                   "%llu duplicates, %llu corrupt) -> %llu resumed + "
                   "%llu re-executed\n",
                   static_cast<unsigned long long>(stats.inputs),
                   static_cast<unsigned long long>(stats.records_out),
                   static_cast<unsigned long long>(stats.duplicates),
                   static_cast<unsigned long long>(stats.corrupt),
                   static_cast<unsigned long long>(summary.cells_resumed),
                   static_cast<unsigned long long>(summary.cells_executed));
      std::fprintf(stderr,
                   "fabric: audit: %llu leases, %llu grants, %llu "
                   "expiries, %llu duplicates coalesced\n",
                   static_cast<unsigned long long>(audit.leases),
                   static_cast<unsigned long long>(audit.granted),
                   static_cast<unsigned long long>(audit.expired),
                   static_cast<unsigned long long>(audit.coalesced));
    }
    std::printf("digest: %s\n", hex16(summary.digest()).c_str());
    if (!options.json_out.empty()) {
      if (options.json_out == "-") {
        runtime::write_snapshot(std::cout, final_config, summary);
      } else {
        std::ofstream out(options.json_out);
        if (!out) {
          std::fprintf(stderr, "fabric: cannot write '%s'\n",
                       options.json_out.c_str());
          return 3;
        }
        runtime::write_snapshot(out, final_config, summary);
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fabric: %s\n", error.what());
    return 3;
  }
  return 0;
}

}  // namespace vds::fabric
