#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "scenario/campaign_spec.hpp"
#include "scenario/scenario.hpp"

namespace vds::scenario {
class JsonValue;
}  // namespace vds::scenario

namespace vds::fabric {

// The fabric wire protocol: newline-delimited single-line JSON
// documents over the serve transports, one schema tag per message
// kind. The coordinator listens; workers dial in. Handshake:
//
//   worker      -> vds.fabric_hello.v1      (name announcement)
//   coordinator -> vds.fabric_config.v1     (scenario + campaign)
//   coordinator -> vds.fabric_lease.v1      (one cell-range lease)
//   worker      -> vds.fabric_heartbeat.v1  (liveness while running)
//   worker      -> vds.fabric_result.v1     (digest or failure)
//   ... more leases ...
//   coordinator -> vds.fabric_done.v1       (no work left; disconnect)
//
// Both sides rebuild the campaign config through the same
// scenario/campaign_spec layer, so worker and coordinator compute the
// same journal fingerprint from the config message — a worker whose
// scenario parse drifts cannot silently contribute foreign cells.

/// What a worker announces on connect.
struct Hello {
  std::string worker;  ///< display name, e.g. "worker-3" or host:pid
};

/// Full campaign description the coordinator pushes after the hello.
struct Config {
  scenario::Scenario scenario;
  scenario::CampaignSpec campaign;  ///< campaign-shaping fields only
  std::string chaos;                ///< chaos spec workers must arm
  std::uint64_t heartbeat_ms = 1000;
};

/// One cell-range lease grant.
struct Lease {
  std::uint64_t lease = 0;    ///< lease id (stable across attempts)
  std::uint64_t attempt = 1;  ///< grant generation, 1-based
  std::uint64_t lo = 0;       ///< half-open cell range [lo, hi)
  std::uint64_t hi = 0;
  std::string journal;        ///< per-attempt shard journal path
};

/// Worker liveness ping while a lease executes.
struct Heartbeat {
  std::string worker;
  std::uint64_t lease = 0;
  std::uint64_t resolved = 0;  ///< cells resolved so far (progress)
};

/// Lease outcome. `status` is "ok" (digest/cells meaningful) or
/// "failed" (`error` says why; the lease goes back into the pool).
struct Result {
  std::string worker;
  std::uint64_t lease = 0;
  std::uint64_t attempt = 1;
  std::uint64_t digest = 0;  ///< shard summary digest (ok only)
  std::uint64_t cells = 0;   ///< cells executed (ok only)
  bool ok = true;
  std::string error;
};

// --- writers (one compact line, no trailing newline) ------------------

[[nodiscard]] std::string format_hello(const Hello& hello);
[[nodiscard]] std::string format_config(const Config& config);
[[nodiscard]] std::string format_lease(const Lease& lease);
[[nodiscard]] std::string format_heartbeat(const Heartbeat& heartbeat);
[[nodiscard]] std::string format_result(const Result& result);
[[nodiscard]] std::string format_done();

// --- readers ----------------------------------------------------------

/// Message kinds a fabric peer can receive.
enum class MessageKind {
  kHello,
  kConfig,
  kLease,
  kHeartbeat,
  kResult,
  kDone,
};

/// Reads the schema tag and maps it to a kind. Throws
/// std::invalid_argument on a missing/unknown schema.
[[nodiscard]] MessageKind classify(const scenario::JsonValue& doc);

/// Strict per-kind parsers; each throws std::invalid_argument (or
/// scenario::JsonError) on missing keys, wrong types or unknown keys.
[[nodiscard]] Hello parse_hello(const scenario::JsonValue& doc);
[[nodiscard]] Config parse_config(const scenario::JsonValue& doc);
[[nodiscard]] Lease parse_lease(const scenario::JsonValue& doc);
[[nodiscard]] Heartbeat parse_heartbeat(const scenario::JsonValue& doc);
[[nodiscard]] Result parse_result(const scenario::JsonValue& doc);

/// `%016x` — the canonical digest spelling on the wire and in logs.
[[nodiscard]] std::string hex16(std::uint64_t value);

/// Inverse of hex16; throws std::invalid_argument on a malformed
/// token.
[[nodiscard]] std::uint64_t parse_hex64(std::string_view text);

}  // namespace vds::fabric
