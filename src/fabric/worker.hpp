#pragma once

#include <cstdint>
#include <string>

namespace vds::fabric {

/// Everything `vds_fabric --worker` resolves from its command line.
/// Scenario and campaign shape arrive over the wire (the config
/// handshake), so a worker needs only the rendezvous and its local
/// execution policy.
struct WorkerOptions {
  std::string socket_path;     ///< Unix socket to dial
  std::uint16_t tcp_port = 0;  ///< used instead when socket empty
  std::string name;            ///< announced in the hello (default: pid)
  unsigned threads = 0;        ///< per-lease pool width (0 = hardware)
  /// Heartbeat override, ms: kUseConfig takes the coordinator's
  /// interval; 0 disables heartbeats entirely (the lease-expiry test
  /// harness races completion against expiry this way).
  static constexpr std::uint64_t kUseConfig = ~0ull;
  std::uint64_t heartbeat_ms = kUseConfig;
  bool quiet = false;
};

/// Runs leases until the coordinator says done (0), the connection
/// dies (3 — a dead coordinator, distinguished from a slow one by the
/// transport error surfaced on the sink), or a drain signal lands
/// (130; the in-flight lease is reported failed so it reopens).
[[nodiscard]] int run_worker(const WorkerOptions& options);

}  // namespace vds::fabric
