#include "diversity/transforms.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace vds::diversity {

using vds::smt::Instr;
using vds::smt::Opcode;
using vds::smt::Program;

vds::smt::Program commute_operands(const Program& program,
                                   vds::sim::Rng& rng, double prob) {
  Program out(program.name() + "+commute", program.code());
  for (auto& instr : out.code()) {
    if (!instr.uses_imm && vds::smt::is_commutative(instr.op) &&
        rng.bernoulli(prob)) {
      std::swap(instr.src1, instr.src2);
    }
  }
  return out;
}

vds::smt::Program strength_reduce(const Program& program,
                                  vds::sim::Rng& rng, double prob) {
  Program out(program.name() + "+strength", program.code());
  for (auto& instr : out.code()) {
    if (!instr.uses_imm) continue;
    if (instr.op == Opcode::kMul && instr.imm > 0 &&
        (instr.imm & (instr.imm - 1)) == 0 && rng.bernoulli(prob)) {
      // mul r, r, 2^k  ->  shl r, r, k
      std::int64_t k = 0;
      for (std::int64_t v = instr.imm; v > 1; v >>= 1) ++k;
      instr.op = Opcode::kShl;
      instr.imm = k;
    } else if (instr.op == Opcode::kShl && instr.imm >= 0 &&
               instr.imm < 63 && rng.bernoulli(prob)) {
      // shl r, r, k  ->  mul r, r, 2^k
      instr.op = Opcode::kMul;
      instr.imm = std::int64_t{1} << instr.imm;
    }
  }
  return out;
}

vds::smt::Program permute_registers(const Program& program,
                                    vds::sim::Rng& rng,
                                    const std::vector<std::uint8_t>& pinned) {
  std::array<std::uint8_t, vds::smt::kNumRegisters> mapping{};
  std::vector<std::uint8_t> movable;
  std::array<bool, vds::smt::kNumRegisters> is_pinned{};
  for (const auto reg : pinned) is_pinned[reg % vds::smt::kNumRegisters] = true;
  for (std::uint8_t r = 0; r < vds::smt::kNumRegisters; ++r) {
    mapping[r] = r;
    if (!is_pinned[r]) movable.push_back(r);
  }
  // Fisher-Yates over the movable registers.
  for (std::size_t i = movable.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_index(i));
    std::swap(movable[i - 1], movable[j]);
  }
  std::size_t k = 0;
  for (std::uint8_t r = 0; r < vds::smt::kNumRegisters; ++r) {
    if (!is_pinned[r]) mapping[r] = movable[k++];
  }

  Program out(program.name() + "+rename", program.code());
  for (auto& instr : out.code()) {
    instr.dst = mapping[instr.dst % vds::smt::kNumRegisters];
    instr.src1 = mapping[instr.src1 % vds::smt::kNumRegisters];
    instr.src2 = mapping[instr.src2 % vds::smt::kNumRegisters];
  }
  return out;
}

namespace {

bool reorder_safe(const Instr& a, const Instr& b) noexcept {
  using vds::smt::is_branch;
  using vds::smt::writes_register;
  if (is_branch(a.op) || is_branch(b.op)) return false;
  if (a.op == Opcode::kHalt || b.op == Opcode::kHalt) return false;
  // Memory operations are never reordered relative to each other
  // (addresses are dynamic); a single mem op may move past pure ALU ops.
  const bool a_mem = a.op == Opcode::kLoad || a.op == Opcode::kStore;
  const bool b_mem = b.op == Opcode::kLoad || b.op == Opcode::kStore;
  if (a_mem && b_mem) return false;

  const auto reads = [](const Instr& instr, std::uint8_t reg) {
    if (instr.src1 == reg) return true;
    if (!instr.uses_imm && instr.src2 == reg) return true;
    // Stores read src2 even in immediate-displacement form.
    if (instr.op == Opcode::kStore && instr.src2 == reg) return true;
    return false;
  };

  if (writes_register(a.op)) {
    if (reads(b, a.dst)) return false;                        // RAW
    if (writes_register(b.op) && b.dst == a.dst) return false;  // WAW
  }
  if (writes_register(b.op) && reads(a, b.dst)) return false;  // WAR
  return true;
}

}  // namespace

vds::smt::Program reorder_independent(const Program& program,
                                      vds::sim::Rng& rng, double prob) {
  Program out(program.name() + "+reorder", program.code());
  auto& code = out.code();
  // A pass of candidate adjacent swaps. Swapping only pairs that are
  // not themselves branch targets is guaranteed by never moving
  // instructions across branches and never changing code size; branch
  // *offsets* still change meaning if a branch lands between a swapped
  // pair, so we additionally exclude positions that are targets.
  std::vector<bool> is_target(code.size() + 1, false);
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (vds::smt::is_branch(code[i].op)) {
      const std::int64_t target =
          static_cast<std::int64_t>(i) + code[i].imm;
      if (target >= 0 &&
          target <= static_cast<std::int64_t>(code.size())) {
        is_target[static_cast<std::size_t>(target)] = true;
      }
    }
  }
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (is_target[i] || is_target[i + 1]) continue;
    if (reorder_safe(code[i], code[i + 1]) && rng.bernoulli(prob)) {
      std::swap(code[i], code[i + 1]);
      ++i;  // do not re-swap the same instruction immediately
    }
  }
  return out;
}

vds::smt::Program insert_at_positions(
    const Program& program, const std::vector<std::size_t>& positions,
    const Instr& filler) {
  const auto& code = program.code();
  std::vector<std::size_t> sorted = positions;
  std::sort(sorted.begin(), sorted.end());

  // new_index[j] = final index of old instruction j (j in [0, size]):
  // every insert position p <= j places a filler before j.
  std::vector<std::size_t> new_index(code.size() + 1);
  for (std::size_t j = 0; j <= code.size(); ++j) {
    const auto shift = static_cast<std::size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), j) - sorted.begin());
    new_index[j] = j + shift;
  }

  Program out(program.name() + "+pad");
  std::size_t cursor = 0;
  for (std::size_t j = 0; j < code.size(); ++j) {
    while (cursor < sorted.size() && sorted[cursor] == j) {
      out.push(filler);
      ++cursor;
    }
    out.push(code[j]);
  }
  while (cursor < sorted.size()) {
    out.push(filler);
    ++cursor;
  }

  // Fix branch offsets: old branch i targeting t = i + imm must target
  // new_index[t] from its own new position.
  for (std::size_t j = 0; j < code.size(); ++j) {
    if (!vds::smt::is_branch(code[j].op)) continue;
    const std::int64_t old_target =
        static_cast<std::int64_t>(j) + code[j].imm;
    if (old_target < 0 ||
        old_target > static_cast<std::int64_t>(code.size())) {
      continue;  // out-of-range target behaves as program exit either way
    }
    // Land on the *instruction* old_target, after any fillers placed
    // before it would have been skipped: aim at the final index of the
    // old instruction itself.
    const std::size_t branch_new = new_index[j];
    const std::size_t target_new =
        new_index[static_cast<std::size_t>(old_target)];
    out.at(branch_new).imm = static_cast<std::int64_t>(target_new) -
                             static_cast<std::int64_t>(branch_new);
  }
  return out;
}

vds::smt::Program complement_memory(const Program& program) {
  constexpr std::uint8_t kValueScratch = 26;
  constexpr std::uint8_t kMaskReg = 27;

  const auto uses_reg = [](const Instr& instr, std::uint8_t reg) {
    if (vds::smt::writes_register(instr.op) && instr.dst == reg) {
      return true;
    }
    if (instr.op == Opcode::kNop || instr.op == Opcode::kHalt) return false;
    if (instr.src1 == reg) return true;
    const bool reads_src2 =
        !instr.uses_imm || instr.op == Opcode::kStore ||
        instr.op == Opcode::kBeq || instr.op == Opcode::kBne;
    return reads_src2 && instr.src2 == reg;
  };
  for (const Instr& instr : program.code()) {
    if (uses_reg(instr, kValueScratch) || uses_reg(instr, kMaskReg)) {
      throw std::invalid_argument(
          "complement_memory: program uses reserved scratch registers "
          "r26/r27");
    }
  }

  Program out(program.name() + "+complement");
  // Prologue: materialize the all-ones mask without assuming any
  // register contents (r27 ^= r27 zeroes it; 0 - 1 wraps to ~0).
  out.push(vds::smt::make_rrr(Opcode::kXor, kMaskReg, kMaskReg, kMaskReg));
  out.push(vds::smt::make_rri(Opcode::kSub, kMaskReg, kMaskReg, 1));

  // new_index[j] = emitted index of the first instruction of old j's
  // replacement group (branch targets land on the group start).
  std::vector<std::size_t> new_index(program.size() + 1);
  for (std::size_t j = 0; j < program.size(); ++j) {
    const Instr& instr = program.at(j);
    new_index[j] = out.size();
    if (instr.op == Opcode::kStore) {
      // Encode the value, then store the complemented word.
      out.push(vds::smt::make_rrr(Opcode::kXor, kValueScratch, instr.src2,
                                  kMaskReg));
      Instr store = instr;
      store.src2 = kValueScratch;
      out.push(store);
    } else if (instr.op == Opcode::kLoad) {
      // Load the complemented word, then decode in place.
      out.push(instr);
      out.push(vds::smt::make_rrr(Opcode::kXor, instr.dst, instr.dst,
                                  kMaskReg));
    } else {
      out.push(instr);
    }
  }
  new_index[program.size()] = out.size();

  // Branch offset fixup.
  for (std::size_t j = 0; j < program.size(); ++j) {
    const Instr& instr = program.at(j);
    if (!vds::smt::is_branch(instr.op)) continue;
    std::int64_t target = static_cast<std::int64_t>(j) + instr.imm;
    target = std::clamp<std::int64_t>(
        target, 0, static_cast<std::int64_t>(program.size()));
    const std::size_t branch_new = new_index[j];
    out.at(branch_new).imm =
        static_cast<std::int64_t>(
            new_index[static_cast<std::size_t>(target)]) -
        static_cast<std::int64_t>(branch_new);
  }
  return out;
}

std::uint64_t decoded_region_digest(const vds::smt::Machine& machine,
                                    Encoding encoding, std::uint64_t addr,
                                    std::size_t len) noexcept {
  std::uint64_t h = 0x811c9dc5u;
  for (std::size_t k = 0; k < len; ++k) {
    std::uint64_t word = machine.peek(addr + k);
    if (encoding == Encoding::kComplement) word = ~word;
    h ^= word + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

vds::smt::Program insert_neutral_ops(const Program& program,
                                     vds::sim::Rng& rng, double density) {
  std::vector<std::size_t> positions;
  for (std::size_t j = 0; j < program.size(); ++j) {
    if (rng.bernoulli(density)) positions.push_back(j);
  }
  // Neutral filler: r25 += 0 keeps all values intact. (Even if r25 is
  // live, adding an immediate zero is the identity.)
  const Instr filler = vds::smt::make_rri(Opcode::kAdd, 25, 25, 0);
  Program out = insert_at_positions(program, positions, filler);
  out.set_name(program.name() + "+pad");
  return out;
}

}  // namespace vds::diversity
