#include "diversity/coverage.hpp"

namespace vds::diversity {
namespace {

std::uint64_t run_with_fault(const vds::smt::Program& program,
                             Encoding encoding,
                             const CoverageCampaign& campaign,
                             const std::function<void(vds::smt::Machine&)>&
                                 seeder,
                             std::optional<vds::smt::StuckAtFault> fault) {
  vds::smt::Machine machine(campaign.memory_words);
  seeder(machine);
  machine.set_fault(fault);
  const auto result = machine.run(program, campaign.max_steps);
  if (!result.halted) {
    // A hang is an output of its own kind; fold the distinction into the
    // digest so it always counts as a deviation.
    return 0xDEADDEADDEADDEADull;
  }
  return decoded_region_digest(machine, encoding, campaign.output_base,
                               campaign.output_len);
}

}  // namespace

CoverageResult run_coverage(
    const vds::smt::Program& version_a, const vds::smt::Program& version_b,
    const CoverageCampaign& campaign,
    const std::function<void(vds::smt::Machine&)>& seeder) {
  CoverageResult result;

  const std::uint64_t golden_a = run_with_fault(
      version_a, campaign.encoding_a, campaign, seeder, std::nullopt);
  const std::uint64_t golden_b = run_with_fault(
      version_b, campaign.encoding_b, campaign, seeder, std::nullopt);
  // Version equivalence is a precondition; a mismatch here is a bug in
  // the variant generation, surfaced through every fault being
  // "detected". Tests assert golden_a == golden_b separately.
  (void)golden_b;

  std::vector<bool> polarities = {true};
  if (campaign.both_polarities) polarities.push_back(false);

  for (const auto unit : campaign.units) {
    for (const auto bit : campaign.bits) {
      for (const bool stuck_to_one : polarities) {
        vds::smt::StuckAtFault fault;
        fault.unit = unit;
        fault.bit = bit;
        fault.stuck_to_one = stuck_to_one;

        const std::uint64_t out_a = run_with_fault(
            version_a, campaign.encoding_a, campaign, seeder, fault);
        const std::uint64_t out_b = run_with_fault(
            version_b, campaign.encoding_b, campaign, seeder, fault);

        ++result.faults_injected;
        const bool effective = (out_a != golden_a) || (out_b != golden_b);
        const bool detected = out_a != out_b;
        if (effective) ++result.effective;
        if (detected) ++result.detected;
        if (effective && !detected) ++result.silent_corruptions;
      }
    }
  }
  return result;
}

}  // namespace vds::diversity
