#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "diversity/transforms.hpp"
#include "smt/machine.hpp"
#include "smt/program.hpp"

namespace vds::diversity {

/// Result of a permanent-fault coverage campaign over a version pair.
/// A fault is *effective* when it changes at least one version's output
/// relative to the golden run; it is *detected* when the two versions'
/// outputs disagree with each other (the VDS comparison fires). An
/// effective but undetected fault is the dangerous case the paper's
/// diversity assumption (§2.1) is meant to exclude.
struct CoverageResult {
  std::size_t faults_injected = 0;
  std::size_t effective = 0;
  std::size_t detected = 0;
  std::size_t silent_corruptions = 0;  ///< effective but undetected

  [[nodiscard]] double coverage() const noexcept {
    return effective == 0 ? 1.0
                          : static_cast<double>(detected) /
                                static_cast<double>(effective);
  }
};

/// Campaign configuration: which stuck-at faults to enumerate.
struct CoverageCampaign {
  std::vector<vds::smt::OpClass> units = {
      vds::smt::OpClass::kAlu, vds::smt::OpClass::kMul,
      vds::smt::OpClass::kMem};
  std::vector<std::uint8_t> bits = {0, 1, 7, 15, 31, 63};
  bool both_polarities = true;
  std::uint64_t output_base = 0;
  std::size_t output_len = 0;
  std::size_t memory_words = 4096;
  std::uint64_t max_steps = 1u << 22;
  /// Data encodings of the two versions. The comparison decodes each
  /// version's output through its encoding first, mirroring the
  /// encoding-aware state adjustment of a real systematic-diversity
  /// VDS [6]. Mixing kIdentity with kComplement makes memory-path
  /// stuck-at faults detectable.
  Encoding encoding_a = Encoding::kIdentity;
  Encoding encoding_b = Encoding::kIdentity;
};

/// Runs the campaign: for every enumerated stuck-at fault, executes
/// both versions on the faulty machine and compares their outputs.
/// `seeder` initializes machine memory identically for every run.
[[nodiscard]] CoverageResult run_coverage(
    const vds::smt::Program& version_a, const vds::smt::Program& version_b,
    const CoverageCampaign& campaign,
    const std::function<void(vds::smt::Machine&)>& seeder);

}  // namespace vds::diversity
