#include "diversity/generator.hpp"

#include <algorithm>
#include <cmath>

#include "diversity/transforms.hpp"

namespace vds::diversity {

Recipe recipe_none() {
  Recipe recipe;
  recipe.commute = recipe.strength = recipe.rename = recipe.reorder =
      recipe.pad = false;
  return recipe;
}

Recipe recipe_light() {
  Recipe recipe = recipe_none();
  recipe.commute = true;
  return recipe;
}

Recipe recipe_medium() {
  Recipe recipe = recipe_light();
  recipe.strength = true;
  recipe.reorder = true;
  return recipe;
}

Recipe recipe_full() { return Recipe{}; }

vds::smt::Program Generator::variant(const vds::smt::Program& base,
                                     const Recipe& recipe) {
  vds::smt::Program out = base;
  if (recipe.commute) out = commute_operands(out, rng_, recipe.commute_prob);
  if (recipe.strength) out = strength_reduce(out, rng_, recipe.strength_prob);
  if (recipe.reorder) out = reorder_independent(out, rng_, recipe.reorder_prob);
  if (recipe.pad) out = insert_neutral_ops(out, rng_, recipe.pad_density);
  if (recipe.rename) out = permute_registers(out, rng_, recipe.pinned_registers);
  out.set_name(base.name() + "#variant");
  return out;
}

std::vector<vds::smt::Program> Generator::variants(
    const vds::smt::Program& base, const Recipe& recipe, std::size_t n) {
  std::vector<vds::smt::Program> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(variant(base, recipe));
  return out;
}

DiversityMetrics measure_diversity(const vds::smt::Program& a,
                                   const vds::smt::Program& b) {
  DiversityMetrics metrics;
  metrics.edit_distance = a.edit_distance(b);
  const double denom = static_cast<double>(std::max(a.size(), b.size()));
  metrics.normalized_edit_distance =
      denom == 0.0 ? 0.0 : static_cast<double>(metrics.edit_distance) / denom;

  const auto ha = a.class_histogram();
  const auto hb = b.class_histogram();
  double l1 = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < ha.size(); ++i) {
    l1 += std::fabs(static_cast<double>(ha[i]) - static_cast<double>(hb[i]));
    total += static_cast<double>(ha[i]) + static_cast<double>(hb[i]);
  }
  metrics.class_mix_distance = total == 0.0 ? 0.0 : l1 / total;
  return metrics;
}

}  // namespace vds::diversity
