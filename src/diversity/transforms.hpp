#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "smt/machine.hpp"
#include "smt/program.hpp"

namespace vds::diversity {

/// Systematic-diversity transforms ([6], Lovric): semantics-preserving
/// rewrites that make two versions of the same program exercise the
/// hardware differently, so a single permanent fault is unlikely to
/// corrupt both versions identically. Every transform returns a new
/// Program computing the same observable result (memory outputs).

/// Swaps src1/src2 of commutative register-register instructions with
/// probability `prob` per eligible instruction.
[[nodiscard]] vds::smt::Program commute_operands(
    const vds::smt::Program& program, vds::sim::Rng& rng, double prob = 1.0);

/// Rewrites multiply-by-power-of-two-immediate as a shift and vice
/// versa. Moves work between the multiplier and the ALU -- the classic
/// way to expose a defective unit through version disagreement.
[[nodiscard]] vds::smt::Program strength_reduce(
    const vds::smt::Program& program, vds::sim::Rng& rng, double prob = 1.0);

/// Applies a register renaming (a permutation of the register file) to
/// every operand. Registers in `pinned` keep their names (use for
/// registers carrying externally set inputs). All registers start at
/// zero, so any consistent renaming preserves semantics.
[[nodiscard]] vds::smt::Program permute_registers(
    const vds::smt::Program& program, vds::sim::Rng& rng,
    const std::vector<std::uint8_t>& pinned = {});

/// Swaps adjacent instruction pairs that are provably independent
/// (no register dependences, neither is a branch or memory operation).
[[nodiscard]] vds::smt::Program reorder_independent(
    const vds::smt::Program& program, vds::sim::Rng& rng, double prob = 0.5);

/// Inserts semantic no-ops (`add rX, rX, 0`) at random positions,
/// fixing up branch offsets that span the insertion point. Pure timing/
/// usage diversity.
[[nodiscard]] vds::smt::Program insert_neutral_ops(
    const vds::smt::Program& program, vds::sim::Rng& rng,
    double density = 0.1);

/// Remaps branch offsets after instructions were inserted: old index j
/// becomes j + count(insert positions <= j). Exposed for testing.
[[nodiscard]] vds::smt::Program insert_at_positions(
    const vds::smt::Program& program,
    const std::vector<std::size_t>& positions,
    const vds::smt::Instr& filler);

/// How a program variant encodes the data it keeps in memory. The VDS
/// state comparison decodes each version's output through its encoding
/// before comparing (the "adjustment" of Lovric's systematic diversity
/// [6]).
enum class Encoding : std::uint8_t {
  kIdentity,    ///< values stored as-is
  kComplement,  ///< every stored word is bitwise complemented
};

/// Data-encoding diversity: rewrites the program so that every value
/// written to memory is stored *complemented* and re-complemented after
/// each load. A stuck-at fault in the memory path then corrupts the
/// logical values of an identity-encoded and a complement-encoded
/// version differently, making memory-path permanent faults detectable
/// -- the one fault class the value-preserving transforms above cannot
/// expose. Uses r26/r27 as scratch (r27 is rebuilt to ~0 at entry, so
/// no precondition on register contents); programs using r26/r27 for
/// live data are not eligible.
[[nodiscard]] vds::smt::Program complement_memory(
    const vds::smt::Program& program);

/// Decoded digest of a machine memory region under an encoding.
[[nodiscard]] std::uint64_t decoded_region_digest(
    const vds::smt::Machine& machine, Encoding encoding,
    std::uint64_t addr, std::size_t len) noexcept;

}  // namespace vds::diversity
