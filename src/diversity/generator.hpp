#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "smt/machine.hpp"
#include "smt/program.hpp"

namespace vds::diversity {

/// Which transforms a generated variant applies, with intensities.
/// The defaults give "full" systematic diversity.
struct Recipe {
  bool commute = true;
  bool strength = true;
  bool rename = true;
  bool reorder = true;
  bool pad = true;
  double commute_prob = 1.0;
  double strength_prob = 1.0;
  double reorder_prob = 0.5;
  double pad_density = 0.08;
  std::vector<std::uint8_t> pinned_registers;
};

/// Diversity level presets used by the coverage experiment (E14).
[[nodiscard]] Recipe recipe_none();       ///< identical copy
[[nodiscard]] Recipe recipe_light();      ///< commutation only
[[nodiscard]] Recipe recipe_medium();     ///< + strength reduction
[[nodiscard]] Recipe recipe_full();       ///< everything

/// Automatic diverse-version generation in the spirit of Jochim [4]:
/// derives semantically equivalent variants of a base program by
/// composing systematic-diversity transforms.
class Generator {
 public:
  explicit Generator(vds::sim::Rng rng) : rng_(rng) {}

  /// Produces one variant according to the recipe.
  [[nodiscard]] vds::smt::Program variant(const vds::smt::Program& base,
                                          const Recipe& recipe);

  /// Produces n distinct-seeded variants.
  [[nodiscard]] std::vector<vds::smt::Program> variants(
      const vds::smt::Program& base, const Recipe& recipe, std::size_t n);

 private:
  vds::sim::Rng rng_;
};

/// Checks that two programs compute the same output-region digest on a
/// fresh machine (memory seeded by `seed_memory` values, if any).
struct EquivalenceCheck {
  std::uint64_t output_base = 0;
  std::size_t output_len = 0;
  std::size_t memory_words = 4096;
  std::uint64_t max_steps = 1u << 22;
};

/// Runs both programs on identical fresh machines seeded by `seeder`
/// and compares output digests. Returns true iff both halt and agree.
template <typename Seeder>
[[nodiscard]] bool equivalent(const vds::smt::Program& a,
                              const vds::smt::Program& b,
                              const EquivalenceCheck& check, Seeder&& seeder) {
  vds::smt::Machine ma(check.memory_words);
  vds::smt::Machine mb(check.memory_words);
  seeder(ma);
  seeder(mb);
  const auto ra = ma.run(a, check.max_steps);
  const auto rb = mb.run(b, check.max_steps);
  if (!ra.halted || !rb.halted) return false;
  return ma.region_digest(check.output_base, check.output_len) ==
         mb.region_digest(check.output_base, check.output_len);
}

/// Structural diversity metrics between two programs.
struct DiversityMetrics {
  std::size_t edit_distance = 0;
  double normalized_edit_distance = 0.0;  ///< / max(size_a, size_b)
  /// L1 distance between the op-class usage histograms, normalized.
  double class_mix_distance = 0.0;
};

[[nodiscard]] DiversityMetrics measure_diversity(const vds::smt::Program& a,
                                                 const vds::smt::Program& b);

}  // namespace vds::diversity
