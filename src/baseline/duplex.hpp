#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "fault/injector.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace vds::baseline {

/// True (physical) duplex system: two separate processors each run one
/// diverse version at full speed; states are exchanged and compared
/// after every round. This is the system a VDS approximates with half
/// the hardware (paper §1: VDS provides "a cost advantage over duplex
/// systems because of reduced hardware requirements").
struct DuplexConfig {
  double t = 1.0;       ///< round compute time (full speed, no alpha)
  double t_cmp = 0.1;   ///< cross-processor state exchange + compare
  int s = 20;
  std::uint64_t job_rounds = 1000;
  double checkpoint_write_latency = 0.0;
  double checkpoint_read_latency = 0.0;
  /// Consecutive failed recoveries before fail-safe shutdown.
  int max_consecutive_failures = 8;
  double max_time = 1e12;
  int processors = 2;  ///< hardware cost metric

  void validate() const;
};

/// Physical-duplex reference implementation. Stop-and-retry recovery:
/// on mismatch at round i, one processor replays version 3 for i rounds
/// (i * t) while the other idles, then a 2-out-of-3 vote.
class PhysicalDuplex final : public vds::core::Engine {
 public:
  PhysicalDuplex(DuplexConfig config, vds::sim::Rng rng);

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "duplex";
  }

  /// `trace` is accepted for Engine uniformity and ignored (round
  /// accounting is aggregate; there are no per-version slot events).
  vds::core::RunReport run(vds::fault::FaultTimeline& timeline,
                           vds::sim::Trace* trace = nullptr) override;

  [[nodiscard]] const DuplexConfig& config() const noexcept {
    return config_;
  }

  /// Useful rounds per unit time per processor -- the cost-adjusted
  /// throughput used for the VDS-vs-duplex comparison.
  [[nodiscard]] static double per_processor_throughput(
      const vds::core::RunReport& report, const DuplexConfig& config);

 private:
  DuplexConfig config_;
  vds::sim::Rng rng_;
};

}  // namespace vds::baseline
