#include "baseline/srt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vds::baseline {

using vds::fault::Fault;
using vds::fault::FaultKind;

void SrtConfig::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("SrtConfig: ") + what);
  };
  if (!(t > 0.0) || !std::isfinite(t)) fail("t must be finite and > 0");
  if (!(alpha >= 0.5) || alpha > 1.0) fail("alpha in [0.5, 1]");
  if (!(compare_overhead >= 0.0) || !std::isfinite(compare_overhead)) {
    fail("compare_overhead must be finite and >= 0");
  }
  if (chunks_per_round < 1) fail("chunks_per_round >= 1");
  if (s < 1) fail("s >= 1");
  if (job_rounds == 0) fail("job_rounds >= 1");
  if (!(checkpoint_write_latency >= 0.0) ||
      !std::isfinite(checkpoint_write_latency) ||
      !(checkpoint_read_latency >= 0.0) ||
      !std::isfinite(checkpoint_read_latency)) {
    fail("checkpoint latencies must be finite and >= 0");
  }
  if (!(max_time > 0.0) || !std::isfinite(max_time)) {
    fail("max_time must be finite and > 0");
  }
}

LockstepSrt::LockstepSrt(SrtConfig config, vds::sim::Rng rng)
    : config_(config), rng_(rng) {
  config_.validate();
}

vds::core::RunReport LockstepSrt::run(vds::fault::FaultTimeline& timeline,
                                      vds::sim::Trace* /*trace*/) {
  vds::core::RunReport rep;
  // Both copies progress in lockstep at the SMT pair rate, stretched by
  // the always-on comparison hardware.
  const double round_time =
      2.0 * config_.alpha * config_.t * (1.0 + config_.compare_overhead);
  const double chunk_time =
      round_time / static_cast<double>(config_.chunks_per_round);

  double clock = 0.0;
  std::uint64_t base = 0;  // rounds committed at last checkpoint
  std::uint64_t i = 0;     // rounds since checkpoint

  while (base + i < config_.job_rounds && clock <= config_.max_time) {
    // Execute one round as a sequence of compared chunks; a fault is
    // detected at the end of its chunk.
    bool fault_detected = false;
    bool processor_crash = false;
    for (int chunk = 0; chunk < config_.chunks_per_round; ++chunk) {
      const auto faults =
          timeline.drain_window(clock, clock + chunk_time);
      clock += chunk_time;
      for (const Fault& fault : faults) {
        ++rep.faults_seen;
        switch (fault.kind) {
          case FaultKind::kTransient:
            ++rep.transient_faults;
            fault_detected = true;
            break;
          case FaultKind::kCrash:
            ++rep.crash_faults;
            fault_detected = true;
            break;
          case FaultKind::kPermanent:
            // Identical copies exercise the hardware identically: a
            // permanent fault corrupts both the same way. The sphere of
            // replication never sees a difference -- silent.
            ++rep.permanent_faults;
            rep.silent_corruption = true;
            break;
          case FaultKind::kProcessorCrash:
            ++rep.processor_crashes;
            processor_crash = true;
            fault_detected = true;
            break;
        }
        if (fault_detected) {
          rep.detection_latency.add(clock - fault.when);
        }
      }
      ++rep.comparisons;
      if (fault_detected) break;
    }

    if (fault_detected || processor_crash) {
      ++rep.detections;
      const double recovery_start = clock;
      // Rollback: both copies restart from the checkpoint.
      clock += config_.checkpoint_read_latency;
      i = 0;
      ++rep.rollbacks;
      rep.recovery_time.add(clock - recovery_start);
      continue;
    }

    ++i;
    if (i >= static_cast<std::uint64_t>(config_.s) ||
        base + i >= config_.job_rounds) {
      clock += config_.checkpoint_write_latency;
      ++rep.checkpoints;
      base += i;
      i = 0;
    }
  }

  rep.total_time = clock;
  rep.rounds_committed = std::min(base + i, config_.job_rounds);
  rep.completed = rep.rounds_committed >= config_.job_rounds;
  return rep;
}

}  // namespace vds::baseline
