#include "baseline/duplex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vds::baseline {

using vds::fault::Fault;
using vds::fault::FaultKind;
using vds::fault::Victim;

void DuplexConfig::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("DuplexConfig: ") + what);
  };
  if (!(t > 0.0) || !std::isfinite(t)) fail("t must be finite and > 0");
  if (!(t_cmp >= 0.0) || !std::isfinite(t_cmp)) {
    fail("t_cmp must be finite and >= 0");
  }
  if (s < 1) fail("s >= 1");
  if (job_rounds == 0) fail("job_rounds >= 1");
  if (!(checkpoint_write_latency >= 0.0) ||
      !std::isfinite(checkpoint_write_latency) ||
      !(checkpoint_read_latency >= 0.0) ||
      !std::isfinite(checkpoint_read_latency)) {
    fail("checkpoint latencies must be finite and >= 0");
  }
  if (max_consecutive_failures < 1) fail("max_consecutive_failures >= 1");
  if (!(max_time > 0.0) || !std::isfinite(max_time)) {
    fail("max_time must be finite and > 0");
  }
  if (processors < 2) fail("processors >= 2");
}

PhysicalDuplex::PhysicalDuplex(DuplexConfig config, vds::sim::Rng rng)
    : config_(config), rng_(rng) {
  config_.validate();
}

vds::core::RunReport PhysicalDuplex::run(vds::fault::FaultTimeline& timeline,
                                         vds::sim::Trace* /*trace*/) {
  vds::core::RunReport rep;
  const double round_time = config_.t + config_.t_cmp;

  double clock = 0.0;
  std::uint64_t base = 0;
  std::uint64_t i = 0;
  int consecutive_failures = 0;

  while (base + i < config_.job_rounds && clock <= config_.max_time &&
         !rep.failed_safe) {
    bool corrupted_a = false;
    bool corrupted_b = false;
    bool processor_crash = false;
    double first_fault = -1.0;

    for (const Fault& fault :
         timeline.drain_window(clock, clock + round_time)) {
      ++rep.faults_seen;
      if (first_fault < 0.0) first_fault = fault.when;
      switch (fault.kind) {
        case FaultKind::kTransient:
          ++rep.transient_faults;
          break;
        case FaultKind::kCrash:
          ++rep.crash_faults;
          break;
        case FaultKind::kPermanent:
          ++rep.permanent_faults;
          break;
        case FaultKind::kProcessorCrash:
          // Only one of the two processors crashes; the duplex detects
          // the divergence like any other fault.
          ++rep.processor_crashes;
          processor_crash = true;
          break;
      }
      // Each processor hosts one version: the victim attribute maps
      // directly onto a physical processor.
      const bool hits_a = fault.victim == Victim::kVersion1 ||
                          (fault.victim == Victim::kAnyActive &&
                           rng_.bernoulli(0.5));
      if (hits_a) {
        corrupted_a = true;
      } else {
        corrupted_b = true;
      }
    }
    clock += round_time;
    ++rep.comparisons;

    if (!corrupted_a && !corrupted_b && !processor_crash) {
      ++i;
      if (i >= static_cast<std::uint64_t>(config_.s) ||
          base + i >= config_.job_rounds) {
        clock += config_.checkpoint_write_latency;
        ++rep.checkpoints;
        base += i;
        i = 0;
        consecutive_failures = 0;
      }
      continue;
    }

    // Mismatch detected at the end of this round.
    ++rep.detections;
    if (first_fault >= 0.0) rep.detection_latency.add(clock - first_fault);
    const double recovery_start = clock;
    const std::uint64_t ic = i + 1;

    // Version 3 replays the interval on one processor at full speed.
    clock += config_.checkpoint_read_latency;
    clock += static_cast<double>(ic) * config_.t + 2.0 * config_.t_cmp;
    rep.comparisons += 2;

    if (corrupted_a != corrupted_b) {
      // Exactly one version corrupted: majority vote succeeds.
      ++rep.recoveries_ok;
      i = ic;
      consecutive_failures = 0;
      if (i >= static_cast<std::uint64_t>(config_.s) ||
          base + i >= config_.job_rounds) {
        clock += config_.checkpoint_write_latency;
        ++rep.checkpoints;
        base += i;
        i = 0;
      }
    } else {
      // Both corrupted (or a processor crash): no majority -> rollback.
      clock += config_.checkpoint_read_latency;
      i = 0;
      ++rep.rollbacks;
      ++consecutive_failures;
      if (consecutive_failures >= config_.max_consecutive_failures) {
        rep.failed_safe = true;
      }
    }
    rep.recovery_time.add(clock - recovery_start);
  }

  rep.total_time = clock;
  rep.rounds_committed = std::min(base + i, config_.job_rounds);
  rep.completed =
      !rep.failed_safe && rep.rounds_committed >= config_.job_rounds;
  return rep;
}

double PhysicalDuplex::per_processor_throughput(
    const vds::core::RunReport& report, const DuplexConfig& config) {
  if (report.total_time <= 0.0) return 0.0;
  return static_cast<double>(report.rounds_committed) /
         (report.total_time * static_cast<double>(config.processors));
}

}  // namespace vds::baseline
