#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "fault/injector.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace vds::baseline {

/// Reinhardt/Mukherjee-style simultaneous redundant threading (paper
/// §2.2, [9]): two *identical* copies run cycle-by-cycle lockstep on the
/// SMT processor and results are compared continuously in hardware.
///
/// Detection latency shrinks to (a fraction of) a round, but the scheme
/// pays a continuous comparison overhead, provides no design diversity
/// (permanent faults corrupting both copies identically stay invisible)
/// and, having no third version, recovers only by rollback.
struct SrtConfig {
  double t = 1.0;       ///< round of useful work (same unit as VDS)
  double alpha = 0.65;  ///< SMT slowdown running the two copies
  /// Fractional slowdown from the per-cycle comparison/buffering
  /// hardware being on the critical path.
  double compare_overhead = 0.10;
  /// Comparison granularity: chunks per round; detection happens at the
  /// end of the chunk the fault falls in.
  int chunks_per_round = 100;
  int s = 20;                       ///< checkpoint interval (rounds)
  std::uint64_t job_rounds = 1000;
  double checkpoint_write_latency = 0.0;
  double checkpoint_read_latency = 0.0;
  double max_time = 1e12;

  void validate() const;
};

/// Lockstep SRT reference implementation against the common fault
/// timeline. Reuses core::RunReport for comparable accounting: every
/// detection is followed by a rollback (no vote, no roll-forward).
class LockstepSrt final : public vds::core::Engine {
 public:
  LockstepSrt(SrtConfig config, vds::sim::Rng rng);

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "srt";
  }

  /// `trace` is accepted for Engine uniformity and ignored: lockstep
  /// comparison happens per chunk in hardware, below protocol events.
  vds::core::RunReport run(vds::fault::FaultTimeline& timeline,
                           vds::sim::Trace* trace = nullptr) override;

  [[nodiscard]] const SrtConfig& config() const noexcept { return config_; }

 private:
  SrtConfig config_;
  vds::sim::Rng rng_;
};

}  // namespace vds::baseline
