#include "model/timing.hpp"

#include <algorithm>

namespace vds::model {

double t1_round(const Params& params) noexcept {
  return 2.0 * (params.t + params.c) + params.t_cmp;
}

double t1_corr(const Params& params, double i) noexcept {
  return i * params.t + 2.0 * params.t_cmp;
}

double tht2_round(const Params& params) noexcept {
  return 2.0 * params.alpha * params.t + params.t_cmp;
}

double tht2_corr(const Params& params, double i) noexcept {
  return 2.0 * i * params.alpha * params.t + 2.0 * params.t_cmp;
}

double thtk_corr(double alpha_k, int k, const Params& params, double i,
                 int vote_compares) noexcept {
  return static_cast<double>(k) * i * alpha_k * params.t +
         static_cast<double>(vote_compares) * params.t_cmp;
}

double capped_roll_forward(double x, double i, int s) noexcept {
  return std::max(0.0, std::min(x, static_cast<double>(s) - i));
}

}  // namespace vds::model
