#pragma once

#include <cstdint>

#include "model/gain.hpp"
#include "model/params.hpp"

namespace vds::model {

/// First-order reliability/performance estimates for a VDS under a
/// Poisson fault process -- the style of analysis the paper inherits
/// from Ziv & Bruck [14] ("shortening test intervals improves
/// reliability, because the likeliness of two processes affected by a
/// fault is decreased"). All closed forms assume the per-window fault
/// probability is small enough that windows can be treated
/// independently; the engine tests validate the estimates by Monte
/// Carlo.
struct ReliabilityEstimate {
  /// P(>= 1 fault during one SMT round pair window).
  double p_fault_per_round = 0.0;
  /// Expected number of detections over the whole job.
  double expected_detections = 0.0;
  /// P(a second fault corrupts the retry/vote | a detection occurred),
  /// i.e. the per-recovery rollback probability.
  double p_recovery_failure = 0.0;
  /// Expected rollbacks over the job.
  double expected_rollbacks = 0.0;
  /// Predict scheme only: P(an undetected fault is committed by the
  /// unverified roll-forward | a detection occurred). Zero for the
  /// deterministic and probabilistic schemes, which compare their
  /// roll-forward results.
  double p_silent_per_detection = 0.0;
  /// P(the job completes with silently corrupted state).
  double p_job_silent = 0.0;
  /// Expected job completion time including recoveries and rollback
  /// losses.
  double expected_total_time = 0.0;
  /// Useful rounds per unit time implied by expected_total_time.
  double expected_throughput = 0.0;
};

/// Evaluates the estimate for an SMT VDS with the given recovery scheme
/// (Scheme::kPrediction uses params.p as the hit probability).
[[nodiscard]] ReliabilityEstimate estimate_reliability(
    const Params& params, Scheme scheme, double fault_rate,
    std::uint64_t job_rounds);

/// Checkpoint-interval s minimizing expected_total_time for the given
/// configuration, searched over s in [1, s_cap]. Implements the [14]
/// trade: larger s lengthens retries and rollback losses, smaller s
/// costs more checkpoint writes (params carries no write cost, so pass
/// one explicitly).
[[nodiscard]] int optimal_checkpoint_interval(
    Params params, Scheme scheme, double fault_rate,
    std::uint64_t job_rounds, double checkpoint_write_cost,
    int s_cap = 200);

}  // namespace vds::model
