#include "model/gain.hpp"

#include <cmath>

#include "model/timing.hpp"

namespace vds::model {
namespace {

/// Mean over the discrete uniform fault round i in {1, ..., s}.
template <typename PerRound>
double mean_over_rounds(int s, PerRound&& per_round) noexcept {
  double sum = 0.0;
  for (int i = 1; i <= s; ++i) sum += per_round(static_cast<double>(i));
  return sum / static_cast<double>(s);
}

}  // namespace

double gain_round(const Params& params) noexcept {
  return t1_round(params) / tht2_round(params);
}

double gain_round_approx(const Params& params) noexcept {
  return 1.0 / params.alpha;
}

double gain_det(const Params& params, double i) noexcept {
  const double progress = capped_roll_forward(i / 4.0, i, params.s);
  return (t1_corr(params, i) + progress * t1_round(params)) /
         tht2_corr(params, i);
}

double gain_det_approx(const Params& params, double i) noexcept {
  const double s = static_cast<double>(params.s);
  if (i <= 4.0 * s / 5.0) return 3.0 / (4.0 * params.alpha);
  return (2.0 * s - i) / (2.0 * i * params.alpha);
}

double gain_prob(const Params& params, double i) noexcept {
  const double progress = capped_roll_forward(i / 2.0, i, params.s);
  return (t1_corr(params, i) +
          params.p * progress * t1_round(params)) /
         tht2_corr(params, i);
}

double gain_hit(const Params& params, double i, bool fair_baseline) noexcept {
  const double progress = capped_roll_forward(i, i, params.s);
  const double round_value = fair_baseline ? params.t : t1_round(params);
  return (t1_corr(params, i) + progress * round_value) /
         tht2_corr(params, i);
}

double gain_hit_approx(const Params& params, double i) noexcept {
  const double s = static_cast<double>(params.s);
  if (i <= s / 2.0) return 3.0 / (2.0 * params.alpha);
  return (2.0 * s / i - 1.0) / (2.0 * params.alpha);
}

double loss_miss(const Params& params, double i) noexcept {
  return t1_corr(params, i) / tht2_corr(params, i);
}

double loss_miss_approx(const Params& params) noexcept {
  return 1.0 / (2.0 * params.alpha);
}

double gain_corr(const Params& params, double i, bool fair_baseline) noexcept {
  return params.p * gain_hit(params, i, fair_baseline) +
         (1.0 - params.p) * loss_miss(params, i);
}

double mean_gain_det(const Params& params) noexcept {
  return mean_over_rounds(params.s,
                          [&](double i) { return gain_det(params, i); });
}

double mean_gain_det_approx(const Params& params) noexcept {
  return (1.0 + 2.0 * std::log(5.0 / 4.0)) / (2.0 * params.alpha);
}

double mean_gain_prob(const Params& params) noexcept {
  return mean_over_rounds(params.s,
                          [&](double i) { return gain_prob(params, i); });
}

double mean_gain_prob_approx(const Params& params) noexcept {
  return (1.0 + 2.0 * params.p * std::log(1.5)) / (2.0 * params.alpha);
}

double mean_gain_corr(const Params& params, bool fair_baseline) noexcept {
  return mean_over_rounds(params.s, [&](double i) {
    return gain_corr(params, i, fair_baseline);
  });
}

double mean_gain_corr_approx(const Params& params) noexcept {
  return (1.0 + 2.0 * params.p * std::log(2.0)) / (2.0 * params.alpha);
}

double det_alpha_threshold() noexcept {
  return (1.0 + 2.0 * std::log(5.0 / 4.0)) / 2.0;
}

double min_p_for_gain(double alpha) noexcept {
  return (alpha - 0.5) / std::log(2.0);
}

double random_guess_alpha_threshold() noexcept {
  return (1.0 + std::log(2.0)) / 2.0;
}

double gain_corr_3threads(const Params& params, double i,
                          double alpha3) noexcept {
  const double progress = capped_roll_forward(i, i, params.s);
  const double denom = thtk_corr(alpha3, 3, params, i, /*vote_compares=*/3);
  const double hit =
      (t1_corr(params, i) + progress * t1_round(params)) / denom;
  const double miss = t1_corr(params, i) / denom;
  return params.p * hit + (1.0 - params.p) * miss;
}

double gain_corr_5threads(const Params& params, double i,
                          double alpha5) noexcept {
  const double progress = capped_roll_forward(i, i, params.s);
  const double denom = thtk_corr(alpha5, 5, params, i, /*vote_compares=*/4);
  return (t1_corr(params, i) + progress * t1_round(params)) / denom;
}

double mean_gain_corr_3threads(const Params& params, double alpha3) noexcept {
  return mean_over_rounds(params.s, [&](double i) {
    return gain_corr_3threads(params, i, alpha3);
  });
}

double mean_gain_corr_5threads(const Params& params, double alpha5) noexcept {
  return mean_over_rounds(params.s, [&](double i) {
    return gain_corr_5threads(params, i, alpha5);
  });
}

}  // namespace vds::model
