#pragma once

#include <stdexcept>

namespace vds::model {

/// Parameters of the analytical VDS performance model (paper §3, §4).
///
///  t      -- compute time of one round of one version (the time unit;
///            everything else is usually expressed relative to it)
///  c      -- context-switch time on the conventional processor
///  t_cmp  -- state-comparison time t' (paper footnote 3 remarks the
///            exact form would use max(t', c); we follow the paper and
///            use t' directly)
///  alpha  -- SMT slowdown factor: two threads run in parallel take
///            2*alpha*t per round pair, alpha in (1/2, 1]. alpha = 0.5
///            is perfect parallelism, alpha = 1 no gain. The Pentium 4
///            measurement in [13] gives alpha = 0.65.
///  s      -- checkpoint interval in rounds (state saved every s rounds)
///  p      -- probability that the faulty version is predicted correctly
///            (0.5 = random guess, 1.0 = oracle)
struct Params {
  double t = 1.0;
  double c = 0.1;
  double t_cmp = 0.1;
  double alpha = 0.65;
  int s = 20;
  double p = 0.5;

  /// Paper eq. (14): closes the model with c = t' = beta * t.
  [[nodiscard]] static Params with_beta(double alpha, double beta,
                                        int s = 20, double p = 0.5,
                                        double t = 1.0);

  /// beta = c/t (equals t'/t when built via with_beta).
  [[nodiscard]] double beta() const noexcept { return c / t; }

  /// Throws std::invalid_argument when outside the model's domain.
  void validate() const;
};

}  // namespace vds::model
