#pragma once

#include "model/params.hpp"

namespace vds::model {

/// G_max = lim_{s -> infinity} mean_gain_corr (paper §4.3).
///
/// Exact closed form keeping the beta = c/t = t'/t overheads that scale
/// with i (the constant-offset terms vanish in the limit):
///
///   G_max(p, alpha, beta) =
///     [ (1-p) + (3p/2)(1+beta) + p ((2+3beta) ln 2 - (1+3beta)/2) ]
///     / (2 alpha)
///
/// Reproduces the paper's anchors: 1.38 at (p=0.5, alpha=0.65, beta=0.1),
/// ~1.0 at alpha=0.9, ~2 at p=1.0; and reduces to (1 + 2 p ln 2)/(2 alpha)
/// at beta = 0, consistent with eq (13).
[[nodiscard]] double g_max(double p, double alpha, double beta) noexcept;
[[nodiscard]] double g_max(const Params& params) noexcept;

/// Convergence diagnostics: mean_gain_corr at finite s minus g_max.
/// The paper notes that "beyond s = 20, G_corr is already very close to
/// the limit"; this lets tests and benches quantify that claim.
[[nodiscard]] double convergence_gap(const Params& params) noexcept;

/// Smallest checkpoint interval s for which |gap| <= tol for the given
/// (p, alpha, beta). Searches s = 1..s_cap; returns s_cap+1 when not
/// reached.
[[nodiscard]] int s_for_convergence(double p, double alpha, double beta,
                                    double tol, int s_cap = 10000);

}  // namespace vds::model
