#include "model/params.hpp"

#include <cmath>
#include <string>

namespace vds::model {

Params Params::with_beta(double alpha, double beta, int s, double p,
                         double t) {
  Params params;
  params.t = t;
  params.c = beta * t;
  params.t_cmp = beta * t;
  params.alpha = alpha;
  params.s = s;
  params.p = p;
  params.validate();
  return params;
}

void Params::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("model::Params: " + what);
  };
  if (!(t > 0.0) || !std::isfinite(t)) fail("t must be finite and > 0");
  if (c < 0.0 || !std::isfinite(c)) fail("c must be finite and >= 0");
  if (t_cmp < 0.0 || !std::isfinite(t_cmp)) {
    fail("t_cmp must be finite and >= 0");
  }
  // alpha = 0.5 (ideal sharing) is admitted as the closed boundary; the
  // paper states 1/2 < alpha < 1 but evaluates the alpha = 0.5 best case.
  if (!(alpha >= 0.5) || !(alpha <= 1.0)) fail("alpha must be in [0.5, 1]");
  if (s < 1) fail("s must be >= 1");
  if (!(p >= 0.0) || !(p <= 1.0)) fail("p must be in [0, 1]");
}

}  // namespace vds::model
