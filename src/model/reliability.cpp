#include "model/reliability.hpp"

#include <cmath>

#include "model/timing.hpp"

namespace vds::model {
namespace {

/// Intended roll-forward length of a scheme at detection round i
/// (pre-cap), and its success probability.
struct RollForward {
  double length = 0.0;
  double success_prob = 1.0;
};

RollForward roll_forward_for(Scheme scheme, const Params& params,
                             double i) {
  RollForward out;
  switch (scheme) {
    case Scheme::kDeterministic:
      out.length = capped_roll_forward(i / 4.0, i, params.s);
      out.success_prob = 1.0;
      break;
    case Scheme::kProbabilistic:
      out.length = capped_roll_forward(i / 2.0, i, params.s);
      out.success_prob = params.p;
      break;
    case Scheme::kPrediction:
      out.length = capped_roll_forward(i, i, params.s);
      out.success_prob = params.p;
      break;
  }
  return out;
}

}  // namespace

ReliabilityEstimate estimate_reliability(const Params& params,
                                         Scheme scheme, double fault_rate,
                                         std::uint64_t job_rounds) {
  params.validate();
  ReliabilityEstimate est;

  const double w_round = tht2_round(params);
  est.p_fault_per_round = 1.0 - std::exp(-fault_rate * w_round);
  est.expected_detections =
      static_cast<double>(job_rounds) * est.p_fault_per_round;

  // Average the per-detection quantities over the detection round i,
  // uniform on {1, ..., s}.
  double mean_w_corr = 0.0;
  double mean_p_fail = 0.0;
  double mean_progress_kept = 0.0;
  double mean_p_silent = 0.0;
  double mean_rollback_loss = 0.0;
  for (int i = 1; i <= params.s; ++i) {
    const double x = static_cast<double>(i);
    const double w_corr = tht2_corr(params, x);
    const double p_fault_in_corr =
        1.0 - std::exp(-fault_rate * w_corr);
    // A recovery-window fault hits the retry thread (vote fails ->
    // rollback) or the roll-forward thread (result discarded, or --
    // predict scheme only -- committed silently) with equal odds.
    const double p_fail = 0.5 * p_fault_in_corr;
    const RollForward rf = roll_forward_for(scheme, params, x);
    // Progress survives when the scheme's choice was right and no
    // fault discarded it (det/prob compare their results; predict
    // keeps even corrupted progress -- hence the silent term instead).
    const double discard_prob =
        scheme == Scheme::kPrediction ? 0.0 : 0.5 * p_fault_in_corr;
    mean_w_corr += w_corr;
    mean_p_fail += p_fail;
    mean_progress_kept +=
        (1.0 - p_fail) * rf.success_prob * (1.0 - discard_prob) *
        rf.length;
    if (scheme == Scheme::kPrediction) {
      mean_p_silent += params.p * 0.5 * p_fault_in_corr;
    }
    // Rollback re-executes the i rounds since the checkpoint.
    mean_rollback_loss += p_fail * x * w_round;
  }
  const double inv_s = 1.0 / static_cast<double>(params.s);
  mean_w_corr *= inv_s;
  mean_p_fail *= inv_s;
  mean_progress_kept *= inv_s;
  mean_p_silent *= inv_s;
  mean_rollback_loss *= inv_s;

  est.p_recovery_failure = mean_p_fail;
  est.expected_rollbacks = est.expected_detections * mean_p_fail;
  est.p_silent_per_detection = mean_p_silent;
  est.p_job_silent =
      1.0 - std::exp(-est.expected_detections * mean_p_silent);

  est.expected_total_time =
      static_cast<double>(job_rounds) * w_round +
      est.expected_detections *
          (mean_w_corr - mean_progress_kept * w_round +
           mean_rollback_loss);
  est.expected_throughput =
      est.expected_total_time > 0.0
          ? static_cast<double>(job_rounds) / est.expected_total_time
          : 0.0;
  return est;
}

int optimal_checkpoint_interval(Params params, Scheme scheme,
                                double fault_rate,
                                std::uint64_t job_rounds,
                                double checkpoint_write_cost, int s_cap) {
  int best_s = 1;
  double best_time = 0.0;
  for (int s = 1; s <= s_cap; ++s) {
    params.s = s;
    const auto est =
        estimate_reliability(params, scheme, fault_rate, job_rounds);
    const double checkpoints =
        static_cast<double>(job_rounds) / static_cast<double>(s);
    const double total =
        est.expected_total_time + checkpoints * checkpoint_write_cost;
    if (s == 1 || total < best_time) {
      best_time = total;
      best_s = s;
    }
  }
  return best_s;
}

}  // namespace vds::model
