#include "model/surface.hpp"

#include <algorithm>
#include <iomanip>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace vds::model {

double Axis::at(std::size_t i) const noexcept {
  if (n <= 1) return lo;
  return lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
}

GainSurface::GainSurface(Axis alpha, Axis beta, double p, int s,
                         runtime::ThreadPool* pool)
    : alpha_(alpha), beta_(beta), p_(p), s_(s) {
  if (alpha_.n == 0 || beta_.n == 0) {
    throw std::invalid_argument("GainSurface: empty axis");
  }
  values_.resize(alpha_.n * beta_.n);

  // Each cell is a pure function of its grid point, so rows can fill
  // in any order; min/max reduce per alpha-row and fold in row order,
  // keeping the result independent of the work decomposition.
  const auto fill_row = [this](std::size_t ai, double& row_min,
                               double& row_max) {
    for (std::size_t bi = 0; bi < beta_.n; ++bi) {
      const Params params =
          Params::with_beta(alpha_.at(ai), beta_.at(bi), s_, p_);
      const double g = mean_gain_corr(params);
      values_[ai * beta_.n + bi] = g;
      if (bi == 0) {
        row_min = row_max = g;
      } else {
        row_min = std::min(row_min, g);
        row_max = std::max(row_max, g);
      }
    }
  };

  std::vector<double> row_min(alpha_.n);
  std::vector<double> row_max(alpha_.n);
  if (pool != nullptr && pool->size() > 1 && alpha_.n > 1) {
    runtime::parallel_blocks(
        *pool, alpha_.n, 1,
        [&fill_row, &row_min, &row_max](std::size_t lo, std::size_t hi) {
          for (std::size_t ai = lo; ai < hi; ++ai) {
            fill_row(ai, row_min[ai], row_max[ai]);
          }
        });
  } else {
    for (std::size_t ai = 0; ai < alpha_.n; ++ai) {
      fill_row(ai, row_min[ai], row_max[ai]);
    }
  }

  min_ = row_min[0];
  max_ = row_max[0];
  for (std::size_t ai = 1; ai < alpha_.n; ++ai) {
    min_ = std::min(min_, row_min[ai]);
    max_ = std::max(max_, row_max[ai]);
  }
}

double GainSurface::at(std::size_t ai, std::size_t bi) const {
  if (ai >= alpha_.n || bi >= beta_.n) {
    throw std::out_of_range("GainSurface::at");
  }
  return values_[ai * beta_.n + bi];
}

void GainSurface::write_matrix(std::ostream& os) const {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(4);
  os << "alpha\\beta";
  for (std::size_t bi = 0; bi < beta_.n; ++bi) {
    os << '\t' << beta_.at(bi);
  }
  os << '\n';
  for (std::size_t ai = 0; ai < alpha_.n; ++ai) {
    os << alpha_.at(ai);
    for (std::size_t bi = 0; bi < beta_.n; ++bi) {
      os << '\t' << at(ai, bi);
    }
    os << '\n';
  }
  os.flags(flags);
}

void GainSurface::write_csv(std::ostream& os) const {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(6);
  os << "alpha,beta,gain\n";
  for (std::size_t ai = 0; ai < alpha_.n; ++ai) {
    for (std::size_t bi = 0; bi < beta_.n; ++bi) {
      os << alpha_.at(ai) << ',' << beta_.at(bi) << ',' << at(ai, bi)
         << '\n';
    }
  }
  os.flags(flags);
}

}  // namespace vds::model
