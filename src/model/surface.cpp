#include "model/surface.hpp"

#include <algorithm>
#include <iomanip>
#include <stdexcept>

namespace vds::model {

double Axis::at(std::size_t i) const noexcept {
  if (n <= 1) return lo;
  return lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
}

GainSurface::GainSurface(Axis alpha, Axis beta, double p, int s)
    : alpha_(alpha), beta_(beta), p_(p), s_(s) {
  if (alpha_.n == 0 || beta_.n == 0) {
    throw std::invalid_argument("GainSurface: empty axis");
  }
  values_.resize(alpha_.n * beta_.n);
  bool first = true;
  for (std::size_t ai = 0; ai < alpha_.n; ++ai) {
    for (std::size_t bi = 0; bi < beta_.n; ++bi) {
      const Params params =
          Params::with_beta(alpha_.at(ai), beta_.at(bi), s_, p_);
      const double g = mean_gain_corr(params);
      values_[ai * beta_.n + bi] = g;
      if (first) {
        min_ = max_ = g;
        first = false;
      } else {
        min_ = std::min(min_, g);
        max_ = std::max(max_, g);
      }
    }
  }
}

double GainSurface::at(std::size_t ai, std::size_t bi) const {
  if (ai >= alpha_.n || bi >= beta_.n) {
    throw std::out_of_range("GainSurface::at");
  }
  return values_[ai * beta_.n + bi];
}

void GainSurface::write_matrix(std::ostream& os) const {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(4);
  os << "alpha\\beta";
  for (std::size_t bi = 0; bi < beta_.n; ++bi) {
    os << '\t' << beta_.at(bi);
  }
  os << '\n';
  for (std::size_t ai = 0; ai < alpha_.n; ++ai) {
    os << alpha_.at(ai);
    for (std::size_t bi = 0; bi < beta_.n; ++bi) {
      os << '\t' << at(ai, bi);
    }
    os << '\n';
  }
  os.flags(flags);
}

void GainSurface::write_csv(std::ostream& os) const {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(6);
  os << "alpha,beta,gain\n";
  for (std::size_t ai = 0; ai < alpha_.n; ++ai) {
    for (std::size_t bi = 0; bi < beta_.n; ++bi) {
      os << alpha_.at(ai) << ',' << beta_.at(bi) << ',' << at(ai, bi)
         << '\n';
    }
  }
  os.flags(flags);
}

}  // namespace vds::model
