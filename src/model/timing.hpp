#pragma once

#include "model/params.hpp"

namespace vds::model {

/// Closed-form timing expressions, paper equations (1)-(3) and (5).
/// All take the fault-detection round index i in [1, s] where needed.
/// Units are those of Params::t.

/// Eq (1): one complete VDS round on a conventional processor --
/// version 1 runs, context switch, version 2 runs, context switch,
/// states compared: T_1,round = 2 (t + c) + t'.
[[nodiscard]] double t1_round(const Params& params) noexcept;

/// Eq (2): stop-and-retry correction on a conventional processor when a
/// mismatch is found at the end of round i: version 3 replays i rounds
/// from the checkpoint, followed by a majority vote modeled as two
/// additional comparisons: T_1,corr = i t + 2 t'.
[[nodiscard]] double t1_corr(const Params& params, double i) noexcept;

/// Eq (3): one round on a 2-way SMT processor -- both versions run in
/// parallel hardware threads (no context switch), then compare:
/// T_HT2,round = 2 alpha t + t'.
[[nodiscard]] double tht2_round(const Params& params) noexcept;

/// Eq (5): SMT correction time -- thread 1 retries version 3 for i
/// rounds while thread 2 rolls forward, the two threads sharing the
/// core (factor alpha), closing with the vote's two comparisons:
/// T_HT2,corr = 2 i alpha t + 2 t'.
/// (Assumes, as the paper does, that the roll-forward in the second
/// thread does not take longer than the retry in the first.)
[[nodiscard]] double tht2_corr(const Params& params, double i) noexcept;

/// k-thread generalization used by the Section-5 outlook extension:
/// k threads active make each round cost k * alpha_k * t, so a retry of
/// i rounds costs i * k * alpha_k * t (+ vote comparisons).
/// alpha_k in (1/k, 1].
[[nodiscard]] double thtk_corr(double alpha_k, int k, const Params& params,
                               double i, int vote_compares = 2) noexcept;

/// Number of rounds actually rolled forward when the scheme intends x
/// rounds but the checkpoint interval caps progress at round s:
/// min(x, s - i)  (paper Section 3.2 / Section 4).
[[nodiscard]] double capped_roll_forward(double x, double i,
                                         int s) noexcept;

}  // namespace vds::model
