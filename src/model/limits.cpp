#include "model/limits.hpp"

#include <cmath>

#include "model/gain.hpp"

namespace vds::model {

double g_max(double p, double alpha, double beta) noexcept {
  const double ln2 = std::log(2.0);
  const double inner = (1.0 - p) + 1.5 * p * (1.0 + beta) +
                       p * ((2.0 + 3.0 * beta) * ln2 -
                            (1.0 + 3.0 * beta) / 2.0);
  return inner / (2.0 * alpha);
}

double g_max(const Params& params) noexcept {
  return g_max(params.p, params.alpha, params.beta());
}

double convergence_gap(const Params& params) noexcept {
  return mean_gain_corr(params) - g_max(params);
}

int s_for_convergence(double p, double alpha, double beta, double tol,
                      int s_cap) {
  for (int s = 1; s <= s_cap; ++s) {
    const Params params = Params::with_beta(alpha, beta, s, p);
    if (std::fabs(convergence_gap(params)) <= tol) return s;
  }
  return s_cap + 1;
}

}  // namespace vds::model
