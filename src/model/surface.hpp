#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

#include "model/gain.hpp"
#include "model/params.hpp"

namespace vds::runtime {
class ThreadPool;
}  // namespace vds::runtime

namespace vds::model {

/// A uniformly spaced axis [lo, hi] with n >= 1 samples (n == 1 pins lo).
struct Axis {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t n = 11;

  [[nodiscard]] double at(std::size_t i) const noexcept;
};

/// Dense (alpha, beta) grid of the expected correction gain
/// mean_gain_corr -- the quantity plotted in the paper's Figures 4
/// (p = 0.5) and 5 (p = 1.0), computed from the exact equations
/// (10)-(14) with a finite checkpoint interval s (paper uses s = 20).
class GainSurface {
 public:
  /// Evaluates the grid. With a pool of more than one worker the
  /// alpha-rows fill in parallel; every cell is a pure function of
  /// its grid point and min/max fold in canonical row order, so the
  /// surface (and its CSV) is bit-identical for any pool size.
  GainSurface(Axis alpha, Axis beta, double p, int s,
              runtime::ThreadPool* pool = nullptr);

  [[nodiscard]] double at(std::size_t ai, std::size_t bi) const;
  [[nodiscard]] double alpha_at(std::size_t ai) const noexcept {
    return alpha_.at(ai);
  }
  [[nodiscard]] double beta_at(std::size_t bi) const noexcept {
    return beta_.at(bi);
  }
  [[nodiscard]] std::size_t alpha_samples() const noexcept {
    return alpha_.n;
  }
  [[nodiscard]] std::size_t beta_samples() const noexcept { return beta_.n; }
  [[nodiscard]] double p() const noexcept { return p_; }
  [[nodiscard]] int s() const noexcept { return s_; }

  [[nodiscard]] double min_gain() const noexcept { return min_; }
  [[nodiscard]] double max_gain() const noexcept { return max_; }

  /// Writes the surface as a gnuplot-style matrix: header row of betas,
  /// then one row per alpha.
  void write_matrix(std::ostream& os) const;

  /// Writes long-format CSV: alpha,beta,gain.
  void write_csv(std::ostream& os) const;

 private:
  Axis alpha_;
  Axis beta_;
  double p_;
  int s_;
  std::vector<double> values_;  // row-major: [ai * beta_.n + bi]
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-dimensional sweep helper: evaluates f over an axis, producing
/// (x, f(x)) pairs. Used by the bench harnesses for the eq-(4)/(7)/(8)
/// series.
struct SweepPoint {
  double x = 0.0;
  double y = 0.0;
};

template <typename F>
[[nodiscard]] std::vector<SweepPoint> sweep(const Axis& axis, F&& f) {
  std::vector<SweepPoint> out;
  out.reserve(axis.n);
  for (std::size_t i = 0; i < axis.n; ++i) {
    const double x = axis.at(i);
    out.push_back(SweepPoint{x, f(x)});
  }
  return out;
}

}  // namespace vds::model
