#pragma once

#include "model/params.hpp"

namespace vds::model {

/// Roll-forward recovery schemes evaluated by the paper (§3.2, §4).
enum class Scheme {
  kDeterministic,  ///< i/4 rounds from each of the two candidate states
  kProbabilistic,  ///< i/2 rounds of both versions from one chosen state
  kPrediction,     ///< i rounds of the predicted fault-free version,
                   ///< no detection during roll-forward (§4)
};

// ---------------------------------------------------------------------
// Exact per-round-index gains (used for Figures 4 and 5, which the
// paper computes from the exact equations (10)-(14), not from the
// c, t' << t approximations).
// ---------------------------------------------------------------------

/// Eq (4): normal-processing speedup of the SMT VDS over the
/// conventional VDS, exact: G_round = T_1,round / T_HT2,round.
[[nodiscard]] double gain_round(const Params& params) noexcept;

/// Eq (4) with c, t' << t: G_round ~ 1/alpha.
[[nodiscard]] double gain_round_approx(const Params& params) noexcept;

/// Eq (6), exact: deterministic roll-forward gain when the fault is
/// detected at the end of round i (1 <= i <= s). Intended roll-forward
/// is i/4 rounds, capped at s - i.
[[nodiscard]] double gain_det(const Params& params, double i) noexcept;

/// Eq (6) approximation: 3/(4 alpha) for i <= 4s/5, (2s-i)/(2 i alpha)
/// beyond.
[[nodiscard]] double gain_det_approx(const Params& params,
                                     double i) noexcept;

/// Probabilistic roll-forward gain at round i, exact. Intended
/// roll-forward i/2 rounds (capped at s - i), achieved with the
/// state-choice success probability params.p, zero progress otherwise.
[[nodiscard]] double gain_prob(const Params& params, double i) noexcept;

/// Eqs (9)/(10), exact: Section-4 prediction scheme when the guess is
/// correct -- the roll-forward achieves min(i, s - i) conventional
/// rounds of progress:
///   G_hit(i) = [T_1,corr + min(i, s-i) T_1,round] / T_HT2,corr.
/// When `fair_baseline` is set, the conventional baseline is credited
/// the same trick (§4 closing remark): its post-vote catch-up executes
/// version 3 without context switches, so progress is valued at t per
/// round instead of T_1,round.
[[nodiscard]] double gain_hit(const Params& params, double i,
                              bool fair_baseline = false) noexcept;

/// Eq (10) approximation: 3/(2 alpha) for i <= s/2, (2s/i - 1)/(2 alpha)
/// beyond.
[[nodiscard]] double gain_hit_approx(const Params& params,
                                     double i) noexcept;

/// Eq (11), exact: loss factor when the prediction was wrong --
/// the roll-forward contributed nothing: L_miss = T_1,corr / T_HT2,corr.
[[nodiscard]] double loss_miss(const Params& params, double i) noexcept;

/// Eq (11) approximation: 1/(2 alpha).
[[nodiscard]] double loss_miss_approx(const Params& params) noexcept;

/// Eq (12), exact: expected prediction-scheme gain at round i,
/// G_corr(i) = p G_hit(i) + (1-p) L_miss(i).
[[nodiscard]] double gain_corr(const Params& params, double i,
                               bool fair_baseline = false) noexcept;

// ---------------------------------------------------------------------
// Averages over the fault round i, uniform on {1, ..., s}.
// ---------------------------------------------------------------------

/// Exact average of gain_det over i = 1..s.
[[nodiscard]] double mean_gain_det(const Params& params) noexcept;

/// Eq (7) approximation: (1 + 2 ln(5/4)) / (2 alpha).
[[nodiscard]] double mean_gain_det_approx(const Params& params) noexcept;

/// Exact average of gain_prob over i = 1..s.
[[nodiscard]] double mean_gain_prob(const Params& params) noexcept;

/// Eq (8) approximation: (1 + 2 p ln(3/2)) / (2 alpha).
[[nodiscard]] double mean_gain_prob_approx(const Params& params) noexcept;

/// Eq (13), exact: average of gain_corr over i = 1..s. This is the
/// quantity plotted in Figures 4 and 5.
[[nodiscard]] double mean_gain_corr(const Params& params,
                                    bool fair_baseline = false) noexcept;

/// Eq (13) approximation: (1 + 2 p ln 2) / (2 alpha).
[[nodiscard]] double mean_gain_corr_approx(const Params& params) noexcept;

// ---------------------------------------------------------------------
// Break-even thresholds quoted in the paper's prose.
// ---------------------------------------------------------------------

/// Deterministic scheme gains (mean > 1) iff alpha is below this:
/// (1 + 2 ln(5/4)) / 2 ~ 0.723.
[[nodiscard]] double det_alpha_threshold() noexcept;

/// Prediction scheme gains iff p >= (alpha - 1/2) / ln 2.
[[nodiscard]] double min_p_for_gain(double alpha) noexcept;

/// With random guesses (p = 1/2) the prediction scheme gains iff
/// alpha <= (1 + ln 2) / 2 ~ 0.847.
[[nodiscard]] double random_guess_alpha_threshold() noexcept;

// ---------------------------------------------------------------------
// Section-5 outlook: more than two hardware threads. The paper sketches
// a 3-thread probabilistic and a 5-thread deterministic variant that
// keep fault detection *during* roll-forward while achieving min(i, s-i)
// rounds of progress. alpha_k is the k-thread slowdown factor
// (each round costs k * alpha_k * t when k threads share the core).
// ---------------------------------------------------------------------

/// 3-thread probabilistic: v3 retries in thread 1 while v1 and v2 run
/// i rounds each from the chosen state in threads 2 and 3. Progress
/// min(i, s-i) with probability p, with end-of-roll-forward comparison.
[[nodiscard]] double gain_corr_3threads(const Params& params, double i,
                                        double alpha3) noexcept;

/// 5-thread deterministic: v1/v2 run from both candidate states;
/// guaranteed progress min(i, s-i).
[[nodiscard]] double gain_corr_5threads(const Params& params, double i,
                                        double alpha5) noexcept;

/// Averages over i = 1..s of the two extensions.
[[nodiscard]] double mean_gain_corr_3threads(const Params& params,
                                             double alpha3) noexcept;
[[nodiscard]] double mean_gain_corr_5threads(const Params& params,
                                             double alpha5) noexcept;

}  // namespace vds::model
