#include "smt/program.hpp"

#include <algorithm>
#include <sstream>

namespace vds::smt {

std::vector<std::size_t> Program::class_histogram() const {
  std::vector<std::size_t> histogram(6, 0);
  for (const auto& instr : code_) {
    histogram[static_cast<std::size_t>(op_class(instr.op))]++;
  }
  return histogram;
}

std::size_t Program::edit_distance(const Program& other) const {
  const auto& a = code_;
  const auto& b = other.code_;
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t subst_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1,
                          prev[j - 1] + subst_cost});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "; " << name_ << " (" << code_.size() << " instrs)\n";
  for (std::size_t i = 0; i < code_.size(); ++i) {
    os << i << ":\t" << code_[i].to_string() << '\n';
  }
  return os.str();
}

}  // namespace vds::smt
