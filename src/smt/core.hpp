#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "smt/cache.hpp"
#include "smt/machine.hpp"

namespace vds::smt {

/// How the core picks which hardware thread may issue first each cycle.
enum class FetchPolicy : std::uint8_t {
  kRoundRobin,  ///< rotate priority every cycle
  kIcount,      ///< fewest in-flight instructions first (Tullsen-style)
};

/// Resources and latencies of the simulated SMT core. Defaults give a
/// modest 4-wide superscalar with two hardware threads, in the spirit of
/// the hyperthreaded Pentium 4 the paper targets.
struct CoreConfig {
  std::uint32_t threads = 2;
  std::uint32_t issue_width = 4;          ///< total issue slots per cycle
  std::uint32_t max_issue_per_thread = 4; ///< per-thread cap per cycle

  std::uint32_t alu_units = 3;
  std::uint32_t mul_units = 1;
  std::uint32_t div_units = 1;
  std::uint32_t mem_ports = 2;
  std::uint32_t branch_units = 1;

  std::uint32_t alu_latency = 1;
  std::uint32_t mul_latency = 3;
  std::uint32_t div_latency = 12;   ///< also non-pipelined (occupies unit)
  std::uint32_t branch_latency = 1;

  std::uint32_t mispredict_penalty = 8;  ///< fetch bubble on mispredict
  std::uint32_t branch_table_bits = 10;  ///< 2-bit predictor table size

  CacheConfig cache{};
  bool shared_cache = true;  ///< false: statically partitioned per thread

  /// Optional shared second-level cache. When enabled, an L1 miss that
  /// hits in L2 costs cache.miss_latency; an L2 miss costs
  /// l2.miss_latency (memory). L2 hit_latency is implied by
  /// cache.miss_latency and unused.
  bool l2_enabled = false;
  CacheConfig l2{1024, 8, 8, /*hit_latency=*/10, /*miss_latency=*/80};

  /// Hard cap against runaway simulations.
  std::uint64_t max_cycles = 1ull << 32;

  void validate() const;
};

/// Per-thread outcome of a timing run.
struct ThreadResult {
  std::uint64_t finish_cycle = 0;
  std::uint64_t instructions = 0;
  std::uint64_t mispredicts = 0;
  [[nodiscard]] double ipc() const noexcept {
    return finish_cycle == 0 ? 0.0
                             : static_cast<double>(instructions) /
                                   static_cast<double>(finish_cycle);
  }
};

/// Whole-core outcome of a timing run.
struct CoreResult {
  std::uint64_t cycles = 0;  ///< cycle at which the last thread finished
  std::vector<ThreadResult> threads;
  std::uint64_t issued_total = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;

  /// Fraction of issue slots used over the run.
  [[nodiscard]] double utilization(const CoreConfig& config) const noexcept {
    const double slots = static_cast<double>(cycles) *
                         static_cast<double>(config.issue_width);
    return slots == 0.0 ? 0.0 : static_cast<double>(issued_total) / slots;
  }
};

/// Cycle-level, trace-driven SMT core: in-order per-thread issue with a
/// register-ready scoreboard, shared issue bandwidth, shared functional
/// units, shared (or partitioned) data cache and per-thread two-bit
/// branch prediction. The contention between hardware threads this
/// models is precisely what determines the paper's alpha.
class Core {
 public:
  explicit Core(CoreConfig config, FetchPolicy policy = FetchPolicy::kIcount);

  /// Runs one trace per hardware thread (at most config.threads; missing
  /// threads idle). Traces are not consumed.
  CoreResult run(std::span<const InstrTrace* const> traces);

  /// Convenience overloads.
  CoreResult run(const InstrTrace& solo);
  CoreResult run(const InstrTrace& t0, const InstrTrace& t1);

  [[nodiscard]] const CoreConfig& config() const noexcept { return config_; }
  [[nodiscard]] FetchPolicy policy() const noexcept { return policy_; }

 private:
  CoreConfig config_;
  FetchPolicy policy_;
};

}  // namespace vds::smt
