#pragma once

#include <string>

#include "smt/core.hpp"

namespace vds::smt {

/// Result of an alpha measurement (the paper's central processor
/// parameter). With two threads running traces A and B:
///
///   alpha = T_together / (T_A_alone + T_B_alone)
///
/// alpha = 0.5 means perfect overlap (SMT hides everything), alpha = 1
/// means no benefit over time-sharing. The Pentium 4 figure quoted by
/// the paper is alpha ~ 0.65 [13].
struct AlphaMeasurement {
  std::uint64_t cycles_a_alone = 0;
  std::uint64_t cycles_b_alone = 0;
  std::uint64_t cycles_together = 0;
  double alpha = 1.0;
  double throughput_speedup = 1.0;  ///< (Ta + Tb) / T_together == 1/alpha
  double ipc_a_alone = 0.0;
  double ipc_b_alone = 0.0;
  double ipc_together = 0.0;  ///< combined IPC of the co-scheduled run
};

/// Measures alpha for a pair of traces on the given core configuration.
/// Runs each trace alone, then both together.
[[nodiscard]] AlphaMeasurement measure_alpha(const CoreConfig& config,
                                             FetchPolicy policy,
                                             const InstrTrace& a,
                                             const InstrTrace& b);

/// Homogeneous convenience: both threads run the same trace.
[[nodiscard]] AlphaMeasurement measure_alpha(const CoreConfig& config,
                                             FetchPolicy policy,
                                             const InstrTrace& trace);

/// Pretty one-line summary for bench output.
[[nodiscard]] std::string to_string(const AlphaMeasurement& m);

}  // namespace vds::smt
