#pragma once

#include <cstdint>
#include <vector>

namespace vds::smt {

/// Geometry and timing of a set-associative cache.
struct CacheConfig {
  std::uint32_t sets = 64;
  std::uint32_t ways = 4;
  std::uint32_t line_words = 8;   ///< words per line (word-addressed)
  std::uint32_t hit_latency = 2;  ///< cycles for a hit
  std::uint32_t miss_latency = 20;  ///< cycles for a miss (fill from L2/mem)

  void validate() const;
};

/// LRU set-associative data cache (timing only; no data storage).
/// Shared between SMT hardware threads -- the inter-thread conflict
/// misses it produces are one of the physical sources of the paper's
/// alpha > 0.5.
class Cache {
 public:
  explicit Cache(CacheConfig config);

  /// Simulates an access to `word_addr`. Returns the access latency and
  /// updates LRU/fill state.
  std::uint32_t access(std::uint64_t word_addr) noexcept;

  /// Same state update as access(), but reports hit/miss instead of a
  /// latency -- used when this cache is one level of a hierarchy and
  /// the caller composes the latencies.
  bool access_hit(std::uint64_t word_addr) noexcept;

  /// Pure lookup without state change (for tests/metrics).
  [[nodiscard]] bool would_hit(std::uint64_t word_addr) const noexcept;

  void flush() noexcept;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double hit_rate() const noexcept;
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  ///< higher == more recently used
  };

  CacheConfig config_;
  std::vector<Line> lines_;  // [set * ways + way]
  std::uint64_t use_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vds::smt
