#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace vds::smt {

/// Minimal RISC-style instruction set for the simulated processor.
/// Rich enough to express the synthetic workloads and the systematic-
/// diversity transforms (operand commutation, mul-by-shift rewriting,
/// register renaming), small enough to keep both simulators exact.
enum class Opcode : std::uint8_t {
  kAdd,   ///< dst = src1 + src2/imm
  kSub,   ///< dst = src1 - src2/imm
  kMul,   ///< dst = src1 * src2/imm
  kDiv,   ///< dst = src1 / src2/imm (x/0 == 0 by convention)
  kAnd,
  kOr,
  kXor,
  kShl,   ///< dst = src1 << (src2/imm % 64)
  kShr,   ///< dst = src1 >> (src2/imm % 64)
  kLoad,  ///< dst = mem[src1 + imm]
  kStore, ///< mem[src1 + imm] = src2
  kBeq,   ///< if src1 == src2: pc += imm (signed)
  kBne,   ///< if src1 != src2: pc += imm (signed)
  kJmp,   ///< pc += imm (signed)
  kNop,
  kHalt,
};

/// Functional-unit classes for the timing model.
enum class OpClass : std::uint8_t {
  kAlu,     ///< add/sub/logic/shift
  kMul,
  kDiv,
  kMem,     ///< load/store
  kBranch,  ///< beq/bne/jmp
  kNone,    ///< nop/halt
};

[[nodiscard]] OpClass op_class(Opcode op) noexcept;
[[nodiscard]] std::string_view to_string(Opcode op) noexcept;
[[nodiscard]] std::string_view to_string(OpClass cls) noexcept;

/// True for ops where swapping src1/src2 preserves the result.
[[nodiscard]] bool is_commutative(Opcode op) noexcept;
[[nodiscard]] bool is_branch(Opcode op) noexcept;
[[nodiscard]] bool writes_register(Opcode op) noexcept;

inline constexpr unsigned kNumRegisters = 32;

/// One instruction. When `uses_imm` is set the second operand (or the
/// branch/jump offset, or the memory displacement) comes from `imm`.
struct Instr {
  Opcode op = Opcode::kNop;
  std::uint8_t dst = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  bool uses_imm = false;
  std::int64_t imm = 0;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Instr&, const Instr&) = default;
};

// --- Convenience constructors -----------------------------------------

[[nodiscard]] Instr make_rrr(Opcode op, std::uint8_t dst, std::uint8_t src1,
                             std::uint8_t src2) noexcept;
[[nodiscard]] Instr make_rri(Opcode op, std::uint8_t dst, std::uint8_t src1,
                             std::int64_t imm) noexcept;
[[nodiscard]] Instr make_load(std::uint8_t dst, std::uint8_t base,
                              std::int64_t disp) noexcept;
[[nodiscard]] Instr make_store(std::uint8_t value, std::uint8_t base,
                               std::int64_t disp) noexcept;
[[nodiscard]] Instr make_branch(Opcode op, std::uint8_t src1,
                                std::uint8_t src2,
                                std::int64_t offset) noexcept;
[[nodiscard]] Instr make_jmp(std::int64_t offset) noexcept;
[[nodiscard]] Instr make_halt() noexcept;

}  // namespace vds::smt
