#include "smt/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace vds::smt {

void WorkloadConfig::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("WorkloadConfig: ") + what);
  };
  const double total =
      frac_alu + frac_mul + frac_div + frac_mem + frac_branch;
  if (!(total > 0.0)) fail("op-class fractions must sum to > 0");
  if (frac_alu < 0 || frac_mul < 0 || frac_div < 0 || frac_mem < 0 ||
      frac_branch < 0) {
    fail("op-class fractions must be non-negative");
  }
  if (dependency_density < 0.0 || dependency_density > 1.0) {
    fail("dependency_density in [0, 1]");
  }
  if (footprint_words == 0) fail("footprint_words >= 1");
  if (spatial_locality < 0.0 || spatial_locality > 1.0) {
    fail("spatial_locality in [0, 1]");
  }
  if (branch_taken_bias < 0.0 || branch_taken_bias > 1.0) {
    fail("branch_taken_bias in [0, 1]");
  }
  if (instructions == 0) fail("instructions >= 1");
}

WorkloadConfig compute_bound_workload(std::uint64_t instrs) {
  WorkloadConfig config;
  config.instructions = instrs;
  config.frac_alu = 0.7;
  config.frac_mul = 0.2;
  config.frac_div = 0.0;
  config.frac_mem = 0.05;
  config.frac_branch = 0.05;
  config.dependency_density = 0.15;
  config.footprint_words = 256;  // cache-resident
  config.branch_taken_bias = 0.95;
  return config;
}

WorkloadConfig memory_bound_workload(std::uint64_t instrs) {
  WorkloadConfig config;
  config.instructions = instrs;
  config.frac_alu = 0.35;
  config.frac_mul = 0.05;
  config.frac_mem = 0.5;
  config.frac_branch = 0.1;
  config.dependency_density = 0.4;
  config.footprint_words = 1u << 16;  // far beyond L1
  config.spatial_locality = 0.2;
  return config;
}

WorkloadConfig branchy_workload(std::uint64_t instrs) {
  WorkloadConfig config;
  config.instructions = instrs;
  config.frac_alu = 0.5;
  config.frac_mul = 0.05;
  config.frac_mem = 0.15;
  config.frac_branch = 0.3;
  config.dependency_density = 0.3;
  config.branch_taken_bias = 0.5;  // hard to predict
  return config;
}

WorkloadConfig serial_chain_workload(std::uint64_t instrs) {
  WorkloadConfig config;
  config.instructions = instrs;
  config.frac_alu = 0.5;
  config.frac_mul = 0.3;
  config.frac_div = 0.05;
  config.frac_mem = 0.1;
  config.frac_branch = 0.05;
  config.dependency_density = 0.9;  // long dependence chains, low ILP
  return config;
}

WorkloadConfig balanced_workload(std::uint64_t instrs) {
  WorkloadConfig config;
  config.instructions = instrs;
  return config;
}

InstrTrace generate_trace(const WorkloadConfig& config, vds::sim::Rng& rng) {
  config.validate();
  InstrTrace trace;
  trace.reserve(config.instructions);

  const double total =
      config.frac_alu + config.frac_mul + config.frac_div + config.frac_mem +
      config.frac_branch;

  std::uint8_t last_dst = 1;
  std::uint64_t seq_addr = 0;
  // A small synthetic "static code" footprint so the branch predictor
  // sees recurring pcs, as it would in real loopy code.
  const std::uint32_t static_pcs = 64;

  for (std::uint64_t n = 0; n < config.instructions; ++n) {
    TraceEntry entry;
    entry.pc = static_cast<std::uint32_t>(rng.uniform_index(static_pcs));

    const double roll = rng.uniform() * total;
    if (roll < config.frac_alu) {
      entry.cls = OpClass::kAlu;
    } else if (roll < config.frac_alu + config.frac_mul) {
      entry.cls = OpClass::kMul;
    } else if (roll < config.frac_alu + config.frac_mul + config.frac_div) {
      entry.cls = OpClass::kDiv;
    } else if (roll < config.frac_alu + config.frac_mul + config.frac_div +
                          config.frac_mem) {
      entry.cls = OpClass::kMem;
    } else {
      entry.cls = OpClass::kBranch;
    }

    // Register dependencies: sources come from the previous result with
    // probability dependency_density, otherwise from a rotating pool.
    const bool depend = rng.bernoulli(config.dependency_density);
    entry.src1 =
        depend ? last_dst
               : static_cast<std::uint8_t>(rng.uniform_index(16));
    entry.src2 = static_cast<std::uint8_t>(rng.uniform_index(16));
    entry.uses_src2 = rng.bernoulli(0.5);

    switch (entry.cls) {
      case OpClass::kAlu:
      case OpClass::kMul:
      case OpClass::kDiv: {
        entry.has_dst = true;
        entry.dst = static_cast<std::uint8_t>(16 + rng.uniform_index(8));
        last_dst = entry.dst;
        break;
      }
      case OpClass::kMem: {
        entry.has_dst = rng.bernoulli(0.7);  // load vs store mix
        if (entry.has_dst) {
          entry.dst = static_cast<std::uint8_t>(16 + rng.uniform_index(8));
          last_dst = entry.dst;
        }
        if (rng.bernoulli(config.spatial_locality)) {
          seq_addr = (seq_addr + 1) % config.footprint_words;
          entry.addr = seq_addr;
        } else {
          entry.addr = rng.uniform_index(config.footprint_words);
        }
        break;
      }
      case OpClass::kBranch: {
        entry.taken = rng.bernoulli(config.branch_taken_bias);
        break;
      }
      case OpClass::kNone:
        break;
    }
    trace.push_back(entry);
  }
  return trace;
}

Program make_kernel_program(std::uint64_t base, std::uint64_t elements) {
  // Register allocation:
  //   r1 = loop index i, r2 = element count, r3 = input base,
  //   r4 = output base, r10..r13 scratch, r20 = checksum.
  Program program("kernel");
  const auto b = static_cast<std::int64_t>(base);
  const auto n = static_cast<std::int64_t>(elements);

  program.push(make_rri(Opcode::kAdd, 1, 0, 0));       // 0: i = 0 + 0
  program.push(make_rri(Opcode::kAdd, 2, 0, n));       // 1: count
  program.push(make_rri(Opcode::kAdd, 3, 0, b));       // 2: input base
  program.push(make_rri(Opcode::kAdd, 4, 0, b + n));   // 3: output base
  program.push(make_rri(Opcode::kAdd, 20, 0, 0));      // 4: checksum = 0
  // loop:                                             // 5
  program.push(make_rrr(Opcode::kAdd, 10, 3, 1));      // 5: &a[i]
  program.push(make_load(11, 10, 0));                  // 6: a[i]
  program.push(make_rri(Opcode::kMul, 12, 11, 3));     // 7: a[i] * 3
  program.push(make_rri(Opcode::kShl, 13, 11, 2));     // 8: a[i] << 2
  program.push(make_rrr(Opcode::kAdd, 12, 12, 13));    // 9: sum
  program.push(make_rrr(Opcode::kAdd, 14, 4, 1));      // 10: &out[i]
  program.push(make_store(12, 14, 0));                 // 11: out[i] = ...
  program.push(make_rrr(Opcode::kXor, 20, 20, 12));    // 12: checksum ^=
  program.push(make_rri(Opcode::kAdd, 1, 1, 1));       // 13: ++i
  program.push(make_branch(Opcode::kBne, 1, 2, -9));   // 14: loop while i!=n
  program.push(make_store(20, 4, n));                  // 15: out[n] = checksum
  program.push(make_halt());                           // 16
  return program;
}

void seed_kernel_inputs(Machine& machine, std::uint64_t base,
                        std::uint64_t elements, std::uint64_t seed) {
  std::uint64_t x = seed ^ 0x9e3779b97f4a7c15ull;
  for (std::uint64_t i = 0; i < elements; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    machine.poke(base + i, x);
  }
}

}  // namespace vds::smt
