#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "smt/machine.hpp"
#include "smt/program.hpp"

namespace vds::smt {

/// Knobs of the synthetic workload generator. The mixes are chosen to
/// span the behaviours that determine the SMT slowdown factor alpha:
/// ILP-rich compute, long-latency chains, memory pressure and branchy
/// control flow.
struct WorkloadConfig {
  std::uint64_t instructions = 10000;  ///< approximate dynamic length
  double frac_alu = 0.6;
  double frac_mul = 0.1;
  double frac_div = 0.0;
  double frac_mem = 0.2;
  double frac_branch = 0.1;
  /// Probability that an instruction depends on the immediately
  /// preceding result (serial chains reduce single-thread ILP and thus
  /// lower alpha -- the co-scheduled thread fills the bubbles).
  double dependency_density = 0.3;
  /// Memory footprint in words; larger footprints overflow the cache.
  std::uint64_t footprint_words = 1024;
  /// Fraction of memory accesses that are sequential (vs random).
  double spatial_locality = 0.7;
  /// Probability a conditional branch is taken (predictability knob:
  /// values near 0 or 1 predict well, near 0.5 mispredict often).
  double branch_taken_bias = 0.9;

  void validate() const;
};

/// Named presets used throughout benches/tests.
[[nodiscard]] WorkloadConfig compute_bound_workload(std::uint64_t instrs);
[[nodiscard]] WorkloadConfig memory_bound_workload(std::uint64_t instrs);
[[nodiscard]] WorkloadConfig branchy_workload(std::uint64_t instrs);
[[nodiscard]] WorkloadConfig serial_chain_workload(std::uint64_t instrs);
[[nodiscard]] WorkloadConfig balanced_workload(std::uint64_t instrs);

/// Generates a dynamic instruction trace directly (no functional
/// execution needed): the timing core consumes traces, and statistical
/// workloads are naturally expressed as trace distributions.
[[nodiscard]] InstrTrace generate_trace(const WorkloadConfig& config,
                                        vds::sim::Rng& rng);

/// Builds a small *executable* kernel Program (with a real loop,
/// loads/stores and a reduction) for the functional Machine. Used by
/// the diversity experiments where values matter.
/// The kernel computes, over `elements` array elements starting at
/// memory address `base`:  out[i] = a[i] * 3 + (a[i] << 2), plus a
/// running checksum in r20, and stores results to `base + elements`.
/// The shift-by-power-of-two gives the strength-reduction diversity
/// transform material to move work between the ALU and the multiplier.
[[nodiscard]] Program make_kernel_program(std::uint64_t base,
                                          std::uint64_t elements);

/// Seeds machine memory with deterministic input data for the kernel.
void seed_kernel_inputs(Machine& machine, std::uint64_t base,
                        std::uint64_t elements, std::uint64_t seed);

}  // namespace vds::smt
