#include "smt/cache.hpp"

#include <stdexcept>

namespace vds::smt {

void CacheConfig::validate() const {
  if (sets == 0 || ways == 0 || line_words == 0) {
    throw std::invalid_argument("CacheConfig: sets/ways/line_words >= 1");
  }
  if (hit_latency == 0 || miss_latency < hit_latency) {
    throw std::invalid_argument(
        "CacheConfig: need hit_latency >= 1 and miss >= hit");
  }
}

Cache::Cache(CacheConfig config) : config_(config) {
  config_.validate();
  lines_.resize(static_cast<std::size_t>(config_.sets) * config_.ways);
}

std::uint32_t Cache::access(std::uint64_t word_addr) noexcept {
  return access_hit(word_addr) ? config_.hit_latency
                               : config_.miss_latency;
}

bool Cache::access_hit(std::uint64_t word_addr) noexcept {
  const std::uint64_t line_addr = word_addr / config_.line_words;
  const std::uint32_t set =
      static_cast<std::uint32_t>(line_addr % config_.sets);
  const std::uint64_t tag = line_addr / config_.sets;
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];

  ++use_clock_;
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    Line& line = base[way];
    if (line.valid && line.tag == tag) {
      line.lru = use_clock_;
      ++hits_;
      return true;
    }
  }

  // Miss: fill into the LRU way.
  Line* victim = base;
  for (std::uint32_t way = 1; way < config_.ways; ++way) {
    if (!base[way].valid) {
      victim = &base[way];
      break;
    }
    if (base[way].lru < victim->lru) victim = &base[way];
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = use_clock_;
  ++misses_;
  return false;
}

bool Cache::would_hit(std::uint64_t word_addr) const noexcept {
  const std::uint64_t line_addr = word_addr / config_.line_words;
  const std::uint32_t set =
      static_cast<std::uint32_t>(line_addr % config_.sets);
  const std::uint64_t tag = line_addr / config_.sets;
  const Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    if (base[way].valid && base[way].tag == tag) return true;
  }
  return false;
}

void Cache::flush() noexcept {
  for (auto& line : lines_) line = Line{};
}

double Cache::hit_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace vds::smt
