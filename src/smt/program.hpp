#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "smt/isa.hpp"

namespace vds::smt {

/// A straight container of instructions with a name, plus light static
/// analysis used by the diversity transforms.
class Program {
 public:
  Program() = default;
  explicit Program(std::string name) : name_(std::move(name)) {}
  Program(std::string name, std::vector<Instr> code)
      : name_(std::move(name)), code_(std::move(code)) {}

  void push(const Instr& instr) { code_.push_back(instr); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t size() const noexcept { return code_.size(); }
  [[nodiscard]] bool empty() const noexcept { return code_.empty(); }
  [[nodiscard]] const Instr& at(std::size_t i) const { return code_.at(i); }
  [[nodiscard]] Instr& at(std::size_t i) { return code_.at(i); }
  [[nodiscard]] const std::vector<Instr>& code() const noexcept {
    return code_;
  }
  [[nodiscard]] std::vector<Instr>& code() noexcept { return code_; }

  /// Counts instructions per functional-unit class (static mix).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Instruction-level edit distance to another program (Levenshtein on
  /// exact Instr equality) -- a crude but useful diversity metric.
  [[nodiscard]] std::size_t edit_distance(const Program& other) const;

  /// Disassembly, one instruction per line.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Program& a, const Program& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  std::string name_;
  std::vector<Instr> code_;
};

}  // namespace vds::smt
