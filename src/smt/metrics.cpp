#include "smt/metrics.hpp"

#include <sstream>

namespace vds::smt {

AlphaMeasurement measure_alpha(const CoreConfig& config, FetchPolicy policy,
                               const InstrTrace& a, const InstrTrace& b) {
  AlphaMeasurement m;

  {
    Core core(config, policy);
    const CoreResult r = core.run(a);
    m.cycles_a_alone = r.cycles;
    m.ipc_a_alone = r.threads.empty() ? 0.0 : r.threads[0].ipc();
  }
  {
    Core core(config, policy);
    const CoreResult r = core.run(b);
    m.cycles_b_alone = r.cycles;
    m.ipc_b_alone = r.threads.empty() ? 0.0 : r.threads[0].ipc();
  }
  {
    Core core(config, policy);
    const CoreResult r = core.run(a, b);
    m.cycles_together = r.cycles;
    m.ipc_together =
        r.cycles == 0
            ? 0.0
            : static_cast<double>(r.issued_total) /
                  static_cast<double>(r.cycles);
  }

  const double serial = static_cast<double>(m.cycles_a_alone) +
                        static_cast<double>(m.cycles_b_alone);
  if (serial > 0.0 && m.cycles_together > 0) {
    m.alpha = static_cast<double>(m.cycles_together) / serial;
    m.throughput_speedup = serial / static_cast<double>(m.cycles_together);
  }
  return m;
}

AlphaMeasurement measure_alpha(const CoreConfig& config, FetchPolicy policy,
                               const InstrTrace& trace) {
  return measure_alpha(config, policy, trace, trace);
}

std::string to_string(const AlphaMeasurement& m) {
  std::ostringstream os;
  os << "alpha=" << m.alpha << " (alone " << m.cycles_a_alone << "+"
     << m.cycles_b_alone << " cy, together " << m.cycles_together
     << " cy, speedup " << m.throughput_speedup << "x, ipc "
     << m.ipc_a_alone << "/" << m.ipc_b_alone << " -> " << m.ipc_together
     << ")";
  return os.str();
}

}  // namespace vds::smt
