#include "smt/machine.hpp"

#include <stdexcept>

namespace vds::smt {
namespace {

std::uint64_t mix64(std::uint64_t h, std::uint64_t x) noexcept {
  h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

Machine::Machine(std::size_t memory_words)
    : memory_(memory_words == 0 ? 1 : memory_words, 0) {}

void Machine::reset() noexcept {
  regs_.fill(0);
  for (auto& word : memory_) word = 0;
}

void Machine::set_reg(std::uint8_t reg, std::uint64_t value) {
  regs_.at(reg % kNumRegisters) = value;
}

std::uint64_t Machine::reg(std::uint8_t reg_index) const {
  return regs_.at(reg_index % kNumRegisters);
}

void Machine::poke(std::uint64_t addr, std::uint64_t value) {
  memory_.at(addr % memory_.size()) = value;
}

std::uint64_t Machine::peek(std::uint64_t addr) const {
  return memory_.at(addr % memory_.size());
}

std::uint64_t Machine::apply_fault(OpClass cls,
                                   std::uint64_t value) const noexcept {
  if (!fault_ || fault_->unit != cls) return value;
  const std::uint64_t mask = 1ull << (fault_->bit % 64u);
  return fault_->stuck_to_one ? (value | mask) : (value & ~mask);
}

RunResult Machine::run(const Program& program, std::uint64_t max_steps,
                       InstrTrace* trace) {
  RunResult result;
  std::int64_t pc = 0;
  const auto size = static_cast<std::int64_t>(program.size());

  while (result.steps < max_steps) {
    if (pc < 0 || pc >= size) break;  // ran off the program
    const Instr& instr = program.at(static_cast<std::size_t>(pc));
    ++result.steps;

    const std::uint64_t a = regs_[instr.src1 % kNumRegisters];
    const std::uint64_t b = instr.uses_imm
                                ? static_cast<std::uint64_t>(instr.imm)
                                : regs_[instr.src2 % kNumRegisters];

    TraceEntry entry;
    entry.pc = static_cast<std::uint32_t>(pc);
    entry.cls = op_class(instr.op);
    entry.dst = instr.dst;
    entry.src1 = instr.src1;
    entry.src2 = instr.src2;
    entry.has_dst = writes_register(instr.op);
    entry.uses_src2 = !instr.uses_imm && instr.op != Opcode::kJmp &&
                      instr.op != Opcode::kNop && instr.op != Opcode::kHalt;

    std::int64_t next_pc = pc + 1;
    std::uint64_t value = 0;
    bool writes = true;

    switch (instr.op) {
      case Opcode::kAdd: value = a + b; break;
      case Opcode::kSub: value = a - b; break;
      case Opcode::kMul: value = a * b; break;
      case Opcode::kDiv: value = (b == 0) ? 0 : a / b; break;
      case Opcode::kAnd: value = a & b; break;
      case Opcode::kOr: value = a | b; break;
      case Opcode::kXor: value = a ^ b; break;
      case Opcode::kShl: value = a << (b % 64u); break;
      case Opcode::kShr: value = a >> (b % 64u); break;
      case Opcode::kLoad: {
        const std::uint64_t addr =
            (a + static_cast<std::uint64_t>(instr.imm)) % memory_.size();
        entry.addr = addr;
        value = apply_fault(OpClass::kMem, memory_[addr]);
        break;
      }
      case Opcode::kStore: {
        const std::uint64_t addr =
            (a + static_cast<std::uint64_t>(instr.imm)) % memory_.size();
        entry.addr = addr;
        memory_[addr] =
            apply_fault(OpClass::kMem, regs_[instr.src2 % kNumRegisters]);
        writes = false;
        break;
      }
      case Opcode::kBeq: {
        const bool taken =
            a == regs_[instr.src2 % kNumRegisters];
        entry.taken = taken;
        if (taken) next_pc = pc + instr.imm;
        writes = false;
        break;
      }
      case Opcode::kBne: {
        const bool taken =
            a != regs_[instr.src2 % kNumRegisters];
        entry.taken = taken;
        if (taken) next_pc = pc + instr.imm;
        writes = false;
        break;
      }
      case Opcode::kJmp:
        entry.taken = true;
        next_pc = pc + instr.imm;
        writes = false;
        break;
      case Opcode::kNop:
        writes = false;
        break;
      case Opcode::kHalt:
        result.halted = true;
        writes = false;
        break;
    }

    if (writes) {
      const OpClass cls = op_class(instr.op);
      if (cls != OpClass::kMem) value = apply_fault(cls, value);
      regs_[instr.dst % kNumRegisters] = value;
    }
    if (trace != nullptr && instr.op != Opcode::kHalt &&
        instr.op != Opcode::kNop) {
      trace->push_back(entry);
    }
    if (result.halted) break;
    pc = next_pc;
  }

  result.output_digest = digest();
  return result;
}

std::uint64_t Machine::digest() const noexcept {
  std::uint64_t h = 0x811c9dc5u;
  for (const auto r : regs_) h = mix64(h, r);
  for (const auto word : memory_) h = mix64(h, word);
  return h;
}

std::uint64_t Machine::region_digest(std::uint64_t addr,
                                     std::size_t len) const noexcept {
  std::uint64_t h = 0x811c9dc5u;
  for (std::size_t i = 0; i < len; ++i) {
    h = mix64(h, memory_[(addr + i) % memory_.size()]);
  }
  return h;
}

}  // namespace vds::smt
