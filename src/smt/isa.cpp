#include "smt/isa.hpp"

#include <sstream>

namespace vds::smt {

OpClass op_class(Opcode op) noexcept {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
      return OpClass::kAlu;
    case Opcode::kMul:
      return OpClass::kMul;
    case Opcode::kDiv:
      return OpClass::kDiv;
    case Opcode::kLoad:
    case Opcode::kStore:
      return OpClass::kMem;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kJmp:
      return OpClass::kBranch;
    case Opcode::kNop:
    case Opcode::kHalt:
      return OpClass::kNone;
  }
  return OpClass::kNone;
}

std::string_view to_string(Opcode op) noexcept {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kJmp: return "jmp";
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

std::string_view to_string(OpClass cls) noexcept {
  switch (cls) {
    case OpClass::kAlu: return "alu";
    case OpClass::kMul: return "mul";
    case OpClass::kDiv: return "div";
    case OpClass::kMem: return "mem";
    case OpClass::kBranch: return "branch";
    case OpClass::kNone: return "none";
  }
  return "?";
}

bool is_commutative(Opcode op) noexcept {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
      return true;
    default:
      return false;
  }
}

bool is_branch(Opcode op) noexcept {
  return op == Opcode::kBeq || op == Opcode::kBne || op == Opcode::kJmp;
}

bool writes_register(Opcode op) noexcept {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kJmp:
    case Opcode::kNop:
    case Opcode::kHalt:
      return false;
    default:
      return true;
  }
}

std::string Instr::to_string() const {
  std::ostringstream os;
  os << vds::smt::to_string(op);
  switch (op) {
    case Opcode::kLoad:
      os << " r" << int{dst} << ", [r" << int{src1} << (imm >= 0 ? "+" : "")
         << imm << "]";
      break;
    case Opcode::kStore:
      os << " [r" << int{src1} << (imm >= 0 ? "+" : "") << imm << "], r"
         << int{src2};
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
      os << " r" << int{src1} << ", r" << int{src2} << ", " << imm;
      break;
    case Opcode::kJmp:
      os << " " << imm;
      break;
    case Opcode::kNop:
    case Opcode::kHalt:
      break;
    default:
      os << " r" << int{dst} << ", r" << int{src1} << ", ";
      if (uses_imm) {
        os << imm;
      } else {
        os << "r" << int{src2};
      }
  }
  return os.str();
}

Instr make_rrr(Opcode op, std::uint8_t dst, std::uint8_t src1,
               std::uint8_t src2) noexcept {
  Instr instr;
  instr.op = op;
  instr.dst = dst;
  instr.src1 = src1;
  instr.src2 = src2;
  return instr;
}

Instr make_rri(Opcode op, std::uint8_t dst, std::uint8_t src1,
               std::int64_t imm) noexcept {
  Instr instr;
  instr.op = op;
  instr.dst = dst;
  instr.src1 = src1;
  instr.uses_imm = true;
  instr.imm = imm;
  return instr;
}

Instr make_load(std::uint8_t dst, std::uint8_t base,
                std::int64_t disp) noexcept {
  Instr instr;
  instr.op = Opcode::kLoad;
  instr.dst = dst;
  instr.src1 = base;
  instr.uses_imm = true;
  instr.imm = disp;
  return instr;
}

Instr make_store(std::uint8_t value, std::uint8_t base,
                 std::int64_t disp) noexcept {
  Instr instr;
  instr.op = Opcode::kStore;
  instr.src1 = base;
  instr.src2 = value;
  instr.uses_imm = true;
  instr.imm = disp;
  return instr;
}

Instr make_branch(Opcode op, std::uint8_t src1, std::uint8_t src2,
                  std::int64_t offset) noexcept {
  Instr instr;
  instr.op = op;
  instr.src1 = src1;
  instr.src2 = src2;
  instr.uses_imm = true;
  instr.imm = offset;
  return instr;
}

Instr make_jmp(std::int64_t offset) noexcept {
  Instr instr;
  instr.op = Opcode::kJmp;
  instr.uses_imm = true;
  instr.imm = offset;
  return instr;
}

Instr make_halt() noexcept {
  Instr instr;
  instr.op = Opcode::kHalt;
  return instr;
}

}  // namespace vds::smt
