#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "smt/isa.hpp"
#include "smt/program.hpp"

namespace vds::smt {

/// One dynamic instruction as seen by the trace-driven timing core:
/// functional-unit class, register dependencies, resolved memory address
/// and branch direction.
struct TraceEntry {
  OpClass cls = OpClass::kAlu;
  std::uint8_t dst = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  bool has_dst = false;
  bool uses_src2 = false;
  std::uint32_t pc = 0;    ///< static instruction address (branch pred. index)
  std::uint64_t addr = 0;  ///< word address for kMem entries
  bool taken = false;      ///< for kBranch entries
};

using InstrTrace = std::vector<TraceEntry>;

/// A permanent (stuck-at) hardware fault for the functional simulator,
/// modeling the class of faults the paper's diverse versions are meant
/// to expose: a defective unit corrupts every result it produces.
struct StuckAtFault {
  OpClass unit = OpClass::kAlu;  ///< which functional unit is defective
  std::uint8_t bit = 0;          ///< result bit that is stuck
  bool stuck_to_one = true;      ///< stuck-at-1 vs stuck-at-0
};

/// Result of a functional run.
struct RunResult {
  bool halted = false;          ///< reached kHalt (vs step-limit abort)
  std::uint64_t steps = 0;      ///< dynamic instructions executed
  std::uint64_t output_digest = 0;  ///< digest of registers + memory
};

/// Functional (value-level) simulator of the ISA. Executes programs
/// exactly; optionally records a dynamic trace for the timing core and
/// applies a stuck-at fault to a chosen functional unit.
class Machine {
 public:
  /// memory_words: size of the flat word-addressed data memory.
  explicit Machine(std::size_t memory_words = 4096);

  void reset() noexcept;

  /// Sets an input register (r0 is writable; there is no hardwired zero).
  void set_reg(std::uint8_t reg, std::uint64_t value);
  [[nodiscard]] std::uint64_t reg(std::uint8_t reg_index) const;

  void poke(std::uint64_t addr, std::uint64_t value);
  [[nodiscard]] std::uint64_t peek(std::uint64_t addr) const;

  [[nodiscard]] std::size_t memory_words() const noexcept {
    return memory_.size();
  }

  /// Installs (or clears) a permanent fault.
  void set_fault(std::optional<StuckAtFault> fault) noexcept {
    fault_ = fault;
  }

  /// Runs `program` from pc 0 until kHalt, a pc out of range, or
  /// `max_steps` dynamic instructions. If `trace` is non-null the
  /// dynamic instruction stream is appended to it.
  RunResult run(const Program& program, std::uint64_t max_steps = 1u << 20,
                InstrTrace* trace = nullptr);

  /// Digest over architectural state (registers + memory): two runs
  /// computed "the same thing" iff digests match.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  /// Digest over a memory region only. Diverse program variants differ
  /// in register usage, so their full digests differ even when correct;
  /// equivalence is judged on the designated output region.
  [[nodiscard]] std::uint64_t region_digest(std::uint64_t addr,
                                            std::size_t len) const noexcept;

 private:
  [[nodiscard]] std::uint64_t apply_fault(OpClass cls,
                                          std::uint64_t value) const noexcept;

  std::array<std::uint64_t, kNumRegisters> regs_{};
  std::vector<std::uint64_t> memory_;
  std::optional<StuckAtFault> fault_;
};

}  // namespace vds::smt
