#include "smt/core.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace vds::smt {
namespace {

/// Mutable per-thread execution state during a timing run.
struct ThreadState {
  const InstrTrace* trace = nullptr;
  std::size_t next = 0;  ///< index of the next trace entry to issue
  std::array<std::uint64_t, kNumRegisters> reg_ready{};  ///< cycle when ready
  std::uint64_t stall_until = 0;  ///< fetch bubble (mispredict)
  /// Completion cycles of in-flight instructions (min-heap).
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      in_flight;
  std::vector<std::uint8_t> branch_table;  ///< 2-bit counters
  std::uint64_t issued = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t finish_cycle = 0;
  bool done = false;

  [[nodiscard]] bool trace_exhausted() const noexcept {
    return trace == nullptr || next >= trace->size();
  }
};

}  // namespace

void CoreConfig::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("CoreConfig: ") + what);
  };
  if (threads == 0) fail("threads >= 1");
  if (issue_width == 0) fail("issue_width >= 1");
  if (max_issue_per_thread == 0) fail("max_issue_per_thread >= 1");
  if (alu_units == 0 || mem_ports == 0 || branch_units == 0 ||
      mul_units == 0 || div_units == 0) {
    fail("every functional-unit count must be >= 1");
  }
  if (alu_latency == 0 || mul_latency == 0 || div_latency == 0 ||
      branch_latency == 0) {
    fail("latencies must be >= 1");
  }
  if (branch_table_bits == 0 || branch_table_bits > 20) {
    fail("branch_table_bits in [1, 20]");
  }
  cache.validate();
  if (l2_enabled) {
    l2.validate();
    if (l2.miss_latency < cache.miss_latency) {
      fail("l2.miss_latency must be >= cache.miss_latency");
    }
  }
}

Core::Core(CoreConfig config, FetchPolicy policy)
    : config_(config), policy_(policy) {
  config_.validate();
}

CoreResult Core::run(std::span<const InstrTrace* const> traces) {
  const std::uint32_t n_threads =
      std::min<std::uint32_t>(config_.threads,
                              static_cast<std::uint32_t>(traces.size()));

  std::vector<ThreadState> threads(n_threads);
  std::vector<std::unique_ptr<Cache>> caches;
  if (config_.shared_cache) {
    caches.push_back(std::make_unique<Cache>(config_.cache));
  } else {
    for (std::uint32_t t = 0; t < n_threads; ++t) {
      caches.push_back(std::make_unique<Cache>(config_.cache));
    }
  }
  // The second level is always shared between hardware threads.
  std::unique_ptr<Cache> l2;
  if (config_.l2_enabled) l2 = std::make_unique<Cache>(config_.l2);

  for (std::uint32_t t = 0; t < n_threads; ++t) {
    threads[t].trace = traces[t];
    threads[t].branch_table.assign(1u << config_.branch_table_bits, 1);
    threads[t].done = threads[t].trace_exhausted();
  }

  CoreResult result;
  result.threads.resize(n_threads);

  std::uint64_t cycle = 0;
  std::uint32_t rr_offset = 0;
  std::vector<std::uint32_t> order(n_threads);

  // Division units are non-pipelined: track when each frees up.
  std::vector<std::uint64_t> div_free(config_.div_units, 0);

  auto all_done = [&threads] {
    return std::all_of(threads.begin(), threads.end(),
                       [](const ThreadState& ts) { return ts.done; });
  };

  while (!all_done() && cycle < config_.max_cycles) {
    // Retire completed in-flight instructions.
    for (auto& ts : threads) {
      while (!ts.in_flight.empty() && ts.in_flight.top() <= cycle) {
        ts.in_flight.pop();
      }
      if (!ts.done && ts.trace_exhausted() && ts.in_flight.empty()) {
        ts.done = true;
        ts.finish_cycle = cycle;
      }
    }
    if (all_done()) break;

    // Thread priority for this cycle.
    std::iota(order.begin(), order.end(), 0u);
    if (policy_ == FetchPolicy::kRoundRobin) {
      std::rotate(order.begin(), order.begin() + (rr_offset % n_threads),
                  order.end());
    } else {
      std::stable_sort(order.begin(), order.end(),
                       [&threads](std::uint32_t a, std::uint32_t b) {
                         return threads[a].in_flight.size() <
                                threads[b].in_flight.size();
                       });
      // Break persistent ties fairly.
      if (n_threads > 1 && (rr_offset & 1u) != 0 &&
          threads[order[0]].in_flight.size() ==
              threads[order[1]].in_flight.size()) {
        std::swap(order[0], order[1]);
      }
    }
    ++rr_offset;

    std::uint32_t slots_left = config_.issue_width;
    std::uint32_t alu_left = config_.alu_units;
    std::uint32_t mul_left = config_.mul_units;
    std::uint32_t mem_left = config_.mem_ports;
    std::uint32_t branch_left = config_.branch_units;

    for (const std::uint32_t tid : order) {
      ThreadState& ts = threads[tid];
      if (ts.done || ts.stall_until > cycle) continue;
      std::uint32_t issued_this_thread = 0;

      while (slots_left > 0 &&
             issued_this_thread < config_.max_issue_per_thread &&
             !ts.trace_exhausted()) {
        const TraceEntry& entry = (*ts.trace)[ts.next];

        // Data hazards: in-order issue stalls on the first instruction
        // whose sources are not ready.
        if (ts.reg_ready[entry.src1 % kNumRegisters] > cycle) break;
        if (entry.uses_src2 &&
            ts.reg_ready[entry.src2 % kNumRegisters] > cycle) {
          break;
        }

        // Structural hazards.
        std::uint32_t latency = 0;
        std::uint32_t div_unit = 0;
        bool div_found = false;
        switch (entry.cls) {
          case OpClass::kAlu:
            if (alu_left == 0) goto thread_done_this_cycle;
            latency = config_.alu_latency;
            break;
          case OpClass::kMul:
            if (mul_left == 0) goto thread_done_this_cycle;
            latency = config_.mul_latency;
            break;
          case OpClass::kDiv: {
            for (std::uint32_t u = 0; u < config_.div_units; ++u) {
              if (div_free[u] <= cycle) {
                div_unit = u;
                div_found = true;
                break;
              }
            }
            if (!div_found) goto thread_done_this_cycle;
            latency = config_.div_latency;
            break;
          }
          case OpClass::kMem: {
            if (mem_left == 0) goto thread_done_this_cycle;
            Cache& cache = config_.shared_cache ? *caches[0] : *caches[tid];
            if (cache.access_hit(entry.addr)) {
              latency = config_.cache.hit_latency;
            } else if (l2 != nullptr) {
              latency = l2->access_hit(entry.addr)
                            ? config_.cache.miss_latency
                            : config_.l2.miss_latency;
            } else {
              latency = config_.cache.miss_latency;
            }
            break;
          }
          case OpClass::kBranch:
            if (branch_left == 0) goto thread_done_this_cycle;
            latency = config_.branch_latency;
            break;
          case OpClass::kNone:
            latency = 1;
            break;
        }

        // Issue.
        --slots_left;
        ++issued_this_thread;
        ++ts.issued;
        ++result.issued_total;
        ts.next++;

        switch (entry.cls) {
          case OpClass::kAlu: --alu_left; break;
          case OpClass::kMul: --mul_left; break;
          case OpClass::kDiv: div_free[div_unit] = cycle + latency; break;
          case OpClass::kMem: --mem_left; break;
          case OpClass::kBranch: --branch_left; break;
          case OpClass::kNone: break;
        }

        const std::uint64_t complete = cycle + latency;
        ts.in_flight.push(complete);
        if (entry.has_dst) {
          ts.reg_ready[entry.dst % kNumRegisters] = complete;
        }

        if (entry.cls == OpClass::kBranch) {
          // Two-bit prediction on the branch pc; a mispredict stalls
          // this thread's fetch, leaving its issue slots to the other
          // thread -- the latency-hiding effect SMT exploits.
          const std::size_t idx =
              entry.pc & ((1u << config_.branch_table_bits) - 1u);
          std::uint8_t& counter = ts.branch_table[idx];
          const bool predicted_taken = counter >= 2;
          if (predicted_taken != entry.taken) {
            ++ts.mispredicts;
            ts.stall_until = cycle + config_.mispredict_penalty;
          }
          if (entry.taken) {
            if (counter < 3) ++counter;
          } else {
            if (counter > 0) --counter;
          }
          if (ts.stall_until > cycle) goto thread_done_this_cycle;
        }
      }
    thread_done_this_cycle:;
    }

    ++cycle;
  }

  for (std::uint32_t t = 0; t < n_threads; ++t) {
    // Threads that never finished (cycle cap) report the cap.
    if (!threads[t].done) threads[t].finish_cycle = cycle;
    result.threads[t].finish_cycle = threads[t].finish_cycle;
    result.threads[t].instructions = threads[t].issued;
    result.threads[t].mispredicts = threads[t].mispredicts;
    result.cycles = std::max(result.cycles, threads[t].finish_cycle);
  }
  for (const auto& cache : caches) {
    result.cache_hits += cache->hits();
    result.cache_misses += cache->misses();
  }
  if (l2 != nullptr) {
    result.l2_hits = l2->hits();
    result.l2_misses = l2->misses();
  }
  return result;
}

CoreResult Core::run(const InstrTrace& solo) {
  const InstrTrace* traces[] = {&solo};
  return run(std::span<const InstrTrace* const>(traces, 1));
}

CoreResult Core::run(const InstrTrace& t0, const InstrTrace& t1) {
  const InstrTrace* traces[] = {&t0, &t1};
  return run(std::span<const InstrTrace* const>(traces, 2));
}

}  // namespace vds::smt
