#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace vds::replay {

/// One recorded round: the digest of the inputs and non-deterministic
/// events the primary consumed, and the outcome digest it produced.
/// Recording captures *enough* to make the round re-executable; the
/// abstract digests stand in for the RepTFD-style chunk logs (memory
/// access interleavings, interrupt points, input values).
struct RoundRecord {
  std::uint64_t index = 0;           ///< absolute round number
  std::uint64_t input_digest = 0;    ///< recorded inputs + nondet events
  std::uint64_t outcome_digest = 0;  ///< primary's post-round state digest

  [[nodiscard]] bool operator==(const RoundRecord&) const = default;
};

/// Deterministic round function shared by the recorder and the
/// replayer: the post-round state digest of executing round `index`
/// with `input_digest` from state `state`. Replay determinism is
/// exactly this sharing — given the same starting state and the same
/// recorded inputs, record and replay compute the same digest, so any
/// divergence is a fault manifestation, not nondeterminism.
[[nodiscard]] std::uint64_t round_outcome(std::uint64_t state,
                                          std::uint64_t index,
                                          std::uint64_t input_digest) noexcept;

/// Deterministic per-round input digest (round index + job seed).
[[nodiscard]] std::uint64_t round_input(std::uint64_t job_seed,
                                        std::uint64_t index) noexcept;

/// Append-only log of recorded rounds awaiting replay. The primary
/// appends as it records; the replayer takes whole windows off the
/// front. Rollback truncates everything not yet verified.
class RecordLog {
 public:
  /// Appends the next record; `record.index` must equal next_index().
  void append(const RoundRecord& record);

  /// Rounds recorded but not yet taken for replay.
  [[nodiscard]] std::size_t pending() const noexcept {
    return records_.size();
  }

  /// True once at least `window` rounds are pending.
  [[nodiscard]] bool window_ready(std::size_t window) const noexcept {
    return records_.size() >= window && window > 0;
  }

  /// Removes and returns up to `window` records from the front.
  [[nodiscard]] std::vector<RoundRecord> take_window(std::size_t window);

  /// Drops every pending record (rollback: the unverified suffix is
  /// discarded along with the primary's unverified state).
  void clear() noexcept { records_.clear(); }

  /// Index the next appended record must carry.
  [[nodiscard]] std::uint64_t next_index() const noexcept {
    return next_index_;
  }

  /// Rewinds the expected index to `index` (after a rollback the
  /// primary re-records from the checkpointed round).
  void rewind_to(std::uint64_t index) noexcept {
    records_.clear();
    next_index_ = index;
  }

 private:
  std::deque<RoundRecord> records_;
  std::uint64_t next_index_ = 0;
};

/// Verdict of replaying one window: either every outcome digest
/// matched, or the index of the first diverging round. Compare
/// granularity is the window — a mismatch localizes the fault to the
/// window, and recovery rolls the whole window back.
struct WindowVerdict {
  bool match = true;
  std::uint64_t first_mismatch = 0;  ///< valid when !match
  std::size_t rounds = 0;            ///< rounds replayed
};

/// Replays recorded windows from a trusted state and compares outcome
/// digests round by round. The replayer's state advances only through
/// *verified* rounds, so it always holds the most recent state known
/// to match the recorded execution.
class Replayer {
 public:
  explicit Replayer(std::uint64_t initial_state) : state_(initial_state) {}

  /// Re-executes the window from the trusted state. `corrupt_xor` is
  /// xor-ed into the replayer's own recomputation (a fault striking
  /// the replaying thread context); 0 replays faithfully. On a full
  /// match the trusted state advances past the window; on a mismatch
  /// it stays at the last verified round.
  WindowVerdict replay(const std::vector<RoundRecord>& window,
                       std::uint64_t corrupt_xor = 0);

  /// Trusted (verified) state digest.
  [[nodiscard]] std::uint64_t state() const noexcept { return state_; }

  /// Restores the trusted state from a checkpoint.
  void reset(std::uint64_t state) noexcept { state_ = state; }

 private:
  std::uint64_t state_;
};

}  // namespace vds::replay
