#include "replay/replay_core.hpp"

#include <stdexcept>

namespace vds::replay {

namespace {

// FNV-1a over a fixed-width word sequence; the digests only need to be
// deterministic and collision-resistant enough that a corrupted round
// never accidentally matches the clean one.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t word) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t round_outcome(std::uint64_t state, std::uint64_t index,
                            std::uint64_t input_digest) noexcept {
  std::uint64_t h = mix(kFnvOffset, state);
  h = mix(h, index);
  h = mix(h, input_digest);
  return h;
}

std::uint64_t round_input(std::uint64_t job_seed,
                          std::uint64_t index) noexcept {
  return mix(mix(kFnvOffset, job_seed), index);
}

void RecordLog::append(const RoundRecord& record) {
  if (record.index != next_index_) {
    throw std::logic_error("RecordLog: non-monotonic record index");
  }
  records_.push_back(record);
  ++next_index_;
}

std::vector<RoundRecord> RecordLog::take_window(std::size_t window) {
  const std::size_t take = window < records_.size() ? window : records_.size();
  std::vector<RoundRecord> out(records_.begin(),
                               records_.begin() +
                                   static_cast<std::ptrdiff_t>(take));
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(take));
  return out;
}

WindowVerdict Replayer::replay(const std::vector<RoundRecord>& window,
                               std::uint64_t corrupt_xor) {
  WindowVerdict verdict;
  verdict.rounds = window.size();
  std::uint64_t state = state_;
  for (const RoundRecord& record : window) {
    std::uint64_t replayed =
        round_outcome(state, record.index, record.input_digest);
    replayed ^= corrupt_xor;
    if (replayed != record.outcome_digest) {
      verdict.match = false;
      verdict.first_mismatch = record.index;
      return verdict;
    }
    state = replayed;
  }
  state_ = state;  // the whole window verified: advance the trusted state
  return verdict;
}

}  // namespace vds::replay
