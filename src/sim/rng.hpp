#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace vds::sim {

/// Deterministic, seedable PRNG (xoshiro256** with SplitMix64 seeding).
///
/// Self-contained so that simulation results are reproducible across
/// standard libraries (std::mt19937 streams are portable, but the std::
/// distributions are not). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Unbiased (rejection sampling). n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed variate with rate lambda > 0
  /// (mean 1/lambda). Used for Poisson fault inter-arrival times.
  double exponential(double lambda) noexcept;

  /// Standard normal via Box–Muller (deterministic given the stream).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Geometric: number of failures before first success, p in (0,1].
  std::uint64_t geometric(double p) noexcept;

  /// Splits off an independently seeded child stream. Children derived
  /// with distinct tags are statistically independent.
  [[nodiscard]] Rng split(std::uint64_t tag) noexcept;

  /// Derives the `stream_id`-th deterministic substream. Unlike
  /// `split()`, the result is a pure function of (seed, stream_id):
  /// it does not consume or depend on this generator's position, so
  /// work distributed over substreams is bitwise reproducible no
  /// matter which thread — or in which order — each stream is drawn.
  /// Distinct stream ids yield statistically independent streams
  /// (SplitMix64 sequence anchored at the seed).
  [[nodiscard]] Rng substream(std::uint64_t stream_id) const noexcept;

  /// The seed this generator was last (re)seeded with.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, 4> s_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace vds::sim
