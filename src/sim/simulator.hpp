#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace vds::sim {

/// Discrete-event simulation driver.
///
/// Usage:
///   Simulator sim;
///   sim.call_at(1.0, []{ ... });
///   sim.call_in(0.5, []{ ... });
///   sim.run();                      // until queue drains
///   sim.run_until(100.0);           // or until a horizon
///
/// Events firing at equal timestamps run in scheduling order, so runs
/// are bit-for-bit reproducible.
class Simulator {
 public:
  /// Current simulation time. Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when >= now()`.
  /// Throws std::invalid_argument on attempts to schedule in the past.
  EventId call_at(SimTime when, EventAction action);

  /// Schedules `action` `delay >= 0` after the current time.
  EventId call_in(SimTime delay, EventAction action);

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs until the queue drains, stop() is called, or the next event
  /// would fire strictly after `horizon`. Time is advanced to `horizon`
  /// if the run was horizon-limited. Returns events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Executes at most one pending event. Returns false if none remain.
  bool step();

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total number of events executed since construction.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Drops all pending events and resets the stop flag (time is kept:
  /// a simulation clock never moves backwards).
  void drain();

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace vds::sim
