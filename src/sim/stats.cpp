#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vds::sim {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::sem() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double Accumulator::ci_halfwidth(double z) const noexcept {
  return z * sem();
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (std::isnan(x)) {
    // NaN compares false against lo_/hi_ and the float-to-size_t cast
    // below would be UB; count it in its own bucket instead.
    ++nan_;
    return;
  }
  if (x < lo_) {  // -inf lands here
    ++under_;
    return;
  }
  if (x >= hi_) {  // +inf lands here
    ++over_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard fp edge at hi_
  ++counts_[idx];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  return counts_.at(i);
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t ranked = total_ - nan_;  // NaN has no rank
  if (ranked == 0) return lo_;
  const double target = q * static_cast<double>(ranked);
  double cum = static_cast<double>(under_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0) {
      const double frac = (target - cum) / c;
      return bin_lo(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t bar_width) const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto stars = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    os << '[' << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(stars, '#') << ' ' << counts_[i] << '\n';
  }
  if (under_ != 0) os << "underflow " << under_ << '\n';
  if (over_ != 0) os << "overflow " << over_ << '\n';
  if (nan_ != 0) os << "nan " << nan_ << '\n';
  return os.str();
}

}  // namespace vds::sim
