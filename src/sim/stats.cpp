#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace vds::sim {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::sem() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double Accumulator::ci_halfwidth(double z) const noexcept {
  return z * sem();
}

double Accumulator::ci_halfwidth_t(double confidence) const noexcept {
  if (n_ < 2) return 0.0;
  const double s = sem();
  if (s == 0.0) return 0.0;  // zero variance: t * 0 must stay 0
  return student_t_critical(confidence, n_ - 1) * s;
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

// --- critical values --------------------------------------------------

namespace {

/// Regularized incomplete beta I_x(a, b) by the Lentz continued
/// fraction (Numerical Recipes betacf form). Converges fast for
/// x < (a + 1) / (a + b + 2); the symmetry I_x(a,b) = 1 - I_{1-x}(b,a)
/// covers the rest.
double incomplete_beta_cf(double a, double b, double x) noexcept {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double incomplete_beta(double a, double b, double x) noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * incomplete_beta_cf(a, b, x) / a;
  }
  return 1.0 - front * incomplete_beta_cf(b, a, 1.0 - x) / b;
}

/// Two-sided tail mass of Student's t beyond |t|:
/// P(|T| > t) = I_{v/(v+t^2)}(v/2, 1/2).
double t_two_sided_tail(double t, double dof) noexcept {
  return incomplete_beta(dof / 2.0, 0.5,
                         dof / (dof + t * t));
}

}  // namespace

double normal_critical(double confidence) noexcept {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Acklam's rational approximation of the inverse normal CDF,
  // polished with one Halley step — ~1e-15 relative error, plenty for
  // a stopping rule.
  const double p = 0.5 * (1.0 + confidence);  // upper quantile point
  constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                          -2.759285104469687e+02, 1.383577518672690e+02,
                          -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                          -1.556989798598866e+02, 6.680131188771972e+01,
                          -1.328068155288572e+01};
  constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                          -2.400758277161838e+00, -2.549732539343734e+00,
                          4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                          2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
         c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
         a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement against the true CDF via erfc.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  constexpr double kSqrt2Pi = 2.506628274631000502;
  const double u = e * kSqrt2Pi * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double student_t_critical(double confidence, std::uint64_t dof) noexcept {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (dof == 0) return std::numeric_limits<double>::infinity();
  // Past ~1e6 dof the t distribution is the normal to double
  // precision and the bisection below would just burn iterations.
  if (dof > 1000000) return normal_critical(confidence);
  const double v = static_cast<double>(dof);
  const double tail = 1.0 - confidence;  // P(|T| > t) at the answer
  // Bracket: the normal critical value is a lower bound for every
  // dof; grow the upper bound until the tail mass drops below target.
  double lo = normal_critical(confidence);
  double hi = std::max(2.0 * lo, 2.0);
  while (t_two_sided_tail(hi, v) > tail) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (t_two_sided_tail(mid, v) > tail) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (std::isnan(x)) {
    // NaN compares false against lo_/hi_ and the float-to-size_t cast
    // below would be UB; count it in its own bucket instead.
    ++nan_;
    return;
  }
  if (x < lo_) {  // -inf lands here
    ++under_;
    return;
  }
  if (x >= hi_) {  // +inf lands here
    ++over_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard fp edge at hi_
  ++counts_[idx];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  return counts_.at(i);
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t ranked = total_ - nan_;  // NaN has no rank
  if (ranked == 0) return lo_;
  const double target = q * static_cast<double>(ranked);
  double cum = static_cast<double>(under_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0) {
      const double frac = (target - cum) / c;
      return bin_lo(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t bar_width) const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto stars = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    os << '[' << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(stars, '#') << ' ' << counts_[i] << '\n';
  }
  if (under_ != 0) os << "underflow " << under_ << '\n';
  if (over_ != 0) os << "overflow " << over_ << '\n';
  if (nan_ != 0) os << "nan " << nan_ << '\n';
  return os.str();
}

}  // namespace vds::sim
