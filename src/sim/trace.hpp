#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace vds::sim {

/// Kinds of protocol-level events recorded by the VDS engines. The
/// trace of a run reconstructs the execution diagrams of Figure 1 and
/// the flow charts of Figures 2/3.
enum class TraceKind : std::uint8_t {
  kRoundStart,
  kRoundEnd,
  kContextSwitch,
  kCompare,
  kCompareMismatch,
  kCheckpoint,
  kFaultInjected,
  kFaultDetected,
  kRetryStart,
  kRetryEnd,
  kRollForwardStart,
  kRollForwardEnd,
  kRollForwardDiscarded,
  kMajorityVote,
  kRollback,
  kPrediction,
  kStateCopy,
  kJobDone,
  kFailSafeShutdown,
  kInfo,
};

[[nodiscard]] std::string_view to_string(TraceKind kind) noexcept;

/// One trace record: when, who (actor, e.g. "V1" or "thread0"),
/// what (kind) and free-form detail.
struct TraceRecord {
  SimTime when = 0.0;
  std::string actor;
  TraceKind kind = TraceKind::kInfo;
  std::string detail;
};

/// Append-only trace sink with optional size cap and live listener.
/// Recording can be disabled entirely for long statistical runs.
class Trace {
 public:
  using Listener = std::function<void(const TraceRecord&)>;

  /// cap == 0 means unbounded.
  explicit Trace(bool enabled = true, std::size_t cap = 0)
      : enabled_(enabled), cap_(cap) {}

  void record(SimTime when, std::string actor, TraceKind kind,
              std::string detail = {});

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void set_listener(Listener l) { listener_ = std::move(l); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  void clear() noexcept {
    records_.clear();
    dropped_ = 0;
  }

  /// Number of records of the given kind.
  [[nodiscard]] std::size_t count(TraceKind kind) const noexcept;

  /// Writes a human-readable timeline, one record per line.
  void dump(std::ostream& os) const;

 private:
  bool enabled_;
  std::size_t cap_;
  std::vector<TraceRecord> records_;
  std::size_t dropped_ = 0;
  Listener listener_;
};

}  // namespace vds::sim
