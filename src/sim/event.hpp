#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/time.hpp"

namespace vds::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;

  friend bool operator==(EventId, EventId) = default;
};

/// Action executed when an event fires.
using EventAction = std::function<void()>;

/// A scheduled event. Events firing at the same timestamp are delivered
/// in scheduling order (FIFO), which keeps simulations deterministic.
struct Event {
  SimTime when = 0.0;
  std::uint64_t seq = 0;  ///< tie-breaker: global scheduling order
  EventId id{};
  EventAction action;

  /// Strict-weak ordering for a min-queue: earlier time first, then
  /// earlier scheduling order.
  [[nodiscard]] bool fires_before(const Event& other) const noexcept {
    if (when != other.when) return when < other.when;
    return seq < other.seq;
  }
};

}  // namespace vds::sim
