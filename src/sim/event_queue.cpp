#include "sim/event_queue.hpp"

#include <utility>

namespace vds::sim {

EventId EventQueue::schedule(SimTime when, EventAction action) {
  Event ev;
  ev.when = when;
  ev.seq = next_seq_++;
  ev.id = EventId{next_id_++};
  ev.action = std::move(action);
  const EventId id = ev.id;
  heap_.push_back(std::move(ev));
  sift_up(heap_.size() - 1);
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id.value == 0 || id.value >= next_id_) return false;
  // An id is cancellable only while its event is still in the heap.
  for (const Event& ev : heap_) {
    if (ev.id == id && !cancelled_.contains(id.value)) {
      cancelled_.insert(id.value);
      --live_count_;
      return true;
    }
  }
  return false;
}

std::optional<Event> EventQueue::pop() {
  purge_cancelled_top();
  if (heap_.empty()) return std::nullopt;
  Event top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  --live_count_;
  return top;
}

std::optional<SimTime> EventQueue::next_time() {
  purge_cancelled_top();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  live_count_ = 0;
}

void EventQueue::purge_cancelled_top() {
  while (!heap_.empty() && cancelled_.contains(heap_.front().id.value)) {
    cancelled_.erase(heap_.front().id.value);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_[i].fires_before(heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t best = i;
    if (l < n && heap_[l].fires_before(heap_[best])) best = l;
    if (r < n && heap_[r].fires_before(heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace vds::sim
