#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vds::sim {

/// Streaming mean/variance accumulator (Welford). O(1) memory.
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Half-width of a normal-approximation confidence interval at the
  /// given z (default 1.96 ~ 95%).
  [[nodiscard]] double ci_halfwidth(double z = 1.96) const noexcept;

  /// Half-width of a Student-t confidence interval at the given
  /// two-sided confidence level (0.95 = 95%). Uses n-1 degrees of
  /// freedom; 0 for fewer than two samples (no variance estimate
  /// exists, matching sem()), and exactly 0 for zero-variance data.
  [[nodiscard]] double ci_halfwidth_t(double confidence = 0.95) const noexcept;

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const Accumulator& other) noexcept;

  void reset() noexcept { *this = Accumulator{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Two-sided critical value of the standard normal distribution: the
/// z with P(|Z| <= z) = confidence (e.g. 0.95 -> 1.95996...). Requires
/// confidence in (0, 1); returns NaN outside it.
[[nodiscard]] double normal_critical(double confidence) noexcept;

/// Two-sided critical value of Student's t distribution with `dof`
/// degrees of freedom (e.g. confidence 0.95, dof 4 -> 2.77644...).
/// Converges to normal_critical for large dof. dof == 0 has no
/// distribution: returns +inf (an interval from one sample is
/// unbounded). Requires confidence in (0, 1); returns NaN outside it.
[[nodiscard]] double student_t_critical(double confidence,
                                        std::uint64_t dof) noexcept;

/// Fixed-width histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return under_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return over_; }
  /// NaN samples; -inf/+inf count as underflow/overflow.
  [[nodiscard]] std::uint64_t nan_count() const noexcept { return nan_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Approximate quantile (q in [0,1]) by linear interpolation within
  /// the containing bin. Underflow/overflow mass sits at lo/hi. NaN
  /// samples land in their own bucket (see nan_count()) and carry no
  /// rank: quantiles are computed over the total() - nan_count()
  /// ranked samples, and a histogram holding only NaN samples returns
  /// lo for every q.
  [[nodiscard]] double quantile(double q) const;

  /// Renders a compact ASCII summary, one bin per line.
  [[nodiscard]] std::string to_string(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0;
  std::uint64_t over_ = 0;
  std::uint64_t nan_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace vds::sim
