#pragma once

#include <cstddef>
#include <optional>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"

namespace vds::sim {

/// Deterministic min-priority queue of events with O(log n) push/pop and
/// lazy cancellation. Ties at equal timestamps resolve in scheduling
/// order, so replaying a simulation with the same seed reproduces the
/// exact event sequence.
class EventQueue {
 public:
  /// Schedules `action` at absolute time `when`. Returns a handle that
  /// can later be passed to cancel().
  EventId schedule(SimTime when, EventAction action);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed. Cancellation is lazy: the
  /// heap slot is reclaimed when the event surfaces.
  bool cancel(EventId id);

  /// Removes and returns the earliest pending event, skipping cancelled
  /// entries. Returns nullopt when the queue is exhausted.
  std::optional<Event> pop();

  /// Time of the earliest pending (non-cancelled) event, if any.
  [[nodiscard]] std::optional<SimTime> next_time();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }
  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }

  /// Drops every pending event.
  void clear();

 private:
  void purge_cancelled_top();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace vds::sim
