#include "sim/trace.hpp"

#include <iomanip>

namespace vds::sim {

std::string_view to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kRoundStart: return "round_start";
    case TraceKind::kRoundEnd: return "round_end";
    case TraceKind::kContextSwitch: return "context_switch";
    case TraceKind::kCompare: return "compare";
    case TraceKind::kCompareMismatch: return "compare_mismatch";
    case TraceKind::kCheckpoint: return "checkpoint";
    case TraceKind::kFaultInjected: return "fault_injected";
    case TraceKind::kFaultDetected: return "fault_detected";
    case TraceKind::kRetryStart: return "retry_start";
    case TraceKind::kRetryEnd: return "retry_end";
    case TraceKind::kRollForwardStart: return "roll_forward_start";
    case TraceKind::kRollForwardEnd: return "roll_forward_end";
    case TraceKind::kRollForwardDiscarded: return "roll_forward_discarded";
    case TraceKind::kMajorityVote: return "majority_vote";
    case TraceKind::kRollback: return "rollback";
    case TraceKind::kPrediction: return "prediction";
    case TraceKind::kStateCopy: return "state_copy";
    case TraceKind::kJobDone: return "job_done";
    case TraceKind::kFailSafeShutdown: return "fail_safe_shutdown";
    case TraceKind::kInfo: return "info";
  }
  return "unknown";
}

void Trace::record(SimTime when, std::string actor, TraceKind kind,
                   std::string detail) {
  if (!enabled_) return;
  TraceRecord rec{when, std::move(actor), kind, std::move(detail)};
  if (listener_) listener_(rec);
  if (cap_ != 0 && records_.size() >= cap_) {
    ++dropped_;
    return;
  }
  records_.push_back(std::move(rec));
}

std::size_t Trace::count(TraceKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& rec : records_) {
    if (rec.kind == kind) ++n;
  }
  return n;
}

void Trace::dump(std::ostream& os) const {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(4);
  for (const auto& rec : records_) {
    os << std::setw(12) << rec.when << "  " << std::setw(8) << rec.actor
       << "  " << std::setw(22) << to_string(rec.kind);
    if (!rec.detail.empty()) os << "  " << rec.detail;
    os << '\n';
  }
  if (dropped_ != 0) os << "(" << dropped_ << " records dropped)\n";
  os.flags(flags);
}

}  // namespace vds::sim
