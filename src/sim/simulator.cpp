#include "sim/simulator.hpp"

#include <cmath>
#include <utility>

namespace vds::sim {

EventId Simulator::call_at(SimTime when, EventAction action) {
  if (std::isnan(when) || when < now_) {
    throw std::invalid_argument(
        "Simulator::call_at: scheduling in the past or at NaN");
  }
  return queue_.schedule(when, std::move(action));
}

EventId Simulator::call_in(SimTime delay, EventAction action) {
  if (std::isnan(delay) || delay < 0.0) {
    throw std::invalid_argument("Simulator::call_in: negative or NaN delay");
  }
  return queue_.schedule(now_ + delay, std::move(action));
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  stopped_ = false;
  std::uint64_t n = 0;
  for (;;) {
    if (stopped_) return n;
    const auto next = queue_.next_time();
    if (!next) break;
    if (*next > horizon) break;
    step();
    ++n;
  }
  if (!stopped_ && horizon > now_) now_ = horizon;
  return n;
}

bool Simulator::step() {
  auto ev = queue_.pop();
  if (!ev) return false;
  now_ = ev->when;
  ++executed_;
  ev->action();
  return true;
}

void Simulator::drain() {
  queue_.clear();
  stopped_ = false;
}

}  // namespace vds::sim
