#include "sim/rng.hpp"

#include <cmath>

namespace vds::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  have_spare_normal_ = false;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo by contract
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double lambda) noexcept {
  // -log(1-u) with u in [0,1) keeps the argument strictly positive.
  return -std::log1p(-uniform()) / lambda;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = radius * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  const double u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

Rng Rng::split(std::uint64_t tag) noexcept {
  Rng child;
  child.reseed(next() ^ (tag * 0x9e3779b97f4a7c15ull) ^ 0xd1b54a32d192ed03ull);
  return child;
}

Rng Rng::substream(std::uint64_t stream_id) const noexcept {
  // The child's seed is derived from the stream_id-th state of a
  // SplitMix64 sequence anchored at the base seed. Two scramble
  // rounds so that adjacent stream ids land far apart.
  std::uint64_t state = seed_ + stream_id * 0x9e3779b97f4a7c15ull;
  std::uint64_t derived = splitmix64(state);
  derived ^= splitmix64(state);
  Rng child;
  child.reseed(derived);
  return child;
}

}  // namespace vds::sim
