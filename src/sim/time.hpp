#pragma once

#include <cmath>
#include <limits>

namespace vds::sim {

/// Simulation time. The unit is whatever the model under simulation
/// chooses (the VDS model uses "round compute times", the SMT core uses
/// cycles); the engine only requires a totally ordered, additive scalar.
using SimTime = double;

/// Sentinel for "never".
inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<SimTime>::infinity();

/// Tolerant floating-point time comparison. Discrete-event schedules
/// accumulate rounding from repeated addition; two timestamps within
/// `rel` of each other are considered simultaneous by analysis code
/// (the event queue itself uses exact ordering plus sequence numbers,
/// so determinism never depends on this).
[[nodiscard]] inline bool time_close(SimTime a, SimTime b,
                                     double rel = 1e-9) noexcept {
  if (a == b) return true;
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= rel * std::fmax(scale, 1.0);
}

}  // namespace vds::sim
