#include "runtime/mc_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/smt_engine.hpp"
#include "runtime/chaos.hpp"
#include "runtime/journal.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace vds::runtime {

namespace {

// Campaign-level event counts. Everything here is a pure function of
// the workload — retries/quarantines included, because chaos decisions
// hash (seed, site, cell, attempt), not wall-clock — except skipped
// cells, which depend on when a drain signal arrived.
struct McCounters {
  metrics::Counter& executed;
  metrics::Counter& resumed;
  metrics::Counter& retried;
  metrics::Counter& quarantined;
  metrics::Counter& skipped;
  metrics::Counter& corrupt;
  metrics::Timing& attempt_ms;
};

McCounters& mc_counters() {
  using metrics::Determinism;
  auto& reg = metrics::registry();
  static McCounters counters{
      reg.counter("mc.cells_executed", Determinism::kDeterministic),
      reg.counter("mc.cells_resumed", Determinism::kDeterministic),
      reg.counter("mc.cells_retried", Determinism::kDeterministic),
      reg.counter("mc.cells_quarantined", Determinism::kDeterministic),
      reg.counter("mc.cells_skipped", Determinism::kScheduling),
      reg.counter("mc.records_corrupt", Determinism::kDeterministic),
      reg.timing("mc.cell_attempt_ms", 0.0, 250.0, 128),
  };
  return counters;
}

/// Cells per aggregation shard. Shards are fixed index blocks (not
/// per-worker bins), so the reduction shape is independent of the
/// thread count and of which worker ran which cell.
constexpr std::size_t kShardCells = 64;

std::uint64_t hash_double(double x, std::uint64_t h) noexcept {
  return fnv1a(&x, sizeof x, h);
}

std::uint64_t hash_u64(std::uint64_t x, std::uint64_t h) noexcept {
  return fnv1a(&x, sizeof x, h);
}

std::uint64_t hash_accumulator(const vds::sim::Accumulator& acc,
                               std::uint64_t h) noexcept {
  h = hash_u64(acc.count(), h);
  h = hash_double(acc.mean(), h);
  h = hash_double(acc.variance(), h);
  h = hash_double(acc.min(), h);
  h = hash_double(acc.max(), h);
  h = hash_double(acc.sum(), h);
  return h;
}

McCell cell_at(const McConfig& config, std::uint64_t index) {
  McCell cell;
  cell.index = index;
  const std::uint64_t replicas = config.replicas;
  const std::uint64_t rounds = config.rounds.size();
  cell.replica = index % replicas;
  const std::uint64_t grid = index / replicas;
  cell.round = config.rounds[grid % rounds];
  cell.kind = config.kinds[grid / rounds];
  return cell;
}

/// Draws the cell's fault. The draw order matches the sequential
/// campaign (victim, location, word, bit) with the offset appended,
/// every value coming from the cell's private substream.
vds::fault::Fault draw_fault(const McConfig& config, const McCell& cell,
                             vds::sim::Rng& rng) {
  vds::fault::Fault fault;
  fault.kind = cell.kind;
  fault.victim = rng.bernoulli(0.5) ? vds::fault::Victim::kVersion1
                                    : vds::fault::Victim::kVersion2;
  fault.location = static_cast<std::uint32_t>(rng.uniform_index(16));
  fault.word = static_cast<std::uint32_t>(rng.uniform_index(1u << 16));
  fault.bit = static_cast<std::uint8_t>(rng.uniform_index(64));
  const double offset =
      config.jitter_offset ? rng.uniform() : config.fixed_offset;
  fault.when = (static_cast<double>(cell.round) - 1.0) * config.round_time +
               offset * config.round_time;
  return fault;
}

McCellResult to_cell_result(const core::RunReport& report) {
  McCellResult result;
  result.outcome = core::classify_outcome(report);
  result.detection_latency = report.detection_latency.empty()
                                 ? -1.0
                                 : report.detection_latency.mean();
  result.recovery_time =
      report.recovery_time.empty() ? 0.0 : report.recovery_time.mean();
  result.total_time = report.total_time;
  result.rounds_committed = report.rounds_committed;
  return result;
}

JournalRecord to_record(std::uint64_t index, const McCellResult& result) {
  JournalRecord record;
  record.index = index;
  record.outcome = static_cast<int>(result.outcome);
  record.detection_latency = result.detection_latency;
  record.recovery_time = result.recovery_time;
  record.total_time = result.total_time;
  record.rounds_committed = result.rounds_committed;
  return record;
}

McCellResult from_record(const JournalRecord& record) {
  McCellResult result;
  result.outcome = static_cast<core::InjectionOutcome>(record.outcome);
  result.detection_latency = record.detection_latency;
  result.recovery_time = record.recovery_time;
  result.total_time = record.total_time;
  result.rounds_committed = record.rounds_committed;
  return result;
}

void write_json(JsonWriter& json, const char* name,
                const vds::sim::Accumulator& acc) {
  json.key(name).begin_object();
  json.field("count", static_cast<std::uint64_t>(acc.count()));
  json.field("mean", acc.mean());
  json.field("stddev", acc.stddev());
  json.field("sem", acc.sem());
  json.field("min", acc.min());
  json.field("max", acc.max());
  json.field("sum", acc.sum());
  json.end_object();
}

}  // namespace

std::uint64_t McConfig::fingerprint() const noexcept {
  std::uint64_t h = fnv1a("vds-mc-config-v1");
  for (const auto kind : kinds) {
    h = hash_u64(static_cast<std::uint64_t>(kind), h);
  }
  h = hash_u64(0xfeed, h);  // domain separator kinds/rounds
  for (const auto round : rounds) h = hash_u64(round, h);
  h = hash_u64(replicas, h);
  h = hash_double(round_time, h);
  h = hash_u64(jitter_offset ? 1 : 0, h);
  h = hash_double(fixed_offset, h);
  h = hash_u64(seed, h);
  h = hash_u64(runner_fingerprint, h);
  // Folded only when armed: the knobs shape which cells run, but a
  // fixed-replica campaign must keep its pre-sampling fingerprint so
  // existing journals stay resumable.
  if (sampling()) {
    h = fnv1a(std::string_view("vds-mc-sampling-v1"), h);
    h = hash_double(target_ci, h);
    h = hash_u64(min_replicas, h);
    h = hash_u64(batch, h);
  }
  return h;
}

void McSummary::add(const McCellResult& result) {
  ++outcomes.by_outcome[static_cast<std::size_t>(result.outcome)];
  ++outcomes.injections;
  if (result.detection_latency >= 0.0) {
    detection_latency.add(result.detection_latency);
  }
  if (result.recovery_time > 0.0) recovery_time.add(result.recovery_time);
  total_time.add(result.total_time);
  rounds_committed.add(static_cast<double>(result.rounds_committed));
}

void McSummary::merge(const McSummary& other) {
  outcomes.merge(other.outcomes);
  detection_latency.merge(other.detection_latency);
  recovery_time.merge(other.recovery_time);
  total_time.merge(other.total_time);
  rounds_committed.merge(other.rounds_committed);
  cells_executed += other.cells_executed;
  cells_resumed += other.cells_resumed;
  cells_retried += other.cells_retried;
  cells_quarantined += other.cells_quarantined;
  records_corrupt += other.records_corrupt;
  cells_skipped += other.cells_skipped;
  drained = drained || other.drained;
  deadline_exceeded = deadline_exceeded || other.deadline_exceeded;
  quarantined.insert(quarantined.end(), other.quarantined.begin(),
                     other.quarantined.end());
  strata.insert(strata.end(), other.strata.begin(), other.strata.end());
}

std::uint64_t McSummary::digest() const noexcept {
  // The failure-path bookkeeping (cells_executed/resumed/retried/
  // quarantined, records_corrupt, skip/drain state) is deliberately
  // excluded: a resumed or retried campaign must digest-match its
  // uninterrupted twin.
  std::uint64_t h = fnv1a("vds-mc-summary-v1");
  for (const auto count : outcomes.by_outcome) h = hash_u64(count, h);
  h = hash_u64(outcomes.injections, h);
  h = hash_accumulator(detection_latency, h);
  h = hash_accumulator(recovery_time, h);
  h = hash_accumulator(total_time, h);
  h = hash_accumulator(rounds_committed, h);
  return h;
}

McRunner make_smt_runner(core::VdsOptions options) {
  return [options](const McCell&, vds::fault::FaultTimeline& timeline,
                   vds::sim::Rng& rng) {
    core::SmtVds vds(options, rng.split(1));
    vds.set_predictor(
        std::make_unique<vds::fault::RandomPredictor>(rng.split(2)));
    return vds.run(timeline);
  };
}

// --- graceful drain ---------------------------------------------------

namespace {

std::atomic<bool> g_drain_requested{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "the drain flag must be settable from a signal handler");

}  // namespace

void request_drain() noexcept { g_drain_requested.store(true); }
void clear_drain_request() noexcept { g_drain_requested.store(false); }
bool drain_requested() noexcept { return g_drain_requested.load(); }

void install_drain_signal_handlers() {
  // Only the lock-free atomic store happens in signal context.
  std::signal(SIGINT, +[](int) { g_drain_requested.store(true); });
  std::signal(SIGTERM, +[](int) { g_drain_requested.store(true); });
}

// --- per-cell execution with watchdog / retry -------------------------

namespace {

/// How a cell's task left the campaign. Each slot is written by at
/// most one pool task; the pool barrier publishes them to the reducer.
enum CellState : char {
  kPending = 0,
  kResumed,      ///< satisfied from the journal
  kExecuted,     ///< ran (possibly after retries) this invocation
  kQuarantined,  ///< every attempt failed or timed out
  kSkipped,      ///< dispatch stopped by a graceful drain
  kBeyondStop,   ///< journaled past a stratum's stopping point; an
                 ///< overlapping or partial-window shard ran further
                 ///< than the decision kept — excluded from reduce
};

/// A retryable attempt failure (runner exception, injected chaos
/// failure, or watchdog timeout). Anything else a cell task throws —
/// journal I/O above all — is a harness failure and propagates.
struct CellAttemptFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Runs one attempt of one cell. Every random draw comes from the
/// cell's own substream, a pure function of (seed, index), re-derived
/// from scratch here: neither scheduling nor the attempt number can
/// perturb it, so a retried cell reproduces a first-try result
/// bitwise.
McCellResult execute_attempt(const McConfig& config, const McCell& cell,
                             const Chaos& chaos, const McRunner& runner,
                             unsigned attempt) {
  if (chaos.fires(kChaosCellFail, cell.index, attempt)) {
    throw CellAttemptFailure("chaos: injected failure (cell " +
                             std::to_string(cell.index) + ", attempt " +
                             std::to_string(attempt) + ")");
  }
  if (chaos.fires(kChaosCellHang, cell.index, attempt)) {
    // Long enough to trip the watchdog, short enough that a disabled
    // watchdog only slows the campaign instead of wedging it.
    const double seconds = config.cell_timeout > 0.0
                               ? std::min(4.0 * config.cell_timeout, 2.0)
                               : 0.05;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  vds::sim::Rng rng = vds::sim::Rng(config.seed).substream(cell.index);
  vds::fault::Fault fault = draw_fault(config, cell, rng);
  vds::fault::FaultTimeline timeline({fault});
  return to_cell_result(runner(cell, timeline, rng));
}

/// One attempt under the watchdog. With no timeout the attempt runs
/// inline; with one it runs on a dedicated thread so a hang can be
/// abandoned: on timeout the thread is detached and only touches its
/// own shared state (which outlives it), never the campaign's.
McCellResult attempt_cell(const McConfig& config, const McCell& cell,
                          const Chaos& chaos, const McRunner& runner,
                          unsigned attempt) {
  if (config.cell_timeout <= 0.0) {
    try {
      return execute_attempt(config, cell, chaos, runner, attempt);
    } catch (const CellAttemptFailure&) {
      throw;
    } catch (const std::exception& error) {
      throw CellAttemptFailure(error.what());
    } catch (...) {
      throw CellAttemptFailure("unknown error");
    }
  }

  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    std::string error;
    McCellResult result;
  };
  auto shared = std::make_shared<Shared>();
  // Everything the (possibly abandoned) attempt touches is captured
  // by value; a hung attempt finishing after the campaign returned
  // writes only into `shared` and is ignored.
  std::thread worker([shared, config, cell, chaos, runner, attempt] {
    McCellResult result;
    bool failed = false;
    std::string error;
    try {
      result = execute_attempt(config, cell, chaos, runner, attempt);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown error";
    }
    {
      std::lock_guard<std::mutex> lock(shared->mutex);
      shared->result = result;
      shared->failed = failed;
      shared->error = std::move(error);
      shared->done = true;
    }
    shared->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(shared->mutex);
  const bool finished = shared->cv.wait_for(
      lock, std::chrono::duration<double>(config.cell_timeout),
      [&] { return shared->done; });
  if (!finished) {
    lock.unlock();
    worker.detach();
    throw CellAttemptFailure(
        "cell " + std::to_string(cell.index) + " attempt " +
        std::to_string(attempt) + " exceeded the watchdog timeout (" +
        std::to_string(config.cell_timeout) + "s)");
  }
  const bool failed = shared->failed;
  McCellResult result = shared->result;
  std::string error = shared->error;
  lock.unlock();
  worker.join();
  if (failed) throw CellAttemptFailure(error);
  return result;
}

/// Capped exponential backoff before retry `attempt + 1`.
void retry_backoff(const McConfig& config, unsigned attempt) {
  if (config.retry_backoff_ms <= 0.0) return;
  const double factor = static_cast<double>(1ull << std::min(attempt, 20u));
  const double ms = std::min(config.retry_backoff_ms * factor,
                             config.retry_backoff_ms * 100.0);
  std::this_thread::sleep_for(std::chrono::duration<double>(ms / 1000.0));
}

bool has_deadline(const McConfig& config) noexcept {
  return config.deadline.time_since_epoch().count() != 0;
}

bool past_deadline(const McConfig& config) noexcept {
  return has_deadline(config) &&
         std::chrono::steady_clock::now() >= config.deadline;
}

// --- adaptive sampling decisions --------------------------------------

/// First replica count at which a stratum's CI is evaluated: the
/// smallest multiple of `batch` at or above max(min_replicas, 2) —
/// two samples are the least that define a variance — capped at the
/// per-stratum maximum. Later decisions land every `batch` replicas,
/// with a forced final decision at `replicas`.
std::uint64_t first_decision(const McConfig& config) noexcept {
  const std::uint64_t lowest =
      std::max<std::uint64_t>(config.min_replicas, 2);
  const std::uint64_t step = std::max<std::uint64_t>(config.batch, 1);
  const std::uint64_t point = (lowest + step - 1) / step * step;
  return std::min(point, config.replicas);
}

/// Relative 95% Student-t half-width: half-width / |mean|. +inf when
/// no interval exists yet (under two samples, or a zero mean with
/// nonzero spread); exactly 0 for zero-variance data.
double relative_halfwidth(const vds::sim::Accumulator& acc) noexcept {
  if (acc.count() < 2) return std::numeric_limits<double>::infinity();
  const double halfwidth = acc.ci_halfwidth_t(0.95);
  if (halfwidth == 0.0) return 0.0;
  const double mean = std::fabs(acc.mean());
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return halfwidth / mean;
}

}  // namespace

// --- shared-pool execution --------------------------------------------

struct McExecution::State {
  metrics::Span campaign_span{"mc.campaign", "mc"};
  std::size_t cells = 0;
  Chaos chaos;
  std::vector<McCellResult> results;
  std::vector<char> cell_state;
  std::uint64_t resumed = 0;
  std::uint64_t corrupt = 0;
  std::unique_ptr<Journal> journal;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> retried{0};
  std::atomic<bool> deadline_hit{false};

  /// Per-(kind, round) adaptive-sampling state. The non-atomic
  /// decision fields are only ever touched by one thread at a time:
  /// the enqueueing thread first, then whichever worker resolves the
  /// last cell of a wave — the acq_rel decrement of `outstanding`
  /// hands them off.
  struct StratumState {
    std::uint64_t base = 0;          ///< first cell index
    std::uint64_t next_replica = 0;  ///< replicas dispatched/replayed
    std::uint64_t eval_point = 0;    ///< next decision point (replicas)
    std::uint64_t stop_at = 0;       ///< replicas kept once decided
    double achieved_ci = 0.0;        ///< relative CI at last decision
    bool decided = false;
    bool early_stopped = false;
    bool blocked = false;  ///< quarantine hole / partial shard window
    bool live = false;     ///< submitted at least one wave this run
    std::atomic<std::uint64_t> outstanding{0};
    std::atomic<bool> abandoned{false};  ///< drain/deadline hit a cell
  };
  std::unique_ptr<StratumState[]> strata_state;  // array: atomics pin it
  std::uint64_t strata_count = 0;

  // Progress heartbeat (advisory; every field an atomic so a poller
  // thread can read mid-campaign).
  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> target{0};
  std::atomic<std::uint64_t> strata_stopped{0};
};

McExecution::McExecution(McConfig config, McRunner runner)
    : config_(std::move(config)),
      runner_(std::move(runner)),
      state_(std::make_unique<State>()) {
  if (config_.kinds.empty() || config_.rounds.empty() ||
      config_.replicas == 0) {
    throw std::runtime_error("mc campaign: empty grid");
  }
  if (config_.cell_lo >= config_.cell_hi ||
      config_.cell_lo >= config_.cells()) {
    throw std::runtime_error("mc campaign: empty cell range [" +
                             std::to_string(config_.cell_lo) + ", " +
                             std::to_string(config_.cell_hi) + ") in a " +
                             std::to_string(config_.cells()) +
                             "-cell campaign");
  }
  if (config_.sampling() &&
      (config_.min_replicas == 0 || config_.batch == 0)) {
    throw std::runtime_error(
        "mc campaign: sampling requires min_replicas >= 1 and batch >= 1");
  }
  State& st = *state_;
  st.cells = config_.cells();
  st.chaos = Chaos::parse(config_.chaos, config_.seed);
  const std::uint64_t fingerprint = config_.fingerprint();

  st.results.resize(st.cells);
  st.cell_state.assign(st.cells, kPending);

  std::vector<JournalRecord> stop_records;
  if (!config_.journal_path.empty()) {
    if (config_.resume) {
      JournalLoad loaded = Journal::load(config_.journal_path, fingerprint);
      st.corrupt = loaded.corrupt;
      for (const JournalRecord& record : loaded.records) {
        // Out-of-range or duplicate cells (a corrupted index that
        // still checksummed, or a double append) are dropped; the
        // first occurrence wins, matching the uninterrupted order.
        if (record.index >= st.cells ||
            st.cell_state[record.index] != kPending) {
          ++st.corrupt;
          continue;
        }
        st.results[record.index] = from_record(record);
        st.cell_state[record.index] = kResumed;
        ++st.resumed;
      }
      stop_records = std::move(loaded.stops);
    } else {
      // A fresh (non-resuming) campaign starts a fresh journal.
      std::remove(config_.journal_path.c_str());
    }
    st.journal = std::make_unique<Journal>(config_.journal_path, fingerprint,
                                           config_.journal_format);
    if (st.chaos.armed()) st.journal->arm_chaos(&st.chaos);
  }

  if (config_.sampling()) {
    st.strata_count = config_.kinds.size() * config_.rounds.size();
    st.strata_state =
        std::make_unique<State::StratumState[]>(st.strata_count);
    for (std::uint64_t s = 0; s < st.strata_count; ++s) {
      st.strata_state[s].base = s * config_.replicas;
    }
    // Stop records pin stopping points decided by an earlier run (or
    // another shard): the stratum replays that decision instead of
    // re-deciding, and journaled results past the point are excluded
    // so the digest matches the deciding run's.
    for (const JournalRecord& record : stop_records) {
      if (record.index >= st.strata_count || record.stop_after == 0 ||
          record.stop_after > config_.replicas ||
          st.strata_state[record.index].decided) {
        ++st.corrupt;
        continue;
      }
      State::StratumState& str = st.strata_state[record.index];
      str.decided = true;
      str.stop_at = record.stop_after;
      str.eval_point = record.stop_after;
      str.achieved_ci = record.achieved_ci;
      str.early_stopped = record.stop_after < config_.replicas;
      if (str.early_stopped) {
        st.strata_stopped.fetch_add(1, std::memory_order_relaxed);
      }
      for (std::uint64_t r = record.stop_after; r < config_.replicas; ++r) {
        const std::uint64_t index = str.base + r;
        if (st.cell_state[index] == kResumed) {
          st.cell_state[index] = kBeyondStop;
        }
      }
    }
    for (std::uint64_t s = 0; s < st.strata_count; ++s) {
      State::StratumState& str = st.strata_state[s];
      if (str.decided) continue;
      // A stratum can only decide when every replica it might need is
      // reachable — inside the dispatch window or already journaled.
      // A partial-window shard instead runs its whole slice with no
      // decisions; the merged-journal resume replays the decision
      // over the assembled prefix.
      bool coverable = true;
      for (std::uint64_t r = 0; r < config_.replicas; ++r) {
        const std::uint64_t index = str.base + r;
        if (st.cell_state[index] == kPending &&
            (index < config_.cell_lo || index >= config_.cell_hi)) {
          coverable = false;
          break;
        }
      }
      if (coverable) {
        str.eval_point = first_decision(config_);
      } else {
        str.blocked = true;
        str.eval_point = config_.replicas;
      }
    }
  }

  // Progress baseline: what is already resolved, and what this
  // invocation can still resolve (in-window pending cells, minus
  // those past an already-decided stopping point).
  std::uint64_t resolved = 0;
  std::uint64_t target = 0;
  for (std::uint64_t index = 0; index < st.cells; ++index) {
    if (st.cell_state[index] != kPending) {
      ++resolved;
      ++target;
      continue;
    }
    if (index < config_.cell_lo || index >= config_.cell_hi) continue;
    if (config_.sampling()) {
      const State::StratumState& str =
          st.strata_state[index / config_.replicas];
      if (str.decided && index - str.base >= str.stop_at) continue;
    }
    ++target;
  }
  st.resolved.store(resolved, std::memory_order_relaxed);
  st.target.store(target, std::memory_order_relaxed);

  mc_counters().resumed.add(st.resumed);
  mc_counters().corrupt.add(st.corrupt);
}

McExecution::~McExecution() = default;

void McExecution::arm_chaos(ThreadPool& pool) const noexcept {
  if (state_->chaos.armed()) pool.arm_chaos(&state_->chaos);
}

void McExecution::run_cell(std::uint64_t index) {
  State& st = *state_;
  const bool late = past_deadline(config_);
  if (late || (config_.honor_global_drain && drain_requested())) {
    if (late) st.deadline_hit.store(true, std::memory_order_relaxed);
    st.cell_state[index] = kSkipped;
    st.resolved.fetch_add(1, std::memory_order_relaxed);
    mc_counters().skipped.add();
    return;
  }
  // With a deadline set, clamp the watchdog so an in-flight cell
  // cannot overrun the time remaining (and enable it if it was off).
  const McConfig* config = &config_;
  McConfig clamped;
  if (has_deadline(config_)) {
    // Never at or below zero: that would read as "watchdog off" and
    // let the attempt run unbounded right when time has run out.
    const double remaining = std::max(
        std::chrono::duration<double>(config_.deadline -
                                      std::chrono::steady_clock::now())
            .count(),
        1e-3);
    clamped = config_;
    clamped.cell_timeout = config_.cell_timeout > 0.0
                               ? std::min(config_.cell_timeout, remaining)
                               : remaining;
    config = &clamped;
  }

  const McCell cell = cell_at(config_, index);
  const metrics::Span cell_span("mc.cell", "mc", index);
  McCellResult result;
  for (unsigned attempt = 0;; ++attempt) {
    try {
      {
        const metrics::ScopedTimer timer(mc_counters().attempt_ms);
        result = attempt_cell(*config, cell, st.chaos, runner_, attempt);
      }
      if (attempt > 0) {
        st.retried.fetch_add(1, std::memory_order_relaxed);
        mc_counters().retried.add();
      }
      break;
    } catch (const CellAttemptFailure&) {
      if (past_deadline(config_)) {
        // The deadline, not the cell, is what failed: report the cell
        // as skipped (resumable), never quarantined.
        st.deadline_hit.store(true, std::memory_order_relaxed);
        st.cell_state[index] = kSkipped;
        st.resolved.fetch_add(1, std::memory_order_relaxed);
        mc_counters().skipped.add();
        return;
      }
      if (attempt >= config_.max_retries) {
        // Give up on the cell, not on the campaign: quarantine is
        // reported in the summary and the cell stays out of the
        // journal, so a later --resume gets another shot at it.
        st.cell_state[index] = kQuarantined;
        st.resolved.fetch_add(1, std::memory_order_relaxed);
        mc_counters().quarantined.add();
        return;
      }
      if (config_.honor_global_drain && drain_requested()) {
        st.cell_state[index] = kSkipped;
        st.resolved.fetch_add(1, std::memory_order_relaxed);
        mc_counters().skipped.add();
        return;
      }
      retry_backoff(config_, attempt);
    }
  }
  st.results[index] = result;
  st.cell_state[index] = kExecuted;
  st.resolved.fetch_add(1, std::memory_order_relaxed);
  // Journal failures bypass the retry loop on purpose: a journal
  // that cannot persist progress must fail the campaign (the pool
  // captures this throw and wait_idle reports it).
  if (st.journal) st.journal->append(to_record(index, result));
  st.executed.fetch_add(1, std::memory_order_relaxed);
  mc_counters().executed.add();
}

void McExecution::run_cell_sampling(ThreadPool& pool, std::uint64_t index,
                                    std::uint64_t stratum) {
  run_cell(index);
  State& st = *state_;
  State::StratumState& str = st.strata_state[stratum];
  if (st.cell_state[index] == kSkipped) {
    // Drain/deadline skipped the cell: the canonical prefix has a
    // hole only a --resume can fill, so the stratum stops chaining.
    str.abandoned.store(true, std::memory_order_relaxed);
  }
  if (str.outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last cell of the wave: this worker inherits the stratum's
    // decision state (the acq_rel decrement orders every other
    // worker's result writes before this).
    advance_stratum(pool, stratum);
  }
}

void McExecution::advance_stratum(ThreadPool& pool, std::uint64_t stratum) {
  State& st = *state_;
  State::StratumState& str = st.strata_state[stratum];
  for (;;) {
    if (str.abandoned.load(std::memory_order_relaxed)) return;
    // Dispatch the wave up to the next decision point. Cells already
    // satisfied (resumed) are skipped; an all-resolved wave falls
    // through to a synchronous replay of the decision below.
    std::vector<std::uint64_t> wave;
    for (std::uint64_t r = str.next_replica; r < str.eval_point; ++r) {
      const std::uint64_t index = str.base + r;
      if (st.cell_state[index] != kPending) continue;
      if (index < config_.cell_lo || index >= config_.cell_hi) continue;
      wave.push_back(index);
    }
    str.next_replica = str.eval_point;
    if (!wave.empty()) {
      str.live = true;
      str.outstanding.store(wave.size(), std::memory_order_relaxed);
      for (const std::uint64_t index : wave) {
        pool.submit([this, &pool, index, stratum] {
          run_cell_sampling(pool, index, stratum);
        });
      }
      return;  // the wave's last finisher re-enters advance_stratum
    }
    if (str.decided || str.blocked) return;  // nothing left to decide
    // The prefix [0, eval_point) is fully resolved — decide over it.
    bool quarantined = false;
    for (std::uint64_t r = 0; r < str.eval_point; ++r) {
      const char state = st.cell_state[str.base + r];
      if (state == kSkipped) return;  // resumable later, not decidable
      if (state == kQuarantined) {
        quarantined = true;
        break;
      }
    }
    if (quarantined) {
      // A quarantined replica punches a hole in the canonical prefix;
      // deciding around it would pick a different stopping point than
      // the clean run's. Run the stratum to its maximum instead — a
      // later clean --resume replays the decisions over the repaired
      // prefix and reaches the clean campaign's digest.
      str.blocked = true;
      str.eval_point = config_.replicas;
      continue;
    }
    vds::sim::Accumulator total;
    vds::sim::Accumulator latency;
    for (std::uint64_t r = 0; r < str.eval_point; ++r) {
      const McCellResult& result = st.results[str.base + r];
      total.add(result.total_time);
      if (result.detection_latency >= 0.0) {
        latency.add(result.detection_latency);
      }
    }
    double achieved = relative_halfwidth(total);
    if (latency.count() >= 2) {
      achieved = std::max(achieved, relative_halfwidth(latency));
    }
    str.achieved_ci = achieved;
    if (achieved > config_.target_ci && str.eval_point < config_.replicas) {
      str.eval_point = std::min<std::uint64_t>(config_.replicas,
                                               str.eval_point + config_.batch);
      continue;
    }
    str.decided = true;
    str.stop_at = str.eval_point;
    str.early_stopped = str.stop_at < config_.replicas;
    if (!str.early_stopped) return;
    st.strata_stopped.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t dropped = 0;
    for (std::uint64_t r = str.stop_at; r < config_.replicas; ++r) {
      const std::uint64_t index = str.base + r;
      if (st.cell_state[index] == kResumed) {
        st.cell_state[index] = kBeyondStop;
      } else if (st.cell_state[index] == kPending) {
        ++dropped;
      }
    }
    st.target.fetch_sub(dropped, std::memory_order_relaxed);
    // Pin the stopping point for --resume / merge_journals. Replayed
    // decisions (live == false: every prefix cell came from the
    // journal) are re-derived on each resume and never re-appended,
    // so the journal does not grow across repeated resumes.
    if (str.live && st.journal) {
      JournalRecord record;
      record.stop = true;
      record.index = stratum;
      record.stop_after = str.stop_at;
      record.achieved_ci = str.achieved_ci;
      st.journal->append(record);
    }
    return;
  }
}

void McExecution::enqueue(ThreadPool& pool) {
  State& st = *state_;
  if (config_.sampling()) {
    // Stratified wave dispatch: every stratum submits its first wave
    // here; later waves chain from the worker that resolves the last
    // cell of the previous one, so wait_idle() covers the stream.
    // Fully-resumed strata replay their decisions synchronously.
    for (std::uint64_t s = 0; s < st.strata_count; ++s) {
      advance_stratum(pool, s);
    }
    return;
  }
  // The cell range bounds *dispatch* only: journaled records outside
  // it (a merged journal, an overlapping shard) still count as
  // resumed, so resuming a fully merged journal with the default
  // range reproduces the single-process digest.
  const std::size_t lo =
      static_cast<std::size_t>(std::min<std::uint64_t>(config_.cell_lo,
                                                       st.cells));
  const std::size_t hi =
      static_cast<std::size_t>(std::min<std::uint64_t>(config_.cell_hi,
                                                       st.cells));
  for (std::size_t index = lo; index < hi; ++index) {
    if (st.cell_state[index] != kPending) continue;
    pool.submit([this, index] { run_cell(index); });
  }
}

McSummary McExecution::reduce(ThreadPool& pool) {
  State& st = *state_;
  // Sharded reduction: fixed index blocks, built in parallel, merged
  // in block order -- deterministic for any thread count. Only cells
  // that actually produced a result participate.
  const std::size_t shard_count =
      (st.cells + kShardCells - 1) / kShardCells;
  std::vector<McSummary> shards(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    pool.submit([&, s] {
      const std::size_t lo = s * kShardCells;
      const std::size_t hi = std::min(st.cells, lo + kShardCells);
      for (std::size_t index = lo; index < hi; ++index) {
        if (st.cell_state[index] == kResumed ||
            st.cell_state[index] == kExecuted) {
          shards[s].add(st.results[index]);
        }
      }
    });
  }
  pool.wait_idle();

  McSummary total;
  for (const McSummary& shard : shards) total.merge(shard);
  total.cells_executed = st.executed.load();
  total.cells_retried = st.retried.load();
  total.records_corrupt = st.corrupt;
  total.drained = config_.honor_global_drain && drain_requested();
  total.deadline_exceeded = st.deadline_hit.load();
  for (std::size_t index = 0; index < st.cells; ++index) {
    if (st.cell_state[index] == kQuarantined) {
      ++total.cells_quarantined;
      total.quarantined.push_back(index);
    } else if (st.cell_state[index] == kSkipped) {
      ++total.cells_skipped;
    } else if (st.cell_state[index] == kResumed) {
      // Counted here rather than from the load tally so records past
      // a stratum's stopping point (kBeyondStop) are not reported as
      // contributing.
      ++total.cells_resumed;
    }
  }
  if (config_.sampling()) {
    const std::uint64_t rounds = config_.rounds.size();
    total.strata.reserve(st.strata_count);
    for (std::uint64_t s = 0; s < st.strata_count; ++s) {
      const State::StratumState& str = st.strata_state[s];
      McStratumStats stats;
      stats.kind = config_.kinds[s / rounds];
      stats.round = config_.rounds[s % rounds];
      for (std::uint64_t r = 0; r < config_.replicas; ++r) {
        const char state = st.cell_state[str.base + r];
        if (state == kExecuted || state == kResumed) ++stats.replicas_run;
      }
      stats.achieved_ci = str.achieved_ci;
      stats.early_stopped = str.early_stopped;
      total.strata.push_back(stats);
    }
  }
  return total;
}

McExecution::Progress McExecution::progress() const noexcept {
  const State& st = *state_;
  Progress snapshot;
  snapshot.resolved = st.resolved.load(std::memory_order_relaxed);
  snapshot.target = st.target.load(std::memory_order_relaxed);
  snapshot.strata_stopped = st.strata_stopped.load(std::memory_order_relaxed);
  snapshot.strata_total = config_.sampling() ? st.strata_count : 0;
  return snapshot;
}

McSummary run_mc_campaign(const McConfig& config, const McRunner& runner) {
  McExecution exec(config, runner);
  ThreadPool pool(config.threads);
  exec.arm_chaos(pool);
  exec.enqueue(pool);
  pool.wait_idle();
  return exec.reduce(pool);
}

void write_snapshot(std::ostream& os, const McConfig& config,
                    const McSummary& summary) {
  JsonWriter json(os);
  write_snapshot(json, config, summary);
}

void write_snapshot(JsonWriter& json, const McConfig& config,
                    const McSummary& summary) {
  json.begin_object();
  // v2 only differs by the sampling fields below; the fixed-replica
  // document stays byte-identical to its committed goldens.
  json.field("schema",
             config.sampling() ? "vds.mc_summary.v2" : "vds.mc_summary.v1");
  json.key("config").begin_object();
  json.key("kinds").begin_array();
  for (const auto kind : config.kinds) {
    json.value(vds::fault::to_string(kind));
  }
  json.end_array();
  json.key("rounds").begin_array();
  for (const auto round : config.rounds) json.value(round);
  json.end_array();
  json.field("replicas", config.replicas);
  json.field("round_time", config.round_time);
  json.field("jitter_offset", config.jitter_offset);
  json.field("seed", config.seed);
  json.field("cells", static_cast<std::uint64_t>(config.cells()));
  json.field("fingerprint", config.fingerprint());
  json.field("cell_timeout", config.cell_timeout);
  json.field("max_retries", static_cast<std::uint64_t>(config.max_retries));
  json.field("chaos", config.chaos);
  if (config.sampling()) {
    json.field("target_ci", config.target_ci);
    json.field("min_replicas", config.min_replicas);
    json.field("max_replicas", config.replicas);
    json.field("batch", config.batch);
  }
  // Conditional so the golden pretty snapshots keep their exact bytes
  // (only sharded runs restrict the range).
  if (config.cell_lo != 0 || config.cell_hi < config.cells()) {
    json.key("cell_range").begin_array();
    json.value(config.cell_lo);
    json.value(std::min<std::uint64_t>(config.cell_hi, config.cells()));
    json.end_array();
  }
  json.end_object();
  json.key("summary").begin_object();
  json.key("outcomes");
  write_json(json, summary.outcomes);
  write_json(json, "detection_latency", summary.detection_latency);
  write_json(json, "recovery_time", summary.recovery_time);
  write_json(json, "total_time", summary.total_time);
  write_json(json, "rounds_committed", summary.rounds_committed);
  json.field("cells_executed", summary.cells_executed);
  json.field("cells_resumed", summary.cells_resumed);
  json.field("cells_retried", summary.cells_retried);
  json.field("cells_quarantined", summary.cells_quarantined);
  json.field("records_corrupt", summary.records_corrupt);
  json.field("cells_skipped", summary.cells_skipped);
  json.field("drained", summary.drained);
  // Conditional so the golden pretty snapshots keep their exact bytes
  // (only deadline-bearing serve requests can set it).
  if (summary.deadline_exceeded) json.field("deadline_exceeded", true);
  if (config.sampling()) {
    json.key("strata").begin_array();
    for (const McStratumStats& stats : summary.strata) {
      json.begin_object();
      json.field("kind", vds::fault::to_string(stats.kind));
      json.field("round", stats.round);
      json.field("replicas_run", stats.replicas_run);
      json.field("achieved_ci", stats.achieved_ci);
      json.field("early_stopped", stats.early_stopped);
      json.end_object();
    }
    json.end_array();
  }
  json.key("quarantined").begin_array();
  // Bounded preview: cells_quarantined carries the full count.
  constexpr std::size_t kQuarantinePreview = 64;
  for (std::size_t k = 0;
       k < std::min(summary.quarantined.size(), kQuarantinePreview); ++k) {
    json.value(summary.quarantined[k]);
  }
  json.end_array();
  char digest_hex[20];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(summary.digest()));
  json.field("digest", digest_hex);
  json.end_object();
  json.end_object();
}

}  // namespace vds::runtime
