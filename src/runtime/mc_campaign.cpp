#include "runtime/mc_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "core/smt_engine.hpp"
#include "runtime/journal.hpp"
#include "runtime/thread_pool.hpp"

namespace vds::runtime {

namespace {

/// Cells per aggregation shard. Shards are fixed index blocks (not
/// per-worker bins), so the reduction shape is independent of the
/// thread count and of which worker ran which cell.
constexpr std::size_t kShardCells = 64;

std::uint64_t hash_double(double x, std::uint64_t h) noexcept {
  return fnv1a(&x, sizeof x, h);
}

std::uint64_t hash_u64(std::uint64_t x, std::uint64_t h) noexcept {
  return fnv1a(&x, sizeof x, h);
}

std::uint64_t hash_accumulator(const vds::sim::Accumulator& acc,
                               std::uint64_t h) noexcept {
  h = hash_u64(acc.count(), h);
  h = hash_double(acc.mean(), h);
  h = hash_double(acc.variance(), h);
  h = hash_double(acc.min(), h);
  h = hash_double(acc.max(), h);
  h = hash_double(acc.sum(), h);
  return h;
}

McCell cell_at(const McConfig& config, std::uint64_t index) {
  McCell cell;
  cell.index = index;
  const std::uint64_t replicas = config.replicas;
  const std::uint64_t rounds = config.rounds.size();
  cell.replica = index % replicas;
  const std::uint64_t grid = index / replicas;
  cell.round = config.rounds[grid % rounds];
  cell.kind = config.kinds[grid / rounds];
  return cell;
}

/// Draws the cell's fault. The draw order matches the sequential
/// campaign (victim, location, word, bit) with the offset appended,
/// every value coming from the cell's private substream.
vds::fault::Fault draw_fault(const McConfig& config, const McCell& cell,
                             vds::sim::Rng& rng) {
  vds::fault::Fault fault;
  fault.kind = cell.kind;
  fault.victim = rng.bernoulli(0.5) ? vds::fault::Victim::kVersion1
                                    : vds::fault::Victim::kVersion2;
  fault.location = static_cast<std::uint32_t>(rng.uniform_index(16));
  fault.word = static_cast<std::uint32_t>(rng.uniform_index(1u << 16));
  fault.bit = static_cast<std::uint8_t>(rng.uniform_index(64));
  const double offset =
      config.jitter_offset ? rng.uniform() : config.fixed_offset;
  fault.when = (static_cast<double>(cell.round) - 1.0) * config.round_time +
               offset * config.round_time;
  return fault;
}

McCellResult to_cell_result(const core::RunReport& report) {
  McCellResult result;
  result.outcome = core::classify_outcome(report);
  result.detection_latency = report.detection_latency.empty()
                                 ? -1.0
                                 : report.detection_latency.mean();
  result.recovery_time =
      report.recovery_time.empty() ? 0.0 : report.recovery_time.mean();
  result.total_time = report.total_time;
  result.rounds_committed = report.rounds_committed;
  return result;
}

JournalRecord to_record(std::uint64_t index, const McCellResult& result) {
  JournalRecord record;
  record.index = index;
  record.outcome = static_cast<int>(result.outcome);
  record.detection_latency = result.detection_latency;
  record.recovery_time = result.recovery_time;
  record.total_time = result.total_time;
  record.rounds_committed = result.rounds_committed;
  return record;
}

McCellResult from_record(const JournalRecord& record) {
  McCellResult result;
  result.outcome = static_cast<core::InjectionOutcome>(record.outcome);
  result.detection_latency = record.detection_latency;
  result.recovery_time = record.recovery_time;
  result.total_time = record.total_time;
  result.rounds_committed = record.rounds_committed;
  return result;
}

void write_json(JsonWriter& json, const char* name,
                const vds::sim::Accumulator& acc) {
  json.key(name).begin_object();
  json.field("count", static_cast<std::uint64_t>(acc.count()));
  json.field("mean", acc.mean());
  json.field("stddev", acc.stddev());
  json.field("sem", acc.sem());
  json.field("min", acc.min());
  json.field("max", acc.max());
  json.field("sum", acc.sum());
  json.end_object();
}

}  // namespace

std::uint64_t McConfig::fingerprint() const noexcept {
  std::uint64_t h = fnv1a("vds-mc-config-v1");
  for (const auto kind : kinds) {
    h = hash_u64(static_cast<std::uint64_t>(kind), h);
  }
  h = hash_u64(0xfeed, h);  // domain separator kinds/rounds
  for (const auto round : rounds) h = hash_u64(round, h);
  h = hash_u64(replicas, h);
  h = hash_double(round_time, h);
  h = hash_u64(jitter_offset ? 1 : 0, h);
  h = hash_double(fixed_offset, h);
  h = hash_u64(seed, h);
  h = hash_u64(runner_fingerprint, h);
  return h;
}

void McSummary::add(const McCellResult& result) {
  ++outcomes.by_outcome[static_cast<std::size_t>(result.outcome)];
  ++outcomes.injections;
  if (result.detection_latency >= 0.0) {
    detection_latency.add(result.detection_latency);
  }
  if (result.recovery_time > 0.0) recovery_time.add(result.recovery_time);
  total_time.add(result.total_time);
  rounds_committed.add(static_cast<double>(result.rounds_committed));
}

void McSummary::merge(const McSummary& other) {
  outcomes.merge(other.outcomes);
  detection_latency.merge(other.detection_latency);
  recovery_time.merge(other.recovery_time);
  total_time.merge(other.total_time);
  rounds_committed.merge(other.rounds_committed);
  cells_executed += other.cells_executed;
  cells_resumed += other.cells_resumed;
}

std::uint64_t McSummary::digest() const noexcept {
  // cells_executed / cells_resumed are deliberately excluded: a
  // resumed campaign must digest-match its uninterrupted twin.
  std::uint64_t h = fnv1a("vds-mc-summary-v1");
  for (const auto count : outcomes.by_outcome) h = hash_u64(count, h);
  h = hash_u64(outcomes.injections, h);
  h = hash_accumulator(detection_latency, h);
  h = hash_accumulator(recovery_time, h);
  h = hash_accumulator(total_time, h);
  h = hash_accumulator(rounds_committed, h);
  return h;
}

McRunner make_smt_runner(core::VdsOptions options) {
  return [options](const McCell&, vds::fault::FaultTimeline& timeline,
                   vds::sim::Rng& rng) {
    core::SmtVds vds(options, rng.split(1));
    vds.set_predictor(
        std::make_unique<vds::fault::RandomPredictor>(rng.split(2)));
    return vds.run(timeline);
  };
}

McSummary run_mc_campaign(const McConfig& config, const McRunner& runner) {
  if (config.kinds.empty() || config.rounds.empty() ||
      config.replicas == 0) {
    throw std::runtime_error("mc campaign: empty grid");
  }
  const std::size_t cells = config.cells();
  const std::uint64_t fingerprint = config.fingerprint();

  std::vector<McCellResult> results(cells);
  std::vector<char> done(cells, 0);
  std::uint64_t resumed = 0;

  if (!config.journal_path.empty()) {
    if (config.resume) {
      for (const JournalRecord& record :
           Journal::load(config.journal_path, fingerprint)) {
        if (record.index >= cells || done[record.index]) continue;
        results[record.index] = from_record(record);
        done[record.index] = 1;
        ++resumed;
      }
    } else {
      // A fresh (non-resuming) campaign starts a fresh journal.
      std::remove(config.journal_path.c_str());
    }
  }

  std::unique_ptr<Journal> journal;
  if (!config.journal_path.empty()) {
    journal = std::make_unique<Journal>(config.journal_path, fingerprint);
  }

  ThreadPool pool(config.threads);
  const vds::sim::Rng base(config.seed);
  std::atomic<std::uint64_t> executed{0};

  for (std::size_t index = 0; index < cells; ++index) {
    if (done[index]) continue;
    pool.submit([&, index] {
      // Every random draw comes from the cell's own substream, a pure
      // function of (seed, index): scheduling cannot perturb it.
      vds::sim::Rng rng = base.substream(index);
      const McCell cell = cell_at(config, index);
      vds::fault::Fault fault = draw_fault(config, cell, rng);
      vds::fault::FaultTimeline timeline({fault});
      const core::RunReport report = runner(cell, timeline, rng);
      results[index] = to_cell_result(report);
      if (journal) journal->append(to_record(index, results[index]));
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();

  // Sharded reduction: fixed index blocks, built in parallel, merged
  // in block order -- deterministic for any thread count.
  const std::size_t shard_count = (cells + kShardCells - 1) / kShardCells;
  std::vector<McSummary> shards(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    pool.submit([&, s] {
      const std::size_t lo = s * kShardCells;
      const std::size_t hi = std::min(cells, lo + kShardCells);
      for (std::size_t index = lo; index < hi; ++index) {
        shards[s].add(results[index]);
      }
    });
  }
  pool.wait_idle();

  McSummary total;
  for (const McSummary& shard : shards) total.merge(shard);
  total.cells_executed = executed.load();
  total.cells_resumed = resumed;
  return total;
}

void write_snapshot(std::ostream& os, const McConfig& config,
                    const McSummary& summary) {
  JsonWriter json(os);
  json.begin_object();
  json.field("schema", "vds.mc_summary.v1");
  json.key("config").begin_object();
  json.key("kinds").begin_array();
  for (const auto kind : config.kinds) {
    json.value(vds::fault::to_string(kind));
  }
  json.end_array();
  json.key("rounds").begin_array();
  for (const auto round : config.rounds) json.value(round);
  json.end_array();
  json.field("replicas", config.replicas);
  json.field("round_time", config.round_time);
  json.field("jitter_offset", config.jitter_offset);
  json.field("seed", config.seed);
  json.field("cells", static_cast<std::uint64_t>(config.cells()));
  json.field("fingerprint", config.fingerprint());
  json.end_object();
  json.key("summary").begin_object();
  json.key("outcomes");
  write_json(json, summary.outcomes);
  write_json(json, "detection_latency", summary.detection_latency);
  write_json(json, "recovery_time", summary.recovery_time);
  write_json(json, "total_time", summary.total_time);
  write_json(json, "rounds_committed", summary.rounds_committed);
  json.field("cells_executed", summary.cells_executed);
  json.field("cells_resumed", summary.cells_resumed);
  char digest_hex[20];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(summary.digest()));
  json.field("digest", digest_hex);
  json.end_object();
  json.end_object();
}

}  // namespace vds::runtime
