#pragma once

// Low-overhead observability layer: thread-sharded monotonic counters,
// wall-clock timing histograms (reusing stats::Histogram) and RAII
// trace spans, collected in one process-wide registry and serialized
// as a `vds.metrics.v1` JSON snapshot plus a Chrome trace-event file
// (loadable in chrome://tracing and Perfetto).
//
// Determinism contract (DESIGN §8): every counter is registered as
// either *deterministic* — an event count that is a pure function of
// the workload, bitwise identical for any `--threads` value and any
// scheduling (engine rounds, comparisons, recoveries, cells executed)
// — or *scheduling* — a count that depends on how the OS interleaved
// the workers (steals, idle wakeups). The snapshot keeps the two in
// separate sections so "compare two runs" is a byte comparison of the
// deterministic section. Timings are wall-clock and never
// deterministic; they live in their own section.
//
// Cost model: everything is gated on `Registry::set_enabled` /
// `set_tracing` (both default off) — a disabled counter add is one
// relaxed atomic load and a branch, a disabled timer or span is a
// no-op without even a clock read. Compiling with -DVDS_METRICS=OFF
// replaces the whole layer with empty inline stubs (near-zero cost,
// proven by bench_metrics_overhead); the CLI flags stay accepted and
// emit an empty snapshot so tooling does not break.
//
// Usage pattern at an instrumentation site (the function-local static
// makes the name lookup a one-time cost):
//
//   static auto& c = metrics::registry().counter(
//       "engine.comparisons", metrics::Determinism::kDeterministic);
//   c.add();

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>

#ifndef VDS_METRICS_ENABLED
#define VDS_METRICS_ENABLED 1
#endif

namespace vds::runtime::metrics {

/// How a counter behaves across scheduling decisions (see above).
enum class Determinism {
  kDeterministic,  ///< pure function of the workload
  kScheduling,     ///< depends on thread interleaving
};

/// Sentinel for "span carries no argument".
inline constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

#if VDS_METRICS_ENABLED

class Registry;

/// Monotonic counter, sharded across cache-line-padded slots so
/// concurrent adds from different workers do not contend. `total()`
/// sums the shards; integer addition commutes, so the total is exact
/// and thread-count independent for deterministic counters.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept;

 private:
  friend class Registry;
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void reset() noexcept;

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Wall-clock timing distribution: sharded (mutex + stats::Histogram
/// + stats::Accumulator) pairs, merged at snapshot time. Recording is
/// a no-op while the registry is disabled.
class Timing {
 public:
  void record_ms(double ms) noexcept;

 private:
  friend class Registry;
  struct Impl;
  explicit Timing(Impl* impl) noexcept : impl_(impl) {}
  Timing(const Timing&) = delete;
  Timing& operator=(const Timing&) = delete;

  Impl* impl_;
};

/// RAII Chrome-trace span ("X" complete event). Inactive (no clock
/// read) unless tracing is enabled. `name` and `cat` must be string
/// literals (the span stores the pointers, not copies).
class Span {
 public:
  explicit Span(const char* name, const char* cat = "vds",
                std::uint64_t arg = kNoArg) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t arg_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Times a scope into a Timing when the registry is enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timing& timing) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timing* timing_ = nullptr;  // nullptr while disabled
  std::uint64_t start_ns_ = 0;
};

/// The process-wide registry. Instruments register counters/timings by
/// name (get-or-create; the returned references stay valid for the
/// process lifetime — `reset()` zeroes values, it never invalidates).
class Registry {
 public:
  /// Get-or-create. A name must keep one Determinism for the whole
  /// process; re-registering with a different one keeps the first.
  Counter& counter(std::string_view name, Determinism determinism);

  /// Get-or-create a timing histogram over [lo_ms, hi_ms) with `bins`
  /// fixed-width bins (out-of-range samples land in the histogram's
  /// underflow/overflow bins; the accumulator still sees them).
  Timing& timing(std::string_view name, double lo_ms, double hi_ms,
                 std::size_t bins);

  /// Master switch for counters and timings (default off).
  void set_enabled(bool on) noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Switch for trace spans (default off). Enabling (re)starts the
  /// trace clock at zero and clears previously collected events.
  void set_tracing(bool on);
  [[nodiscard]] bool tracing() const noexcept {
    return tracing_.load(std::memory_order_relaxed);
  }

  /// Zeroes every counter, clears every timing and drops collected
  /// trace events. References handed out earlier remain valid.
  void reset();

  /// Serializes the `vds.metrics.v1` snapshot: deterministic counters,
  /// scheduling counters and merged timing distributions.
  void write_snapshot(std::ostream& os) const;

  /// Writes the counters of one determinism class as sorted
  /// `name value` lines — the byte-comparable form the determinism
  /// tests (and debugging) use.
  void write_counters(std::ostream& os, Determinism which) const;

  /// Serializes collected spans as a Chrome trace-event JSON array
  /// (chrome://tracing / Perfetto "JSON" format).
  void write_trace(std::ostream& os) const;

  struct Impl;  // public so the per-thread trace buffers can reach it

 private:
  friend Registry& registry();
  friend class Span;
  Registry();
  ~Registry() = delete;  // leaked singleton: no shutdown-order hazards

  Impl* impl_;

  std::atomic<bool> enabled_{false};
  std::atomic<bool> tracing_{false};
};

/// The process-wide registry (leaked singleton, safe to use from any
/// thread and during static destruction).
[[nodiscard]] Registry& registry();

#else  // !VDS_METRICS_ENABLED -------------------------------------------

// Compiled-out stubs: same API, empty inline bodies. Call sites need
// no #ifdefs and the optimizer erases them entirely.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t total() const noexcept { return 0; }
};

class Timing {
 public:
  void record_ms(double) noexcept {}
};

class Span {
 public:
  explicit Span(const char*, const char* = "vds",
                std::uint64_t = kNoArg) noexcept {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Timing&) noexcept {}
};

class Registry {
 public:
  Counter& counter(std::string_view, Determinism) noexcept {
    return counter_;
  }
  Timing& timing(std::string_view, double, double, std::size_t) noexcept {
    return timing_;
  }
  void set_enabled(bool) noexcept {}
  [[nodiscard]] bool enabled() const noexcept { return false; }
  void set_tracing(bool) noexcept {}
  [[nodiscard]] bool tracing() const noexcept { return false; }
  void reset() noexcept {}
  void write_snapshot(std::ostream& os) const;
  void write_counters(std::ostream&, Determinism) const {}
  void write_trace(std::ostream& os) const;

 private:
  Counter counter_;
  Timing timing_;
};

[[nodiscard]] Registry& registry();

#endif  // VDS_METRICS_ENABLED

}  // namespace vds::runtime::metrics
