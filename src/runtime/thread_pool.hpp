#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vds::runtime {

/// Work-stealing thread pool for campaign fan-out.
///
/// Each worker owns a deque: it pops its own work LIFO (cache-warm)
/// and steals FIFO from victims when empty, so large task batches
/// balance themselves without a central queue bottleneck. Tasks may
/// submit further tasks. `wait_idle()` blocks until every submitted
/// task has *finished* (not merely been claimed), which makes the
/// pool reusable across campaign phases.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `threads == 0` uses the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from worker threads.
  void submit(Task task);

  /// Blocks until all submitted tasks have completed.
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> queue;
  };

  void worker_loop(unsigned id);
  bool try_pop(unsigned id, Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Tasks sitting unclaimed in some queue (wakes workers).
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::size_t queued_ = 0;

  // Tasks submitted but not yet finished (wakes wait_idle()).
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;

  std::size_t next_queue_ = 0;  // round-robin placement, under work_mutex_
  bool stop_ = false;           // under work_mutex_
};

}  // namespace vds::runtime
