#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vds::runtime {

class Chaos;

/// Work-stealing thread pool for campaign and sweep fan-out.
///
/// Each worker owns a deque: it pops its own work LIFO (cache-warm)
/// and steals FIFO from victims when empty, so large task batches
/// balance themselves without a central queue bottleneck. Tasks may
/// submit further tasks. `wait_idle()` blocks until every submitted
/// task has *finished* (not merely been claimed), which makes the
/// pool reusable across campaign phases.
///
/// Hot-path contention: `submit()` takes only the target worker's
/// deque mutex — placement is an atomic round-robin counter and the
/// unclaimed-task count is an atomic incremented with the push and
/// decremented *at pop time*, so a sleeping worker's wake predicate
/// ("some deque holds an unclaimed task") is exact and steal-race
/// losers go back to sleep instead of spinning.
///
/// Exceptions: a task that throws does not kill the worker. Every
/// failure is counted and the first exception is kept; the next
/// `wait_idle()` call rethrows the first exception when it was the
/// only one, or a std::runtime_error aggregating the failure count
/// with the first message when several tasks failed — no failure is
/// silently dropped. The destructor drains and swallows any captured
/// exceptions.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `threads == 0` uses the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from worker threads and from
  /// multiple external threads concurrently.
  void submit(Task task);

  /// Blocks until all submitted tasks have completed. If tasks threw
  /// since the last call, reports *all* of them (the remaining tasks
  /// still ran to completion): one failure rethrows the original
  /// exception; several throw a std::runtime_error carrying the
  /// failure count and the first failure's message.
  void wait_idle();

  /// Arms the `pool.delay` chaos site: each task execution consults
  /// it (keyed by a claim sequence number) and sleeps briefly when it
  /// fires, shaking out scheduling races under test. `chaos` must
  /// outlive the pool; nullptr disarms.
  void arm_chaos(const Chaos* chaos) noexcept {
    chaos_.store(chaos, std::memory_order_release);
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> queue;
  };

  void worker_loop(unsigned id);
  bool try_pop(unsigned id, Task& task);
  void drain() noexcept;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Tasks sitting unclaimed in some deque. Updated under the owning
  // deque's mutex (push: +1, pop: -1) so it never underflows; read
  // lock-free by the sleep predicate.
  std::atomic<std::size_t> unclaimed_{0};
  // Tasks submitted but not yet finished (wakes wait_idle()).
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};  // round-robin placement
  std::atomic<bool> stop_{false};

  // Sleep/wake rendezvous. Workers register in sleepers_ under
  // sleep_mutex_ before waiting; submit() only touches the mutex when
  // sleepers_ > 0, so an all-busy pool never serializes on it.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<unsigned> sleepers_{0};

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;   // guarded by error_mutex_
  std::size_t error_count_ = 0;      // guarded by error_mutex_

  std::atomic<const Chaos*> chaos_{nullptr};
  std::atomic<std::uint64_t> chaos_seq_{0};
};

}  // namespace vds::runtime
