#include "runtime/chaos.hpp"

#include <cstdlib>
#include <stdexcept>

namespace vds::runtime {

namespace {

constexpr std::string_view kKnownSites[] = {
    kChaosCellHang, kChaosCellFail, kChaosJournalCorrupt,
    kChaosJournalTorn, kChaosPoolDelay};

bool known_site(std::string_view name) noexcept {
  for (const std::string_view site : kKnownSites) {
    if (site == name) return true;
  }
  return false;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_text(std::string_view text, std::uint64_t h) noexcept {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV-1a step
  }
  return h;
}

/// Uniform double in [0, 1) from the decision hash.
double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_probability(const std::string& entry, const std::string& text) {
  std::size_t used = 0;
  double p = -1.0;
  try {
    p = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || !(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("chaos entry '" + entry +
                             "': probability must be a number in [0,1]");
  }
  return p;
}

std::uint64_t parse_limit(const std::string& entry, const std::string& text) {
  std::size_t used = 0;
  unsigned long long limit = 0;
  try {
    limit = std::stoull(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty() || limit == 0) {
    throw std::invalid_argument("chaos entry '" + entry +
                             "': limit must be a positive integer");
  }
  return limit;
}

}  // namespace

Chaos Chaos::parse(std::string_view spec, std::uint64_t seed) {
  Chaos chaos;
  chaos.seed_ = seed;
  chaos.spec_ = std::string(spec);

  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string entry(spec.substr(start, comma - start));
    start = comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("chaos entry '" + entry +
                               "': expected site=probability[:limit]");
    }
    Site site;
    site.name = entry.substr(0, eq);
    if (!known_site(site.name)) {
      std::string names;
      for (const std::string_view known : kKnownSites) {
        if (!names.empty()) names += ", ";
        names += known;
      }
      throw std::invalid_argument("chaos entry '" + entry +
                               "': unknown site '" + site.name +
                               "' (known: " + names + ")");
    }
    std::string value = entry.substr(eq + 1);
    const std::size_t colon = value.find(':');
    if (colon != std::string::npos) {
      site.limit = parse_limit(entry, value.substr(colon + 1));
      value.resize(colon);
    }
    site.probability = parse_probability(entry, value);
    chaos.sites_.push_back(std::move(site));
  }
  return chaos;
}

bool Chaos::fires(std::string_view site, std::uint64_t key,
                  std::uint64_t attempt) const noexcept {
  for (const Site& armed : sites_) {
    if (armed.name != site) continue;
    if (attempt >= armed.limit) return false;
    if (armed.probability <= 0.0) return false;
    if (armed.probability >= 1.0) return true;
    std::uint64_t h = hash_text(site, 0xcbf29ce484222325ull);
    h = splitmix64(h ^ seed_);
    h = splitmix64(h ^ key);
    h = splitmix64(h ^ attempt);
    return to_unit(h) < armed.probability;
  }
  return false;
}

std::vector<std::string_view> Chaos::known_sites() {
  return {std::begin(kKnownSites), std::end(kKnownSites)};
}

}  // namespace vds::runtime
