#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/json_writer.hpp"

namespace vds::core {
struct RunReport;
struct CampaignSummary;
}  // namespace vds::core

namespace vds::runtime {

/// Serializes a full engine run report (schema `vds.run_report.v1`
/// object body). Shared between the CLIs.
void write_json(JsonWriter& json, const core::RunReport& report);

/// Serializes outcome counts of a campaign summary.
void write_json(JsonWriter& json, const core::CampaignSummary& summary);

/// What happened to a cell-range lease in a fabric assignment log.
/// The numeric values are the on-disk encoding — append only.
enum class LeaseEvent : std::uint8_t {
  kGranted = 0,    ///< lease handed to a worker (logged before the send)
  kCompleted = 1,  ///< result committed (digest + cell count recorded)
  kExpired = 2,    ///< worker died or went silent; lease reopened
};

/// Canonical event names ("granted", "completed", "expired") — the v2
/// text spelling and the inspect/audit vocabulary.
[[nodiscard]] std::string_view to_string(LeaseEvent event) noexcept;

/// One journaled Monte Carlo cell: everything the aggregation needs,
/// so a resumed campaign reproduces the merged summary bit for bit.
///
/// With `stop == true` the record is a per-stratum *stop record*
/// instead of a cell: `index` is the stratum index, `stop_after` the
/// replica count the stratum kept when its confidence target was met,
/// and `achieved_ci` the relative half-width at that point. Stop
/// records pin adaptive-sampling stopping points across `--resume`
/// and `merge_journals`, so a resumed or merged campaign reproduces
/// the original run's digest instead of re-deciding with different
/// information.
///
/// With `lease == true` the record is a fabric assignment-log event:
/// `index` is the lease id, `lease_lo`/`lease_hi` its half-open cell
/// range, `lease_attempt` the grant generation, and — for completed
/// events — `lease_digest`/`lease_cells` the committed result. The
/// coordinator replays these on `vds_fabric --resume` to skip
/// committed leases and re-issue open ones.
struct JournalRecord {
  std::uint64_t index = 0;           ///< cell index in the canonical grid order
  int outcome = 0;                   ///< InjectionOutcome as integer
  double detection_latency = -1.0;   ///< -1 when never detected
  double recovery_time = 0.0;
  double total_time = 0.0;
  std::uint64_t rounds_committed = 0;
  bool stop = false;                 ///< stratum stop record, not a cell
  std::uint64_t stop_after = 0;      ///< replicas kept (stop records only)
  double achieved_ci = 0.0;          ///< relative CI there (stop records only)
  bool lease = false;                ///< fabric assignment-log event
  LeaseEvent lease_event = LeaseEvent::kGranted;
  std::uint64_t lease_attempt = 0;   ///< grant generation, 1-based
  std::uint64_t lease_lo = 0;        ///< half-open cell range [lo, hi)
  std::uint64_t lease_hi = 0;
  std::uint64_t lease_digest = 0;    ///< committed digest (completed only)
  std::uint64_t lease_cells = 0;     ///< cells executed (completed only)

  [[nodiscard]] bool operator==(const JournalRecord&) const = default;
};

/// On-disk journal flavor for *appends*. Reads are format-agnostic:
/// `Journal::load` recognizes v1/v2 text and v3 binary from the
/// header, and appending to an existing file always adopts the
/// file's own format regardless of what the caller requested (so a
/// v3-default `--resume` of a v2 journal keeps the file parseable).
enum class JournalFormat {
  kV2Text = 2,    ///< hex-float text lines with ` #crc32c` suffix
  kV3Binary = 3,  ///< length-prefixed binary records (see SCHEMAS.md)
};

/// What `Journal::load` recovered from disk. `corrupt` counts every
/// record that had to be discarded — checksum mismatch (bit flip),
/// unparseable body, missing checksum in a v2 file, or a torn tail —
/// so a resumed campaign can report how much work the substrate lost.
/// A contiguous run of damaged bytes in a v3 file counts once (one
/// corruption episode), however many bytes it spans.
struct JournalLoad {
  std::vector<JournalRecord> records;  ///< cell records, file order
  std::vector<JournalRecord> stops;    ///< stratum stop records, file order
  std::vector<JournalRecord> leases;   ///< lease events, file order
  std::uint64_t corrupt = 0;
  int version = 2;  ///< header version of the file (2 when absent)
  std::uint64_t fingerprint = 0;  ///< from the header (0 when absent)
  bool has_header = false;        ///< false for a missing/empty file
};

class Chaos;

/// Append-only progress journal for resumable campaigns.
///
/// Two write formats behind one API. v2 is plain text, one record per
/// line, doubles in hex-float, every line ending in ` #xxxxxxxx` — a
/// CRC32C of the record body. v3 (the default) is binary: a magic +
/// version + fingerprint header, then length-prefixed records each
/// carrying a CRC32C of their payload (roughly 3× smaller; exact
/// layout in docs/SCHEMAS.md). In both formats a bit flip or a torn
/// write anywhere in the file is detected on load and only the
/// damaged records are lost (their cells re-execute); the scan then
/// resynchronizes and keeps every later intact record. v1 files (no
/// checksums) remain loadable. The header carries a fingerprint of
/// the campaign configuration; `load()` refuses a journal written for
/// a different configuration. A torn final record (the process was
/// killed mid-write) is discarded and counted, so a crashed campaign
/// always resumes from its last *complete* record.
class Journal {
 public:
  /// Parses `path`. Returns the complete records found plus the count
  /// of corrupt/torn ones; an absent file yields an empty result.
  /// Throws std::runtime_error (with path, expected vs. found
  /// fingerprint, and a resume hint) when the file exists but was
  /// written for a different configuration, and on I/O errors other
  /// than the file not existing.
  static JournalLoad load(const std::string& path,
                          std::uint64_t fingerprint);

  /// `load` without the fingerprint gate: parses any recognized
  /// journal and reports what is in it (records, corruption count,
  /// version, stored fingerprint). The `vds_journal` tool is built on
  /// this. Still throws on open errors and unrecognized headers.
  static JournalLoad inspect(const std::string& path);

  /// Opens `path` for appending, writing a `format` header first if
  /// the file is new/empty; a non-empty file keeps its own format
  /// (sniffed from the header) so mixed-version appends never happen.
  /// Throws std::runtime_error on I/O error (including seek/tell
  /// failures on a non-seekable path and a header write that fails,
  /// e.g. on a full disk).
  Journal(const std::string& path, std::uint64_t fingerprint,
          JournalFormat format = JournalFormat::kV3Binary);

  /// Takes ownership of an already-open stream (closed on
  /// destruction). No header is written — the caller prepared the
  /// stream. `name` labels error messages. Exists for tests that need
  /// a failing stream (e.g. /dev/full).
  Journal(std::FILE* stream, std::string name,
          JournalFormat format = JournalFormat::kV2Text);

  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one completed cell and flushes. Thread-safe. Throws
  /// std::runtime_error when the write or flush fails (disk full, …)
  /// — silently dropping a record would let the campaign report
  /// success while the resume data is incomplete. After a failure the
  /// journal is poisoned: `failed()` turns true and every further
  /// append throws without writing.
  void append(const JournalRecord& record);

  /// True once any append (or the one before it) failed.
  [[nodiscard]] bool failed() const noexcept { return failed_.load(); }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// The format appends go out in (the file's own format once it has
  /// a header, else the requested one).
  [[nodiscard]] JournalFormat format() const noexcept { return format_; }

  /// Arms write-side chaos sites (`journal.corrupt` flips a bit in
  /// the record body, `journal.torn` truncates the record mid-write;
  /// both report success to the caller — the *reader* must catch
  /// them). `chaos` must outlive the journal; nullptr disarms.
  void arm_chaos(const Chaos* chaos) noexcept { chaos_ = chaos; }

 private:
  std::string path_;
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::atomic<bool> failed_{false};
  const Chaos* chaos_ = nullptr;
  JournalFormat format_ = JournalFormat::kV3Binary;
};

/// What `merge_journals` did. `duplicates` counts records coalesced
/// because two shards journaled the identical result for the same
/// cell (overlapping shard ranges — harmless by determinism).
struct JournalMergeStats {
  std::uint64_t inputs = 0;
  std::uint64_t records_in = 0;   ///< intact records across all inputs
  std::uint64_t records_out = 0;  ///< unique cells written
  std::uint64_t duplicates = 0;   ///< identical-content duplicates dropped
  std::uint64_t corrupt = 0;      ///< damaged records skipped, all inputs
  std::uint64_t fingerprint = 0;  ///< shared campaign fingerprint
};

/// Merges per-shard journals into one resumable journal at
/// `out_path` (overwritten), records sorted by cell index, written in
/// `format`. Every input must be a readable journal with a header;
/// all fingerprints must agree (the merged file carries that
/// fingerprint). Duplicate cells with bitwise-identical payloads are
/// coalesced; a duplicate cell whose payload *differs* between
/// shards means the shards disagree about a result and is a hard
/// error, as is `out_path` naming one of the inputs. Lease events
/// (an assignment log among the inputs) are copied through in input
/// order — they are an event history, so duplicates are meaningful
/// and never coalesced. Throws std::runtime_error on all of the
/// above; corrupt records in the inputs are skipped and counted,
/// same as resume.
JournalMergeStats merge_journals(const std::vector<std::string>& inputs,
                                 const std::string& out_path,
                                 JournalFormat format = JournalFormat::kV3Binary);

/// CRC32C (Castagnoli), the per-record journal checksum.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t bytes,
                                   std::uint32_t crc = 0) noexcept;

[[nodiscard]] std::uint32_t crc32c(std::string_view text,
                                   std::uint32_t crc = 0) noexcept;

// Without this overload, crc32c("literal", prior_crc) silently picks
// the (const void*, size_t) overload -- the pointer conversion beats
// string_view's user-defined one -- and reads `prior_crc` bytes.
template <std::size_t N>
[[nodiscard]] std::uint32_t crc32c(const char (&text)[N],
                                   std::uint32_t crc = 0) noexcept {
  return crc32c(std::string_view(static_cast<const char*>(text)), crc);
}

/// FNV-1a, the journal/config fingerprint hash.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes,
                                  std::uint64_t seed = 0xcbf29ce484222325ull) noexcept;

[[nodiscard]] std::uint64_t fnv1a(std::string_view text,
                                  std::uint64_t seed = 0xcbf29ce484222325ull) noexcept;

}  // namespace vds::runtime
