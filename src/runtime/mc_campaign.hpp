#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/options.hpp"
#include "core/report.hpp"
#include "fault/fault_model.hpp"
#include "fault/injector.hpp"
#include "runtime/journal.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace vds::runtime {

class Chaos;
class Journal;
class JsonWriter;
class ThreadPool;

/// Monte Carlo injection-campaign configuration. The grid is the same
/// (fault kind × detection round) lattice as core::InjectionCampaign;
/// `replicas` runs every cell that many times with an independently
/// randomized fault position, turning the grid into a Monte Carlo
/// estimate of the paper's expectations over fault position (the
/// quantities behind Ḡ_det / Ḡ_corr and the Figure 4/5 surfaces).
struct McConfig {
  std::vector<vds::fault::FaultKind> kinds = {
      vds::fault::FaultKind::kTransient, vds::fault::FaultKind::kCrash,
      vds::fault::FaultKind::kPermanent,
      vds::fault::FaultKind::kProcessorCrash};
  /// Detection-interval rounds at which faults strike, 1-based.
  std::vector<std::uint64_t> rounds = {1, 5, 10, 15, 20};
  std::uint64_t replicas = 1;
  /// Round-pair duration of the engine under test.
  double round_time = 1.4;
  /// When true (the Monte Carlo default) each replica draws its own
  /// fractional offset inside the round window; when false all cells
  /// use `fixed_offset` (the sequential campaign's behavior).
  bool jitter_offset = true;
  double fixed_offset = 0.3;
  std::uint64_t seed = 1;

  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 1;
  /// Progress journal path; empty disables journaling.
  std::string journal_path;
  /// Load the journal and skip already-completed cells.
  bool resume = false;
  /// Extra fingerprint salt for engine parameters the runner closes
  /// over (scheme, alpha, s, ...), so a journal cannot be resumed
  /// against a differently configured engine.
  std::uint64_t runner_fingerprint = 0;
  /// On-disk format when a *new* journal is created; appending to an
  /// existing file always keeps the file's own format. Never part of
  /// the fingerprint — the encoding does not shape any cell's result,
  /// so a v2 journal resumes under a v3 default and vice versa.
  JournalFormat journal_format = JournalFormat::kV3Binary;
  /// Half-open dispatch range [cell_lo, cell_hi): cells outside it
  /// are neither executed nor counted (the sharding hook — run
  /// disjoint ranges in separate processes, `merge_journals` their
  /// journals, resume the merged journal for the full-campaign
  /// digest). Not fingerprinted: shards of one campaign must share
  /// one journal fingerprint. The default covers every cell.
  std::uint64_t cell_lo = 0;
  std::uint64_t cell_hi = ~0ull;

  // --- adaptive sampling (variance-targeted early stop) -----------

  /// Relative confidence-interval target; 0 (the default) keeps the
  /// fixed-replica lattice. When > 0 each (kind, round) stratum
  /// dispatches its replicas in `batch`-sized waves and stops as soon
  /// as the 95% Student-t half-width of every tracked statistic
  /// (total_time always; detection_latency once it has two samples)
  /// drops to `target_ci` times the statistic's mean — bounded below
  /// by `min_replicas` and above by `replicas`, which becomes the
  /// per-stratum *maximum*. Stopping decisions are pure functions of
  /// canonically-ordered results, so the summary digest is bitwise
  /// identical for every thread count and across kill/--resume.
  /// These three knobs shape which cells run and are folded into the
  /// fingerprint — but only when sampling is armed, so fixed-replica
  /// fingerprints (and their journals) are unchanged.
  double target_ci = 0.0;
  /// Never stop a stratum before this many replicas.
  std::uint64_t min_replicas = 8;
  /// Replicas dispatched per wave; decisions land at multiples.
  std::uint64_t batch = 32;

  /// True when the adaptive trial stream replaces the fixed lattice.
  [[nodiscard]] bool sampling() const noexcept { return target_ci > 0.0; }

  // --- failure-path knobs (never part of the fingerprint: they do
  // --- not shape any cell's result, only how failures are handled).

  /// Watchdog timeout per cell attempt, seconds; 0 disables the
  /// watchdog (cells run inline on the pool worker).
  double cell_timeout = 0.0;
  /// Retry attempts after a failed/hung attempt before the cell is
  /// quarantined. The retry re-derives the cell's RNG substream from
  /// scratch, so a retried cell's result is bitwise identical to a
  /// first-try success.
  unsigned max_retries = 2;
  /// Base backoff before the first retry, milliseconds; doubles per
  /// retry, capped at 100x the base.
  double retry_backoff_ms = 1.0;
  /// Chaos fault-point spec (see runtime::Chaos); "" disarms.
  std::string chaos;

  /// Absolute deadline; the epoch default means "none". Cells not yet
  /// dispatched when the deadline passes are skipped and the summary
  /// comes back partial with `deadline_exceeded = true`; in-flight
  /// cells are bounded by the watchdog, whose effective timeout is
  /// clamped to the time remaining.
  std::chrono::steady_clock::time_point deadline{};
  /// When false the campaign ignores the process-wide drain flag
  /// (vds_serve uses this: SIGTERM must finish in-flight requests,
  /// not truncate them). Programmatic deadlines still apply.
  bool honor_global_drain = true;

  [[nodiscard]] std::size_t cells() const noexcept {
    return kinds.size() * rounds.size() *
           static_cast<std::size_t>(replicas);
  }

  /// Fingerprint over everything that shapes the per-cell work.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// One unit of Monte Carlo work, identified by its canonical index
///   index = (kind_index * |rounds| + round_index) * replicas + replica.
struct McCell {
  std::uint64_t index = 0;
  vds::fault::FaultKind kind = vds::fault::FaultKind::kTransient;
  std::uint64_t round = 1;
  std::uint64_t replica = 0;
};

/// Per-cell result; exactly what aggregation (and the journal)
/// needs, nothing more.
struct McCellResult {
  core::InjectionOutcome outcome = core::InjectionOutcome::kNoEffect;
  double detection_latency = -1.0;  ///< -1 when never detected
  double recovery_time = 0.0;
  double total_time = 0.0;
  std::uint64_t rounds_committed = 0;

  [[nodiscard]] bool operator==(const McCellResult&) const = default;
};

/// Per-(kind, round) stratum outcome of an adaptive-sampling
/// campaign (absent in fixed-replica mode). `replicas_run` counts the
/// cells that contributed to the summary; `achieved_ci` is the
/// relative Student-t half-width at the last decision point (0 when
/// the stratum was never evaluated, +inf when no interval existed —
/// under two samples, or a zero mean with nonzero spread).
struct McStratumStats {
  vds::fault::FaultKind kind = vds::fault::FaultKind::kTransient;
  std::uint64_t round = 0;
  std::uint64_t replicas_run = 0;
  double achieved_ci = 0.0;
  bool early_stopped = false;
};

/// Merged campaign aggregate. Shards are combined with `merge()`
/// (exact counts + Chan-et-al accumulator merge); the engine always
/// folds shards in canonical cell order, so the final summary is
/// bitwise identical for every thread count.
struct McSummary {
  core::CampaignSummary outcomes;
  vds::sim::Accumulator detection_latency;  ///< over detected cells
  vds::sim::Accumulator recovery_time;      ///< over recovering cells
  vds::sim::Accumulator total_time;         ///< over all cells
  vds::sim::Accumulator rounds_committed;   ///< over all cells
  std::uint64_t cells_executed = 0;  ///< ran this invocation (not journaled)
  std::uint64_t cells_resumed = 0;   ///< satisfied from the journal

  // Failure-path bookkeeping (all excluded from the digest: a campaign
  // that limped through retries, corruption, or a drain must still
  // digest-match its clean twin once every cell is accounted for).
  std::uint64_t cells_retried = 0;      ///< succeeded after >=1 retry
  std::uint64_t cells_quarantined = 0;  ///< gave up after max_retries
  std::uint64_t records_corrupt = 0;    ///< journal lines discarded on load
  std::uint64_t cells_skipped = 0;      ///< left unrun by a graceful drain
  bool drained = false;                 ///< a drain request stopped dispatch
  bool deadline_exceeded = false;       ///< a deadline stopped dispatch
  std::vector<std::uint64_t> quarantined;  ///< indices, canonical order
  /// Per-stratum sampling outcomes, stratum order (kind-major);
  /// empty in fixed-replica mode. merge() concatenates.
  std::vector<McStratumStats> strata;

  void add(const McCellResult& result);
  void merge(const McSummary& other);

  /// Order-sensitive hash of every moment and count — two summaries
  /// with equal digests are bitwise identical. Used by the
  /// determinism tests and the scaling bench. Deliberately excludes
  /// the failure-path bookkeeping fields above.
  [[nodiscard]] std::uint64_t digest() const noexcept;
};

/// Executes one engine run for a cell. `timeline` holds the drawn
/// fault; `rng` is the cell's private substream, already advanced
/// past the fault draw — split engine/predictor streams from it.
using McRunner = std::function<core::RunReport(
    const McCell& cell, vds::fault::FaultTimeline& timeline,
    vds::sim::Rng& rng)>;

/// A runner executing core::SmtVds with the given options; the
/// engine seed derives from each cell's substream.
[[nodiscard]] McRunner make_smt_runner(core::VdsOptions options);

// --- graceful drain ---------------------------------------------------
// A drain request (SIGINT/SIGTERM, or programmatic) stops dispatching
// new cells: in-flight cells finish and are journaled, undispatched
// cells are skipped and the campaign returns a partial summary with
// `drained = true`. The journal stays resumable — a later --resume
// completes the remaining cells to the exact digest of an
// uninterrupted run.

/// Installs SIGINT/SIGTERM handlers that call request_drain(). The
/// handlers only set a lock-free flag (async-signal-safe).
void install_drain_signal_handlers();

void request_drain() noexcept;
void clear_drain_request() noexcept;
[[nodiscard]] bool drain_requested() noexcept;

/// Runs the campaign across a work-stealing pool. Cells fan out over
/// `config.threads` workers; each cell draws its fault from
/// `Rng(config.seed).substream(cell index)` so the work decomposition
/// has no effect on any random draw. Aggregation shards the cell
/// results into fixed blocks, reduces the blocks in parallel and
/// merges them in canonical order — the returned summary is bitwise
/// identical for every thread count, and (with a journal) across
/// kill/resume boundaries.
///
/// Failure handling: with `cell_timeout > 0` every attempt runs under
/// a watchdog; a hung or throwing attempt is retried up to
/// `max_retries` times with capped exponential backoff, then the cell
/// is quarantined (counted and listed in the summary, never fatal).
/// Journal records carry CRC32C checksums; on resume, corrupt or torn
/// records are skipped, counted in `records_corrupt`, and their cells
/// re-executed, so the merged digest matches the uninterrupted run.
///
/// Throws std::runtime_error if a journal is present but was written
/// by a different configuration, or if a journal append fails
/// mid-campaign (the worker's exception is captured by the pool and
/// rethrown here — a truncated journal must not masquerade as a
/// resumable one); std::invalid_argument if `config.chaos` does not
/// parse.
[[nodiscard]] McSummary run_mc_campaign(const McConfig& config,
                                        const McRunner& runner);

/// One campaign's worth of cell tasks, decoupled from pool ownership
/// so several campaigns can share a single warm pool (vds_serve
/// batches compatible requests this way). Usage:
///
///   McExecution exec(config, runner);   // journal load/resume here
///   exec.enqueue(pool);                 // submits every pending cell
///   pool.wait_idle();                   // caller-owned barrier
///   McSummary s = exec.reduce(pool);    // canonical-order reduction
///
/// Because every cell re-derives its RNG substream from
/// `Rng(config.seed).substream(index)`, interleaving cells from
/// different executions on one pool cannot perturb any result — the
/// summary stays bitwise identical to a private-pool run.
///
/// The constructor throws like run_mc_campaign (journal mismatch,
/// bad chaos spec). enqueue/reduce must be called at most once, in
/// that order, with the same pool; the pool's wait_idle() rethrows
/// any journal-append failure raised by a cell task.
class McExecution {
 public:
  McExecution(McConfig config, McRunner runner);
  ~McExecution();

  McExecution(const McExecution&) = delete;
  McExecution& operator=(const McExecution&) = delete;

  /// Arms the pool's chaos site from this execution's parsed chaos
  /// spec (no-op when disarmed). Callers sharing a pool across
  /// executions — vds_serve — deliberately skip this.
  void arm_chaos(ThreadPool& pool) const noexcept;

  /// Submits every not-yet-satisfied cell onto `pool`. Cells observe
  /// drain/deadline at dispatch time, so a request can still be
  /// abandoned after enqueueing. In sampling mode this submits each
  /// stratum's first wave; later waves chain from the worker that
  /// resolves the last cell of the previous one, so the caller's
  /// `pool.wait_idle()` still covers the whole adaptive stream.
  void enqueue(ThreadPool& pool);

  /// Reduces the per-cell results (sharded, canonical order) into the
  /// final summary. Only valid once the pool has gone idle.
  [[nodiscard]] McSummary reduce(ThreadPool& pool);

  [[nodiscard]] const McConfig& config() const noexcept { return config_; }

  /// Dispatch progress snapshot; safe to poll from another thread
  /// while the pool runs (every counter is an atomic). `target` is
  /// the number of cells this invocation can still resolve — it
  /// shrinks when a stratum stops early.
  struct Progress {
    std::uint64_t resolved = 0;        ///< cells in a final state
    std::uint64_t target = 0;          ///< cells this run will resolve
    std::uint64_t strata_stopped = 0;  ///< strata stopped early so far
    std::uint64_t strata_total = 0;    ///< 0 in fixed-replica mode
  };
  [[nodiscard]] Progress progress() const noexcept;

 private:
  struct State;
  void run_cell(std::uint64_t index);
  void run_cell_sampling(ThreadPool& pool, std::uint64_t index,
                         std::uint64_t stratum);
  void advance_stratum(ThreadPool& pool, std::uint64_t stratum);

  McConfig config_;
  McRunner runner_;
  std::unique_ptr<State> state_;
};

/// Writes the `vds.mc_summary.v1` JSON snapshot (config + summary).
void write_snapshot(std::ostream& os, const McConfig& config,
                    const McSummary& summary);

/// Same document through a caller-configured writer (vds_serve uses a
/// compact writer to keep the response on one line — byte-identical
/// to the pretty form modulo whitespace).
void write_snapshot(JsonWriter& writer, const McConfig& config,
                    const McSummary& summary);

}  // namespace vds::runtime
