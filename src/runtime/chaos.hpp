#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vds::runtime {

// Named chaos injection sites. Every site a harness component consults
// is listed here; Chaos::parse rejects names outside this registry so
// a typo in --chaos fails loudly instead of silently arming nothing.
inline constexpr std::string_view kChaosCellHang = "cell.hang";
inline constexpr std::string_view kChaosCellFail = "cell.fail";
inline constexpr std::string_view kChaosJournalCorrupt = "journal.corrupt";
inline constexpr std::string_view kChaosJournalTorn = "journal.torn";
inline constexpr std::string_view kChaosPoolDelay = "pool.delay";

/// Deterministic fault-point framework for hardening the harness
/// itself (not the simulated VDS protocol). Components query named
/// sites at their failure-prone operations; an armed site answers
/// "fail here" as a pure function of (campaign seed, site, key,
/// attempt), so an injected failure is bitwise reproducible no matter
/// how threads interleave — the same property the campaign already
/// guarantees for its random draws.
///
/// Spec grammar (also accepted from $VDS_CHAOS):
///
///   spec    := entry (',' entry)*
///   entry   := site '=' probability [ ':' limit ]
///
/// `probability` in [0,1] is the chance the site fires for a given
/// (key, attempt); `limit` caps the firing attempts per key (e.g.
/// `cell.fail=1:1` fails every cell's first attempt and lets every
/// retry succeed — the canonical retry-path test).
class Chaos {
 public:
  /// Disarmed: every site answers "no failure" and armed() is false.
  Chaos() = default;

  /// Parses `spec`, seeding all decisions with `seed` (the campaign
  /// seed, so chaos reproduces with the run). Empty spec = disarmed.
  /// Throws std::invalid_argument naming the offending entry on an
  /// unknown site, malformed probability, or out-of-range value.
  static Chaos parse(std::string_view spec, std::uint64_t seed);

  [[nodiscard]] bool armed() const noexcept { return !sites_.empty(); }

  /// True when `site` should fail for work unit `key` on its
  /// `attempt`-th try. Deterministic and thread-safe (pure function,
  /// no state mutation).
  [[nodiscard]] bool fires(std::string_view site, std::uint64_t key,
                           std::uint64_t attempt = 0) const noexcept;

  /// The spec this instance was parsed from ("" when disarmed).
  [[nodiscard]] const std::string& spec() const noexcept { return spec_; }

  /// All site names parse() accepts, for usage text.
  [[nodiscard]] static std::vector<std::string_view> known_sites();

 private:
  struct Site {
    std::string name;
    double probability = 0.0;
    std::uint64_t limit = UINT64_MAX;  ///< max firing attempts per key
  };

  std::string spec_;
  std::vector<Site> sites_;
  std::uint64_t seed_ = 0;
};

}  // namespace vds::runtime
