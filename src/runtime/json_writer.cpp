#include "runtime/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace vds::runtime {

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key on the same line
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) os_ << ',';
    wrote_element_.back() = true;
    if (compact_) return;
    os_ << '\n';
    indent();
  }
}

void JsonWriter::indent() {
  for (std::size_t k = 0; k < wrote_element_.size(); ++k) os_ << "  ";
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_elements = wrote_element_.back();
  wrote_element_.pop_back();
  if (had_elements && !compact_) {
    os_ << '\n';
    indent();
  }
  os_ << '}';
  if (wrote_element_.empty() && !compact_) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_elements = wrote_element_.back();
  wrote_element_.pop_back();
  if (had_elements && !compact_) {
    os_ << '\n';
    indent();
  }
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  write_string(name);
  os_ << ": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  write_string(text);
  return *this;
}

void JsonWriter::write_string(std::string_view text) {
  os_ << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

JsonWriter& JsonWriter::value(double number) {
  separate();
  if (!std::isfinite(number)) {
    // JSON has no inf/nan literals; "%.17g" would emit them and
    // corrupt the document.
    os_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", number);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  os_ << (flag ? "true" : "false");
  return *this;
}

}  // namespace vds::runtime
