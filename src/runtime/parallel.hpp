#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace vds::runtime {

/// Partitions [0, count) into contiguous blocks of `block` indices and
/// runs `fn(lo, hi)` for each block on the pool. The partition is a
/// pure function of (count, block) — never of the pool size — so a
/// caller that reduces per-block results in block order gets the same
/// answer for every thread count (the `mc_campaign` shard discipline).
/// Returns once every block has finished; rethrows the first block
/// exception.
template <typename Fn>
void parallel_blocks(ThreadPool& pool, std::size_t count, std::size_t block,
                     Fn&& fn) {
  if (block == 0) block = 1;
  for (std::size_t lo = 0; lo < count; lo += block) {
    const std::size_t hi = std::min(count, lo + block);
    pool.submit([&fn, lo, hi] { fn(lo, hi); });
  }
  pool.wait_idle();
}

/// Renders `count` independent rows with `row(i) -> std::string` on
/// the pool and concatenates them in canonical index order. The
/// result is byte-identical for any pool size: scheduling decides
/// only *when* a row is formatted, never where its bytes land.
template <typename RowFn>
[[nodiscard]] std::string render_rows(ThreadPool& pool, std::size_t count,
                                      RowFn&& row) {
  std::vector<std::string> rows(count);
  parallel_blocks(pool, count, 1, [&rows, &row](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) rows[i] = row(i);
  });
  std::size_t bytes = 0;
  for (const std::string& r : rows) bytes += r.size();
  std::string out;
  out.reserve(bytes);
  for (std::string& r : rows) out += r;
  return out;
}

}  // namespace vds::runtime
