#include "runtime/thread_pool.hpp"

#include <utility>

namespace vds::runtime {

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned k = 0; k < threads; ++k) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned k = 0; k < threads; ++k) {
    threads_.emplace_back([this, k] { worker_loop(k); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    ++pending_;
  }
  std::size_t victim;
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    victim = next_queue_++ % workers_.size();
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[victim]->mutex);
    workers_[victim]->queue.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::try_pop(unsigned id, Task& task) {
  // Own queue first, newest task (LIFO keeps the working set warm)...
  {
    Worker& own = *workers_[id];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.queue.empty()) {
      task = std::move(own.queue.back());
      own.queue.pop_back();
      return true;
    }
  }
  // ...then steal the oldest task from another worker.
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(id + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.front());
      victim.queue.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned id) {
  for (;;) {
    Task task;
    bool have_task = false;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (queued_ > 0) {
        // Claim optimistically; the queues are checked below. A lost
        // race (another thief emptied them) just re-enters the wait.
        lock.unlock();
        have_task = try_pop(id, task);
        lock.lock();
        if (have_task) --queued_;
      }
      if (!have_task && stop_) return;
    }
    if (!have_task) continue;
    task();
    {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace vds::runtime
