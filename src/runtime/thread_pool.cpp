#include "runtime/thread_pool.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/chaos.hpp"
#include "runtime/metrics.hpp"

namespace vds::runtime {

namespace {

// Submission/execution counts are a property of the workload
// (deterministic); steals and idle waits depend on how the OS
// scheduled the workers (scheduling).
metrics::Counter& tasks_submitted_counter() {
  static auto& c = metrics::registry().counter(
      "pool.tasks_submitted", metrics::Determinism::kDeterministic);
  return c;
}

metrics::Counter& tasks_executed_counter() {
  static auto& c = metrics::registry().counter(
      "pool.tasks_executed", metrics::Determinism::kDeterministic);
  return c;
}

metrics::Counter& steals_counter() {
  static auto& c = metrics::registry().counter(
      "pool.steals", metrics::Determinism::kScheduling);
  return c;
}

metrics::Counter& idle_waits_counter() {
  static auto& c = metrics::registry().counter(
      "pool.idle_waits", metrics::Determinism::kScheduling);
  return c;
}

metrics::Timing& idle_wait_timing() {
  static auto& t =
      metrics::registry().timing("pool.idle_wait_ms", 0.0, 100.0, 64);
  return t;
}

metrics::Timing& task_timing() {
  static auto& t = metrics::registry().timing("pool.task_ms", 0.0, 250.0, 128);
  return t;
}

}  // namespace

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned k = 0; k < threads; ++k) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned k = 0; k < threads; ++k) {
    threads_.emplace_back([this, k] { worker_loop(k); });
  }
}

ThreadPool::~ThreadPool() {
  drain();  // a captured exception nobody waited for is swallowed
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true);
  }
  sleep_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::submit(Task task) {
  tasks_submitted_counter().add();
  pending_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t victim =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[victim]->mutex);
    workers_[victim]->queue.push_back(std::move(task));
    unclaimed_.fetch_add(1);
  }
  // Wake one sleeper, if any. Registering as a sleeper and the final
  // predicate check happen under sleep_mutex_, and both sides use
  // seq_cst accesses to unclaimed_/sleepers_, so either the sleeper
  // sees the new task and skips the wait, or we see the sleeper here
  // and the notify cannot be lost.
  if (sleepers_.load() > 0) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_one();
  }
}

void ThreadPool::drain() noexcept {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return pending_.load() == 0; });
}

void ThreadPool::wait_idle() {
  drain();
  std::exception_ptr error;
  std::size_t failures = 0;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = std::exchange(first_error_, nullptr);
    failures = std::exchange(error_count_, 0);
  }
  if (!error) return;
  if (failures <= 1) std::rethrow_exception(error);
  // Several tasks failed in the batch: surface the count instead of
  // pretending the first failure was the only one.
  std::string first;
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    first = e.what();
  } catch (...) {
    first = "unknown exception";
  }
  throw std::runtime_error(std::to_string(failures) +
                           " pool tasks failed; first failure: " + first);
}

bool ThreadPool::try_pop(unsigned id, Task& task) {
  // Own queue first, newest task (LIFO keeps the working set warm)...
  {
    Worker& own = *workers_[id];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.queue.empty()) {
      task = std::move(own.queue.back());
      own.queue.pop_back();
      unclaimed_.fetch_sub(1);
      return true;
    }
  }
  // ...then steal the oldest task from another worker.
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(id + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.front());
      victim.queue.pop_front();
      unclaimed_.fetch_sub(1);
      steals_counter().add();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned id) {
  for (;;) {
    Task task;
    if (!try_pop(id, task)) {
      idle_waits_counter().add();
      const metrics::ScopedTimer idle_timer(idle_wait_timing());
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      sleepers_.fetch_add(1);
      sleep_cv_.wait(lock, [this] {
        return stop_.load() || unclaimed_.load() > 0;
      });
      sleepers_.fetch_sub(1);
      lock.unlock();
      if (stop_.load() && unclaimed_.load() == 0) return;
      continue;  // re-scan the deques
    }
    if (const Chaos* chaos = chaos_.load(std::memory_order_acquire)) {
      // Deterministically keyed by claim order, but claim order itself
      // is scheduling-dependent: a stress knob, not a results input.
      if (chaos->fires(kChaosPoolDelay,
                       chaos_seq_.fetch_add(1, std::memory_order_relaxed))) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    {
      const metrics::Span span("pool.task", "pool");
      const metrics::ScopedTimer task_timer(task_timing());
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex_);
        ++error_count_;
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    tasks_executed_counter().add();
    task = nullptr;  // destroy captures before reporting completion
    if (pending_.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      idle_cv_.notify_all();
    }
  }
}

}  // namespace vds::runtime
