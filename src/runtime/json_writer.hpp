#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace vds::runtime {

/// Minimal streaming JSON emitter — the one machine-readable schema
/// shared by `vds_mc --json-out`, `vds_cli --json`, the metrics
/// snapshot and the journal's snapshot. Handles nesting, comma
/// placement, string escaping and round-trippable doubles; the caller
/// supplies structure.
///
/// `compact` suppresses all newlines and indentation (keys keep their
/// single space after the colon), so a document fits on one line —
/// the form vds_serve's newline-delimited protocol requires. Every
/// byte other than the dropped whitespace is identical to the pretty
/// form.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool compact = false)
      : os_(os), compact_(compact) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next object member.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(static_cast<T&&>(v));
  }

 private:
  void separate();
  void indent();
  void write_string(std::string_view text);

  std::ostream& os_;
  // One entry per open container: true once the first element has
  // been written (a comma is then needed before the next one).
  std::vector<bool> wrote_element_;
  bool pending_key_ = false;
  bool compact_ = false;
};

}  // namespace vds::runtime
