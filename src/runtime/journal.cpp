#include "runtime/journal.hpp"

#include <array>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "runtime/chaos.hpp"
#include "runtime/metrics.hpp"

namespace vds::runtime {

// --- shared report/summary serialization -----------------------------

void write_json(JsonWriter& json, const core::RunReport& report) {
  json.begin_object();
  json.field("completed", report.completed);
  json.field("failed_safe", report.failed_safe);
  json.field("silent_corruption", report.silent_corruption);
  json.field("total_time", report.total_time);
  json.field("rounds_committed", report.rounds_committed);
  json.field("faults_seen", report.faults_seen);
  json.field("transient_faults", report.transient_faults);
  json.field("crash_faults", report.crash_faults);
  json.field("permanent_faults", report.permanent_faults);
  json.field("processor_crashes", report.processor_crashes);
  json.field("detections", report.detections);
  json.field("recoveries_ok", report.recoveries_ok);
  json.field("rollbacks", report.rollbacks);
  json.field("comparisons", report.comparisons);
  json.field("checkpoints", report.checkpoints);
  json.field("roll_forwards_kept", report.roll_forwards_kept);
  json.field("roll_forwards_discarded", report.roll_forwards_discarded);
  json.field("roll_forward_rounds_gained", report.roll_forward_rounds_gained);
  json.field("predictions", report.predictions);
  json.field("prediction_hits", report.prediction_hits);
  json.field("predictor_accuracy", report.predictor_accuracy());
  json.field("throughput", report.throughput());
  json.key("detection_latency").begin_object();
  json.field("count", static_cast<std::uint64_t>(report.detection_latency.count()));
  json.field("mean", report.detection_latency.mean());
  json.field("stddev", report.detection_latency.stddev());
  json.end_object();
  json.key("recovery_time").begin_object();
  json.field("count", static_cast<std::uint64_t>(report.recovery_time.count()));
  json.field("mean", report.recovery_time.mean());
  json.field("stddev", report.recovery_time.stddev());
  json.end_object();
  json.end_object();
}

void write_json(JsonWriter& json, const core::CampaignSummary& summary) {
  json.begin_object();
  json.field("injections", summary.injections);
  json.field("safety", summary.safety());
  json.key("by_outcome").begin_object();
  for (std::size_t k = 0; k < summary.by_outcome.size(); ++k) {
    json.field(core::to_string(static_cast<core::InjectionOutcome>(k)),
               summary.by_outcome[k]);
  }
  json.end_object();
  json.end_object();
}

// --- fingerprint hash ------------------------------------------------

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t k = 0; k < bytes; ++k) {
    h ^= p[k];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view text, std::uint64_t seed) noexcept {
  return fnv1a(text.data(), text.size(), seed);
}

// --- CRC32C ----------------------------------------------------------

namespace {

/// Reflected Castagnoli polynomial, table built on first use.
const std::uint32_t* crc32c_table() noexcept {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t crc) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t* table = crc32c_table();
  crc = ~crc;
  for (std::size_t k = 0; k < bytes; ++k) {
    crc = table[(crc ^ p[k]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(std::string_view text, std::uint32_t crc) noexcept {
  return crc32c(text.data(), text.size(), crc);
}

// --- Journal ---------------------------------------------------------

namespace {

constexpr const char* kHeaderFormat = "vds-mc-journal v2 fingerprint %016" PRIx64 "\n";

/// Parses one record body (the line before any ` #crc` suffix).
bool parse_record_body(const char* body, JournalRecord& record) {
  return std::sscanf(body, "cell %" SCNu64 " %d %la %la %la %" SCNu64,
                     &record.index, &record.outcome,
                     &record.detection_latency, &record.recovery_time,
                     &record.total_time, &record.rounds_committed) == 6;
}

std::string hex16(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

}  // namespace

JournalLoad Journal::load(const std::string& path,
                          std::uint64_t fingerprint) {
  JournalLoad result;
  errno = 0;
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    if (errno == ENOENT) return result;  // nothing journaled yet
    throw std::runtime_error("journal '" + path + "': cannot open: " +
                             std::strerror(errno));
  }

  char line[256];
  bool have_header = false;
  while (std::fgets(line, sizeof line, file) != nullptr) {
    std::size_t len = std::strlen(line);
    if (len == 0 || line[len - 1] != '\n') {
      // Torn final line: the process died mid-write. The record is
      // lost; its cell will re-execute.
      if (have_header) ++result.corrupt;
      break;
    }
    line[--len] = '\0';
    if (!have_header) {
      unsigned version = 0;
      std::uint64_t stored = 0;
      if (std::sscanf(line, "vds-mc-journal v%u fingerprint %" SCNx64,
                      &version, &stored) != 2 ||
          version < 1 || version > 2) {
        std::fclose(file);
        throw std::runtime_error(
            "journal '" + path +
            "': unrecognized header (not a vds-mc journal, or a newer "
            "format); delete the file or pick another --journal path");
      }
      if (stored != fingerprint) {
        std::fclose(file);
        throw std::runtime_error(
            "journal '" + path +
            "' was written for a different campaign configuration "
            "(journal fingerprint " + hex16(stored) + ", this campaign " +
            hex16(fingerprint) +
            "); --resume requires the identical campaign and engine "
            "flags. Re-run with the original configuration, or delete "
            "the journal (or drop --resume) to start over");
      }
      result.version = static_cast<int>(version);
      have_header = true;
      continue;
    }
    // ` #xxxxxxxx` suffix = checksummed v2 record. rfind: a corrupted
    // body could contain a spurious '#'; the checksum is always last.
    JournalRecord record;
    const std::string_view text(line, len);
    const std::size_t marker = text.rfind(" #");
    if (marker != std::string_view::npos) {
      unsigned long stored_crc = 0;
      char tail = '\0';
      if (std::sscanf(line + marker, " #%8lx%c", &stored_crc, &tail) != 1 ||
          crc32c(text.substr(0, marker)) !=
              static_cast<std::uint32_t>(stored_crc)) {
        ++result.corrupt;  // bit flip or torn-then-overwritten line
        continue;
      }
      line[marker] = '\0';
      if (parse_record_body(line, record)) {
        result.records.push_back(record);
      } else {
        ++result.corrupt;  // checksum of a body we cannot parse
      }
      continue;
    }
    // No checksum: legacy v1 record — trusted only in a v1 file.
    if (result.version == 1 && parse_record_body(line, record)) {
      result.records.push_back(record);
    } else {
      ++result.corrupt;
    }
  }
  std::fclose(file);
  return result;
}

Journal::Journal(const std::string& path, std::uint64_t fingerprint)
    : path_(path) {
  // "a" keeps existing records (resume); the header is only written
  // when the file is empty.
  errno = 0;
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    throw std::runtime_error(
        "cannot open journal '" + path + "' for appending: " +
        std::strerror(errno) +
        " (check the directory exists and is writable)");
  }
  std::fseek(file_, 0, SEEK_END);
  if (std::ftell(file_) == 0) {
    if (std::fprintf(file_, kHeaderFormat, fingerprint) < 0 ||
        std::fflush(file_) != 0) {
      const int error = errno;
      std::fclose(file_);
      file_ = nullptr;
      throw std::runtime_error("journal '" + path + "': cannot write header: " +
                               std::strerror(error));
    }
  }
}

Journal::Journal(std::FILE* stream, std::string name)
    : path_(std::move(name)), file_(stream) {
  if (file_ == nullptr) {
    throw std::runtime_error("journal '" + path_ + "': null stream");
  }
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

void Journal::append(const JournalRecord& record) {
  static auto& appends = metrics::registry().counter(
      "journal.appends", metrics::Determinism::kDeterministic);
  static auto& append_ms =
      metrics::registry().timing("journal.append_ms", 0.0, 50.0, 64);
  const metrics::Span span("journal.append", "journal", record.index);
  const metrics::ScopedTimer timer(append_ms);
  appends.add();
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_.load()) {
    // The file already holds (at best) a torn record; appending more
    // would journal cells the resume path can never trust.
    throw std::runtime_error("journal '" + path_ +
                             "': earlier write failed; record dropped");
  }
  char body[200];
  const int body_len =
      std::snprintf(body, sizeof body, "cell %" PRIu64 " %d %a %a %a %" PRIu64,
                    record.index, record.outcome, record.detection_latency,
                    record.recovery_time, record.total_time,
                    record.rounds_committed);
  if (body_len < 0 || body_len >= static_cast<int>(sizeof body)) {
    failed_.store(true);
    throw std::runtime_error("journal '" + path_ + "': record too long");
  }
  char line[224];
  int line_len = std::snprintf(
      line, sizeof line, "%s #%08" PRIx32 "\n", body,
      crc32c(std::string_view(body, std::size_t(body_len))));
  // Chaos write-side faults: both must look like a *successful* append
  // to the campaign — they model silent substrate corruption that only
  // the checksummed reader can catch on --resume.
  if (chaos_ != nullptr) {
    if (chaos_->fires(kChaosJournalTorn, record.index)) {
      line_len /= 2;  // the kill instant: half a record, no newline
    } else if (chaos_->fires(kChaosJournalCorrupt, record.index)) {
      line[line_len / 3] ^= 0x04;  // one flipped bit inside the body
    }
  }
  const std::size_t wrote = std::fwrite(line, 1, std::size_t(line_len), file_);
  const int flushed = std::fflush(file_);
  if (wrote != std::size_t(line_len) || flushed != 0) {
    const int error = errno;
    failed_.store(true);
    throw std::runtime_error("journal '" + path_ + "': write failed (" +
                             std::strerror(error) +
                             "); resume data is incomplete");
  }
}

}  // namespace vds::runtime
