#include "runtime/journal.hpp"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/report.hpp"

namespace vds::runtime {

// --- JsonWriter ------------------------------------------------------

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key on the same line
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) os_ << ',';
    wrote_element_.back() = true;
    os_ << '\n';
    indent();
  }
}

void JsonWriter::indent() {
  for (std::size_t k = 0; k < wrote_element_.size(); ++k) os_ << "  ";
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_elements = wrote_element_.back();
  wrote_element_.pop_back();
  if (had_elements) {
    os_ << '\n';
    indent();
  }
  os_ << '}';
  if (wrote_element_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_elements = wrote_element_.back();
  wrote_element_.pop_back();
  if (had_elements) {
    os_ << '\n';
    indent();
  }
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  write_string(name);
  os_ << ": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  write_string(text);
  return *this;
}

void JsonWriter::write_string(std::string_view text) {
  os_ << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

JsonWriter& JsonWriter::value(double number) {
  separate();
  if (!std::isfinite(number)) {
    // JSON has no inf/nan literals; "%.17g" would emit them and
    // corrupt the document.
    os_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", number);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  os_ << (flag ? "true" : "false");
  return *this;
}

// --- shared report/summary serialization -----------------------------

void write_json(JsonWriter& json, const core::RunReport& report) {
  json.begin_object();
  json.field("completed", report.completed);
  json.field("failed_safe", report.failed_safe);
  json.field("silent_corruption", report.silent_corruption);
  json.field("total_time", report.total_time);
  json.field("rounds_committed", report.rounds_committed);
  json.field("faults_seen", report.faults_seen);
  json.field("transient_faults", report.transient_faults);
  json.field("crash_faults", report.crash_faults);
  json.field("permanent_faults", report.permanent_faults);
  json.field("processor_crashes", report.processor_crashes);
  json.field("detections", report.detections);
  json.field("recoveries_ok", report.recoveries_ok);
  json.field("rollbacks", report.rollbacks);
  json.field("comparisons", report.comparisons);
  json.field("checkpoints", report.checkpoints);
  json.field("roll_forwards_kept", report.roll_forwards_kept);
  json.field("roll_forwards_discarded", report.roll_forwards_discarded);
  json.field("roll_forward_rounds_gained", report.roll_forward_rounds_gained);
  json.field("predictions", report.predictions);
  json.field("prediction_hits", report.prediction_hits);
  json.field("predictor_accuracy", report.predictor_accuracy());
  json.field("throughput", report.throughput());
  json.key("detection_latency").begin_object();
  json.field("count", static_cast<std::uint64_t>(report.detection_latency.count()));
  json.field("mean", report.detection_latency.mean());
  json.field("stddev", report.detection_latency.stddev());
  json.end_object();
  json.key("recovery_time").begin_object();
  json.field("count", static_cast<std::uint64_t>(report.recovery_time.count()));
  json.field("mean", report.recovery_time.mean());
  json.field("stddev", report.recovery_time.stddev());
  json.end_object();
  json.end_object();
}

void write_json(JsonWriter& json, const core::CampaignSummary& summary) {
  json.begin_object();
  json.field("injections", summary.injections);
  json.field("safety", summary.safety());
  json.key("by_outcome").begin_object();
  for (std::size_t k = 0; k < summary.by_outcome.size(); ++k) {
    json.field(core::to_string(static_cast<core::InjectionOutcome>(k)),
               summary.by_outcome[k]);
  }
  json.end_object();
  json.end_object();
}

// --- fingerprint hash ------------------------------------------------

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t k = 0; k < bytes; ++k) {
    h ^= p[k];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view text, std::uint64_t seed) noexcept {
  return fnv1a(text.data(), text.size(), seed);
}

// --- Journal ---------------------------------------------------------

namespace {

constexpr const char* kHeaderFormat = "vds-mc-journal v1 fingerprint %016" PRIx64 "\n";

}  // namespace

std::vector<JournalRecord> Journal::load(const std::string& path,
                                         std::uint64_t fingerprint) {
  std::vector<JournalRecord> records;
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return records;  // nothing journaled yet

  char line[256];
  bool have_header = false;
  while (std::fgets(line, sizeof line, file) != nullptr) {
    const std::size_t len = std::strlen(line);
    if (len == 0 || line[len - 1] != '\n') break;  // torn final line
    if (!have_header) {
      std::uint64_t stored = 0;
      if (std::sscanf(line, "vds-mc-journal v1 fingerprint %" SCNx64,
                      &stored) != 1) {
        std::fclose(file);
        throw std::runtime_error("journal '" + path +
                                 "': unrecognized header");
      }
      if (stored != fingerprint) {
        std::fclose(file);
        throw std::runtime_error(
            "journal '" + path +
            "' was written for a different campaign configuration; "
            "refusing to resume (delete it to start over)");
      }
      have_header = true;
      continue;
    }
    JournalRecord record;
    if (std::sscanf(line,
                    "cell %" SCNu64 " %d %la %la %la %" SCNu64,
                    &record.index, &record.outcome,
                    &record.detection_latency, &record.recovery_time,
                    &record.total_time, &record.rounds_committed) == 6) {
      records.push_back(record);
    }
    // Unparseable interior lines are skipped (future extensions).
  }
  std::fclose(file);
  return records;
}

Journal::Journal(const std::string& path, std::uint64_t fingerprint)
    : path_(path) {
  // "a" keeps existing records (resume); the header is only written
  // when the file is empty.
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open journal '" + path + "'");
  }
  std::fseek(file_, 0, SEEK_END);
  if (std::ftell(file_) == 0) {
    if (std::fprintf(file_, kHeaderFormat, fingerprint) < 0 ||
        std::fflush(file_) != 0) {
      const int error = errno;
      std::fclose(file_);
      file_ = nullptr;
      throw std::runtime_error("journal '" + path + "': cannot write header: " +
                               std::strerror(error));
    }
  }
}

Journal::Journal(std::FILE* stream, std::string name)
    : path_(std::move(name)), file_(stream) {
  if (file_ == nullptr) {
    throw std::runtime_error("journal '" + path_ + "': null stream");
  }
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

void Journal::append(const JournalRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_.load()) {
    // The file already holds (at best) a torn record; appending more
    // would journal cells the resume path can never trust.
    throw std::runtime_error("journal '" + path_ +
                             "': earlier write failed; record dropped");
  }
  const int written =
      std::fprintf(file_, "cell %" PRIu64 " %d %a %a %a %" PRIu64 "\n",
                   record.index, record.outcome, record.detection_latency,
                   record.recovery_time, record.total_time,
                   record.rounds_committed);
  const int flushed = std::fflush(file_);
  if (written < 0 || flushed != 0) {
    const int error = errno;
    failed_.store(true);
    throw std::runtime_error("journal '" + path_ + "': write failed (" +
                             std::strerror(error) +
                             "); resume data is incomplete");
  }
}

}  // namespace vds::runtime
