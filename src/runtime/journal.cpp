#include "runtime/journal.hpp"

#include <array>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <ostream>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "runtime/chaos.hpp"
#include "runtime/metrics.hpp"

namespace vds::runtime {

// --- shared report/summary serialization -----------------------------

void write_json(JsonWriter& json, const core::RunReport& report) {
  json.begin_object();
  json.field("completed", report.completed);
  json.field("failed_safe", report.failed_safe);
  json.field("silent_corruption", report.silent_corruption);
  json.field("total_time", report.total_time);
  json.field("rounds_committed", report.rounds_committed);
  json.field("faults_seen", report.faults_seen);
  json.field("transient_faults", report.transient_faults);
  json.field("crash_faults", report.crash_faults);
  json.field("permanent_faults", report.permanent_faults);
  json.field("processor_crashes", report.processor_crashes);
  json.field("detections", report.detections);
  json.field("recoveries_ok", report.recoveries_ok);
  json.field("rollbacks", report.rollbacks);
  json.field("comparisons", report.comparisons);
  json.field("checkpoints", report.checkpoints);
  json.field("roll_forwards_kept", report.roll_forwards_kept);
  json.field("roll_forwards_discarded", report.roll_forwards_discarded);
  json.field("roll_forward_rounds_gained", report.roll_forward_rounds_gained);
  json.field("predictions", report.predictions);
  json.field("prediction_hits", report.prediction_hits);
  json.field("predictor_accuracy", report.predictor_accuracy());
  json.field("throughput", report.throughput());
  json.key("detection_latency").begin_object();
  json.field("count", static_cast<std::uint64_t>(report.detection_latency.count()));
  json.field("mean", report.detection_latency.mean());
  json.field("stddev", report.detection_latency.stddev());
  json.end_object();
  json.key("recovery_time").begin_object();
  json.field("count", static_cast<std::uint64_t>(report.recovery_time.count()));
  json.field("mean", report.recovery_time.mean());
  json.field("stddev", report.recovery_time.stddev());
  json.end_object();
  json.end_object();
}

void write_json(JsonWriter& json, const core::CampaignSummary& summary) {
  json.begin_object();
  json.field("injections", summary.injections);
  json.field("safety", summary.safety());
  json.key("by_outcome").begin_object();
  for (std::size_t k = 0; k < summary.by_outcome.size(); ++k) {
    json.field(core::to_string(static_cast<core::InjectionOutcome>(k)),
               summary.by_outcome[k]);
  }
  json.end_object();
  json.end_object();
}

std::string_view to_string(LeaseEvent event) noexcept {
  switch (event) {
    case LeaseEvent::kGranted: return "granted";
    case LeaseEvent::kCompleted: return "completed";
    case LeaseEvent::kExpired: return "expired";
  }
  return "granted";
}

// --- fingerprint hash ------------------------------------------------

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t k = 0; k < bytes; ++k) {
    h ^= p[k];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view text, std::uint64_t seed) noexcept {
  return fnv1a(text.data(), text.size(), seed);
}

// --- CRC32C ----------------------------------------------------------

namespace {

/// Reflected Castagnoli polynomial, table built on first use.
const std::uint32_t* crc32c_table() noexcept {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t crc) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t* table = crc32c_table();
  crc = ~crc;
  for (std::size_t k = 0; k < bytes; ++k) {
    crc = table[(crc ^ p[k]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(std::string_view text, std::uint32_t crc) noexcept {
  return crc32c(text.data(), text.size(), crc);
}

// --- Journal ---------------------------------------------------------

namespace {

constexpr const char* kHeaderFormat = "vds-mc-journal v2 fingerprint %016" PRIx64 "\n";

// v3 binary layout (docs/SCHEMAS.md section 6). Header: 8-byte magic,
// u32 LE version, u64 LE fingerprint, '\n'. Record: 0xA5 marker, u8
// payload length, payload, u32 LE CRC32C of the payload, '\n'. The
// trailing newline is framing only (it keeps `wc -l` and text tools
// honest about progress) and is not covered by the CRC.
constexpr unsigned char kV3Magic[8] = {'v', 'd', 's', 'j', 'r', 'n', 'l', '\0'};
constexpr std::size_t kV3HeaderSize = 8 + 4 + 8 + 1;
constexpr unsigned char kV3Marker = 0xA5;
// Cell payload = flags + varint cell + varint outcome + optional f64
// latency + optional f64 recovery + f64 total + varint rounds.
// Stop payload (flags == kV3FlagStop) = flags + varint stratum +
// varint stop_after + f64 achieved_ci.
// Lease payload (flags == kV3FlagLease) = flags + u8 event + varint
// lease id + varint attempt + varint lo + varint hi, plus f64-width
// digest bits + varint cells for completed events; its 6-byte minimum
// sets the framing floor, the completed form's 60-byte worst case the
// ceiling.
constexpr std::size_t kV3MinPayload = 1 + 1 + 1 + 1 + 1 + 1;
constexpr std::size_t kV3MaxPayload = 1 + 1 + 10 + 10 + 10 + 10 + 8 + 10;
constexpr unsigned char kV3FlagLatency = 0x01;
constexpr unsigned char kV3FlagRecovery = 0x02;
constexpr unsigned char kV3FlagStop = 0x04;
constexpr unsigned char kV3FlagLease = 0x08;

void put_le32(unsigned char* out, std::uint32_t v) noexcept {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

void put_le64(unsigned char* out, std::uint64_t v) noexcept {
  put_le32(out, static_cast<std::uint32_t>(v));
  put_le32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_le32(const unsigned char* p) noexcept {
  return std::uint32_t(p[0]) | std::uint32_t(p[1]) << 8 |
         std::uint32_t(p[2]) << 16 | std::uint32_t(p[3]) << 24;
}

std::uint64_t get_le64(const unsigned char* p) noexcept {
  return std::uint64_t(get_le32(p)) | std::uint64_t(get_le32(p + 4)) << 32;
}

std::uint64_t f64_bits(double x) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof bits);
  return bits;
}

double f64_from_bits(std::uint64_t bits) noexcept {
  double x;
  std::memcpy(&x, &bits, sizeof x);
  return x;
}

std::size_t put_varint(unsigned char* out, std::uint64_t v) noexcept {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  out[n++] = static_cast<unsigned char>(v);
  return n;
}

bool get_varint(const unsigned char* p, std::size_t n, std::size_t& pos,
                std::uint64_t& value) noexcept {
  value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= n) return false;
    const unsigned char byte = p[pos++];
    // The 10th byte can only carry bit 63; anything more is an
    // overlong/overflowing encoding the writer never produces.
    if (shift == 63 && (byte & 0xfe) != 0) return false;
    value |= std::uint64_t(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;
}

/// Doubles whose bit pattern equals the field's default (-1.0 for the
/// latency, +0.0 for the recovery time) are elided via the flags
/// byte; presence is decided on *bit patterns*, not value compares,
/// so -0.0 round-trips bitwise. ~40% of cells in a typical campaign
/// are no_effect and carry both defaults.
std::size_t encode_v3_payload(const JournalRecord& record,
                              unsigned char* out) noexcept {
  if (record.lease) {
    std::size_t n = 0;
    out[n++] = kV3FlagLease;
    out[n++] = static_cast<unsigned char>(record.lease_event);
    n += put_varint(out + n, record.index);
    n += put_varint(out + n, record.lease_attempt);
    n += put_varint(out + n, record.lease_lo);
    n += put_varint(out + n, record.lease_hi);
    if (record.lease_event == LeaseEvent::kCompleted) {
      put_le64(out + n, record.lease_digest);
      n += 8;
      n += put_varint(out + n, record.lease_cells);
    }
    return n;
  }
  if (record.stop) {
    std::size_t n = 0;
    out[n++] = kV3FlagStop;
    n += put_varint(out + n, record.index);
    n += put_varint(out + n, record.stop_after);
    put_le64(out + n, f64_bits(record.achieved_ci));
    n += 8;
    return n;
  }
  const std::uint64_t latency_bits = f64_bits(record.detection_latency);
  const std::uint64_t recovery_bits = f64_bits(record.recovery_time);
  const bool has_latency = latency_bits != f64_bits(-1.0);
  const bool has_recovery = recovery_bits != f64_bits(0.0);
  std::size_t n = 0;
  out[n++] = (has_latency ? kV3FlagLatency : 0) |
             (has_recovery ? kV3FlagRecovery : 0);
  n += put_varint(out + n, record.index);
  n += put_varint(out + n,
                  static_cast<std::uint32_t>(record.outcome));
  if (has_latency) {
    put_le64(out + n, latency_bits);
    n += 8;
  }
  if (has_recovery) {
    put_le64(out + n, recovery_bits);
    n += 8;
  }
  put_le64(out + n, f64_bits(record.total_time));
  n += 8;
  n += put_varint(out + n, record.rounds_committed);
  return n;
}

bool decode_v3_payload(const unsigned char* p, std::size_t n,
                       JournalRecord& record) noexcept {
  std::size_t pos = 0;
  if (n == 0) return false;
  const unsigned char flags = p[pos++];
  if (flags == kV3FlagLease) {
    record.lease = true;
    if (pos >= n || p[pos] > 2) return false;
    record.lease_event = static_cast<LeaseEvent>(p[pos++]);
    if (!get_varint(p, n, pos, record.index)) return false;
    if (!get_varint(p, n, pos, record.lease_attempt)) return false;
    if (!get_varint(p, n, pos, record.lease_lo)) return false;
    if (!get_varint(p, n, pos, record.lease_hi)) return false;
    if (record.lease_event == LeaseEvent::kCompleted) {
      if (pos + 8 > n) return false;
      record.lease_digest = get_le64(p + pos);
      pos += 8;
      if (!get_varint(p, n, pos, record.lease_cells)) return false;
    }
    return pos == n;
  }
  if (flags == kV3FlagStop) {
    record.stop = true;
    if (!get_varint(p, n, pos, record.index)) return false;
    if (!get_varint(p, n, pos, record.stop_after)) return false;
    if (pos + 8 > n) return false;
    record.achieved_ci = f64_from_bits(get_le64(p + pos));
    pos += 8;
    return pos == n;
  }
  if ((flags & ~(kV3FlagLatency | kV3FlagRecovery)) != 0) return false;
  if (!get_varint(p, n, pos, record.index)) return false;
  std::uint64_t outcome = 0;
  if (!get_varint(p, n, pos, outcome) || outcome > 0xffffffffull) {
    return false;
  }
  record.outcome =
      static_cast<std::int32_t>(static_cast<std::uint32_t>(outcome));
  if ((flags & kV3FlagLatency) != 0) {
    if (pos + 8 > n) return false;
    record.detection_latency = f64_from_bits(get_le64(p + pos));
    pos += 8;
  } else {
    record.detection_latency = -1.0;
  }
  if ((flags & kV3FlagRecovery) != 0) {
    if (pos + 8 > n) return false;
    record.recovery_time = f64_from_bits(get_le64(p + pos));
    pos += 8;
  } else {
    record.recovery_time = 0.0;
  }
  if (pos + 8 > n) return false;
  record.total_time = f64_from_bits(get_le64(p + pos));
  pos += 8;
  if (!get_varint(p, n, pos, record.rounds_committed)) return false;
  return pos == n;  // trailing bytes would hide corruption
}

/// Parses one record body (the line before any ` #crc` suffix).
bool parse_record_body(const char* body, JournalRecord& record) {
  return std::sscanf(body, "cell %" SCNu64 " %d %la %la %la %" SCNu64,
                     &record.index, &record.outcome,
                     &record.detection_latency, &record.recovery_time,
                     &record.total_time, &record.rounds_committed) == 6;
}

/// Parses a stratum stop-record body (`stop STRATUM AFTER CI`).
bool parse_stop_body(const char* body, JournalRecord& record) {
  if (std::sscanf(body, "stop %" SCNu64 " %" SCNu64 " %la", &record.index,
                  &record.stop_after, &record.achieved_ci) != 3) {
    return false;
  }
  record.stop = true;
  return true;
}

/// Parses a fabric assignment-log body
/// (`lease EVENT ID ATTEMPT LO HI DIGEST CELLS`). All eight fields are
/// always present; digest/cells are zero except on `completed`.
bool parse_lease_body(const char* body, JournalRecord& record) {
  char event[16];
  if (std::sscanf(body,
                  "lease %15s %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                  " %" SCNx64 " %" SCNu64,
                  event, &record.index, &record.lease_attempt,
                  &record.lease_lo, &record.lease_hi, &record.lease_digest,
                  &record.lease_cells) != 7) {
    return false;
  }
  const std::string_view word(event);
  if (word == to_string(LeaseEvent::kGranted)) {
    record.lease_event = LeaseEvent::kGranted;
  } else if (word == to_string(LeaseEvent::kCompleted)) {
    record.lease_event = LeaseEvent::kCompleted;
  } else if (word == to_string(LeaseEvent::kExpired)) {
    record.lease_event = LeaseEvent::kExpired;
  } else {
    return false;
  }
  record.lease = true;
  return true;
}

std::string hex16(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

/// Exactly 1..8 hex digits, nothing else — the strict form the writer
/// emits (it always writes 8).
bool parse_hex32(std::string_view hex, std::uint32_t& value) noexcept {
  if (hex.empty() || hex.size() > 8) return false;
  value = 0;
  for (const char c : hex) {
    unsigned digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<unsigned>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<unsigned>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  return true;
}

[[noreturn]] void throw_unrecognized(const std::string& path) {
  throw std::runtime_error(
      "journal '" + path +
      "': unrecognized header (not a vds-mc journal, or a newer "
      "format); delete the file or pick another --journal path");
}

/// Reads the whole file; false (and no throw) only for ENOENT.
bool read_file(const std::string& path, std::string& out) {
  errno = 0;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) return false;  // nothing journaled yet
    throw std::runtime_error("journal '" + path + "': cannot open: " +
                             std::strerror(errno));
  }
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    out.append(buffer, got);
  }
  if (std::ferror(file) != 0) {
    const int error = errno;
    std::fclose(file);
    throw std::runtime_error("journal '" + path + "': cannot read: " +
                             std::strerror(error));
  }
  std::fclose(file);
  return true;
}

/// v1/v2 text scan. Only the *final* byte range with no terminating
/// '\n' is a torn tail; every mid-file anomaly — bit-flipped bytes,
/// an embedded NUL, a garbage line of any length — costs exactly the
/// records it touched, and the scan continues at the next '\n'.
void parse_text_journal(const std::string& path, std::string_view data,
                        JournalLoad& result) {
  std::size_t nl = data.find('\n');
  if (nl == std::string_view::npos) {
    // The header itself never completed; nothing is trustworthy.
    return;
  }
  const std::string header(data.substr(0, nl));
  std::size_t pos = nl + 1;

  unsigned version = 0;
  std::uint64_t stored = 0;
  if (std::sscanf(header.c_str(), "vds-mc-journal v%u fingerprint %" SCNx64,
                  &version, &stored) != 2 ||
      version < 1 || version > 2) {
    throw_unrecognized(path);
  }
  result.version = static_cast<int>(version);
  result.fingerprint = stored;
  result.has_header = true;

  while (pos < data.size()) {
    nl = data.find('\n', pos);
    if (nl == std::string_view::npos) {
      // Torn final line: the process died mid-write. The record is
      // lost; its cell will re-execute.
      ++result.corrupt;
      break;
    }
    const std::string_view line = data.substr(pos, nl - pos);
    pos = nl + 1;

    // ` #xxxxxxxx` suffix = checksummed v2 record. rfind: a corrupted
    // body could contain a spurious '#'; the checksum is always last.
    JournalRecord record;
    const std::size_t marker = line.rfind(" #");
    if (marker != std::string_view::npos) {
      std::uint32_t stored_crc = 0;
      if (!parse_hex32(line.substr(marker + 2), stored_crc) ||
          crc32c(line.substr(0, marker)) != stored_crc) {
        ++result.corrupt;  // bit flip or torn-then-overwritten line
        continue;
      }
      // Copy for NUL termination; an embedded NUL from corruption
      // truncates the sscanf view and fails the parse below.
      const std::string body(line.substr(0, marker));
      if (parse_record_body(body.c_str(), record)) {
        result.records.push_back(record);
      } else if (parse_stop_body(body.c_str(), record)) {
        result.stops.push_back(record);
      } else if (parse_lease_body(body.c_str(), record)) {
        result.leases.push_back(record);
      } else {
        ++result.corrupt;  // checksum of a body we cannot parse
      }
      continue;
    }
    // No checksum: legacy v1 record — trusted only in a v1 file.
    const std::string body(line);
    if (result.version == 1 && parse_record_body(body.c_str(), record)) {
      result.records.push_back(record);
    } else {
      ++result.corrupt;
    }
  }
}

/// v3 binary scan with resynchronization. Two damage classes:
///
/// * A record whose *framing* is intact (marker byte, plausible
///   length, terminating '\n' where the length says) but whose CRC or
///   payload decode fails — a bit flip — is counted individually and
///   consumed whole; the scan continues at the next record.
/// * Structurally damaged bytes (torn record, truncated tail, garbage
///   splice, wrong marker) count as ONE corruption episode however
///   many bytes they span, and the scan hunts byte-by-byte for the
///   next 0xA5 marker that frames. A marker byte inside a damaged
///   span can masquerade as a record start, but the CRC makes a false
///   accept a 2^-32 event.
void parse_v3_journal(const std::string& path, std::string_view data,
                      JournalLoad& result) {
  if (data.size() < kV3HeaderSize ||
      data[kV3HeaderSize - 1] != '\n' ||
      get_le32(reinterpret_cast<const unsigned char*>(data.data()) + 8) != 3) {
    throw_unrecognized(path);
  }
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  result.version = 3;
  result.fingerprint = get_le64(bytes + 12);
  result.has_header = true;

  std::size_t pos = kV3HeaderSize;
  bool resync = false;
  const auto next_marker = [&](std::size_t from) {
    const std::size_t at = data.find(static_cast<char>(kV3Marker), from);
    return at == std::string_view::npos ? data.size() : at;
  };
  while (pos < data.size()) {
    std::size_t total = 0;
    if (bytes[pos] == kV3Marker && pos + 2 <= data.size()) {
      const std::size_t len = bytes[pos + 1];
      total = 2 + len + 4 + 1;
      if (len < kV3MinPayload || len > kV3MaxPayload ||
          pos + total > data.size() || bytes[pos + total - 1] != '\n') {
        total = 0;  // framing broken: structural damage
      }
    }
    if (total == 0) {
      if (!resync) ++result.corrupt;
      resync = true;
      pos = next_marker(pos + 1);
      continue;
    }
    const std::size_t len = bytes[pos + 1];
    JournalRecord record;
    if (crc32c(bytes + pos + 2, len) == get_le32(bytes + pos + 2 + len) &&
        decode_v3_payload(bytes + pos + 2, len, record)) {
      (record.lease ? result.leases
                    : record.stop ? result.stops
                                  : result.records)
          .push_back(record);
    } else {
      ++result.corrupt;  // a framed record with a flipped bit
    }
    resync = false;
    pos += total;
  }
}

JournalLoad load_impl(const std::string& path) {
  JournalLoad result;
  std::string data;
  if (!read_file(path, data) || data.empty()) return result;
  if (data.size() >= sizeof kV3Magic &&
      std::memcmp(data.data(), kV3Magic, sizeof kV3Magic) == 0) {
    parse_v3_journal(path, data, result);
    return result;
  }
  parse_text_journal(path, data, result);
  return result;
}

}  // namespace

JournalLoad Journal::inspect(const std::string& path) {
  return load_impl(path);
}

JournalLoad Journal::load(const std::string& path,
                          std::uint64_t fingerprint) {
  JournalLoad result = load_impl(path);
  if (result.has_header && result.fingerprint != fingerprint) {
    throw std::runtime_error(
        "journal '" + path +
        "' was written for a different campaign configuration "
        "(journal fingerprint " + hex16(result.fingerprint) +
        ", this campaign " + hex16(fingerprint) +
        "); --resume requires the identical campaign and engine "
        "flags. Re-run with the original configuration, or delete "
        "the journal (or drop --resume) to start over");
  }
  return result;
}

Journal::Journal(const std::string& path, std::uint64_t fingerprint,
                 JournalFormat format)
    : path_(path), format_(format) {
  // "a" keeps existing records (resume); "+" lets us sniff an
  // existing header. The header is only written when the file is
  // empty.
  errno = 0;
  file_ = std::fopen(path.c_str(), "ab+");
  if (file_ == nullptr) {
    throw std::runtime_error(
        "cannot open journal '" + path + "' for appending: " +
        std::strerror(errno) +
        " (check the directory exists and is writable)");
  }
  const auto fail = [&](const char* what) {
    const int error = errno;
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("journal '" + path + "': " + what + ": " +
                             std::strerror(error));
  };
  // A non-seekable path (pipe, some special files) makes the
  // size/header logic below meaningless — fail loudly instead of
  // producing a headerless journal that load() later rejects.
  errno = 0;
  if (std::fseek(file_, 0, SEEK_END) != 0) fail("cannot seek");
  errno = 0;
  const long size = std::ftell(file_);
  if (size < 0) fail("cannot determine size");
  if (size == 0) {
    errno = 0;
    bool ok;
    if (format_ == JournalFormat::kV3Binary) {
      unsigned char header[kV3HeaderSize];
      std::memcpy(header, kV3Magic, sizeof kV3Magic);
      put_le32(header + 8, 3);
      put_le64(header + 12, fingerprint);
      header[kV3HeaderSize - 1] = '\n';
      ok = std::fwrite(header, 1, sizeof header, file_) == sizeof header;
    } else {
      ok = std::fprintf(file_, kHeaderFormat, fingerprint) >= 0;
    }
    int error = ok ? 0 : errno;
    if (ok) {
      errno = 0;
      if (std::fflush(file_) != 0) {
        ok = false;
        error = errno;
      }
    }
    if (!ok) {
      std::fclose(file_);
      file_ = nullptr;
      throw std::runtime_error("journal '" + path + "': cannot write header: " +
                               std::strerror(error));
    }
  } else {
    // Appends must match the file, not the request: a v3-default
    // resume of a v2 journal keeps writing text, and vice versa.
    errno = 0;
    if (std::fseek(file_, 0, SEEK_SET) != 0) fail("cannot seek");
    unsigned char head[sizeof kV3Magic] = {};
    const std::size_t got = std::fread(head, 1, sizeof head, file_);
    format_ = (got == sizeof head &&
               std::memcmp(head, kV3Magic, sizeof head) == 0)
                  ? JournalFormat::kV3Binary
                  : JournalFormat::kV2Text;
    std::clearerr(file_);  // a short file sets EOF; that is fine
    errno = 0;
    if (std::fseek(file_, 0, SEEK_END) != 0) fail("cannot seek");
  }
}

Journal::Journal(std::FILE* stream, std::string name, JournalFormat format)
    : path_(std::move(name)), file_(stream), format_(format) {
  if (file_ == nullptr) {
    throw std::runtime_error("journal '" + path_ + "': null stream");
  }
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

void Journal::append(const JournalRecord& record) {
  static auto& appends = metrics::registry().counter(
      "journal.appends", metrics::Determinism::kDeterministic);
  static auto& append_ms =
      metrics::registry().timing("journal.append_ms", 0.0, 50.0, 64);
  const metrics::Span span("journal.append", "journal", record.index);
  const metrics::ScopedTimer timer(append_ms);
  appends.add();
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_.load()) {
    // The file already holds (at best) a torn record; appending more
    // would journal cells the resume path can never trust.
    throw std::runtime_error("journal '" + path_ +
                             "': earlier write failed; record dropped");
  }
  unsigned char line[256];
  std::size_t line_len = 0;
  if (format_ == JournalFormat::kV3Binary) {
    unsigned char payload[kV3MaxPayload];
    const std::size_t payload_len = encode_v3_payload(record, payload);
    line[line_len++] = kV3Marker;
    line[line_len++] = static_cast<unsigned char>(payload_len);
    std::memcpy(line + line_len, payload, payload_len);
    line_len += payload_len;
    put_le32(line + line_len, crc32c(payload, payload_len));
    line_len += 4;
    line[line_len++] = '\n';
  } else {
    char body[200];
    int body_len;
    if (record.lease) {
      body_len = std::snprintf(
          body, sizeof body,
          "lease %s %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
          " %016" PRIx64 " %" PRIu64,
          std::string(to_string(record.lease_event)).c_str(), record.index,
          record.lease_attempt, record.lease_lo, record.lease_hi,
          record.lease_digest, record.lease_cells);
    } else if (record.stop) {
      body_len = std::snprintf(body, sizeof body,
                               "stop %" PRIu64 " %" PRIu64 " %a", record.index,
                               record.stop_after, record.achieved_ci);
    } else {
      body_len = std::snprintf(body, sizeof body,
                               "cell %" PRIu64 " %d %a %a %a %" PRIu64,
                               record.index, record.outcome,
                               record.detection_latency, record.recovery_time,
                               record.total_time, record.rounds_committed);
    }
    if (body_len < 0 || body_len >= static_cast<int>(sizeof body)) {
      failed_.store(true);
      throw std::runtime_error("journal '" + path_ + "': record too long");
    }
    const int text_len = std::snprintf(
        reinterpret_cast<char*>(line), sizeof line, "%s #%08" PRIx32 "\n",
        body, crc32c(std::string_view(body, std::size_t(body_len))));
    line_len = std::size_t(text_len);
  }
  // Chaos write-side faults: both must look like a *successful* append
  // to the campaign — they model silent substrate corruption that only
  // the checksummed reader can catch on --resume.
  if (chaos_ != nullptr) {
    if (chaos_->fires(kChaosJournalTorn, record.index)) {
      line_len /= 2;  // the kill instant: half a record, no terminator
    } else if (chaos_->fires(kChaosJournalCorrupt, record.index)) {
      line[line_len / 3] ^= 0x04;  // one flipped bit inside the body
    }
  }
  // errno is read immediately after the call that failed — a later
  // succeeding call would reset it and the exception would name the
  // wrong (or no) error.
  errno = 0;
  const std::size_t wrote = std::fwrite(line, 1, line_len, file_);
  bool write_failed = wrote != line_len;
  int error = write_failed ? errno : 0;
  if (!write_failed) {
    errno = 0;
    if (std::fflush(file_) != 0) {
      write_failed = true;
      error = errno;
    }
  }
  if (write_failed) {
    failed_.store(true);
    throw std::runtime_error("journal '" + path_ + "': write failed (" +
                             std::strerror(error) +
                             "); resume data is incomplete");
  }
}

JournalMergeStats merge_journals(const std::vector<std::string>& inputs,
                                 const std::string& out_path,
                                 JournalFormat format) {
  if (inputs.empty()) {
    throw std::runtime_error("journal merge: no input journals");
  }
  for (const std::string& in : inputs) {
    if (in == out_path) {
      throw std::runtime_error("journal merge: output '" + out_path +
                               "' is also an input");
    }
  }
  JournalMergeStats stats;
  stats.inputs = inputs.size();
  std::map<std::uint64_t, JournalRecord> cells;  // sorted by cell index
  std::map<std::uint64_t, const std::string*> sources;
  std::map<std::uint64_t, JournalRecord> stops;  // sorted by stratum index
  std::map<std::uint64_t, const std::string*> stop_sources;
  std::vector<JournalRecord> leases;  // event history: input order, verbatim
  bool have_fingerprint = false;
  for (const std::string& in : inputs) {
    const JournalLoad loaded = Journal::inspect(in);
    if (!loaded.has_header) {
      throw std::runtime_error("journal merge: '" + in +
                               "' is missing, empty, or has no journal "
                               "header; every shard must be a journal");
    }
    if (!have_fingerprint) {
      stats.fingerprint = loaded.fingerprint;
      have_fingerprint = true;
    } else if (loaded.fingerprint != stats.fingerprint) {
      throw std::runtime_error(
          "journal merge: '" + in + "' has fingerprint " +
          hex16(loaded.fingerprint) + " but '" + inputs.front() + "' has " +
          hex16(stats.fingerprint) +
          "; shards of one campaign share a fingerprint — these journals "
          "belong to different campaigns");
    }
    stats.corrupt += loaded.corrupt;
    for (const JournalRecord& record : loaded.records) {
      ++stats.records_in;
      const auto [it, inserted] = cells.try_emplace(record.index, record);
      if (inserted) {
        sources.emplace(record.index, &in);
        continue;
      }
      if (it->second == record) {
        ++stats.duplicates;  // overlapping shard ranges — benign
        continue;
      }
      throw std::runtime_error(
          "journal merge: cell " + std::to_string(record.index) +
          " has conflicting records in '" + *sources[record.index] +
          "' and '" + in +
          "' (same fingerprint, different payload); the shards disagree "
          "about a result — refusing to merge");
    }
    for (const JournalRecord& record : loaded.stops) {
      ++stats.records_in;
      const auto [it, inserted] = stops.try_emplace(record.index, record);
      if (inserted) {
        stop_sources.emplace(record.index, &in);
        continue;
      }
      if (it->second == record) {
        ++stats.duplicates;
        continue;
      }
      throw std::runtime_error(
          "journal merge: stratum " + std::to_string(record.index) +
          " has conflicting stop records in '" +
          *stop_sources[record.index] + "' and '" + in +
          "' (same fingerprint, different stopping point); the shards "
          "disagree — refusing to merge");
    }
    for (const JournalRecord& record : loaded.leases) {
      ++stats.records_in;
      leases.push_back(record);
    }
  }
  std::remove(out_path.c_str());
  Journal out(out_path, stats.fingerprint, format);
  for (const auto& [index, record] : cells) {
    out.append(record);
    ++stats.records_out;
  }
  for (const auto& [index, record] : stops) {
    out.append(record);
    ++stats.records_out;
  }
  for (const JournalRecord& record : leases) {
    out.append(record);
    ++stats.records_out;
  }
  return stats;
}

}  // namespace vds::runtime
