#include "runtime/metrics.hpp"

#include <ostream>

#include "runtime/json_writer.hpp"

#if VDS_METRICS_ENABLED

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace vds::runtime::metrics {

namespace {

[[nodiscard]] std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stable per-thread shard index. Threads round-robin over the shard
/// count; two threads may share a shard (correct, just contended).
[[nodiscard]] std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

/// One collected Chrome-trace complete event. Timestamps are absolute
/// steady-clock ns; the trace epoch is subtracted at serialization.
struct TraceEvent {
  const char* name;
  const char* cat;
  std::uint64_t arg;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint32_t tid;
};

// A full campaign traces a few events per cell; this cap only guards
// against runaway span loops eating the heap.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

}  // namespace

// ---------------------------------------------------------------- Counter

void Counter::add(std::uint64_t n) noexcept {
  if (!registry().enabled()) return;
  shards_[this_thread_shard() % kShards].value.fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t Counter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.value.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Timing

struct Timing::Impl {
  static constexpr std::size_t kShards = 8;

  struct alignas(64) Shard {
    std::mutex mutex;
    sim::Histogram histogram;
    sim::Accumulator acc;
    Shard(double lo, double hi, std::size_t bins) : histogram(lo, hi, bins) {}
  };

  Impl(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins) {
    shards_.reserve(kShards);
    for (std::size_t i = 0; i < kShards; ++i) {
      shards_.push_back(std::make_unique<Shard>(lo, hi, bins));
    }
  }

  void record(double ms) noexcept {
    Shard& s = *shards_[this_thread_shard() % kShards];
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.histogram.add(ms);
    s.acc.add(ms);
  }

  void reset() {
    for (auto& s : shards_) {
      const std::lock_guard<std::mutex> lock(s->mutex);
      s->histogram = sim::Histogram(lo_, hi_, bins_);
      s->acc.reset();
    }
  }

  /// Shard histograms merged into one flat view for serialization.
  struct Merged {
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t nan = 0;
    std::uint64_t total = 0;
    sim::Accumulator acc;
  };

  [[nodiscard]] Merged merge() const {
    Merged m;
    m.counts.assign(bins_, 0);
    for (const auto& s : shards_) {
      const std::lock_guard<std::mutex> lock(s->mutex);
      for (std::size_t i = 0; i < bins_; ++i) {
        m.counts[i] += s->histogram.bin_count(i);
      }
      m.under += s->histogram.underflow();
      m.over += s->histogram.overflow();
      m.nan += s->histogram.nan_count();
      m.total += s->histogram.total();
      m.acc.merge(s->acc);
    }
    return m;
  }

  /// Same algorithm as sim::Histogram::quantile, over the merged bins
  /// (NaN samples carry no rank; under/overflow mass sits at lo/hi).
  [[nodiscard]] double quantile(const Merged& m, double q) const {
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t ranked = m.total - m.nan;
    if (ranked == 0) return lo_;
    const double target = q * static_cast<double>(ranked);
    double cum = static_cast<double>(m.under);
    if (target <= cum) return lo_;
    const double width = (hi_ - lo_) / static_cast<double>(bins_);
    for (std::size_t i = 0; i < bins_; ++i) {
      const double c = static_cast<double>(m.counts[i]);
      if (cum + c >= target && c > 0) {
        const double frac = (target - cum) / c;
        return lo_ + width * (static_cast<double>(i) + frac);
      }
      cum += c;
    }
    return hi_;
  }

  double lo_;
  double hi_;
  std::size_t bins_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

void Timing::record_ms(double ms) noexcept {
  if (!registry().enabled()) return;
  impl_->record(ms);
}

// --------------------------------------------------------------- Registry

namespace {

struct ThreadBuffer;

}  // namespace

struct Registry::Impl {
  struct CounterEntry {
    std::unique_ptr<Counter> counter;
    Determinism determinism;
  };
  struct TimingEntry {
    std::unique_ptr<Timing::Impl> impl;
    std::unique_ptr<Timing> handle;
  };

  // Guards the maps and the trace buffers. Lock order: this mutex
  // first, then a ThreadBuffer's mutex — never the reverse.
  mutable std::mutex mutex;
  std::map<std::string, CounterEntry, std::less<>> counters;
  std::map<std::string, TimingEntry, std::less<>> timings;

  std::vector<TraceEvent> retired;  ///< events of exited threads
  std::vector<ThreadBuffer*> live;
  std::uint64_t retired_dropped = 0;
  std::uint64_t epoch_ns = 0;  ///< trace time zero (set by set_tracing)
  std::uint32_t next_tid = 0;

  void adopt(ThreadBuffer& buf);
  void retire(ThreadBuffer& buf);
  void clear_trace();
  [[nodiscard]] std::vector<TraceEvent> collect_trace(
      std::uint64_t* dropped) const;
};

namespace {

/// Per-thread span sink. The mutex only contends with a concurrent
/// snapshot/clear — span recording from the owner thread is otherwise
/// an uncontended lock plus a vector push.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
  Registry::Impl* owner = nullptr;

  ~ThreadBuffer() {
    if (owner != nullptr) owner->retire(*this);
  }

  void record(TraceEvent event) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (events.size() >= kMaxEventsPerThread) {
      ++dropped;
      return;
    }
    event.tid = tid;
    events.push_back(event);
  }
};

ThreadBuffer& local_buffer(Registry::Impl& impl) {
  thread_local ThreadBuffer buffer;
  if (buffer.owner == nullptr) impl.adopt(buffer);
  return buffer;
}

}  // namespace

void Registry::Impl::adopt(ThreadBuffer& buf) {
  const std::lock_guard<std::mutex> lock(mutex);
  buf.owner = this;
  buf.tid = next_tid++;
  live.push_back(&buf);
}

void Registry::Impl::retire(ThreadBuffer& buf) {
  const std::lock_guard<std::mutex> lock(mutex);
  live.erase(std::remove(live.begin(), live.end(), &buf), live.end());
  const std::lock_guard<std::mutex> buf_lock(buf.mutex);
  retired.insert(retired.end(), buf.events.begin(), buf.events.end());
  retired_dropped += buf.dropped;
  buf.events.clear();
}

void Registry::Impl::clear_trace() {
  retired.clear();
  retired_dropped = 0;
  for (ThreadBuffer* buf : live) {
    const std::lock_guard<std::mutex> lock(buf->mutex);
    buf->events.clear();
    buf->dropped = 0;
  }
}

std::vector<TraceEvent> Registry::Impl::collect_trace(
    std::uint64_t* dropped) const {
  std::vector<TraceEvent> events = retired;
  std::uint64_t lost = retired_dropped;
  for (ThreadBuffer* buf : live) {
    const std::lock_guard<std::mutex> lock(buf->mutex);
    events.insert(events.end(), buf->events.begin(), buf->events.end());
    lost += buf->dropped;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  if (dropped != nullptr) *dropped = lost;
  return events;
}

Registry::Registry() : impl_(new Impl) {}

Registry& registry() {
  // Leaked on purpose: thread_local trace buffers retire into the
  // registry from thread-exit destructors that may run after static
  // destruction would have torn a non-leaked instance down.
  static Registry* instance = new Registry;
  return *instance;
}

Counter& Registry::counter(std::string_view name, Determinism determinism) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name),
                      Impl::CounterEntry{std::unique_ptr<Counter>(new Counter),
                                         determinism})
             .first;
  }
  return *it->second.counter;
}

Timing& Registry::timing(std::string_view name, double lo_ms, double hi_ms,
                         std::size_t bins) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->timings.find(name);
  if (it == impl_->timings.end()) {
    auto impl = std::make_unique<Timing::Impl>(lo_ms, hi_ms, bins);
    std::unique_ptr<Timing> handle(new Timing(impl.get()));
    it = impl_->timings
             .emplace(std::string(name),
                      Impl::TimingEntry{std::move(impl), std::move(handle)})
             .first;
  }
  return *it->second.handle;
}

void Registry::set_enabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
}

void Registry::set_tracing(bool on) {
  if (on) {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->clear_trace();
    impl_->epoch_ns = now_ns();
  }
  tracing_.store(on, std::memory_order_relaxed);
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, entry] : impl_->counters) entry.counter->reset();
  for (auto& [name, entry] : impl_->timings) entry.impl->reset();
  impl_->clear_trace();
}

void Registry::write_counters(std::ostream& os, Determinism which) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& [name, entry] : impl_->counters) {
    if (entry.determinism != which) continue;
    os << name << ' ' << entry.counter->total() << '\n';
  }
}

void Registry::write_snapshot(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  JsonWriter json(os);
  json.begin_object();
  json.field("schema", "vds.metrics.v1");
  json.field("compiled", true);

  const auto counters_section = [&](std::string_view section,
                                    Determinism which) {
    json.key(section);
    json.begin_object();
    for (const auto& [name, entry] : impl_->counters) {
      if (entry.determinism != which) continue;
      json.field(name, entry.counter->total());
    }
    json.end_object();
  };
  counters_section("counters", Determinism::kDeterministic);
  counters_section("scheduling", Determinism::kScheduling);

  json.key("timings_ms");
  json.begin_object();
  for (const auto& [name, entry] : impl_->timings) {
    const Timing::Impl::Merged m = entry.impl->merge();
    json.key(name);
    json.begin_object();
    json.field("count", m.total);
    json.field("mean", m.acc.mean());
    json.field("stddev", m.acc.stddev());
    json.field("min", m.acc.min());
    json.field("max", m.acc.max());
    json.field("p50", entry.impl->quantile(m, 0.50));
    json.field("p90", entry.impl->quantile(m, 0.90));
    json.field("p99", entry.impl->quantile(m, 0.99));
    json.field("underflow", m.under);
    json.field("overflow", m.over);
    json.field("nan", m.nan);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void Registry::write_trace(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::uint64_t dropped = 0;
  const std::vector<TraceEvent> events = impl_->collect_trace(&dropped);
  JsonWriter json(os);
  json.begin_array();
  for (const TraceEvent& e : events) {
    const std::uint64_t rel =
        e.start_ns >= impl_->epoch_ns ? e.start_ns - impl_->epoch_ns : 0;
    json.begin_object();
    json.field("name", e.name);
    json.field("cat", e.cat);
    json.field("ph", "X");
    json.field("ts", static_cast<double>(rel) / 1000.0);
    json.field("dur", static_cast<double>(e.dur_ns) / 1000.0);
    json.field("pid", 1);
    json.field("tid", static_cast<std::int64_t>(e.tid));
    if (e.arg != kNoArg) {
      json.key("args");
      json.begin_object();
      json.field("arg", e.arg);
      json.end_object();
    }
    json.end_object();
  }
  // Surface silent truncation inside the trace itself.
  if (dropped != 0) {
    json.begin_object();
    json.field("name", "metrics.trace_events_dropped");
    json.field("cat", "vds");
    json.field("ph", "X");
    json.field("ts", 0.0);
    json.field("dur", 0.0);
    json.field("pid", 1);
    json.field("tid", 0);
    json.key("args");
    json.begin_object();
    json.field("dropped", dropped);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  os << '\n';
}

// ------------------------------------------------------------------- Span

Span::Span(const char* name, const char* cat, std::uint64_t arg) noexcept
    : name_(name), cat_(cat), arg_(arg) {
  if (!registry().tracing()) return;
  active_ = true;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_ns = now_ns();
  Registry& reg = registry();
  if (!reg.tracing()) return;  // tracing stopped mid-span: drop it
  local_buffer(*reg.impl_).record(TraceEvent{
      name_, cat_, arg_, start_ns_, end_ns - start_ns_,
      /*tid=*/0});  // the buffer stamps its own tid
}

// --------------------------------------------------------------- Timers

ScopedTimer::ScopedTimer(Timing& timing) noexcept {
  if (!registry().enabled()) return;
  timing_ = &timing;
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (timing_ == nullptr) return;
  const std::uint64_t end_ns = now_ns();
  timing_->record_ms(static_cast<double>(end_ns - start_ns_) / 1e6);
}

}  // namespace vds::runtime::metrics

#else  // !VDS_METRICS_ENABLED -------------------------------------------

namespace vds::runtime::metrics {

Registry& registry() {
  static Registry instance;
  return instance;
}

void Registry::write_snapshot(std::ostream& os) const {
  JsonWriter json(os);
  json.begin_object();
  json.field("schema", "vds.metrics.v1");
  json.field("compiled", false);
  json.key("counters");
  json.begin_object();
  json.end_object();
  json.key("scheduling");
  json.begin_object();
  json.end_object();
  json.key("timings_ms");
  json.begin_object();
  json.end_object();
  json.end_object();
}

void Registry::write_trace(std::ostream& os) const { os << "[]\n"; }

}  // namespace vds::runtime::metrics

#endif  // VDS_METRICS_ENABLED
