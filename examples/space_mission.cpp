// Space-mission scenario (paper §1): a soft mission-critical computer
// serves a queue of scientific experiments. Radiation makes transient
// faults frequent and occasionally crashes a process; repair is
// impossible, so every experiment runs under an SMT VDS whose
// probabilistic roll-forward is steered by crash evidence and a
// fault-history predictor. The discrete-event simulator sequences the
// experiment queue and accumulates mission statistics.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/smt_engine.hpp"
#include "fault/predictor.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

using namespace vds;

namespace {

struct Experiment {
  std::string name;
  std::uint64_t rounds;
  double fault_rate;  // local radiation intensity during the window
};

core::VdsOptions mission_options(std::uint64_t rounds) {
  core::VdsOptions options;
  options.t = 1.0;
  options.c = 0.08;
  options.t_cmp = 0.08;
  options.alpha = 0.62;  // radiation-hardened SMT part
  options.s = 16;
  options.job_rounds = rounds;
  // The Section-4 predict scheme rolls forward fastest but performs no
  // comparison during the roll-forward; at space-grade fault rates that
  // hazard regularly commits corrupted science data (try it: swap in
  // kRollForwardPredict and watch the silent-corruption counter). The
  // probabilistic scheme keeps the prediction benefit *and* detection.
  options.scheme = core::RecoveryScheme::kRollForwardProb;
  return options;
}

}  // namespace

int main() {
  const std::vector<Experiment> queue = {
      {"magnetometer-sweep", 4000, 0.004},
      {"spectrometer-scan", 8000, 0.012},   // passes radiation belt
      {"imaging-burst", 2500, 0.030},       // solar flare window
      {"telemetry-compaction", 6000, 0.006},
      {"plasma-probe", 5000, 0.018},
  };

  sim::Simulator scheduler;
  sim::Accumulator mission_time;
  sim::Accumulator detection_latency;
  std::uint64_t total_faults = 0;
  std::uint64_t failed = 0;
  std::uint64_t corrupted = 0;
  double predictor_hits = 0.0;
  double predictor_total = 0.0;

  std::printf("=== space mission: %zu experiments under radiation ===\n\n",
              queue.size());
  std::printf("%-24s %6s %8s | %5s %9s %8s %7s %6s\n", "experiment",
              "rounds", "rate", "end", "time", "faults", "p", "rf");

  double launch_at = 0.0;
  for (std::size_t index = 0; index < queue.size(); ++index) {
    // The DES launches each experiment when the previous one finished;
    // the VDS engine reports how long it actually took.
    scheduler.call_at(launch_at, [] {});
    scheduler.run();

    const Experiment& experiment = queue[index];
    core::VdsOptions options = mission_options(experiment.rounds);

    fault::FaultConfig fc;
    fc.rate = experiment.fault_rate;
    fc.weight_transient = 0.85;
    fc.weight_crash = 0.13;            // latch-up style process crashes
    fc.weight_processor_crash = 0.02;  // full single-event upsets
    fc.locations = 12;
    fc.location_uniformity = 0.4;      // a few weak spots on the die
    fc.victim1_bias = 0.7;             // version 1 exercises them more

    sim::Rng fault_rng(1000 + index);
    auto timeline = fault::generate_timeline(
        fc, fault_rng, 1e7);

    core::SmtVds vds(options, sim::Rng(17 + index));
    vds.set_predictor(std::make_unique<fault::CrashEvidencePredictor>(
        std::make_unique<fault::HistoryPredictor>(6, 4)));
    const core::RunReport report = vds.run(timeline);

    mission_time.add(report.total_time);
    total_faults += report.faults_seen;
    if (!report.completed) ++failed;
    if (report.silent_corruption) ++corrupted;
    if (!report.detection_latency.empty()) {
      detection_latency.merge(report.detection_latency);
    }
    predictor_hits += static_cast<double>(report.prediction_hits);
    predictor_total += static_cast<double>(report.predictions);

    std::printf("%-24s %6llu %8.3f | %5s %9.1f %8llu %7.2f %6llu\n",
                experiment.name.c_str(),
                static_cast<unsigned long long>(experiment.rounds),
                experiment.fault_rate,
                report.completed ? "ok" : "FAIL", report.total_time,
                static_cast<unsigned long long>(report.faults_seen),
                report.predictor_accuracy(),
                static_cast<unsigned long long>(
                    report.roll_forward_rounds_gained));

    launch_at = scheduler.now() + report.total_time;
  }

  std::printf("\n=== mission summary ===\n");
  std::printf("experiments completed: %zu/%zu (silent corruptions: %llu)\n",
              queue.size() - failed, queue.size(),
              static_cast<unsigned long long>(corrupted));
  std::printf("total compute time:    %.1f\n", mission_time.sum());
  std::printf("faults absorbed:       %llu\n",
              static_cast<unsigned long long>(total_faults));
  if (!detection_latency.empty()) {
    std::printf("mean detection latency: %.3f (max %.3f)\n",
                detection_latency.mean(), detection_latency.max());
  }
  if (predictor_total > 0) {
    std::printf("fleet predictor accuracy p = %.3f "
                "(crash evidence + fault history)\n",
                predictor_hits / predictor_total);
  }
  return 0;
}
