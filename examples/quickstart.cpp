// Quickstart: the public API in ~60 lines.
//
// 1. Describe the VDS (round time, overheads, SMT alpha, checkpoint
//    interval, recovery scheme).
// 2. Generate a fault process.
// 3. Run the protocol engine and read the report.
// 4. Compare with the paper's closed-form prediction.

#include <cstdio>

#include "core/smt_engine.hpp"
#include "core/conventional.hpp"
#include "model/gain.hpp"
#include "model/limits.hpp"

int main() {
  using namespace vds;

  // --- 1. configure the virtual duplex system -------------------------
  core::VdsOptions options;
  options.t = 1.0;        // one round of useful work = 1 time unit
  options.c = 0.1;        // context switch (conventional processor)
  options.t_cmp = 0.1;    // state comparison
  options.alpha = 0.65;   // SMT slowdown factor (Pentium-4 figure)
  options.s = 20;         // checkpoint every 20 rounds
  options.job_rounds = 5000;
  options.scheme = core::RecoveryScheme::kRollForwardDet;

  // --- 2. a Poisson transient-fault process ---------------------------
  fault::FaultConfig fault_config;
  fault_config.rate = 0.01;  // ~one fault per 100 time units
  sim::Rng fault_rng(2024);
  auto timeline =
      fault::generate_timeline(fault_config, fault_rng, 50000.0);
  auto timeline_conv = timeline;  // identical history for the baseline
  timeline_conv.rewind();

  // --- 3. run both engines --------------------------------------------
  core::SmtVds smt(options, sim::Rng(1));
  const core::RunReport smt_report = smt.run(timeline);

  core::VdsOptions conv_options = options;
  conv_options.scheme = core::RecoveryScheme::kStopAndRetry;
  core::ConventionalVds conv(conv_options, sim::Rng(1));
  const core::RunReport conv_report = conv.run(timeline_conv);

  std::printf("SMT VDS:          %s\n", smt_report.to_string().c_str());
  std::printf("conventional VDS: %s\n", conv_report.to_string().c_str());

  // --- 4. compare with the analytical model ---------------------------
  const auto params = options.to_model_params(/*p=*/0.5);
  std::printf("\nmeasured speedup: %.3f\n",
              conv_report.total_time / smt_report.total_time);
  std::printf("model G_round (eq 4):        %.3f\n",
              model::gain_round(params));
  std::printf("model mean G_corr (eq 13):   %.3f\n",
              model::mean_gain_corr(params));
  std::printf("model G_max (s -> infinity): %.3f\n",
              model::g_max(params));
  return 0;
}
