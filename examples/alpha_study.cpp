// Capacity-planning study: should you deploy the VDS on an SMT part,
// and with which recovery scheme?
//
// The pipeline walks the whole library end to end:
//   workload generator -> cycle-level SMT core (measure alpha)
//     -> analytical model (pick the best scheme for that alpha)
//       -> protocol engine (validate the choice under injected faults).

#include <algorithm>
#include <memory>
#include <cstdio>
#include <utility>

#include "core/conventional.hpp"
#include "core/smt_engine.hpp"
#include "model/gain.hpp"
#include "model/limits.hpp"
#include "smt/metrics.hpp"
#include "smt/workload.hpp"

using namespace vds;

int main() {
  std::printf("=== alpha study: from cycle-level SMT measurement to "
              "scheme choice ===\n\n");

  const std::pair<const char*, smt::WorkloadConfig> applications[] = {
      {"signal-processing", smt::compute_bound_workload(25000)},
      {"database-scan", smt::memory_bound_workload(25000)},
      {"protocol-stack", smt::branchy_workload(25000)},
      {"control-law", smt::serial_chain_workload(25000)},
  };

  std::printf("%-20s %7s | %8s %8s %8s | %-16s | %9s\n", "application",
              "alpha", "G_round", "G_det", "G_corr", "chosen scheme",
              "validated");

  for (const auto& [name, workload] : applications) {
    // 1. Measure alpha for this application class on the simulated core.
    sim::Rng rng(99);
    const auto trace_a = smt::generate_trace(workload, rng);
    const auto trace_b = smt::generate_trace(workload, rng);
    smt::CoreConfig core_config;
    const auto measurement = smt::measure_alpha(
        core_config, smt::FetchPolicy::kIcount, trace_a, trace_b);
    const double alpha = std::clamp(measurement.alpha, 0.5, 1.0);

    // 2. Evaluate the model at the measured alpha (history predictors
    //    on structured fault streams reach p ~ 0.85; see bench E10).
    const double p = 0.85;
    const auto params = model::Params::with_beta(alpha, 0.1, 20, p);
    const double g_round = model::gain_round(params);
    const double g_det = model::mean_gain_det(params);
    const double g_corr = model::mean_gain_corr(params);

    const bool prediction_pays = g_corr >= g_det && p >= 0.5;
    const auto scheme = prediction_pays
                            ? core::RecoveryScheme::kRollForwardProb
                            : core::RecoveryScheme::kRollForwardDet;

    // 3. Validate with the protocol engine under a biased fault stream.
    core::VdsOptions options;
    options.alpha = alpha;
    options.c = 0.1;
    options.t_cmp = 0.1;
    options.s = 20;
    options.job_rounds = 8000;
    options.scheme = scheme;
    fault::FaultConfig fc;
    fc.rate = 0.01;
    fc.victim1_bias = 0.85;  // structure for the predictor to learn
    sim::Rng fault_rng(5);
    auto smt_timeline = fault::generate_timeline(fc, fault_rng, 1e6);
    auto conv_timeline = smt_timeline;
    conv_timeline.rewind();

    core::SmtVds smt_vds(options, sim::Rng(6));
    smt_vds.set_predictor(
        std::make_unique<fault::TwoBitPredictor>(16));
    const auto smt_report = smt_vds.run(smt_timeline);

    core::VdsOptions conv_options = options;
    conv_options.scheme = core::RecoveryScheme::kStopAndRetry;
    core::ConventionalVds conv(conv_options, sim::Rng(6));
    const auto conv_report = conv.run(conv_timeline);

    const double validated =
        conv_report.total_time / smt_report.total_time;
    std::printf("%-20s %7.3f | %8.3f %8.3f %8.3f | %-16s | %9.3f\n",
                name, alpha, g_round, g_det, g_corr,
                core::to_string(scheme).data(), validated);
  }

  std::printf(
      "\nreading the table: alpha from the cycle-level core feeds the\n"
      "paper's closed forms; G_corr >= G_det favours the predictive\n"
      "roll-forward whenever fault streams have learnable structure.\n"
      "The 'validated' column is the measured end-to-end speedup of the\n"
      "chosen configuration over the conventional-processor VDS.\n");
  return 0;
}
