// Transportation scenario (paper §1: "virtual duplex systems are
// already in commercial use in transportation environments, e.g. in the
// Copenhagen subway"). An interlocking controller must either produce
// correct switch/signal commands or shut down fail-safe -- silent
// corruption is the one unacceptable outcome.
//
// The example contrasts the recovery schemes on three hazard profiles
// and shows (a) transient storms are absorbed, (b) an isolated
// permanent fault is tolerated by swapping in the diverse spare
// version, (c) a pervasive permanent fault ends in a fail-safe
// shutdown rather than wrong-side failure.

#include <cstdio>
#include <vector>

#include "core/smt_engine.hpp"

using namespace vds;

namespace {

core::VdsOptions controller_options(core::RecoveryScheme scheme) {
  core::VdsOptions options;
  options.t = 1.0;      // one control cycle batch
  options.c = 0.05;
  options.t_cmp = 0.05;
  options.alpha = 0.68;
  options.s = 10;       // tight checkpoints: bounded rollback loss
  options.job_rounds = 20000;
  options.scheme = scheme;
  options.max_consecutive_failures = 5;
  return options;
}

struct Hazard {
  const char* name;
  fault::FaultConfig config;
  double affects_others;  // does the broken unit hit other versions?
};

std::vector<Hazard> hazards() {
  std::vector<Hazard> out;
  {
    Hazard h;
    h.name = "transient storm (EMI)";
    h.config.rate = 0.05;
    h.affects_others = 0.0;
    out.push_back(h);
  }
  {
    Hazard h;
    h.name = "isolated permanent defect";
    h.config.rate = 0.0005;
    h.config.weight_transient = 0.2;
    h.config.weight_permanent = 0.8;
    h.affects_others = 0.0;  // diversity avoids the broken unit
    out.push_back(h);
  }
  {
    Hazard h;
    h.name = "pervasive permanent defect";
    h.config.rate = 0.0005;
    h.config.weight_transient = 0.2;
    h.config.weight_permanent = 0.8;
    h.affects_others = 1.0;  // every version needs the broken unit
    out.push_back(h);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== subway interlocking controller: fail-safe VDS ===\n");

  const core::RecoveryScheme schemes[] = {
      core::RecoveryScheme::kStopAndRetry,
      core::RecoveryScheme::kRollForwardDet,
      core::RecoveryScheme::kRollForwardProb,
  };

  for (const Hazard& hazard : hazards()) {
    std::printf("\nhazard: %s (rate %.4f)\n", hazard.name,
                hazard.config.rate);
    std::printf("  %-18s %6s %10s %9s %9s %9s %7s\n", "scheme", "end",
                "time", "detects", "recover", "rollback", "silent");
    for (const auto scheme : schemes) {
      core::VdsOptions options = controller_options(scheme);
      options.permanent_affects_others_prob = hazard.affects_others;
      sim::Rng fault_rng(7);
      auto timeline =
          fault::generate_timeline(hazard.config, fault_rng, 1e6);
      core::SmtVds vds(options, sim::Rng(8));
      const core::RunReport report = vds.run(timeline);
      std::printf("  %-18s %6s %10.1f %9llu %9llu %9llu %7s\n",
                  core::to_string(scheme).data(),
                  report.completed ? "ok"
                                   : (report.failed_safe ? "SAFE" : "?"),
                  report.total_time,
                  static_cast<unsigned long long>(report.detections),
                  static_cast<unsigned long long>(report.recoveries_ok),
                  static_cast<unsigned long long>(report.rollbacks),
                  report.silent_corruption ? "YES" : "no");
    }
  }

  std::printf(
      "\ninterpretation:\n"
      "  * EMI storms cost throughput but never correctness.\n"
      "  * an isolated permanent defect is voted out: the spare diverse\n"
      "    version takes over the faulty slot and service continues.\n"
      "  * a pervasive defect can never win a majority: the controller\n"
      "    stops fail-safe ('SAFE') instead of emitting wrong commands --\n"
      "    exactly the behaviour a wrong-side-failure analysis demands.\n");
  return 0;
}
