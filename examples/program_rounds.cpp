// Program-backed rounds: the protocol engines treat a "round" as an
// abstract unit of work; this example closes the loop by running a VDS
// whose rounds execute *real programs* on the functional ISA machine --
// two automatically generated diverse variants computing the same
// kernel, compared by encoding-aware output digests, with a stuck-at
// fault injected into the multiplier halfway through.
//
// It demonstrates, end to end and without any protocol shortcut:
//   round execution -> comparison -> checkpoint -> detection ->
//   stop-and-retry with the third variant -> majority vote ->
//   continuation with the two healthy variants.

#include <cstdio>
#include <optional>
#include <vector>

#include "checkpoint/store.hpp"
#include "diversity/generator.hpp"
#include "diversity/transforms.hpp"
#include "smt/machine.hpp"
#include "smt/workload.hpp"

using namespace vds;

namespace {

constexpr std::uint64_t kBase = 1024;
constexpr std::uint64_t kElems = 48;
constexpr std::uint64_t kRounds = 30;
constexpr int kCheckpointEvery = 8;

/// One version: a diverse program variant plus its private machine.
struct Version {
  smt::Program program{"?"};
  smt::Machine machine{8192};
  const char* name = "?";

  /// Executes one round: reseeds the input region from the shared
  /// round-dependent data, runs the kernel, folds the output digest
  /// into a running state word stored in memory.
  std::uint64_t run_round(std::uint64_t round,
                          std::optional<smt::StuckAtFault> fault) {
    machine.set_fault(fault);
    smt::seed_kernel_inputs(machine, kBase, kElems, round * 7919);
    const auto result = machine.run(program, 1u << 22);
    if (!result.halted) return 0xDEAD;
    return machine.region_digest(kBase + kElems, kElems + 1);
  }
};

}  // namespace

/// A kernel whose arithmetic is expressible entirely with shifts:
/// out[i] = (a[i] << 1) + (a[i] << 3), plus a checksum. Strength
/// reduction can rewrite it to use the multiplier instead -- giving a
/// version pair whose *unit usage* differs completely.
smt::Program make_shift_kernel() {
  using smt::Opcode;
  smt::Program program("shift_kernel");
  const auto b = static_cast<std::int64_t>(kBase);
  const auto n = static_cast<std::int64_t>(kElems);
  program.push(smt::make_rri(Opcode::kAdd, 1, 0, 0));      // i = 0
  program.push(smt::make_rri(Opcode::kAdd, 2, 0, n));      // count
  program.push(smt::make_rri(Opcode::kAdd, 3, 0, b));      // in base
  program.push(smt::make_rri(Opcode::kAdd, 4, 0, b + n));  // out base
  program.push(smt::make_rri(Opcode::kAdd, 20, 0, 0));     // checksum
  program.push(smt::make_rrr(Opcode::kAdd, 10, 3, 1));     // 5: &a[i]
  program.push(smt::make_load(11, 10, 0));                 // a[i]
  program.push(smt::make_rri(Opcode::kShl, 12, 11, 1));    // a << 1
  program.push(smt::make_rri(Opcode::kShl, 13, 11, 3));    // a << 3
  program.push(smt::make_rrr(Opcode::kAdd, 12, 12, 13));
  program.push(smt::make_rrr(Opcode::kAdd, 14, 4, 1));
  program.push(smt::make_store(12, 14, 0));
  program.push(smt::make_rrr(Opcode::kXor, 20, 20, 12));
  program.push(smt::make_rri(Opcode::kAdd, 1, 1, 1));
  program.push(smt::make_branch(Opcode::kBne, 1, 2, -9));
  program.push(smt::make_store(20, 4, n));
  program.push(smt::make_halt());
  return program;
}

int main() {
  std::printf("=== VDS rounds executing real diverse programs ===\n\n");

  // Three diverse versions: V1 computes with shifts, V2 is the
  // strength-reduced rewrite computing the same values on the
  // *multiplier*, V3 a reordered/renamed shift variant (Jochim [4]).
  const smt::Program base = make_shift_kernel();
  sim::Rng transform_rng(11);
  diversity::Generator generator{sim::Rng(13)};
  Version v1{base, smt::Machine(8192), "V1(shl)"};
  Version v2{diversity::strength_reduce(base, transform_rng, 1.0),
             smt::Machine(8192), "V2(mul)"};
  Version v3{generator.variant(base, diversity::recipe_light()),
             smt::Machine(8192), "V3(shl')"};

  checkpoint::CheckpointStore store({}, 2, checkpoint::EccMode::kSecded);

  // A multiplier stuck-at bit appears at round 16 and stays: only V2
  // computes through the broken unit, so the comparison fires and the
  // vote isolates it -- the surviving shift-based pair is fault-free.
  const std::optional<smt::StuckAtFault> broken_mul =
      smt::StuckAtFault{smt::OpClass::kMul, 2, true};
  const std::uint64_t fault_round = 16;

  std::vector<std::uint64_t> committed;  // digests of committed rounds
  std::uint64_t last_checkpoint_round = 0;
  int detections = 0;
  int recoveries = 0;

  for (std::uint64_t round = 1; round <= kRounds; ++round) {
    const bool fault_active = round >= fault_round;
    // The fault lives in the multiplier: every version computes with
    // it, but only versions whose code *uses* mul for the affected
    // values produce wrong results.
    const auto fault =
        fault_active ? broken_mul : std::optional<smt::StuckAtFault>{};

    const std::uint64_t d1 = v1.run_round(round, fault);
    const std::uint64_t d2 = v2.run_round(round, fault);

    if (d1 == d2) {
      committed.push_back(d1);
      if (round % kCheckpointEvery == 0) {
        checkpoint::VersionState state(round, 4);
        store.save(round, state, static_cast<double>(round));
        last_checkpoint_round = round;
      }
      continue;
    }

    // Mismatch: stop-and-retry with the third diverse version.
    ++detections;
    std::printf("round %2llu: MISMATCH (%016llx vs %016llx) -> retry "
                "with %s\n",
                static_cast<unsigned long long>(round),
                static_cast<unsigned long long>(d1),
                static_cast<unsigned long long>(d2), v3.name);
    const std::uint64_t d3 = v3.run_round(round, fault);
    if (d3 == d1) {
      std::printf("          vote: %s faulty; continuing with %s + %s\n",
                  v2.name, v1.name, v3.name);
      std::swap(v2, v3);
      ++recoveries;
      committed.push_back(d1);
    } else if (d3 == d2) {
      std::printf("          vote: %s faulty; continuing with %s + %s\n",
                  v1.name, v2.name, v3.name);
      std::swap(v1, v3);
      ++recoveries;
      committed.push_back(d2);
    } else {
      std::printf("          no majority: rollback to round %llu\n",
                  static_cast<unsigned long long>(last_checkpoint_round));
      round = last_checkpoint_round;  // re-execute the interval
      committed.resize(last_checkpoint_round);
    }
  }

  std::printf("\ncommitted %zu rounds, %d detections, %d recoveries\n",
              committed.size(), detections, recoveries);
  std::printf("checkpoints saved: %llu (SEC-DED protected)\n",
              static_cast<unsigned long long>(store.saves()));
  std::printf(
      "\nthe permanent multiplier fault was detected by diversity and\n"
      "voted out; the surviving pair finished the job with correct\n"
      "results -- the paper's core fault-tolerance claim, executed on\n"
      "real (generated) diverse programs rather than abstract rounds.\n");
  return detections > 0 && recoveries > 0 ? 0 : 1;
}
