file(REMOVE_RECURSE
  "CMakeFiles/bench_alpha.dir/bench_alpha.cpp.o"
  "CMakeFiles/bench_alpha.dir/bench_alpha.cpp.o.d"
  "bench_alpha"
  "bench_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
