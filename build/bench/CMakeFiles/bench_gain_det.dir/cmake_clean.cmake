file(REMOVE_RECURSE
  "CMakeFiles/bench_gain_det.dir/bench_gain_det.cpp.o"
  "CMakeFiles/bench_gain_det.dir/bench_gain_det.cpp.o.d"
  "bench_gain_det"
  "bench_gain_det.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gain_det.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
