# Empty compiler generated dependencies file for bench_gain_det.
# This may be replaced when dependencies are built.
