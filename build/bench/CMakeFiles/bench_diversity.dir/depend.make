# Empty dependencies file for bench_diversity.
# This may be replaced when dependencies are built.
