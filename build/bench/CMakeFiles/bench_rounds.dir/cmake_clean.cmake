file(REMOVE_RECURSE
  "CMakeFiles/bench_rounds.dir/bench_rounds.cpp.o"
  "CMakeFiles/bench_rounds.dir/bench_rounds.cpp.o.d"
  "bench_rounds"
  "bench_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
