file(REMOVE_RECURSE
  "CMakeFiles/bench_gain_round.dir/bench_gain_round.cpp.o"
  "CMakeFiles/bench_gain_round.dir/bench_gain_round.cpp.o.d"
  "bench_gain_round"
  "bench_gain_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gain_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
