# Empty dependencies file for bench_gain_round.
# This may be replaced when dependencies are built.
