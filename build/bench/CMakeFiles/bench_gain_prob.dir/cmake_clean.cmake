file(REMOVE_RECURSE
  "CMakeFiles/bench_gain_prob.dir/bench_gain_prob.cpp.o"
  "CMakeFiles/bench_gain_prob.dir/bench_gain_prob.cpp.o.d"
  "bench_gain_prob"
  "bench_gain_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gain_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
