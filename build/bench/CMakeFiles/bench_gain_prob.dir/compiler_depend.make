# Empty compiler generated dependencies file for bench_gain_prob.
# This may be replaced when dependencies are built.
