file(REMOVE_RECURSE
  "CMakeFiles/bench_srt.dir/bench_srt.cpp.o"
  "CMakeFiles/bench_srt.dir/bench_srt.cpp.o.d"
  "bench_srt"
  "bench_srt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_srt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
