# Empty compiler generated dependencies file for bench_srt.
# This may be replaced when dependencies are built.
