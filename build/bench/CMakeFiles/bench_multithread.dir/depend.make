# Empty dependencies file for bench_multithread.
# This may be replaced when dependencies are built.
