file(REMOVE_RECURSE
  "CMakeFiles/bench_multithread.dir/bench_multithread.cpp.o"
  "CMakeFiles/bench_multithread.dir/bench_multithread.cpp.o.d"
  "bench_multithread"
  "bench_multithread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
