file(REMOVE_RECURSE
  "CMakeFiles/bench_gmax.dir/bench_gmax.cpp.o"
  "CMakeFiles/bench_gmax.dir/bench_gmax.cpp.o.d"
  "bench_gmax"
  "bench_gmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
