# Empty dependencies file for bench_gmax.
# This may be replaced when dependencies are built.
