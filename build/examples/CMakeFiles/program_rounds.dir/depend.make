# Empty dependencies file for program_rounds.
# This may be replaced when dependencies are built.
