file(REMOVE_RECURSE
  "CMakeFiles/program_rounds.dir/program_rounds.cpp.o"
  "CMakeFiles/program_rounds.dir/program_rounds.cpp.o.d"
  "program_rounds"
  "program_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
