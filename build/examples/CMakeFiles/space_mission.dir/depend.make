# Empty dependencies file for space_mission.
# This may be replaced when dependencies are built.
