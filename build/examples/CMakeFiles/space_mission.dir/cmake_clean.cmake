file(REMOVE_RECURSE
  "CMakeFiles/space_mission.dir/space_mission.cpp.o"
  "CMakeFiles/space_mission.dir/space_mission.cpp.o.d"
  "space_mission"
  "space_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
