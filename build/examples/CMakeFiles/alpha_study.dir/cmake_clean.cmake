file(REMOVE_RECURSE
  "CMakeFiles/alpha_study.dir/alpha_study.cpp.o"
  "CMakeFiles/alpha_study.dir/alpha_study.cpp.o.d"
  "alpha_study"
  "alpha_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
