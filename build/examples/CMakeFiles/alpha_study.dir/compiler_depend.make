# Empty compiler generated dependencies file for alpha_study.
# This may be replaced when dependencies are built.
