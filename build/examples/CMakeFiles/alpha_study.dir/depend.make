# Empty dependencies file for alpha_study.
# This may be replaced when dependencies are built.
