file(REMOVE_RECURSE
  "CMakeFiles/subway_interlocking.dir/subway_interlocking.cpp.o"
  "CMakeFiles/subway_interlocking.dir/subway_interlocking.cpp.o.d"
  "subway_interlocking"
  "subway_interlocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subway_interlocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
