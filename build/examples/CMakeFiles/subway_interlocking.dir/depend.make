# Empty dependencies file for subway_interlocking.
# This may be replaced when dependencies are built.
