
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/vds_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/vds_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/conventional.cpp" "src/core/CMakeFiles/vds_core.dir/conventional.cpp.o" "gcc" "src/core/CMakeFiles/vds_core.dir/conventional.cpp.o.d"
  "/root/repo/src/core/options.cpp" "src/core/CMakeFiles/vds_core.dir/options.cpp.o" "gcc" "src/core/CMakeFiles/vds_core.dir/options.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/vds_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/vds_core.dir/report.cpp.o.d"
  "/root/repo/src/core/smt_engine.cpp" "src/core/CMakeFiles/vds_core.dir/smt_engine.cpp.o" "gcc" "src/core/CMakeFiles/vds_core.dir/smt_engine.cpp.o.d"
  "/root/repo/src/core/version_set.cpp" "src/core/CMakeFiles/vds_core.dir/version_set.cpp.o" "gcc" "src/core/CMakeFiles/vds_core.dir/version_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/vds_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/vds_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
