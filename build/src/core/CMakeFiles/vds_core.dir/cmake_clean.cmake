file(REMOVE_RECURSE
  "CMakeFiles/vds_core.dir/campaign.cpp.o"
  "CMakeFiles/vds_core.dir/campaign.cpp.o.d"
  "CMakeFiles/vds_core.dir/conventional.cpp.o"
  "CMakeFiles/vds_core.dir/conventional.cpp.o.d"
  "CMakeFiles/vds_core.dir/options.cpp.o"
  "CMakeFiles/vds_core.dir/options.cpp.o.d"
  "CMakeFiles/vds_core.dir/report.cpp.o"
  "CMakeFiles/vds_core.dir/report.cpp.o.d"
  "CMakeFiles/vds_core.dir/smt_engine.cpp.o"
  "CMakeFiles/vds_core.dir/smt_engine.cpp.o.d"
  "CMakeFiles/vds_core.dir/version_set.cpp.o"
  "CMakeFiles/vds_core.dir/version_set.cpp.o.d"
  "libvds_core.a"
  "libvds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
