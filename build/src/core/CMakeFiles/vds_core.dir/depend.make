# Empty dependencies file for vds_core.
# This may be replaced when dependencies are built.
