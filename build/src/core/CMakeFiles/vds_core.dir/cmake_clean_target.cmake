file(REMOVE_RECURSE
  "libvds_core.a"
)
