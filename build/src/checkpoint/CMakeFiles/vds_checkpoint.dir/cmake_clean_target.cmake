file(REMOVE_RECURSE
  "libvds_checkpoint.a"
)
