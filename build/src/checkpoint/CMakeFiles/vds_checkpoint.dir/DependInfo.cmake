
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checkpoint/codes.cpp" "src/checkpoint/CMakeFiles/vds_checkpoint.dir/codes.cpp.o" "gcc" "src/checkpoint/CMakeFiles/vds_checkpoint.dir/codes.cpp.o.d"
  "/root/repo/src/checkpoint/state.cpp" "src/checkpoint/CMakeFiles/vds_checkpoint.dir/state.cpp.o" "gcc" "src/checkpoint/CMakeFiles/vds_checkpoint.dir/state.cpp.o.d"
  "/root/repo/src/checkpoint/store.cpp" "src/checkpoint/CMakeFiles/vds_checkpoint.dir/store.cpp.o" "gcc" "src/checkpoint/CMakeFiles/vds_checkpoint.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
