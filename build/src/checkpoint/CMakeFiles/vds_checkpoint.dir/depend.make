# Empty dependencies file for vds_checkpoint.
# This may be replaced when dependencies are built.
