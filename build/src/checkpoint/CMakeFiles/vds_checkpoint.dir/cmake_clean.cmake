file(REMOVE_RECURSE
  "CMakeFiles/vds_checkpoint.dir/codes.cpp.o"
  "CMakeFiles/vds_checkpoint.dir/codes.cpp.o.d"
  "CMakeFiles/vds_checkpoint.dir/state.cpp.o"
  "CMakeFiles/vds_checkpoint.dir/state.cpp.o.d"
  "CMakeFiles/vds_checkpoint.dir/store.cpp.o"
  "CMakeFiles/vds_checkpoint.dir/store.cpp.o.d"
  "libvds_checkpoint.a"
  "libvds_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
