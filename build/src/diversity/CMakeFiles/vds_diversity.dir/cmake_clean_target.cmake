file(REMOVE_RECURSE
  "libvds_diversity.a"
)
