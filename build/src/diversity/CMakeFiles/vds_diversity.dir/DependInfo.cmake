
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diversity/coverage.cpp" "src/diversity/CMakeFiles/vds_diversity.dir/coverage.cpp.o" "gcc" "src/diversity/CMakeFiles/vds_diversity.dir/coverage.cpp.o.d"
  "/root/repo/src/diversity/generator.cpp" "src/diversity/CMakeFiles/vds_diversity.dir/generator.cpp.o" "gcc" "src/diversity/CMakeFiles/vds_diversity.dir/generator.cpp.o.d"
  "/root/repo/src/diversity/transforms.cpp" "src/diversity/CMakeFiles/vds_diversity.dir/transforms.cpp.o" "gcc" "src/diversity/CMakeFiles/vds_diversity.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smt/CMakeFiles/vds_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
