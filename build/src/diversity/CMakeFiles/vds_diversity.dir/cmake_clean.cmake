file(REMOVE_RECURSE
  "CMakeFiles/vds_diversity.dir/coverage.cpp.o"
  "CMakeFiles/vds_diversity.dir/coverage.cpp.o.d"
  "CMakeFiles/vds_diversity.dir/generator.cpp.o"
  "CMakeFiles/vds_diversity.dir/generator.cpp.o.d"
  "CMakeFiles/vds_diversity.dir/transforms.cpp.o"
  "CMakeFiles/vds_diversity.dir/transforms.cpp.o.d"
  "libvds_diversity.a"
  "libvds_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
