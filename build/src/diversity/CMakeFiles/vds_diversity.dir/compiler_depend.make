# Empty compiler generated dependencies file for vds_diversity.
# This may be replaced when dependencies are built.
