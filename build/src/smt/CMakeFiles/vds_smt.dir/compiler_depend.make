# Empty compiler generated dependencies file for vds_smt.
# This may be replaced when dependencies are built.
