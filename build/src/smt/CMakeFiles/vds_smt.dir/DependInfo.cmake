
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/cache.cpp" "src/smt/CMakeFiles/vds_smt.dir/cache.cpp.o" "gcc" "src/smt/CMakeFiles/vds_smt.dir/cache.cpp.o.d"
  "/root/repo/src/smt/core.cpp" "src/smt/CMakeFiles/vds_smt.dir/core.cpp.o" "gcc" "src/smt/CMakeFiles/vds_smt.dir/core.cpp.o.d"
  "/root/repo/src/smt/isa.cpp" "src/smt/CMakeFiles/vds_smt.dir/isa.cpp.o" "gcc" "src/smt/CMakeFiles/vds_smt.dir/isa.cpp.o.d"
  "/root/repo/src/smt/machine.cpp" "src/smt/CMakeFiles/vds_smt.dir/machine.cpp.o" "gcc" "src/smt/CMakeFiles/vds_smt.dir/machine.cpp.o.d"
  "/root/repo/src/smt/metrics.cpp" "src/smt/CMakeFiles/vds_smt.dir/metrics.cpp.o" "gcc" "src/smt/CMakeFiles/vds_smt.dir/metrics.cpp.o.d"
  "/root/repo/src/smt/program.cpp" "src/smt/CMakeFiles/vds_smt.dir/program.cpp.o" "gcc" "src/smt/CMakeFiles/vds_smt.dir/program.cpp.o.d"
  "/root/repo/src/smt/workload.cpp" "src/smt/CMakeFiles/vds_smt.dir/workload.cpp.o" "gcc" "src/smt/CMakeFiles/vds_smt.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
