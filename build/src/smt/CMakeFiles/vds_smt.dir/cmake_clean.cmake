file(REMOVE_RECURSE
  "CMakeFiles/vds_smt.dir/cache.cpp.o"
  "CMakeFiles/vds_smt.dir/cache.cpp.o.d"
  "CMakeFiles/vds_smt.dir/core.cpp.o"
  "CMakeFiles/vds_smt.dir/core.cpp.o.d"
  "CMakeFiles/vds_smt.dir/isa.cpp.o"
  "CMakeFiles/vds_smt.dir/isa.cpp.o.d"
  "CMakeFiles/vds_smt.dir/machine.cpp.o"
  "CMakeFiles/vds_smt.dir/machine.cpp.o.d"
  "CMakeFiles/vds_smt.dir/metrics.cpp.o"
  "CMakeFiles/vds_smt.dir/metrics.cpp.o.d"
  "CMakeFiles/vds_smt.dir/program.cpp.o"
  "CMakeFiles/vds_smt.dir/program.cpp.o.d"
  "CMakeFiles/vds_smt.dir/workload.cpp.o"
  "CMakeFiles/vds_smt.dir/workload.cpp.o.d"
  "libvds_smt.a"
  "libvds_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
