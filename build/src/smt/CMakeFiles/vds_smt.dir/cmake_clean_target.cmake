file(REMOVE_RECURSE
  "libvds_smt.a"
)
