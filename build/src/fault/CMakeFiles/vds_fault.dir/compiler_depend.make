# Empty compiler generated dependencies file for vds_fault.
# This may be replaced when dependencies are built.
