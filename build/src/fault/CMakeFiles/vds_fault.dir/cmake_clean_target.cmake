file(REMOVE_RECURSE
  "libvds_fault.a"
)
