file(REMOVE_RECURSE
  "CMakeFiles/vds_fault.dir/detector.cpp.o"
  "CMakeFiles/vds_fault.dir/detector.cpp.o.d"
  "CMakeFiles/vds_fault.dir/fault_model.cpp.o"
  "CMakeFiles/vds_fault.dir/fault_model.cpp.o.d"
  "CMakeFiles/vds_fault.dir/injector.cpp.o"
  "CMakeFiles/vds_fault.dir/injector.cpp.o.d"
  "CMakeFiles/vds_fault.dir/predictor.cpp.o"
  "CMakeFiles/vds_fault.dir/predictor.cpp.o.d"
  "libvds_fault.a"
  "libvds_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
