file(REMOVE_RECURSE
  "CMakeFiles/vds_sim.dir/event_queue.cpp.o"
  "CMakeFiles/vds_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/vds_sim.dir/rng.cpp.o"
  "CMakeFiles/vds_sim.dir/rng.cpp.o.d"
  "CMakeFiles/vds_sim.dir/simulator.cpp.o"
  "CMakeFiles/vds_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/vds_sim.dir/stats.cpp.o"
  "CMakeFiles/vds_sim.dir/stats.cpp.o.d"
  "CMakeFiles/vds_sim.dir/trace.cpp.o"
  "CMakeFiles/vds_sim.dir/trace.cpp.o.d"
  "libvds_sim.a"
  "libvds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
