file(REMOVE_RECURSE
  "libvds_sim.a"
)
