# Empty dependencies file for vds_sim.
# This may be replaced when dependencies are built.
