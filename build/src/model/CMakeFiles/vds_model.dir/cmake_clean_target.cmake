file(REMOVE_RECURSE
  "libvds_model.a"
)
