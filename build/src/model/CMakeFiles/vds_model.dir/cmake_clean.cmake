file(REMOVE_RECURSE
  "CMakeFiles/vds_model.dir/gain.cpp.o"
  "CMakeFiles/vds_model.dir/gain.cpp.o.d"
  "CMakeFiles/vds_model.dir/limits.cpp.o"
  "CMakeFiles/vds_model.dir/limits.cpp.o.d"
  "CMakeFiles/vds_model.dir/params.cpp.o"
  "CMakeFiles/vds_model.dir/params.cpp.o.d"
  "CMakeFiles/vds_model.dir/reliability.cpp.o"
  "CMakeFiles/vds_model.dir/reliability.cpp.o.d"
  "CMakeFiles/vds_model.dir/surface.cpp.o"
  "CMakeFiles/vds_model.dir/surface.cpp.o.d"
  "CMakeFiles/vds_model.dir/timing.cpp.o"
  "CMakeFiles/vds_model.dir/timing.cpp.o.d"
  "libvds_model.a"
  "libvds_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
