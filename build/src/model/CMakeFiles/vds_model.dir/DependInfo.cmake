
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/gain.cpp" "src/model/CMakeFiles/vds_model.dir/gain.cpp.o" "gcc" "src/model/CMakeFiles/vds_model.dir/gain.cpp.o.d"
  "/root/repo/src/model/limits.cpp" "src/model/CMakeFiles/vds_model.dir/limits.cpp.o" "gcc" "src/model/CMakeFiles/vds_model.dir/limits.cpp.o.d"
  "/root/repo/src/model/params.cpp" "src/model/CMakeFiles/vds_model.dir/params.cpp.o" "gcc" "src/model/CMakeFiles/vds_model.dir/params.cpp.o.d"
  "/root/repo/src/model/reliability.cpp" "src/model/CMakeFiles/vds_model.dir/reliability.cpp.o" "gcc" "src/model/CMakeFiles/vds_model.dir/reliability.cpp.o.d"
  "/root/repo/src/model/surface.cpp" "src/model/CMakeFiles/vds_model.dir/surface.cpp.o" "gcc" "src/model/CMakeFiles/vds_model.dir/surface.cpp.o.d"
  "/root/repo/src/model/timing.cpp" "src/model/CMakeFiles/vds_model.dir/timing.cpp.o" "gcc" "src/model/CMakeFiles/vds_model.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
