# Empty dependencies file for vds_model.
# This may be replaced when dependencies are built.
