file(REMOVE_RECURSE
  "libvds_baseline.a"
)
