# Empty dependencies file for vds_baseline.
# This may be replaced when dependencies are built.
