
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/duplex.cpp" "src/baseline/CMakeFiles/vds_baseline.dir/duplex.cpp.o" "gcc" "src/baseline/CMakeFiles/vds_baseline.dir/duplex.cpp.o.d"
  "/root/repo/src/baseline/srt.cpp" "src/baseline/CMakeFiles/vds_baseline.dir/srt.cpp.o" "gcc" "src/baseline/CMakeFiles/vds_baseline.dir/srt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/vds_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/vds_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vds_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
