file(REMOVE_RECURSE
  "CMakeFiles/vds_baseline.dir/duplex.cpp.o"
  "CMakeFiles/vds_baseline.dir/duplex.cpp.o.d"
  "CMakeFiles/vds_baseline.dir/srt.cpp.o"
  "CMakeFiles/vds_baseline.dir/srt.cpp.o.d"
  "libvds_baseline.a"
  "libvds_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
