# Empty dependencies file for vds_sweep.
# This may be replaced when dependencies are built.
