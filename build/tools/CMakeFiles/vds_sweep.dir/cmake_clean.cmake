file(REMOVE_RECURSE
  "CMakeFiles/vds_sweep.dir/vds_sweep.cpp.o"
  "CMakeFiles/vds_sweep.dir/vds_sweep.cpp.o.d"
  "vds_sweep"
  "vds_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
