file(REMOVE_RECURSE
  "CMakeFiles/vds_cli.dir/vds_cli.cpp.o"
  "CMakeFiles/vds_cli.dir/vds_cli.cpp.o.d"
  "vds_cli"
  "vds_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vds_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
