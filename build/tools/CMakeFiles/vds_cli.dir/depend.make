# Empty dependencies file for vds_cli.
# This may be replaced when dependencies are built.
