file(REMOVE_RECURSE
  "CMakeFiles/fault_test_predictor_advanced.dir/fault/test_predictor_advanced.cpp.o"
  "CMakeFiles/fault_test_predictor_advanced.dir/fault/test_predictor_advanced.cpp.o.d"
  "fault_test_predictor_advanced"
  "fault_test_predictor_advanced.pdb"
  "fault_test_predictor_advanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_test_predictor_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
