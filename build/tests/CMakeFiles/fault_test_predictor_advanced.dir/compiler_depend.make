# Empty compiler generated dependencies file for fault_test_predictor_advanced.
# This may be replaced when dependencies are built.
