file(REMOVE_RECURSE
  "CMakeFiles/core_test_checkpoint_latency.dir/core/test_checkpoint_latency.cpp.o"
  "CMakeFiles/core_test_checkpoint_latency.dir/core/test_checkpoint_latency.cpp.o.d"
  "core_test_checkpoint_latency"
  "core_test_checkpoint_latency.pdb"
  "core_test_checkpoint_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_checkpoint_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
