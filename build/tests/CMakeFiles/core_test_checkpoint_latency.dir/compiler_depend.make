# Empty compiler generated dependencies file for core_test_checkpoint_latency.
# This may be replaced when dependencies are built.
