# Empty dependencies file for diversity_test_complement.
# This may be replaced when dependencies are built.
