file(REMOVE_RECURSE
  "CMakeFiles/diversity_test_complement.dir/diversity/test_complement.cpp.o"
  "CMakeFiles/diversity_test_complement.dir/diversity/test_complement.cpp.o.d"
  "diversity_test_complement"
  "diversity_test_complement.pdb"
  "diversity_test_complement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_test_complement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
