# Empty dependencies file for sim_test_simulator.
# This may be replaced when dependencies are built.
