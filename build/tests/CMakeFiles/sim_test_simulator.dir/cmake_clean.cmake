file(REMOVE_RECURSE
  "CMakeFiles/sim_test_simulator.dir/sim/test_simulator.cpp.o"
  "CMakeFiles/sim_test_simulator.dir/sim/test_simulator.cpp.o.d"
  "sim_test_simulator"
  "sim_test_simulator.pdb"
  "sim_test_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
