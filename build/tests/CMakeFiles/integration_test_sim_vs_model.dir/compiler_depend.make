# Empty compiler generated dependencies file for integration_test_sim_vs_model.
# This may be replaced when dependencies are built.
