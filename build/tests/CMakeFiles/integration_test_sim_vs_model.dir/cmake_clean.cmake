file(REMOVE_RECURSE
  "CMakeFiles/integration_test_sim_vs_model.dir/integration/test_sim_vs_model.cpp.o"
  "CMakeFiles/integration_test_sim_vs_model.dir/integration/test_sim_vs_model.cpp.o.d"
  "integration_test_sim_vs_model"
  "integration_test_sim_vs_model.pdb"
  "integration_test_sim_vs_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test_sim_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
