file(REMOVE_RECURSE
  "CMakeFiles/model_test_limits.dir/model/test_limits.cpp.o"
  "CMakeFiles/model_test_limits.dir/model/test_limits.cpp.o.d"
  "model_test_limits"
  "model_test_limits.pdb"
  "model_test_limits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_test_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
