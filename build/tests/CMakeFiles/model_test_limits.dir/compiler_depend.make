# Empty compiler generated dependencies file for model_test_limits.
# This may be replaced when dependencies are built.
