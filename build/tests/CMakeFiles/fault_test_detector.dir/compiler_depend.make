# Empty compiler generated dependencies file for fault_test_detector.
# This may be replaced when dependencies are built.
