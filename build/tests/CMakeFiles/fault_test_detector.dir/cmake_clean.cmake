file(REMOVE_RECURSE
  "CMakeFiles/fault_test_detector.dir/fault/test_detector.cpp.o"
  "CMakeFiles/fault_test_detector.dir/fault/test_detector.cpp.o.d"
  "fault_test_detector"
  "fault_test_detector.pdb"
  "fault_test_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_test_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
