file(REMOVE_RECURSE
  "CMakeFiles/core_test_smt_engine.dir/core/test_smt_engine.cpp.o"
  "CMakeFiles/core_test_smt_engine.dir/core/test_smt_engine.cpp.o.d"
  "core_test_smt_engine"
  "core_test_smt_engine.pdb"
  "core_test_smt_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_smt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
