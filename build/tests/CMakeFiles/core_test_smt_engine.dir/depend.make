# Empty dependencies file for core_test_smt_engine.
# This may be replaced when dependencies are built.
