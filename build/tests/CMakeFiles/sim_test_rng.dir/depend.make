# Empty dependencies file for sim_test_rng.
# This may be replaced when dependencies are built.
