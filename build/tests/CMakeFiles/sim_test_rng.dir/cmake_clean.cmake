file(REMOVE_RECURSE
  "CMakeFiles/sim_test_rng.dir/sim/test_rng.cpp.o"
  "CMakeFiles/sim_test_rng.dir/sim/test_rng.cpp.o.d"
  "sim_test_rng"
  "sim_test_rng.pdb"
  "sim_test_rng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
