file(REMOVE_RECURSE
  "CMakeFiles/smt_test_isa.dir/smt/test_isa.cpp.o"
  "CMakeFiles/smt_test_isa.dir/smt/test_isa.cpp.o.d"
  "smt_test_isa"
  "smt_test_isa.pdb"
  "smt_test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
