# Empty dependencies file for smt_test_isa.
# This may be replaced when dependencies are built.
