file(REMOVE_RECURSE
  "CMakeFiles/model_test_reliability.dir/model/test_reliability.cpp.o"
  "CMakeFiles/model_test_reliability.dir/model/test_reliability.cpp.o.d"
  "model_test_reliability"
  "model_test_reliability.pdb"
  "model_test_reliability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_test_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
