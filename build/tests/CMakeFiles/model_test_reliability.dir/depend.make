# Empty dependencies file for model_test_reliability.
# This may be replaced when dependencies are built.
