file(REMOVE_RECURSE
  "CMakeFiles/diversity_test_coverage.dir/diversity/test_coverage.cpp.o"
  "CMakeFiles/diversity_test_coverage.dir/diversity/test_coverage.cpp.o.d"
  "diversity_test_coverage"
  "diversity_test_coverage.pdb"
  "diversity_test_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_test_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
