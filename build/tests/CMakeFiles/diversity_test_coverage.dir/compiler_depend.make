# Empty compiler generated dependencies file for diversity_test_coverage.
# This may be replaced when dependencies are built.
