file(REMOVE_RECURSE
  "CMakeFiles/smt_test_machine.dir/smt/test_machine.cpp.o"
  "CMakeFiles/smt_test_machine.dir/smt/test_machine.cpp.o.d"
  "smt_test_machine"
  "smt_test_machine.pdb"
  "smt_test_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_test_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
