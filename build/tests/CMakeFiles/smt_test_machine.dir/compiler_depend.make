# Empty compiler generated dependencies file for smt_test_machine.
# This may be replaced when dependencies are built.
