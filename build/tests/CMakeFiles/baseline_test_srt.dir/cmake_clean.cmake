file(REMOVE_RECURSE
  "CMakeFiles/baseline_test_srt.dir/baseline/test_srt.cpp.o"
  "CMakeFiles/baseline_test_srt.dir/baseline/test_srt.cpp.o.d"
  "baseline_test_srt"
  "baseline_test_srt.pdb"
  "baseline_test_srt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_test_srt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
