# Empty dependencies file for baseline_test_srt.
# This may be replaced when dependencies are built.
