file(REMOVE_RECURSE
  "CMakeFiles/diversity_test_transforms.dir/diversity/test_transforms.cpp.o"
  "CMakeFiles/diversity_test_transforms.dir/diversity/test_transforms.cpp.o.d"
  "diversity_test_transforms"
  "diversity_test_transforms.pdb"
  "diversity_test_transforms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_test_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
