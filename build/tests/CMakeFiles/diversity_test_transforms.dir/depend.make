# Empty dependencies file for diversity_test_transforms.
# This may be replaced when dependencies are built.
