# Empty compiler generated dependencies file for baseline_test_duplex.
# This may be replaced when dependencies are built.
