file(REMOVE_RECURSE
  "CMakeFiles/baseline_test_duplex.dir/baseline/test_duplex.cpp.o"
  "CMakeFiles/baseline_test_duplex.dir/baseline/test_duplex.cpp.o.d"
  "baseline_test_duplex"
  "baseline_test_duplex.pdb"
  "baseline_test_duplex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_test_duplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
