file(REMOVE_RECURSE
  "CMakeFiles/smt_test_cache.dir/smt/test_cache.cpp.o"
  "CMakeFiles/smt_test_cache.dir/smt/test_cache.cpp.o.d"
  "smt_test_cache"
  "smt_test_cache.pdb"
  "smt_test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
