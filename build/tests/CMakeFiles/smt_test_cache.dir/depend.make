# Empty dependencies file for smt_test_cache.
# This may be replaced when dependencies are built.
