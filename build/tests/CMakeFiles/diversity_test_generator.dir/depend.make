# Empty dependencies file for diversity_test_generator.
# This may be replaced when dependencies are built.
