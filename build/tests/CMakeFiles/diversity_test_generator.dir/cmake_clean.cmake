file(REMOVE_RECURSE
  "CMakeFiles/diversity_test_generator.dir/diversity/test_generator.cpp.o"
  "CMakeFiles/diversity_test_generator.dir/diversity/test_generator.cpp.o.d"
  "diversity_test_generator"
  "diversity_test_generator.pdb"
  "diversity_test_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_test_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
