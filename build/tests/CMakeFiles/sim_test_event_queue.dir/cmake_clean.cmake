file(REMOVE_RECURSE
  "CMakeFiles/sim_test_event_queue.dir/sim/test_event_queue.cpp.o"
  "CMakeFiles/sim_test_event_queue.dir/sim/test_event_queue.cpp.o.d"
  "sim_test_event_queue"
  "sim_test_event_queue.pdb"
  "sim_test_event_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_event_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
