file(REMOVE_RECURSE
  "CMakeFiles/sim_test_stats.dir/sim/test_stats.cpp.o"
  "CMakeFiles/sim_test_stats.dir/sim/test_stats.cpp.o.d"
  "sim_test_stats"
  "sim_test_stats.pdb"
  "sim_test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
