# Empty dependencies file for sim_test_stats.
# This may be replaced when dependencies are built.
