
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_stats.cpp" "tests/CMakeFiles/sim_test_stats.dir/sim/test_stats.cpp.o" "gcc" "tests/CMakeFiles/sim_test_stats.dir/sim/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diversity/CMakeFiles/vds_diversity.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/vds_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vds_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/vds_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/vds_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
