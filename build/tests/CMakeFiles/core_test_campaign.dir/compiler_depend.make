# Empty compiler generated dependencies file for core_test_campaign.
# This may be replaced when dependencies are built.
