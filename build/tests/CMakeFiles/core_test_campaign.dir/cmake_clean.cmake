file(REMOVE_RECURSE
  "CMakeFiles/core_test_campaign.dir/core/test_campaign.cpp.o"
  "CMakeFiles/core_test_campaign.dir/core/test_campaign.cpp.o.d"
  "core_test_campaign"
  "core_test_campaign.pdb"
  "core_test_campaign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
