file(REMOVE_RECURSE
  "CMakeFiles/core_test_version_set.dir/core/test_version_set.cpp.o"
  "CMakeFiles/core_test_version_set.dir/core/test_version_set.cpp.o.d"
  "core_test_version_set"
  "core_test_version_set.pdb"
  "core_test_version_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_version_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
