# Empty dependencies file for core_test_version_set.
# This may be replaced when dependencies are built.
