file(REMOVE_RECURSE
  "CMakeFiles/integration_test_engine_properties.dir/integration/test_engine_properties.cpp.o"
  "CMakeFiles/integration_test_engine_properties.dir/integration/test_engine_properties.cpp.o.d"
  "integration_test_engine_properties"
  "integration_test_engine_properties.pdb"
  "integration_test_engine_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test_engine_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
