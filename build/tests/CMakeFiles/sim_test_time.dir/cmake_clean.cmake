file(REMOVE_RECURSE
  "CMakeFiles/sim_test_time.dir/sim/test_time.cpp.o"
  "CMakeFiles/sim_test_time.dir/sim/test_time.cpp.o.d"
  "sim_test_time"
  "sim_test_time.pdb"
  "sim_test_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
