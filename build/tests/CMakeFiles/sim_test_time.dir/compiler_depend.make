# Empty compiler generated dependencies file for sim_test_time.
# This may be replaced when dependencies are built.
