# Empty compiler generated dependencies file for smt_test_workload.
# This may be replaced when dependencies are built.
