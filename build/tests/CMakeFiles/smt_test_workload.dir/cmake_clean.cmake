file(REMOVE_RECURSE
  "CMakeFiles/smt_test_workload.dir/smt/test_workload.cpp.o"
  "CMakeFiles/smt_test_workload.dir/smt/test_workload.cpp.o.d"
  "smt_test_workload"
  "smt_test_workload.pdb"
  "smt_test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
