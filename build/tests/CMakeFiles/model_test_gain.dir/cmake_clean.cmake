file(REMOVE_RECURSE
  "CMakeFiles/model_test_gain.dir/model/test_gain.cpp.o"
  "CMakeFiles/model_test_gain.dir/model/test_gain.cpp.o.d"
  "model_test_gain"
  "model_test_gain.pdb"
  "model_test_gain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_test_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
