# Empty dependencies file for model_test_gain.
# This may be replaced when dependencies are built.
