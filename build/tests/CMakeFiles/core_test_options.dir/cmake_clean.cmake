file(REMOVE_RECURSE
  "CMakeFiles/core_test_options.dir/core/test_options.cpp.o"
  "CMakeFiles/core_test_options.dir/core/test_options.cpp.o.d"
  "core_test_options"
  "core_test_options.pdb"
  "core_test_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
