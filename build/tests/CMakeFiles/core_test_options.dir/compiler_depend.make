# Empty compiler generated dependencies file for core_test_options.
# This may be replaced when dependencies are built.
