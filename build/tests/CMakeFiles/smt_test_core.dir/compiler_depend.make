# Empty compiler generated dependencies file for smt_test_core.
# This may be replaced when dependencies are built.
