file(REMOVE_RECURSE
  "CMakeFiles/smt_test_core.dir/smt/test_core.cpp.o"
  "CMakeFiles/smt_test_core.dir/smt/test_core.cpp.o.d"
  "smt_test_core"
  "smt_test_core.pdb"
  "smt_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
