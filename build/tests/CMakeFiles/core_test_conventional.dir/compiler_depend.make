# Empty compiler generated dependencies file for core_test_conventional.
# This may be replaced when dependencies are built.
