file(REMOVE_RECURSE
  "CMakeFiles/core_test_conventional.dir/core/test_conventional.cpp.o"
  "CMakeFiles/core_test_conventional.dir/core/test_conventional.cpp.o.d"
  "core_test_conventional"
  "core_test_conventional.pdb"
  "core_test_conventional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_conventional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
