file(REMOVE_RECURSE
  "CMakeFiles/fault_test_predictor.dir/fault/test_predictor.cpp.o"
  "CMakeFiles/fault_test_predictor.dir/fault/test_predictor.cpp.o.d"
  "fault_test_predictor"
  "fault_test_predictor.pdb"
  "fault_test_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_test_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
