# Empty compiler generated dependencies file for fault_test_predictor.
# This may be replaced when dependencies are built.
