file(REMOVE_RECURSE
  "CMakeFiles/model_test_surface.dir/model/test_surface.cpp.o"
  "CMakeFiles/model_test_surface.dir/model/test_surface.cpp.o.d"
  "model_test_surface"
  "model_test_surface.pdb"
  "model_test_surface[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_test_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
