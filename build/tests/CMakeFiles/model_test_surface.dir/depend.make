# Empty dependencies file for model_test_surface.
# This may be replaced when dependencies are built.
