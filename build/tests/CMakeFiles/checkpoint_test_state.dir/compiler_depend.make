# Empty compiler generated dependencies file for checkpoint_test_state.
# This may be replaced when dependencies are built.
