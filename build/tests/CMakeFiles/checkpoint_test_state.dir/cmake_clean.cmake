file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_test_state.dir/checkpoint/test_state.cpp.o"
  "CMakeFiles/checkpoint_test_state.dir/checkpoint/test_state.cpp.o.d"
  "checkpoint_test_state"
  "checkpoint_test_state.pdb"
  "checkpoint_test_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_test_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
