file(REMOVE_RECURSE
  "CMakeFiles/fault_test_injector.dir/fault/test_injector.cpp.o"
  "CMakeFiles/fault_test_injector.dir/fault/test_injector.cpp.o.d"
  "fault_test_injector"
  "fault_test_injector.pdb"
  "fault_test_injector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_test_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
