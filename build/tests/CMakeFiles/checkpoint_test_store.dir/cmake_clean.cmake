file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_test_store.dir/checkpoint/test_store.cpp.o"
  "CMakeFiles/checkpoint_test_store.dir/checkpoint/test_store.cpp.o.d"
  "checkpoint_test_store"
  "checkpoint_test_store.pdb"
  "checkpoint_test_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_test_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
