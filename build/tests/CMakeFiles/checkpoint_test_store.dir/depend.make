# Empty dependencies file for checkpoint_test_store.
# This may be replaced when dependencies are built.
