# Empty dependencies file for smt_test_l2.
# This may be replaced when dependencies are built.
