file(REMOVE_RECURSE
  "CMakeFiles/smt_test_l2.dir/smt/test_l2.cpp.o"
  "CMakeFiles/smt_test_l2.dir/smt/test_l2.cpp.o.d"
  "smt_test_l2"
  "smt_test_l2.pdb"
  "smt_test_l2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_test_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
