file(REMOVE_RECURSE
  "CMakeFiles/model_test_timing.dir/model/test_timing.cpp.o"
  "CMakeFiles/model_test_timing.dir/model/test_timing.cpp.o.d"
  "model_test_timing"
  "model_test_timing.pdb"
  "model_test_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_test_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
