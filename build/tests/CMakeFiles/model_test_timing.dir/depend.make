# Empty dependencies file for model_test_timing.
# This may be replaced when dependencies are built.
