# Empty dependencies file for checkpoint_test_codes.
# This may be replaced when dependencies are built.
