file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_test_codes.dir/checkpoint/test_codes.cpp.o"
  "CMakeFiles/checkpoint_test_codes.dir/checkpoint/test_codes.cpp.o.d"
  "checkpoint_test_codes"
  "checkpoint_test_codes.pdb"
  "checkpoint_test_codes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_test_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
