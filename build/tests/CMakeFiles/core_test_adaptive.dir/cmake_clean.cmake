file(REMOVE_RECURSE
  "CMakeFiles/core_test_adaptive.dir/core/test_adaptive.cpp.o"
  "CMakeFiles/core_test_adaptive.dir/core/test_adaptive.cpp.o.d"
  "core_test_adaptive"
  "core_test_adaptive.pdb"
  "core_test_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
