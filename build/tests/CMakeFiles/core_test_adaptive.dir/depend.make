# Empty dependencies file for core_test_adaptive.
# This may be replaced when dependencies are built.
