#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "scenario/json_reader.hpp"

namespace vds::serve {
namespace {

constexpr const char* kScenarioJson =
    R"({"schema": "vds.scenario.v1", "scheme": "det", "seed": 9})";

std::string wrap_request(const std::string& fields) {
  return R"({"schema": "vds.serve_request.v1", )" + fields + "}";
}

TEST(ServeProtocol, ParsesCampaignRequest) {
  const ServeRequest request = parse_request(wrap_request(
      R"("id": "r1", "type": "campaign", "deadline_ms": 250,
         "scenario": )" +
      std::string(kScenarioJson) +
      R"(, "campaign": {"replicas": 7, "rounds": [1, 3], "seed": 4})"));
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.type, RequestType::kCampaign);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 250.0);
  EXPECT_EQ(request.scenario.seed, 9u);
  // vds_mc parity: campaign scenarios without "rounds" get 60, not
  // the Scenario default of 10000.
  EXPECT_EQ(request.scenario.rounds, 60u);
  EXPECT_EQ(request.campaign.replicas, 7u);
  EXPECT_EQ(request.campaign.grid, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(request.campaign.seed, 4u);
}

TEST(ServeProtocol, ParsesAdaptiveSamplingKnobs) {
  const ServeRequest request = parse_request(wrap_request(
      R"("id": "r3", "type": "campaign", "scenario": )" +
      std::string(kScenarioJson) +
      R"(, "campaign": {"replicas": 100, "rounds": [1],
          "target_ci": 0.05, "min_replicas": 16, "max_replicas": 2000,
          "batch": 64})"));
  EXPECT_DOUBLE_EQ(request.campaign.target_ci, 0.05);
  EXPECT_EQ(request.campaign.min_replicas, 16u);
  EXPECT_EQ(request.campaign.max_replicas, 2000u);
  EXPECT_EQ(request.campaign.batch, 64u);
}

TEST(ServeProtocol, RejectsSamplingCapWithoutTarget) {
  // Same contract as vds_mc: --max-replicas requires --target-ci.
  EXPECT_THROW(
      (void)parse_request(wrap_request(
          R"("id": "x", "type": "campaign", "scenario": )" +
          std::string(kScenarioJson) +
          R"(, "campaign": {"replicas": 10, "rounds": [1],
              "max_replicas": 50})")),
      std::invalid_argument);
}

TEST(ServeProtocol, RunScenarioKeepsItsOwnRoundsDefault) {
  const ServeRequest request = parse_request(wrap_request(
      R"("id": "r2", "type": "run", "scenario": )" +
      std::string(kScenarioJson)));
  EXPECT_EQ(request.type, RequestType::kRun);
  EXPECT_EQ(request.scenario.rounds, 10000u);  // vds_cli parity
}

TEST(ServeProtocol, StatsRequestNeedsNoScenario) {
  const ServeRequest request =
      parse_request(wrap_request(R"("id": "h", "type": "stats")"));
  EXPECT_EQ(request.type, RequestType::kStats);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  // Not JSON at all.
  EXPECT_THROW((void)parse_request("not json"), std::exception);
  // Wrong schema tag.
  EXPECT_THROW((void)parse_request(R"({"schema": "nope", "id": "x"})"),
               std::invalid_argument);
  // Missing id / missing type / missing scenario.
  EXPECT_THROW((void)parse_request(wrap_request(R"("type": "stats")")),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request(wrap_request(R"("id": "x")")),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_request(wrap_request(R"("id": "x", "type": "run")")),
      std::invalid_argument);
  // Unknown envelope key (strict parse).
  EXPECT_THROW((void)parse_request(wrap_request(
                   R"("id": "x", "type": "stats", "bogus": 1)")),
               std::invalid_argument);
  // Unknown type name.
  EXPECT_THROW((void)parse_request(
                   wrap_request(R"("id": "x", "type": "dance")")),
               std::invalid_argument);
  // stats with a payload / run with a campaign.
  EXPECT_THROW((void)parse_request(wrap_request(
                   R"("id": "x", "type": "stats", "scenario": {})")),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request(wrap_request(
                   R"("id": "x", "type": "run", "scenario": )" +
                   std::string(kScenarioJson) + R"(, "campaign": {})")),
               std::invalid_argument);
  // deadline_ms must be positive.
  EXPECT_THROW((void)parse_request(wrap_request(
                   R"("id": "x", "type": "stats", "deadline_ms": 0)")),
               std::invalid_argument);
}

TEST(ServeProtocol, RequestIdHintSurvivesBadRequests) {
  EXPECT_EQ(request_id_hint(R"({"id": "r9", "type": "dance"})"), "r9");
  EXPECT_EQ(request_id_hint("garbage"), "");
  EXPECT_EQ(request_id_hint(R"({"id": 42})"), "");
}

TEST(ServeProtocol, ErrorLineIsSingleLineStructuredJson) {
  const std::string line = format_error("r1", kErrQueueFull, "full up");
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const scenario::JsonValue doc = scenario::parse_json(line);
  EXPECT_EQ(doc.find("schema")->as_string("schema"), "vds.serve_error.v1");
  EXPECT_EQ(doc.find("id")->as_string("id"), "r1");
  EXPECT_EQ(doc.find("code")->as_string("code"), "queue_full");
  EXPECT_EQ(doc.find("message")->as_string("message"), "full up");
}

TEST(ServeProtocol, StatsLineRoundTrips) {
  StatsSnapshot stats;
  stats.accepted = 5;
  stats.completed = 3;
  stats.queue_depth = 2;
  stats.queue_count = 3;
  stats.queue_mean = 1.5;
  const std::string line = format_stats("h1", stats);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const scenario::JsonValue doc = scenario::parse_json(line);
  EXPECT_EQ(doc.find("schema")->as_string("schema"), "vds.serve_stats.v1");
  EXPECT_EQ(doc.find("accepted")->as_u64("accepted"), 5u);
  EXPECT_EQ(doc.find("completed")->as_u64("completed"), 3u);
  EXPECT_EQ(doc.find("queue_depth")->as_u64("queue_depth"), 2u);
  const scenario::JsonValue* queue = doc.find("queue_wait_ms");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->find("count")->as_u64("count"), 3u);
  EXPECT_DOUBLE_EQ(queue->find("mean")->as_double("mean"), 1.5);
}

}  // namespace
}  // namespace vds::serve
