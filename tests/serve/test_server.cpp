#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/mc_campaign.hpp"
#include "scenario/campaign_spec.hpp"
#include "scenario/json_reader.hpp"
#include "serve/protocol.hpp"

namespace vds::serve {
namespace {

/// Thread-safe in-memory sink; the dispatcher and the submitting
/// thread both write into it.
class CollectSink : public ResponseSink {
 public:
  void write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(line);
  }
  [[nodiscard]] std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> lines_;
};

std::string campaign_request(const std::string& id, std::uint64_t seed,
                             std::uint64_t replicas,
                             double deadline_ms = 0.0) {
  std::ostringstream os;
  os << R"({"schema": "vds.serve_request.v1", "id": ")" << id
     << R"(", "type": "campaign")";
  if (deadline_ms > 0.0) os << ", \"deadline_ms\": " << deadline_ms;
  os << R"(, "scenario": {"schema": "vds.scenario.v1", "scheme": "det",)"
     << R"( "seed": )" << seed << "}"
     << R"(, "campaign": {"replicas": )" << replicas
     << R"(, "rounds": [1, 3], "seed": )" << seed << "}}";
  return os.str();
}

/// The digest the one-shot path (vds_mc) produces for the same
/// request line — built through the identical campaign_spec layer.
std::string one_shot_digest(const std::string& request_line) {
  const ServeRequest request = parse_request(request_line);
  runtime::McConfig config =
      scenario::to_mc_config(request.campaign, request.scenario);
  config.threads = 2;
  const runtime::McSummary summary = runtime::run_mc_campaign(
      config, scenario::make_mc_runner(request.scenario));
  char hex[20];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(summary.digest()));
  return hex;
}

const scenario::JsonValue* find_line_for(
    const std::vector<scenario::JsonValue>& docs, const std::string& id) {
  for (const scenario::JsonValue& doc : docs) {
    const scenario::JsonValue* got = doc.find("id");
    if (got != nullptr && got->text == id) return &doc;
  }
  return nullptr;
}

std::vector<scenario::JsonValue> parse_lines(
    const std::vector<std::string>& lines) {
  std::vector<scenario::JsonValue> docs;
  docs.reserve(lines.size());
  for (const std::string& line : lines) {
    docs.push_back(scenario::parse_json(line));
  }
  return docs;
}

TEST(ServeServer, ConcurrentClientsDigestMatchOneShotRuns) {
  ServerOptions options;
  options.threads = 4;
  Server server(options);

  // Four clients with distinct scenarios submit concurrently; batching
  // may coalesce any subset of their cells onto the shared pool.
  constexpr int kClients = 4;
  std::vector<std::shared_ptr<CollectSink>> sinks;
  std::vector<std::string> requests;
  for (int k = 0; k < kClients; ++k) {
    sinks.push_back(std::make_shared<CollectSink>());
    requests.push_back(campaign_request("client-" + std::to_string(k),
                                        /*seed=*/100 + k, /*replicas=*/20));
  }
  std::vector<std::thread> clients;
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back(
        [&server, &requests, &sinks, k] { server.submit(requests[k], sinks[k]); });
  }
  for (std::thread& client : clients) client.join();
  server.finish();

  for (int k = 0; k < kClients; ++k) {
    const std::vector<std::string> lines = sinks[k]->lines();
    ASSERT_EQ(lines.size(), 1u) << "client " << k;
    const scenario::JsonValue doc = scenario::parse_json(lines[0]);
    EXPECT_EQ(doc.find("schema")->as_string("schema"),
              "vds.serve_response.v1");
    EXPECT_EQ(doc.find("status")->as_string("status"), "ok");
    const scenario::JsonValue* body = doc.find("body");
    ASSERT_NE(body, nullptr);
    const scenario::JsonValue* summary = body->find("summary");
    ASSERT_NE(summary, nullptr);
    // The acceptance oracle: a served campaign digest equals the
    // one-shot campaign digest, so the summaries are bitwise equal.
    EXPECT_EQ(summary->find("digest")->as_string("digest"),
              one_shot_digest(requests[k]))
        << "client " << k;
  }
}

TEST(ServeServer, DigestIndependentOfServerThreadCount) {
  const std::string request = campaign_request("t", /*seed=*/7,
                                               /*replicas=*/25);
  std::string digests[2];
  const unsigned thread_counts[2] = {1, 4};
  for (int k = 0; k < 2; ++k) {
    ServerOptions options;
    options.threads = thread_counts[k];
    Server server(options);
    auto sink = std::make_shared<CollectSink>();
    server.submit(request, sink);
    server.finish();
    const std::vector<std::string> lines = sink->lines();
    ASSERT_EQ(lines.size(), 1u);
    const scenario::JsonValue doc = scenario::parse_json(lines[0]);
    digests[k] = doc.find("body")->find("summary")->find("digest")->text;
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], one_shot_digest(request));
}

TEST(ServeServer, QueueFullRejectionIsImmediateAndStructured) {
  ServerOptions options;
  options.threads = 2;
  options.queue_limit = 1;  // one outstanding request, period
  options.batch_max = 1;
  Server server(options);
  auto sink = std::make_shared<CollectSink>();

  // Big enough that it is still outstanding when the next submit lands.
  server.submit(campaign_request("slow", 1, /*replicas=*/400), sink);
  server.submit(campaign_request("reject-me", 2, /*replicas=*/1), sink);

  // The rejection is synchronous: it is on the sink before finish().
  {
    const std::vector<scenario::JsonValue> docs = parse_lines(sink->lines());
    const scenario::JsonValue* rejected = find_line_for(docs, "reject-me");
    ASSERT_NE(rejected, nullptr);
    EXPECT_EQ(rejected->find("schema")->as_string("schema"),
              "vds.serve_error.v1");
    EXPECT_EQ(rejected->find("code")->as_string("code"), "queue_full");
  }
  server.finish();

  const std::vector<scenario::JsonValue> docs = parse_lines(sink->lines());
  ASSERT_EQ(docs.size(), 2u);  // every request answered exactly once
  const scenario::JsonValue* slow = find_line_for(docs, "slow");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->find("schema")->as_string("schema"),
            "vds.serve_response.v1");

  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.outstanding, 0u);
}

TEST(ServeServer, PastDeadlineRequestsGetStructuredErrors) {
  ServerOptions options;
  options.threads = 2;
  options.batch_max = 1;  // the slow request dispatches alone
  Server server(options);
  auto sink = std::make_shared<CollectSink>();

  // "late" is admitted immediately but cannot dispatch until "slow"
  // finishes (batch_max = 1), which takes far longer than 1 ms.
  server.submit(campaign_request("slow", 1, /*replicas=*/400), sink);
  server.submit(
      campaign_request("late", 2, /*replicas=*/4, /*deadline_ms=*/1.0),
      sink);
  server.finish();

  const std::vector<scenario::JsonValue> docs = parse_lines(sink->lines());
  ASSERT_EQ(docs.size(), 2u);
  const scenario::JsonValue* late = find_line_for(docs, "late");
  ASSERT_NE(late, nullptr);
  const std::string schema = late->find("schema")->as_string("schema");
  if (schema == "vds.serve_error.v1") {
    // Expired while queued: rejected before any cell ran.
    EXPECT_EQ(late->find("code")->as_string("code"), "deadline");
  } else {
    // Dispatched just inside the deadline: the campaign must have been
    // cut short rather than run to completion.
    EXPECT_EQ(schema, "vds.serve_response.v1");
    EXPECT_EQ(late->find("status")->as_string("status"), "partial");
    const scenario::JsonValue* summary =
        late->find("body")->find("summary");
    EXPECT_TRUE(summary->find("deadline_exceeded") != nullptr ||
                summary->find("cells_skipped")->as_u64("cells_skipped") >
                    0u);
  }
}

TEST(ServeServer, DrainFailsQueuedRequestsAndAnswersInFlight) {
  runtime::clear_drain_request();
  ServerOptions options;
  options.threads = 2;
  options.batch_max = 1;
  Server server(options);
  auto sink = std::make_shared<CollectSink>();

  server.submit(campaign_request("inflight", 1, /*replicas=*/400), sink);
  server.submit(campaign_request("queued", 2, /*replicas=*/1), sink);

  // Wait until "inflight" is actually in service and "queued" is the
  // only queued request, then pull the plug.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (true) {
    const StatsSnapshot stats = server.stats_snapshot();
    if (stats.outstanding == 2 && stats.queue_depth == 1) break;
    if (stats.completed >= 1) break;  // too late to observe; still fine
    ASSERT_LT(std::chrono::steady_clock::now(), give_up);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  runtime::request_drain();

  // New submissions are rejected with code=drain right away.
  server.submit(campaign_request("after-drain", 3, /*replicas=*/1), sink);
  server.finish();
  runtime::clear_drain_request();

  const std::vector<scenario::JsonValue> docs = parse_lines(sink->lines());
  ASSERT_EQ(docs.size(), 3u);

  const scenario::JsonValue* after = find_line_for(docs, "after-drain");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->find("schema")->as_string("schema"),
            "vds.serve_error.v1");
  EXPECT_EQ(after->find("code")->as_string("code"), "drain");

  // Both admitted requests were answered: no silent drops. The
  // in-flight one finished with a full (non-partial) summary unless
  // the drain landed before its dispatch.
  const scenario::JsonValue* inflight = find_line_for(docs, "inflight");
  const scenario::JsonValue* queued = find_line_for(docs, "queued");
  ASSERT_NE(inflight, nullptr);
  ASSERT_NE(queued, nullptr);
  if (inflight->find("schema")->as_string("schema") ==
      "vds.serve_response.v1") {
    EXPECT_EQ(inflight->find("status")->as_string("status"), "ok");
    EXPECT_EQ(
        inflight->find("body")->find("summary")->find("digest")->text,
        one_shot_digest(campaign_request("inflight", 1, 400)));
  }
  const std::string queued_schema =
      queued->find("schema")->as_string("schema");
  if (queued_schema == "vds.serve_error.v1") {
    EXPECT_EQ(queued->find("code")->as_string("code"), "drain");
  } else {
    EXPECT_EQ(queued_schema, "vds.serve_response.v1");  // raced the flag
  }
}

TEST(ServeServer, BadRequestLinesGetErrorsNotSilence) {
  Server server(ServerOptions{});
  auto sink = std::make_shared<CollectSink>();
  server.submit("this is not json", sink);
  server.submit(R"({"id": "r7", "type": "dance"})", sink);
  server.finish();

  const std::vector<std::string> lines = sink->lines();
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    const scenario::JsonValue doc = scenario::parse_json(line);
    EXPECT_EQ(doc.find("schema")->as_string("schema"),
              "vds.serve_error.v1");
    EXPECT_EQ(doc.find("code")->as_string("code"), "bad_request");
  }
  // The second line's id was extractable and is echoed back.
  EXPECT_EQ(scenario::parse_json(lines[1]).find("id")->text, "r7");

  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.bad_requests, 2u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(ServeServer, StatsRequestAnswersSynchronously) {
  ServerOptions options;
  options.threads = 2;
  options.batch_max = 1;
  Server server(options);
  auto sink = std::make_shared<CollectSink>();
  server.submit(campaign_request("work", 5, /*replicas=*/200), sink);

  auto stats_sink = std::make_shared<CollectSink>();
  server.submit(
      R"({"schema": "vds.serve_request.v1", "id": "h1", "type": "stats"})",
      stats_sink);
  // Answered before the campaign completes or the server drains.
  ASSERT_EQ(stats_sink->lines().size(), 1u);
  const scenario::JsonValue doc =
      scenario::parse_json(stats_sink->lines()[0]);
  EXPECT_EQ(doc.find("schema")->as_string("schema"), "vds.serve_stats.v1");
  EXPECT_EQ(doc.find("id")->as_string("id"), "h1");
  EXPECT_EQ(doc.find("accepted")->as_u64("accepted"), 1u);

  server.finish();
  const StatsSnapshot after = server.stats_snapshot();
  EXPECT_EQ(after.completed, 1u);
  EXPECT_EQ(after.queue_count, 1u);
  EXPECT_EQ(after.service_count, 1u);
  EXPECT_GT(after.service_mean, 0.0);
}

TEST(ServeServer, RunRequestsShareThePoolWithCampaigns) {
  ServerOptions options;
  options.threads = 2;
  Server server(options);
  auto sink = std::make_shared<CollectSink>();
  server.submit(campaign_request("camp", 11, /*replicas=*/10), sink);
  server.submit(
      R"({"schema": "vds.serve_request.v1", "id": "single", "type": "run",)"
      R"( "scenario": {"schema": "vds.scenario.v1", "scheme": "det",)"
      R"( "seed": 11, "rounds": 80}})",
      sink);
  server.finish();

  const std::vector<scenario::JsonValue> docs = parse_lines(sink->lines());
  ASSERT_EQ(docs.size(), 2u);
  const scenario::JsonValue* run = find_line_for(docs, "single");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->find("schema")->as_string("schema"),
            "vds.serve_response.v1");
  const scenario::JsonValue* body = run->find("body");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->find("schema")->as_string("schema"), "vds.run_report.v1");
  // Deterministic single-run body: same seed, same report, every time.
  const scenario::JsonValue* report = body->find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_NE(report->find("completed"), nullptr);

  const scenario::JsonValue* camp = find_line_for(docs, "camp");
  ASSERT_NE(camp, nullptr);
  EXPECT_EQ(camp->find("body")->find("summary")->find("digest")->text,
            one_shot_digest(campaign_request("camp", 11, 10)));
}

}  // namespace
}  // namespace vds::serve
