// FdSink failure surfacing and LineReader::poll_next deadlines — the
// transport behaviors the serve stats counter and the fabric
// coordinator's grant/collect loop depend on.

#include "serve/transport.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>

#include <unistd.h>

namespace vds::serve {
namespace {

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }
};

TEST(FdSinkError, ClosedPipeFiresCallbackExactlyOnce) {
  // Writes to a pipe with no reader raise EPIPE (SIGPIPE ignored).
  std::signal(SIGPIPE, SIG_IGN);
  Pipe pipe;
  FdSink sink(pipe.write_fd, /*owns_fd=*/false);
  int fired = 0;
  int seen_errno = 0;
  sink.on_error([&](int error) {
    ++fired;
    seen_errno = error;
  });
  EXPECT_FALSE(sink.failed());

  ::close(pipe.read_fd);
  pipe.read_fd = -1;
  sink.write_line("first");
  EXPECT_TRUE(sink.failed());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(seen_errno, EPIPE);
  EXPECT_EQ(sink.error(), EPIPE);

  // Later writes are dropped without re-firing.
  sink.write_line("second");
  sink.write_line("third");
  EXPECT_EQ(fired, 1);
}

TEST(FdSinkError, HealthyPipeNeverFires) {
  Pipe pipe;
  FdSink sink(pipe.write_fd, /*owns_fd=*/false);
  int fired = 0;
  sink.on_error([&](int) { ++fired; });
  sink.write_line("hello");
  EXPECT_FALSE(sink.failed());
  EXPECT_EQ(sink.error(), 0);
  EXPECT_EQ(fired, 0);
  char buf[16] = {};
  ASSERT_EQ(::read(pipe.read_fd, buf, sizeof buf), 6);
  EXPECT_EQ(std::string(buf), "hello\n");
}

TEST(LineReaderPoll, TimesOutWithoutInputThenPicksUpTheLine) {
  Pipe pipe;
  LineReader reader(pipe.read_fd);
  std::string line;

  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(reader.poll_next(line, 50), LineReader::Status::kTimeout);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, std::chrono::milliseconds(45));
  EXPECT_LT(waited, std::chrono::seconds(5));

  ASSERT_EQ(::write(pipe.write_fd, "one\ntw", 6), 6);
  EXPECT_EQ(reader.poll_next(line, 50), LineReader::Status::kLine);
  EXPECT_EQ(line, "one");
  // The partial "tw" stays buffered across a timeout...
  EXPECT_EQ(reader.poll_next(line, 30), LineReader::Status::kTimeout);
  ASSERT_EQ(::write(pipe.write_fd, "o\n", 2), 2);
  // ...and completes on a later call.
  EXPECT_EQ(reader.poll_next(line, 50), LineReader::Status::kLine);
  EXPECT_EQ(line, "two");
}

TEST(LineReaderPoll, EofStillReported) {
  Pipe pipe;
  LineReader reader(pipe.read_fd);
  ASSERT_EQ(::write(pipe.write_fd, "tail", 4), 4);
  ::close(pipe.write_fd);
  pipe.write_fd = -1;
  std::string line;
  EXPECT_EQ(reader.poll_next(line, 100), LineReader::Status::kLine);
  EXPECT_EQ(line, "tail");  // final line without trailing newline
  EXPECT_EQ(reader.poll_next(line, 100), LineReader::Status::kEof);
}

}  // namespace
}  // namespace vds::serve
