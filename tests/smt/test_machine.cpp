#include "smt/machine.hpp"

#include <gtest/gtest.h>

#include "smt/workload.hpp"

namespace vds::smt {
namespace {

Program single(const Instr& instr) {
  Program program("single");
  program.push(instr);
  program.push(make_halt());
  return program;
}

TEST(Machine, ArithmeticOps) {
  Machine machine(64);
  machine.set_reg(1, 10);
  machine.set_reg(2, 3);

  struct Case {
    Opcode op;
    std::uint64_t expected;
  };
  const Case cases[] = {
      {Opcode::kAdd, 13},       {Opcode::kSub, 7},
      {Opcode::kMul, 30},       {Opcode::kDiv, 3},
      {Opcode::kAnd, 10 & 3},   {Opcode::kOr, 10 | 3},
      {Opcode::kXor, 10 ^ 3},   {Opcode::kShl, 10ull << 3},
      {Opcode::kShr, 10ull >> 3},
  };
  for (const auto& c : cases) {
    Machine m(64);
    m.set_reg(1, 10);
    m.set_reg(2, 3);
    const auto result = m.run(single(make_rrr(c.op, 5, 1, 2)));
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(m.reg(5), c.expected) << to_string(c.op);
  }
}

TEST(Machine, DivByZeroYieldsZero) {
  Machine machine(64);
  machine.set_reg(1, 99);
  machine.set_reg(2, 0);
  machine.run(single(make_rrr(Opcode::kDiv, 5, 1, 2)));
  EXPECT_EQ(machine.reg(5), 0u);
}

TEST(Machine, ImmediateOperands) {
  Machine machine(64);
  machine.set_reg(1, 7);
  machine.run(single(make_rri(Opcode::kMul, 5, 1, 6)));
  EXPECT_EQ(machine.reg(5), 42u);
}

TEST(Machine, LoadStoreRoundTrip) {
  Machine machine(64);
  machine.set_reg(1, 5);   // base
  machine.set_reg(2, 77);  // value
  Program program("ls");
  program.push(make_store(2, 1, 3));  // mem[8] = 77
  program.push(make_load(9, 1, 3));   // r9 = mem[8]
  program.push(make_halt());
  machine.run(program);
  EXPECT_EQ(machine.peek(8), 77u);
  EXPECT_EQ(machine.reg(9), 77u);
}

TEST(Machine, MemoryAddressingWraps) {
  Machine machine(16);
  machine.poke(3, 123);
  EXPECT_EQ(machine.peek(3 + 16), 123u);
}

TEST(Machine, BranchTakenAndNotTaken) {
  // r1 == r2 -> beq taken skips the poison instruction.
  Machine machine(64);
  machine.set_reg(1, 5);
  machine.set_reg(2, 5);
  Program program("br");
  program.push(make_branch(Opcode::kBeq, 1, 2, 2));     // skip next
  program.push(make_rri(Opcode::kAdd, 10, 0, 666));     // poison
  program.push(make_rri(Opcode::kAdd, 11, 0, 1));
  program.push(make_halt());
  machine.run(program);
  EXPECT_EQ(machine.reg(10), 0u);
  EXPECT_EQ(machine.reg(11), 1u);

  machine.reset();
  machine.set_reg(1, 5);
  machine.set_reg(2, 6);  // not taken now
  machine.run(program);
  EXPECT_EQ(machine.reg(10), 666u);
}

TEST(Machine, LoopExecutesExpectedIterations) {
  // r1 counts down from 5; loop body increments r10.
  Machine machine(64);
  machine.set_reg(1, 5);
  Program program("loop");
  program.push(make_rri(Opcode::kAdd, 10, 10, 1));      // 0: ++r10
  program.push(make_rri(Opcode::kSub, 1, 1, 1));        // 1: --r1
  program.push(make_branch(Opcode::kBne, 1, 0, -2));    // 2: while r1 != r0
  program.push(make_halt());
  const auto result = machine.run(program);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(machine.reg(10), 5u);
}

TEST(Machine, StepLimitAborts) {
  Program spin("spin");
  spin.push(make_jmp(0));  // infinite self-loop
  Machine machine(16);
  const auto result = machine.run(spin, /*max_steps=*/1000);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.steps, 1000u);
}

TEST(Machine, RunningOffTheEndStops) {
  Program program("fallthrough");
  program.push(make_rri(Opcode::kAdd, 1, 0, 1));
  Machine machine(16);
  const auto result = machine.run(program);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(machine.reg(1), 1u);
}

TEST(Machine, TraceRecordsDynamicStream) {
  Machine machine(64);
  machine.set_reg(1, 3);
  Program program("loop");
  program.push(make_rri(Opcode::kSub, 1, 1, 1));
  program.push(make_branch(Opcode::kBne, 1, 0, -1));
  program.push(make_halt());
  InstrTrace trace;
  machine.run(program, 1u << 20, &trace);
  // 3 iterations x (sub + bne) = 6 entries; halt is not traced.
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0].cls, OpClass::kAlu);
  EXPECT_EQ(trace[1].cls, OpClass::kBranch);
  EXPECT_TRUE(trace[1].taken);
  EXPECT_FALSE(trace[5].taken);  // final bne falls through
  EXPECT_EQ(trace[1].pc, 1u);
}

TEST(Machine, TraceRecordsMemAddresses) {
  Machine machine(64);
  machine.set_reg(1, 10);
  Program program("mem");
  program.push(make_store(1, 1, 5));  // addr 15
  program.push(make_load(2, 1, 6));   // addr 16
  program.push(make_halt());
  InstrTrace trace;
  machine.run(program, 1u << 20, &trace);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].addr, 15u);
  EXPECT_EQ(trace[1].addr, 16u);
  EXPECT_FALSE(trace[0].has_dst);
  EXPECT_TRUE(trace[1].has_dst);
}

TEST(Machine, DigestChangesWithState) {
  Machine a(64);
  Machine b(64);
  EXPECT_EQ(a.digest(), b.digest());
  b.poke(5, 1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Machine, RegionDigestIgnoresOutsideChanges) {
  Machine a(64);
  Machine b(64);
  b.poke(50, 99);
  EXPECT_EQ(a.region_digest(0, 10), b.region_digest(0, 10));
  b.poke(5, 1);
  EXPECT_NE(a.region_digest(0, 10), b.region_digest(0, 10));
}

TEST(Machine, StuckAtFaultCorruptsAluResults) {
  Machine clean(64);
  Machine faulty(64);
  faulty.set_fault(StuckAtFault{OpClass::kAlu, 0, true});
  clean.set_reg(1, 4);  // 4 + 4 = 8: bit 0 clear
  faulty.set_reg(1, 4);
  const Program program = single(make_rrr(Opcode::kAdd, 5, 1, 1));
  clean.run(program);
  faulty.run(program);
  EXPECT_EQ(clean.reg(5), 8u);
  EXPECT_EQ(faulty.reg(5), 9u);  // stuck-at-1 on bit 0
}

TEST(Machine, StuckAtFaultLeavesOtherUnitsClean) {
  Machine faulty(64);
  faulty.set_fault(StuckAtFault{OpClass::kMul, 0, true});
  faulty.set_reg(1, 4);
  faulty.run(single(make_rrr(Opcode::kAdd, 5, 1, 1)));
  EXPECT_EQ(faulty.reg(5), 8u);  // ALU unaffected by MUL fault
}

TEST(Machine, StuckAtZeroFault) {
  Machine faulty(64);
  faulty.set_fault(StuckAtFault{OpClass::kAlu, 3, false});
  faulty.set_reg(1, 8);  // 8 + 0 = 8: bit 3 set
  faulty.run(single(make_rrr(Opcode::kAdd, 5, 1, 0)));
  EXPECT_EQ(faulty.reg(5), 0u);  // bit 3 forced to 0
}

TEST(KernelProgram, ComputesExpectedValues) {
  const std::uint64_t base = 100;
  const std::uint64_t n = 16;
  Machine machine(4096);
  seed_kernel_inputs(machine, base, n, 7);
  const Program kernel = make_kernel_program(base, n);
  const auto result = machine.run(kernel);
  ASSERT_TRUE(result.halted);
  std::uint64_t checksum = 0;
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint64_t a = machine.peek(base + k);
    const std::uint64_t expected = a * 3 + (a << 2);
    EXPECT_EQ(machine.peek(base + n + k), expected) << k;
    checksum ^= expected;
  }
  EXPECT_EQ(machine.peek(base + n + n), checksum);
}

TEST(KernelProgram, DeterministicAcrossRuns) {
  Machine a(4096);
  Machine b(4096);
  seed_kernel_inputs(a, 100, 32, 9);
  seed_kernel_inputs(b, 100, 32, 9);
  const Program kernel = make_kernel_program(100, 32);
  a.run(kernel);
  b.run(kernel);
  EXPECT_EQ(a.digest(), b.digest());
}

}  // namespace
}  // namespace vds::smt
