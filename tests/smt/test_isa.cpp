#include "smt/isa.hpp"

#include <gtest/gtest.h>

namespace vds::smt {
namespace {

TEST(OpClassOf, MapsAllOpcodes) {
  EXPECT_EQ(op_class(Opcode::kAdd), OpClass::kAlu);
  EXPECT_EQ(op_class(Opcode::kSub), OpClass::kAlu);
  EXPECT_EQ(op_class(Opcode::kAnd), OpClass::kAlu);
  EXPECT_EQ(op_class(Opcode::kOr), OpClass::kAlu);
  EXPECT_EQ(op_class(Opcode::kXor), OpClass::kAlu);
  EXPECT_EQ(op_class(Opcode::kShl), OpClass::kAlu);
  EXPECT_EQ(op_class(Opcode::kShr), OpClass::kAlu);
  EXPECT_EQ(op_class(Opcode::kMul), OpClass::kMul);
  EXPECT_EQ(op_class(Opcode::kDiv), OpClass::kDiv);
  EXPECT_EQ(op_class(Opcode::kLoad), OpClass::kMem);
  EXPECT_EQ(op_class(Opcode::kStore), OpClass::kMem);
  EXPECT_EQ(op_class(Opcode::kBeq), OpClass::kBranch);
  EXPECT_EQ(op_class(Opcode::kBne), OpClass::kBranch);
  EXPECT_EQ(op_class(Opcode::kJmp), OpClass::kBranch);
  EXPECT_EQ(op_class(Opcode::kNop), OpClass::kNone);
  EXPECT_EQ(op_class(Opcode::kHalt), OpClass::kNone);
}

TEST(Commutativity, OnlyTrueForCommutativeOps) {
  EXPECT_TRUE(is_commutative(Opcode::kAdd));
  EXPECT_TRUE(is_commutative(Opcode::kMul));
  EXPECT_TRUE(is_commutative(Opcode::kAnd));
  EXPECT_TRUE(is_commutative(Opcode::kOr));
  EXPECT_TRUE(is_commutative(Opcode::kXor));
  EXPECT_FALSE(is_commutative(Opcode::kSub));
  EXPECT_FALSE(is_commutative(Opcode::kDiv));
  EXPECT_FALSE(is_commutative(Opcode::kShl));
  EXPECT_FALSE(is_commutative(Opcode::kLoad));
}

TEST(BranchPredicate, CoversControlFlowOps) {
  EXPECT_TRUE(is_branch(Opcode::kBeq));
  EXPECT_TRUE(is_branch(Opcode::kBne));
  EXPECT_TRUE(is_branch(Opcode::kJmp));
  EXPECT_FALSE(is_branch(Opcode::kAdd));
  EXPECT_FALSE(is_branch(Opcode::kHalt));
}

TEST(WritesRegister, StoresAndBranchesDoNot) {
  EXPECT_TRUE(writes_register(Opcode::kAdd));
  EXPECT_TRUE(writes_register(Opcode::kLoad));
  EXPECT_FALSE(writes_register(Opcode::kStore));
  EXPECT_FALSE(writes_register(Opcode::kBeq));
  EXPECT_FALSE(writes_register(Opcode::kJmp));
  EXPECT_FALSE(writes_register(Opcode::kNop));
  EXPECT_FALSE(writes_register(Opcode::kHalt));
}

TEST(Constructors, MakeRrr) {
  const Instr instr = make_rrr(Opcode::kAdd, 3, 1, 2);
  EXPECT_EQ(instr.op, Opcode::kAdd);
  EXPECT_EQ(instr.dst, 3);
  EXPECT_EQ(instr.src1, 1);
  EXPECT_EQ(instr.src2, 2);
  EXPECT_FALSE(instr.uses_imm);
}

TEST(Constructors, MakeRri) {
  const Instr instr = make_rri(Opcode::kMul, 4, 2, -7);
  EXPECT_TRUE(instr.uses_imm);
  EXPECT_EQ(instr.imm, -7);
}

TEST(Constructors, MemoryForms) {
  const Instr load = make_load(5, 1, 100);
  EXPECT_EQ(load.op, Opcode::kLoad);
  EXPECT_EQ(load.dst, 5);
  EXPECT_EQ(load.src1, 1);
  EXPECT_EQ(load.imm, 100);
  const Instr store = make_store(6, 2, 8);
  EXPECT_EQ(store.op, Opcode::kStore);
  EXPECT_EQ(store.src2, 6);
  EXPECT_EQ(store.src1, 2);
}

TEST(Constructors, ControlForms) {
  const Instr branch = make_branch(Opcode::kBne, 1, 2, -5);
  EXPECT_EQ(branch.imm, -5);
  const Instr jump = make_jmp(9);
  EXPECT_EQ(jump.op, Opcode::kJmp);
  const Instr halt = make_halt();
  EXPECT_EQ(halt.op, Opcode::kHalt);
}

TEST(Disassembly, ReadableForms) {
  EXPECT_EQ(make_rrr(Opcode::kAdd, 3, 1, 2).to_string(), "add r3, r1, r2");
  EXPECT_EQ(make_rri(Opcode::kShl, 3, 1, 4).to_string(), "shl r3, r1, 4");
  EXPECT_EQ(make_load(5, 1, 8).to_string(), "load r5, [r1+8]");
  EXPECT_EQ(make_store(6, 2, -4).to_string(), "store [r2-4], r6");
  EXPECT_EQ(make_branch(Opcode::kBne, 1, 2, -5).to_string(),
            "bne r1, r2, -5");
  EXPECT_EQ(make_halt().to_string(), "halt");
}

TEST(InstrEquality, FieldSensitive) {
  const Instr a = make_rrr(Opcode::kAdd, 3, 1, 2);
  Instr b = a;
  EXPECT_EQ(a, b);
  b.src1 = 9;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace vds::smt
