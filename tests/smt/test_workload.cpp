#include "smt/workload.hpp"

#include <gtest/gtest.h>

#include <array>

namespace vds::smt {
namespace {

TEST(WorkloadConfig, Validation) {
  EXPECT_NO_THROW(balanced_workload(100).validate());
  WorkloadConfig bad = balanced_workload(100);
  bad.frac_alu = bad.frac_mul = bad.frac_div = bad.frac_mem =
      bad.frac_branch = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = balanced_workload(100);
  bad.dependency_density = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = balanced_workload(100);
  bad.footprint_words = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = balanced_workload(0);
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(GenerateTrace, ProducesRequestedLength) {
  vds::sim::Rng rng(1);
  const auto trace = generate_trace(balanced_workload(1234), rng);
  EXPECT_EQ(trace.size(), 1234u);
}

TEST(GenerateTrace, MixMatchesFractions) {
  vds::sim::Rng rng(2);
  WorkloadConfig config = balanced_workload(50000);
  config.frac_alu = 0.4;
  config.frac_mul = 0.1;
  config.frac_div = 0.05;
  config.frac_mem = 0.25;
  config.frac_branch = 0.2;
  const auto trace = generate_trace(config, rng);
  std::array<std::size_t, 6> counts{};
  for (const auto& entry : trace) {
    ++counts[static_cast<std::size_t>(entry.cls)];
  }
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(counts[0] / n, 0.4, 0.02);   // alu
  EXPECT_NEAR(counts[1] / n, 0.1, 0.02);   // mul
  EXPECT_NEAR(counts[2] / n, 0.05, 0.02);  // div
  EXPECT_NEAR(counts[3] / n, 0.25, 0.02);  // mem
  EXPECT_NEAR(counts[4] / n, 0.2, 0.02);   // branch
}

TEST(GenerateTrace, MemAddressesWithinFootprint) {
  vds::sim::Rng rng(3);
  WorkloadConfig config = memory_bound_workload(5000);
  config.footprint_words = 512;
  const auto trace = generate_trace(config, rng);
  for (const auto& entry : trace) {
    if (entry.cls == OpClass::kMem) {
      EXPECT_LT(entry.addr, 512u);
    }
  }
}

TEST(GenerateTrace, BranchBiasRespected) {
  vds::sim::Rng rng(4);
  WorkloadConfig config = branchy_workload(40000);
  config.branch_taken_bias = 0.8;
  const auto trace = generate_trace(config, rng);
  std::size_t branches = 0;
  std::size_t taken = 0;
  for (const auto& entry : trace) {
    if (entry.cls == OpClass::kBranch) {
      ++branches;
      if (entry.taken) ++taken;
    }
  }
  ASSERT_GT(branches, 0u);
  EXPECT_NEAR(static_cast<double>(taken) / branches, 0.8, 0.03);
}

TEST(GenerateTrace, DeterministicGivenSeed) {
  vds::sim::Rng rng_a(5);
  vds::sim::Rng rng_b(5);
  const auto a = generate_trace(balanced_workload(500), rng_a);
  const auto b = generate_trace(balanced_workload(500), rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].cls, b[k].cls) << k;
    EXPECT_EQ(a[k].addr, b[k].addr) << k;
  }
}

TEST(Presets, HaveDistinctCharacters) {
  const auto compute = compute_bound_workload(100);
  const auto memory = memory_bound_workload(100);
  const auto branchy = branchy_workload(100);
  const auto serial = serial_chain_workload(100);
  EXPECT_GT(compute.frac_alu + compute.frac_mul,
            memory.frac_alu + memory.frac_mul);
  EXPECT_GT(memory.frac_mem, compute.frac_mem);
  EXPECT_GT(branchy.frac_branch, compute.frac_branch);
  EXPECT_GT(serial.dependency_density, compute.dependency_density);
  EXPECT_NO_THROW(compute.validate());
  EXPECT_NO_THROW(memory.validate());
  EXPECT_NO_THROW(branchy.validate());
  EXPECT_NO_THROW(serial.validate());
}

TEST(SeedKernelInputs, DeterministicAndNonTrivial) {
  Machine a(4096);
  Machine b(4096);
  seed_kernel_inputs(a, 0, 64, 42);
  seed_kernel_inputs(b, 0, 64, 42);
  EXPECT_EQ(a.digest(), b.digest());
  Machine c(4096);
  seed_kernel_inputs(c, 0, 64, 43);
  EXPECT_NE(a.digest(), c.digest());
  // Values are non-zero pseudo-random words.
  EXPECT_NE(a.peek(0), 0u);
  EXPECT_NE(a.peek(0), a.peek(1));
}

}  // namespace
}  // namespace vds::smt
