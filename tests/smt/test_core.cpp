#include "smt/core.hpp"

#include <gtest/gtest.h>

#include "smt/metrics.hpp"
#include "smt/workload.hpp"

namespace vds::smt {
namespace {

TraceEntry alu(std::uint8_t dst, std::uint8_t src1, std::uint8_t src2) {
  TraceEntry entry;
  entry.cls = OpClass::kAlu;
  entry.dst = dst;
  entry.src1 = src1;
  entry.src2 = src2;
  entry.has_dst = true;
  entry.uses_src2 = true;
  return entry;
}

TraceEntry mem(std::uint64_t addr, bool load = true) {
  TraceEntry entry;
  entry.cls = OpClass::kMem;
  entry.addr = addr;
  entry.has_dst = load;
  entry.dst = 9;
  return entry;
}

TraceEntry mul(std::uint8_t dst, std::uint8_t src1) {
  TraceEntry entry;
  entry.cls = OpClass::kMul;
  entry.dst = dst;
  entry.src1 = src1;
  entry.has_dst = true;
  return entry;
}

CoreConfig tiny() {
  CoreConfig config;
  config.threads = 2;
  config.issue_width = 2;
  config.alu_units = 2;
  config.mem_ports = 1;
  config.cache.sets = 4;
  config.cache.ways = 2;
  config.cache.hit_latency = 2;
  config.cache.miss_latency = 10;
  return config;
}

TEST(CoreConfig, Validation) {
  EXPECT_NO_THROW(tiny().validate());
  CoreConfig bad = tiny();
  bad.threads = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny();
  bad.issue_width = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny();
  bad.alu_latency = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Core, EmptyTraceFinishesImmediately) {
  Core core(tiny());
  const InstrTrace empty;
  const CoreResult result = core.run(empty);
  EXPECT_EQ(result.cycles, 0u);
}

TEST(Core, IndependentAlusDualIssue) {
  // 8 independent ALU ops on a 2-wide machine: 4 cycles.
  InstrTrace trace;
  for (int k = 0; k < 8; ++k) {
    trace.push_back(alu(static_cast<std::uint8_t>(k % 8), 20, 21));
  }
  Core core(tiny());
  const CoreResult result = core.run(trace);
  EXPECT_EQ(result.cycles, 4u);
  EXPECT_EQ(result.threads[0].instructions, 8u);
}

TEST(Core, DependencyChainSerializes) {
  // Each op reads the previous result: one per cycle despite width 2.
  InstrTrace trace;
  for (int k = 0; k < 8; ++k) trace.push_back(alu(5, 5, 5));
  Core core(tiny());
  const CoreResult result = core.run(trace);
  EXPECT_EQ(result.cycles, 8u);
}

TEST(Core, MulLatencyStallsDependents) {
  InstrTrace trace;
  trace.push_back(mul(5, 1));   // completes at cycle 3 (latency 3)
  trace.push_back(alu(6, 5, 5));  // must wait
  Core core(tiny());
  const CoreResult result = core.run(trace);
  // mul issues at 0, ready at 3; dependent issues at 3, done at 4.
  EXPECT_EQ(result.cycles, 4u);
}

TEST(Core, StructuralHazardOnMemPort) {
  // Two independent loads, one port: second load waits a cycle.
  InstrTrace trace;
  trace.push_back(mem(0));
  trace.push_back(mem(100));
  CoreConfig config = tiny();
  config.mem_ports = 1;
  Core one_port(config);
  const auto r1 = one_port.run(trace);
  config.mem_ports = 2;
  Core two_ports(config);
  const auto r2 = two_ports.run(trace);
  EXPECT_GT(r1.cycles, r2.cycles);
}

TEST(Core, CacheMissesCostMore) {
  InstrTrace hit_trace;
  for (int k = 0; k < 16; ++k) hit_trace.push_back(mem(0));
  InstrTrace miss_trace;
  for (int k = 0; k < 16; ++k) {
    hit_trace.push_back(mem(0));
    miss_trace.push_back(mem(static_cast<std::uint64_t>(k) * 1024));
  }
  Core core_a(tiny());
  Core core_b(tiny());
  const auto hits = core_a.run(hit_trace);
  const auto misses = core_b.run(miss_trace);
  EXPECT_GT(misses.cache_misses, hits.cache_misses);
}

TEST(Core, BranchMispredictsStallFetch) {
  // Deterministic alternating branch at one pc defeats the 2-bit
  // predictor; compare against an always-taken (predictable) stream.
  auto branch = [](bool taken) {
    TraceEntry entry;
    entry.cls = OpClass::kBranch;
    entry.pc = 7;
    entry.taken = taken;
    return entry;
  };
  InstrTrace alternating;
  InstrTrace steady;
  for (int k = 0; k < 64; ++k) {
    alternating.push_back(branch(k % 2 == 0));
    steady.push_back(branch(true));
    alternating.push_back(alu(1, 2, 3));
    steady.push_back(alu(1, 2, 3));
  }
  Core core_a(tiny());
  Core core_b(tiny());
  const auto alt = core_a.run(alternating);
  const auto std_r = core_b.run(steady);
  EXPECT_GT(alt.threads[0].mispredicts, std_r.threads[0].mispredicts);
  EXPECT_GT(alt.cycles, std_r.cycles);
}

TEST(Core, TwoThreadsFinishBothTraces) {
  InstrTrace t0;
  InstrTrace t1;
  for (int k = 0; k < 100; ++k) {
    t0.push_back(alu(1, 2, 3));
    t1.push_back(alu(4, 5, 6));
  }
  Core core(tiny());
  const CoreResult result = core.run(t0, t1);
  ASSERT_EQ(result.threads.size(), 2u);
  EXPECT_EQ(result.threads[0].instructions, 100u);
  EXPECT_EQ(result.threads[1].instructions, 100u);
  EXPECT_EQ(result.issued_total, 200u);
}

TEST(Core, CoScheduleNeverFasterThanAloneAndNeverWorseThanSerial) {
  vds::sim::Rng rng(11);
  const auto trace_a = generate_trace(balanced_workload(3000), rng);
  const auto trace_b = generate_trace(balanced_workload(3000), rng);
  const auto m = measure_alpha(tiny(), FetchPolicy::kIcount, trace_a,
                               trace_b);
  EXPECT_GE(m.cycles_together + 2,
            std::max(m.cycles_a_alone, m.cycles_b_alone));
  EXPECT_LE(m.cycles_together,
            m.cycles_a_alone + m.cycles_b_alone + 2);
}

TEST(Core, DeterministicAcrossRuns) {
  vds::sim::Rng rng(12);
  const auto trace = generate_trace(balanced_workload(2000), rng);
  Core core_a(tiny());
  Core core_b(tiny());
  EXPECT_EQ(core_a.run(trace, trace).cycles,
            core_b.run(trace, trace).cycles);
}

TEST(Core, PartitionedCacheChangesBehaviour) {
  vds::sim::Rng rng(13);
  auto config = memory_bound_workload(4000);
  config.footprint_words = 64;  // small enough that partitioning hurts
  const auto trace = generate_trace(config, rng);
  CoreConfig shared = tiny();
  shared.shared_cache = true;
  CoreConfig split = tiny();
  split.shared_cache = false;
  const auto m_shared =
      measure_alpha(shared, FetchPolicy::kIcount, trace, trace);
  const auto m_split =
      measure_alpha(split, FetchPolicy::kIcount, trace, trace);
  // Either way alpha stays in the legal band; the two configs must
  // genuinely differ in timing.
  EXPECT_NE(m_shared.cycles_together, m_split.cycles_together);
}

class AlphaBand : public ::testing::TestWithParam<int> {};

TEST_P(AlphaBand, AlphaAlwaysInHalfToOne) {
  // The paper's model requires alpha in (1/2, 1]. The simulator can dip
  // marginally below 0.5 through *constructive* cache sharing (one
  // thread prefetches lines the co-runner reuses) -- a real SMT effect
  // the analytic model does not represent -- so the lower bound is
  // checked with a small tolerance. Above, running together must never
  // be worse than time-slicing.
  vds::sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const WorkloadConfig configs[] = {
      compute_bound_workload(2000), memory_bound_workload(2000),
      branchy_workload(2000), serial_chain_workload(2000),
      balanced_workload(2000)};
  const auto& wc = configs[GetParam() % 5];
  const auto trace_a = generate_trace(wc, rng);
  const auto trace_b = generate_trace(wc, rng);
  CoreConfig config;  // default 4-wide
  const auto m =
      measure_alpha(config, FetchPolicy::kIcount, trace_a, trace_b);
  EXPECT_GE(m.alpha, 0.47) << to_string(m);
  EXPECT_LE(m.alpha, 1.0 + 0.02) << to_string(m);
}

INSTANTIATE_TEST_SUITE_P(Workloads, AlphaBand, ::testing::Range(0, 10));

TEST(FetchPolicies, BothCompleteWithSimilarWork) {
  vds::sim::Rng rng(14);
  const auto trace = generate_trace(balanced_workload(4000), rng);
  CoreConfig config;
  const auto rr =
      measure_alpha(config, FetchPolicy::kRoundRobin, trace, trace);
  const auto icount =
      measure_alpha(config, FetchPolicy::kIcount, trace, trace);
  EXPECT_GT(rr.cycles_together, 0u);
  EXPECT_GT(icount.cycles_together, 0u);
  // ICOUNT should not be grossly worse than round-robin.
  EXPECT_LT(static_cast<double>(icount.cycles_together),
            1.25 * static_cast<double>(rr.cycles_together));
}

TEST(Core, SingleThreadOnWideMachineReachesHighIpc) {
  vds::sim::Rng rng(15);
  const auto trace = generate_trace(compute_bound_workload(5000), rng);
  CoreConfig config;  // 4-wide
  Core core(config);
  const auto result = core.run(trace);
  EXPECT_GT(result.threads[0].ipc(), 1.5);
}

TEST(Core, MaxCyclesCapStopsRunaways) {
  InstrTrace trace;
  for (int k = 0; k < 100; ++k) trace.push_back(alu(1, 1, 1));
  CoreConfig config = tiny();
  config.max_cycles = 10;
  Core core(config);
  const auto result = core.run(trace);
  EXPECT_LE(result.cycles, 10u);
}

}  // namespace
}  // namespace vds::smt
