#include "smt/cache.hpp"

#include <gtest/gtest.h>

namespace vds::smt {
namespace {

CacheConfig small_cache() {
  CacheConfig config;
  config.sets = 4;
  config.ways = 2;
  config.line_words = 4;
  config.hit_latency = 2;
  config.miss_latency = 20;
  return config;
}

TEST(CacheConfig, Validation) {
  EXPECT_NO_THROW(small_cache().validate());
  CacheConfig bad = small_cache();
  bad.sets = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = small_cache();
  bad.miss_latency = 1;  // < hit
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = small_cache();
  bad.hit_latency = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(small_cache());
  EXPECT_EQ(cache.access(0), 20u);  // cold miss
  EXPECT_EQ(cache.access(0), 2u);   // hit
  EXPECT_EQ(cache.access(3), 2u);   // same line
  EXPECT_EQ(cache.access(4), 20u);  // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, WouldHitDoesNotMutate) {
  Cache cache(small_cache());
  EXPECT_FALSE(cache.would_hit(0));
  cache.access(0);
  EXPECT_TRUE(cache.would_hit(0));
  EXPECT_EQ(cache.hits() + cache.misses(), 1u);
}

TEST(Cache, AssociativityHoldsConflictingLines) {
  Cache cache(small_cache());
  // Two lines mapping to the same set (stride = sets * line_words).
  const std::uint64_t stride = 4 * 4;
  cache.access(0);
  cache.access(stride);
  EXPECT_EQ(cache.access(0), 2u);       // both fit in 2 ways
  EXPECT_EQ(cache.access(stride), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache cache(small_cache());
  const std::uint64_t stride = 4 * 4;
  cache.access(0 * stride);  // way 0
  cache.access(1 * stride);  // way 1
  cache.access(0 * stride);  // touch line 0 -> line 1 is now LRU
  cache.access(2 * stride);  // evicts line 1
  EXPECT_EQ(cache.access(0 * stride), 2u);   // still resident
  EXPECT_EQ(cache.access(1 * stride), 20u);  // was evicted
}

TEST(Cache, FlushEmptiesEverything) {
  Cache cache(small_cache());
  cache.access(0);
  cache.flush();
  EXPECT_FALSE(cache.would_hit(0));
  EXPECT_EQ(cache.access(0), 20u);
}

TEST(Cache, HitRate) {
  Cache cache(small_cache());
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
  cache.access(0);
  cache.access(0);
  cache.access(0);
  cache.access(0);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.75);
}

TEST(Cache, SequentialFootprintFitsWhenSmall) {
  // 4 sets x 2 ways x 4 words = 32 words capacity.
  Cache cache(small_cache());
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 32; ++addr) cache.access(addr);
  }
  // Second pass should be all hits: 32 hits from pass 1 re-walk plus
  // the 3-of-4 same-line hits in pass 0.
  EXPECT_EQ(cache.misses(), 8u);  // 8 distinct lines, cold only
}

TEST(Cache, ThrashingFootprintMisses) {
  Cache cache(small_cache());
  // 128 words = 32 lines >> capacity of 8 lines: every new line misses
  // on a cyclic walk.
  std::uint64_t misses_before = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t addr = 0; addr < 128; addr += 4) cache.access(addr);
    if (pass == 0) misses_before = cache.misses();
  }
  EXPECT_EQ(cache.misses(), misses_before * 3);
}

}  // namespace
}  // namespace vds::smt
