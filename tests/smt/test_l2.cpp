#include <gtest/gtest.h>

#include "smt/core.hpp"
#include "smt/metrics.hpp"
#include "smt/workload.hpp"

namespace vds::smt {
namespace {

/// Fair comparison: memory sits 60 cycles away in both configurations;
/// enabling the L2 inserts a 12-cycle middle level, it does not move
/// memory closer. Without the L2, an L1 miss therefore costs the full
/// 60 cycles.
CoreConfig with_l2(bool enabled) {
  CoreConfig config;
  config.cache.sets = 8;
  config.cache.ways = 2;
  config.cache.line_words = 4;
  config.cache.hit_latency = 2;
  config.cache.miss_latency = enabled ? 12 : 60;
  config.l2_enabled = enabled;
  config.l2.sets = 256;
  config.l2.ways = 8;
  config.l2.line_words = 4;
  config.l2.hit_latency = 12;   // informational; L1 miss cost applies
  config.l2.miss_latency = 60;
  return config;
}

TraceEntry load_at(std::uint64_t addr) {
  TraceEntry entry;
  entry.cls = OpClass::kMem;
  entry.addr = addr;
  entry.has_dst = true;
  entry.dst = 9;
  return entry;
}

TEST(L2Config, Validation) {
  EXPECT_NO_THROW(with_l2(true).validate());
  CoreConfig bad = with_l2(true);
  bad.l2.miss_latency = 4;  // below L1 miss
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = with_l2(true);
  bad.l2.sets = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // Disabled L2 geometry is not validated.
  bad = with_l2(false);
  bad.l2.sets = 0;
  EXPECT_NO_THROW(bad.validate());
}

TEST(L2, MediumFootprintServedFromL2OnSecondPass) {
  // Footprint larger than L1 (64 words) but within L2: the second walk
  // hits L2 instead of memory.
  InstrTrace trace;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 512; addr += 4) {
      trace.push_back(load_at(addr));
    }
  }
  Core without(with_l2(false));
  Core with(with_l2(true));
  const auto result_without = without.run(trace);
  const auto result_with = with.run(trace);
  EXPECT_LT(result_with.cycles, result_without.cycles);
  EXPECT_GT(result_with.l2_hits, 0u);
}

TEST(L2, TinyFootprintUnaffected) {
  // Everything fits in L1 after the cold pass, and the cold misses go
  // all the way to memory in both configurations: the L2 never matters.
  InstrTrace trace;
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t addr = 0; addr < 32; addr += 4) {
      trace.push_back(load_at(addr));
    }
  }
  Core without(with_l2(false));
  Core with(with_l2(true));
  EXPECT_EQ(with.run(trace).cycles, without.run(trace).cycles);
}

TEST(L2, HugeFootprintStillMissesToMemory) {
  InstrTrace trace;
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
    trace.push_back(load_at(addr));
  }
  Core core(with_l2(true));
  const auto result = core.run(trace);
  EXPECT_GT(result.l2_misses, 0u);
}

TEST(L2, CountsReportedInResult) {
  InstrTrace trace;
  for (std::uint64_t addr = 0; addr < 512; addr += 4) {
    trace.push_back(load_at(addr));
  }
  Core core(with_l2(true));
  const auto result = core.run(trace);
  EXPECT_EQ(result.l2_hits + result.l2_misses, result.cache_misses);
  Core no_l2(with_l2(false));
  const auto plain = no_l2.run(trace);
  EXPECT_EQ(plain.l2_hits + plain.l2_misses, 0u);
}

TEST(L2, SharedL2AbsorbsInterThreadMisses) {
  // Two threads over the same medium footprint: with a shared L2, one
  // thread's fills serve the other's L1 misses.
  vds::sim::Rng rng(5);
  auto workload = memory_bound_workload(8000);
  workload.footprint_words = 2048;
  const auto trace = generate_trace(workload, rng);
  const auto m_without =
      measure_alpha(with_l2(false), FetchPolicy::kIcount, trace, trace);
  const auto m_with =
      measure_alpha(with_l2(true), FetchPolicy::kIcount, trace, trace);
  EXPECT_LT(m_with.cycles_together, m_without.cycles_together);
}

}  // namespace
}  // namespace vds::smt
