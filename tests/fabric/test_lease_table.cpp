// LeaseTable lifecycle: grant/commit/expire/coalesce/conflict, the
// expiry-racing-completion rule, and crash-exact replay of the
// assignment log (committed leases recovered, open ones re-issued).

#include "fabric/lease_table.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>

namespace vds::fabric {
namespace {

using Clock = LeaseTable::Clock;
using std::chrono::milliseconds;

class LeaseTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workdir_ = (std::filesystem::temp_directory_path() /
                ("vds_lease_table_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
    std::filesystem::remove_all(workdir_);
    std::filesystem::create_directories(workdir_);
    t0_ = Clock::now();
  }
  void TearDown() override { std::filesystem::remove_all(workdir_); }

  LeaseTable::Options options(std::uint64_t total = 100,
                              std::uint64_t per_lease = 30) {
    LeaseTable::Options opt;
    opt.total_cells = total;
    opt.lease_cells = per_lease;
    opt.fingerprint = 0xfeedu;
    opt.log_path = workdir_ + "/assignment.journal";
    opt.workdir = workdir_;
    opt.expiry = milliseconds(5000);
    opt.backoff_base = milliseconds(100);
    opt.backoff_cap = milliseconds(400);
    return opt;
  }

  std::string workdir_;
  Clock::time_point t0_;
};

TEST_F(LeaseTableTest, CutsRangesWithShortTail) {
  LeaseTable table(options(100, 30));
  EXPECT_EQ(table.lease_count(), 4u);  // 30+30+30+10
  auto a = table.next_grant(t0_);
  auto b = table.next_grant(t0_);
  auto c = table.next_grant(t0_);
  auto d = table.next_grant(t0_);
  ASSERT_TRUE(a && b && c && d);
  EXPECT_EQ(a->lo, 0u);
  EXPECT_EQ(a->hi, 30u);
  EXPECT_EQ(d->lo, 90u);
  EXPECT_EQ(d->hi, 100u);
  EXPECT_EQ(a->attempt, 1u);
  // Everything granted; nothing left to hand out.
  EXPECT_FALSE(table.next_grant(t0_).has_value());
  EXPECT_FALSE(table.all_committed());
}

TEST_F(LeaseTableTest, CommitWalksToAllCommitted) {
  LeaseTable table(options(60, 30));
  const auto a = table.next_grant(t0_);
  const auto b = table.next_grant(t0_);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(table.commit(a->lease, a->attempt, 0x1111, 30),
            LeaseTable::CommitOutcome::kCommitted);
  EXPECT_FALSE(table.all_committed());
  EXPECT_EQ(table.commit(b->lease, b->attempt, 0x2222, 30),
            LeaseTable::CommitOutcome::kCommitted);
  EXPECT_TRUE(table.all_committed());
  const auto journals = table.committed_journals();
  ASSERT_EQ(journals.size(), 2u);
  EXPECT_EQ(journals[0], table.journal_path(0, 1));
  EXPECT_EQ(journals[1], table.journal_path(1, 1));
}

TEST_F(LeaseTableTest, DuplicateCommitCoalescesEqualDigest) {
  LeaseTable table(options(30, 30));
  const auto grant = table.next_grant(t0_);
  ASSERT_TRUE(grant);
  ASSERT_EQ(table.commit(0, 1, 0xabc, 30),
            LeaseTable::CommitOutcome::kCommitted);
  EXPECT_EQ(table.commit(0, 1, 0xabc, 30),
            LeaseTable::CommitOutcome::kCoalesced);
  EXPECT_EQ(table.audit().coalesced, 1u);
  EXPECT_EQ(table.committed_count(), 1u);  // never double-counted
}

TEST_F(LeaseTableTest, DuplicateCommitWithDifferentDigestConflicts) {
  LeaseTable table(options(30, 30));
  const auto grant = table.next_grant(t0_);
  ASSERT_TRUE(grant);
  ASSERT_EQ(table.commit(0, 1, 0xabc, 30),
            LeaseTable::CommitOutcome::kCommitted);
  EXPECT_EQ(table.commit(0, 2, 0xdef, 30),
            LeaseTable::CommitOutcome::kConflict);
  // The conflict commits nothing: the committed digest is unchanged.
  EXPECT_EQ(table.committed_count(), 1u);
  EXPECT_EQ(table.audit().coalesced, 0u);
}

TEST_F(LeaseTableTest, ExpiryReopensWithBackoffAndBumpedAttempt) {
  LeaseTable table(options(30, 30));
  const auto first = table.next_grant(t0_);
  ASSERT_TRUE(first);
  EXPECT_EQ(first->attempt, 1u);

  // Heartbeats hold the lease; silence past expiry reopens it.
  table.heartbeat(0, t0_ + milliseconds(4000));
  EXPECT_TRUE(table.expire_stale(t0_ + milliseconds(5000)).empty());
  const auto expired = table.expire_stale(t0_ + milliseconds(9001));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 0u);

  // Backing off: not grantable immediately, grantable after the base.
  EXPECT_FALSE(table.next_grant(t0_ + milliseconds(9001)).has_value());
  const auto second = table.next_grant(t0_ + milliseconds(9102));
  ASSERT_TRUE(second);
  EXPECT_EQ(second->attempt, 2u);
  EXPECT_NE(second->journal, first->journal);  // fresh shard per attempt
  EXPECT_EQ(table.audit().expired, 1u);
}

TEST_F(LeaseTableTest, BackoffIsCappedExponential) {
  LeaseTable table(options(30, 30));
  auto now = t0_;
  // Drive attempts 1..5 through grant -> immediate release; waits
  // needed: 100, 200, 400(cap), 400(cap).
  const milliseconds expected[] = {milliseconds(100), milliseconds(200),
                                   milliseconds(400), milliseconds(400)};
  auto grant = table.next_grant(now);
  ASSERT_TRUE(grant);
  for (const milliseconds wait : expected) {
    table.release(0, now);
    EXPECT_FALSE(table.next_grant(now + wait - milliseconds(1)));
    now += wait;
    grant = table.next_grant(now);
    ASSERT_TRUE(grant) << "after waiting " << wait.count() << "ms";
  }
  EXPECT_EQ(grant->attempt, 5u);
}

TEST_F(LeaseTableTest, LateCommitAfterExpiryStillCommits) {
  // The acceptance rule: lease expiry racing completion resolves in
  // favor of the work — the late result is bit-exact by determinism.
  LeaseTable table(options(30, 30));
  const auto first = table.next_grant(t0_);
  ASSERT_TRUE(first);
  ASSERT_EQ(table.expire_stale(t0_ + milliseconds(6000)).size(), 1u);
  EXPECT_EQ(table.commit(0, 1, 0x777, 30),
            LeaseTable::CommitOutcome::kCommitted);
  EXPECT_TRUE(table.all_committed());
  // The re-issued attempt's duplicate result coalesces.
  EXPECT_EQ(table.commit(0, 2, 0x777, 30),
            LeaseTable::CommitOutcome::kCoalesced);
  // committed_journals points at the attempt that actually committed.
  EXPECT_EQ(table.committed_journals().front(), table.journal_path(0, 1));
}

TEST_F(LeaseTableTest, ResumeRecoversCommittedAndReissuesOpen) {
  auto opt = options(90, 30);
  {
    LeaseTable table(opt);
    auto a = table.next_grant(t0_);
    auto b = table.next_grant(t0_);
    ASSERT_TRUE(a && b);
    ASSERT_EQ(table.commit(a->lease, a->attempt, 0x1a, 30),
              LeaseTable::CommitOutcome::kCommitted);
    // b granted but never completed; lease 2 never granted. Simulated
    // SIGKILL: drop the table without any shutdown protocol.
  }
  opt.resume = true;
  LeaseTable table(opt);
  EXPECT_EQ(table.committed_count(), 1u);
  EXPECT_EQ(table.audit().replayed, 1u);
  // Replayed grants stay open (the worker died with the coordinator):
  // both the granted-uncommitted lease and the never-granted one come
  // back, with the attempt counter continuing, not restarting.
  const auto first = table.next_grant(t0_);
  const auto second = table.next_grant(t0_);
  ASSERT_TRUE(first && second);
  EXPECT_FALSE(table.next_grant(t0_).has_value());
  const bool reissued_b =
      (first->lease == 1 && first->attempt == 2) ||
      (second->lease == 1 && second->attempt == 2);
  EXPECT_TRUE(reissued_b);
  // Completing the remaining two reaches all-committed with the
  // replayed digest intact.
  EXPECT_EQ(table.commit(1, 2, 0x1b, 30),
            LeaseTable::CommitOutcome::kCommitted);
  EXPECT_EQ(table.commit(2, 1, 0x1c, 30),
            LeaseTable::CommitOutcome::kCommitted);
  EXPECT_TRUE(table.all_committed());
  EXPECT_EQ(table.commit(0, 1, 0x1a, 30),
            LeaseTable::CommitOutcome::kCoalesced);
  EXPECT_EQ(table.commit(0, 1, 0xbad, 30),
            LeaseTable::CommitOutcome::kConflict);
}

TEST_F(LeaseTableTest, ResumeRejectsForeignFingerprint) {
  auto opt = options();
  { LeaseTable table(opt); }
  opt.resume = true;
  opt.fingerprint = 0xdead;
  EXPECT_THROW(LeaseTable{opt}, std::runtime_error);
}

TEST_F(LeaseTableTest, ResumeRejectsMismatchedRanges) {
  auto opt = options(100, 30);
  {
    LeaseTable table(opt);
    const auto grant = table.next_grant(t0_);
    ASSERT_TRUE(grant);
  }
  // Same fingerprint, different slicing: the logged grant ranges no
  // longer line up with the configured leases.
  opt.resume = true;
  opt.lease_cells = 50;
  EXPECT_THROW(LeaseTable{opt}, std::runtime_error);
}

TEST_F(LeaseTableTest, FreshStartWithoutResumeDiscardsOldLog) {
  auto opt = options(30, 30);
  {
    LeaseTable table(opt);
    const auto grant = table.next_grant(t0_);
    ASSERT_TRUE(grant);
    ASSERT_EQ(table.commit(0, 1, 0x1, 30),
              LeaseTable::CommitOutcome::kCommitted);
  }
  LeaseTable table(opt);  // resume=false: start over
  EXPECT_EQ(table.committed_count(), 0u);
  EXPECT_TRUE(table.next_grant(t0_).has_value());
}

}  // namespace
}  // namespace vds::fabric
