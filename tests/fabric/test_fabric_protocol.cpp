// Fabric wire protocol: format/parse round-trips for every message
// kind, strictness on malformed documents, and the fingerprint-parity
// property the whole fabric rests on — a config that survives the
// wire builds the identical McConfig fingerprint on the far side.

#include "fabric/protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/mc_campaign.hpp"
#include "scenario/campaign_spec.hpp"
#include "scenario/json_reader.hpp"

namespace vds::fabric {
namespace {

scenario::JsonValue parse(const std::string& line) {
  return scenario::parse_json(line);
}

TEST(FabricProtocol, Hex16RoundTrip) {
  EXPECT_EQ(hex16(0), "0000000000000000");
  EXPECT_EQ(hex16(0xdeadbeefcafef00dull), "deadbeefcafef00d");
  EXPECT_EQ(parse_hex64("deadbeefcafef00d"), 0xdeadbeefcafef00dull);
  EXPECT_EQ(parse_hex64("0"), 0u);
  EXPECT_THROW(parse_hex64(""), std::invalid_argument);
  EXPECT_THROW(parse_hex64("DEADBEEF"), std::invalid_argument);  // lowercase
  EXPECT_THROW(parse_hex64("12345678901234567"), std::invalid_argument);
  EXPECT_THROW(parse_hex64("xyz"), std::invalid_argument);
}

TEST(FabricProtocol, HelloRoundTrip) {
  const std::string line = format_hello(Hello{"worker-7"});
  const auto doc = parse(line);
  ASSERT_EQ(classify(doc), MessageKind::kHello);
  EXPECT_EQ(parse_hello(doc).worker, "worker-7");
}

TEST(FabricProtocol, LeaseRoundTrip) {
  Lease lease;
  lease.lease = 3;
  lease.attempt = 2;
  lease.lo = 1500;
  lease.hi = 2000;
  lease.journal = "/tmp/fab/lease-3-a2.journal";
  const auto doc = parse(format_lease(lease));
  ASSERT_EQ(classify(doc), MessageKind::kLease);
  const Lease got = parse_lease(doc);
  EXPECT_EQ(got.lease, 3u);
  EXPECT_EQ(got.attempt, 2u);
  EXPECT_EQ(got.lo, 1500u);
  EXPECT_EQ(got.hi, 2000u);
  EXPECT_EQ(got.journal, lease.journal);
}

TEST(FabricProtocol, LeaseRejectsEmptyRangeAndZeroAttempt) {
  Lease lease;
  lease.lease = 0;
  lease.attempt = 1;
  lease.lo = 10;
  lease.hi = 10;
  lease.journal = "x";
  EXPECT_THROW(parse_lease(parse(format_lease(lease))),
               std::invalid_argument);
  lease.hi = 20;
  lease.attempt = 0;
  EXPECT_THROW(parse_lease(parse(format_lease(lease))),
               std::invalid_argument);
}

TEST(FabricProtocol, HeartbeatRoundTrip) {
  Heartbeat heartbeat;
  heartbeat.worker = "w";
  heartbeat.lease = 9;
  heartbeat.resolved = 1234;
  const auto doc = parse(format_heartbeat(heartbeat));
  ASSERT_EQ(classify(doc), MessageKind::kHeartbeat);
  const Heartbeat got = parse_heartbeat(doc);
  EXPECT_EQ(got.worker, "w");
  EXPECT_EQ(got.lease, 9u);
  EXPECT_EQ(got.resolved, 1234u);
}

TEST(FabricProtocol, ResultRoundTripsBothStatuses) {
  Result ok;
  ok.worker = "w1";
  ok.lease = 4;
  ok.attempt = 3;
  ok.ok = true;
  ok.digest = 0x0123456789abcdefull;
  ok.cells = 500;
  const auto ok_doc = parse(format_result(ok));
  ASSERT_EQ(classify(ok_doc), MessageKind::kResult);
  const Result got_ok = parse_result(ok_doc);
  EXPECT_TRUE(got_ok.ok);
  EXPECT_EQ(got_ok.digest, ok.digest);
  EXPECT_EQ(got_ok.cells, 500u);
  EXPECT_EQ(got_ok.attempt, 3u);

  Result failed;
  failed.worker = "w2";
  failed.lease = 4;
  failed.attempt = 1;
  failed.ok = false;
  failed.error = "journal append failed";
  const Result got_failed = parse_result(parse(format_result(failed)));
  EXPECT_FALSE(got_failed.ok);
  EXPECT_EQ(got_failed.error, "journal append failed");
}

TEST(FabricProtocol, DoneAndClassifyErrors) {
  EXPECT_EQ(classify(parse(format_done())), MessageKind::kDone);
  EXPECT_THROW(classify(parse("{\"no_schema\":1}")), std::invalid_argument);
  EXPECT_THROW(classify(parse("{\"schema\":\"vds.bogus.v1\"}")),
               std::invalid_argument);
  EXPECT_THROW(classify(parse("[1,2]")), std::invalid_argument);
}

TEST(FabricProtocol, ConfigRoundTripPreservesFingerprint) {
  Config config;
  config.scenario.rounds = 60;
  config.campaign.replicas = 77;
  config.campaign.grid = {1, 5, 9};
  config.campaign.kinds = {vds::fault::FaultKind::kTransient,
                           vds::fault::FaultKind::kProcessorCrash};
  config.campaign.seed = 1234;
  config.campaign.jitter = false;
  config.campaign.fixed_offset = 0.45;
  config.campaign.cell_timeout = 2.5;
  config.campaign.max_retries = 5;
  config.chaos = "cell.fail=0.01:3";
  config.heartbeat_ms = 250;

  const auto doc = parse(format_config(config));
  ASSERT_EQ(classify(doc), MessageKind::kConfig);
  const Config got = parse_config(doc);
  EXPECT_EQ(got.chaos, config.chaos);
  EXPECT_EQ(got.heartbeat_ms, 250u);
  EXPECT_EQ(got.campaign.replicas, 77u);
  EXPECT_EQ(got.campaign.cell_timeout, 2.5);
  EXPECT_EQ(got.campaign.max_retries, 5u);

  // The property the lease machinery trusts: both ends build the same
  // campaign fingerprint, so shard journals written by the worker are
  // resumable (and mergeable) by the coordinator.
  const runtime::McConfig coordinator_config =
      scenario::to_mc_config(config.campaign, config.scenario);
  const runtime::McConfig worker_config =
      scenario::to_mc_config(got.campaign, got.scenario);
  EXPECT_EQ(coordinator_config.fingerprint(), worker_config.fingerprint());
}

TEST(FabricProtocol, ConfigSurvivesANonDefaultScenario) {
  Config config;
  config.scenario.scheme = core::RecoveryScheme::kRollback;
  config.scenario.alpha = 0.72;
  config.scenario.rounds = 40;
  config.campaign.replicas = 10;
  const Config got = parse_config(parse(format_config(config)));
  const auto a = scenario::to_mc_config(config.campaign, config.scenario);
  const auto b = scenario::to_mc_config(got.campaign, got.scenario);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.round_time, b.round_time);
}

TEST(FabricProtocol, ParseRejectsMissingKeys) {
  EXPECT_THROW(
      parse_lease(parse("{\"schema\":\"vds.fabric_lease.v1\",\"lease\":1}")),
      std::invalid_argument);
  EXPECT_THROW(parse_hello(parse("{\"schema\":\"vds.fabric_hello.v1\"}")),
               std::invalid_argument);
  EXPECT_THROW(
      parse_result(parse(
          "{\"schema\":\"vds.fabric_result.v1\",\"worker\":\"w\","
          "\"lease\":1,\"attempt\":1,\"status\":\"ok\"}")),
      std::invalid_argument);
}

}  // namespace
}  // namespace vds::fabric
