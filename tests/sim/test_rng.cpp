#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace vds::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int k = 0; k < 100; ++k) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(77);
  const auto first = rng.next();
  rng.next();
  rng.reseed(77);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int k = 0; k < 10000; ++k) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int k = 0; k < 1000; ++k) {
    const double u = rng.uniform(-3.0, 4.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 4.0);
  }
}

TEST(Rng, UniformIndexStaysBelowN) {
  Rng rng(7);
  for (int k = 0; k < 10000; ++k) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIndexIsRoughlyUniform) {
  Rng rng(8);
  std::array<int, 8> counts{};
  const int n = 80000;
  for (int k = 0; k < n; ++k) ++counts[rng.uniform_index(8)];
  for (const int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int k = 0; k < 10000; ++k) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(10);
  for (int k = 0; k < 100; ++k) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(13);
  for (int k = 0; k < 10000; ++k) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int k = 0; k < n; ++k) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) {
    sum += static_cast<double>(rng.geometric(0.25));
  }
  // Mean of failures-before-success geometric: (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(16);
  EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(17);
  Rng child_a = parent.split(1);
  Rng child_b = parent.split(2);
  int equal = 0;
  for (int k = 0; k < 1000; ++k) {
    if (child_a.next() == child_b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SubstreamIsPureFunctionOfSeed) {
  // Unlike split(), substream() must not depend on how far the parent
  // has advanced -- that is what makes parallel campaigns bitwise
  // reproducible regardless of which thread draws which stream first.
  Rng fresh(42);
  Rng consumed(42);
  for (int k = 0; k < 1000; ++k) consumed.next();
  Rng a = fresh.substream(3);
  Rng b = consumed.substream(3);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SubstreamReproducibleAcrossReseeds) {
  Rng rng(42);
  Rng first = rng.substream(5);
  const auto expected = first.next();
  rng.next();
  rng.reseed(42);
  Rng second = rng.substream(5);
  EXPECT_EQ(second.next(), expected);
}

TEST(Rng, DistinctSubstreamsDiffer) {
  Rng rng(19);
  Rng a = rng.substream(0);
  Rng b = rng.substream(1);
  int equal = 0;
  for (int k = 0; k < 1000; ++k) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SubstreamsAreStatisticallyUncorrelated) {
  // Sample correlation between adjacent substreams' uniforms; for
  // independent streams |r| is O(1/sqrt(n)).
  Rng rng(20);
  const int n = 20000;
  for (const std::uint64_t id : {0ull, 1ull, 41ull, 1000000ull}) {
    Rng a = rng.substream(id);
    Rng b = rng.substream(id + 1);
    double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_yy = 0.0,
           sum_xy = 0.0;
    for (int k = 0; k < n; ++k) {
      const double x = a.uniform();
      const double y = b.uniform();
      sum_x += x;
      sum_y += y;
      sum_xx += x * x;
      sum_yy += y * y;
      sum_xy += x * y;
    }
    const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
    const double var_x = sum_xx / n - (sum_x / n) * (sum_x / n);
    const double var_y = sum_yy / n - (sum_y / n) * (sum_y / n);
    const double corr = cov / std::sqrt(var_x * var_y);
    EXPECT_LT(std::abs(corr), 0.03) << "stream id " << id;
    EXPECT_NEAR(sum_x / n, 0.5, 0.02) << "stream id " << id;
  }
}

TEST(Rng, SubstreamsOfDifferentSeedsDiffer) {
  Rng a = Rng(1).substream(7);
  Rng b = Rng(2).substream(7);
  int equal = 0;
  for (int k = 0; k < 1000; ++k) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SeedAccessorTracksReseed) {
  Rng rng(33);
  EXPECT_EQ(rng.seed(), 33u);
  rng.reseed(44);
  EXPECT_EQ(rng.seed(), 44u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  Rng rng(18);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace vds::sim
