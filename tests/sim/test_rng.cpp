#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace vds::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int k = 0; k < 100; ++k) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(77);
  const auto first = rng.next();
  rng.next();
  rng.reseed(77);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int k = 0; k < 10000; ++k) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int k = 0; k < 1000; ++k) {
    const double u = rng.uniform(-3.0, 4.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 4.0);
  }
}

TEST(Rng, UniformIndexStaysBelowN) {
  Rng rng(7);
  for (int k = 0; k < 10000; ++k) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIndexIsRoughlyUniform) {
  Rng rng(8);
  std::array<int, 8> counts{};
  const int n = 80000;
  for (int k = 0; k < n; ++k) ++counts[rng.uniform_index(8)];
  for (const int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int k = 0; k < 10000; ++k) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(10);
  for (int k = 0; k < 100; ++k) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(13);
  for (int k = 0; k < 10000; ++k) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int k = 0; k < n; ++k) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) {
    sum += static_cast<double>(rng.geometric(0.25));
  }
  // Mean of failures-before-success geometric: (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(16);
  EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(17);
  Rng child_a = parent.split(1);
  Rng child_b = parent.split(2);
  int equal = 0;
  for (int k = 0; k < 1000; ++k) {
    if (child_a.next() == child_b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  Rng rng(18);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace vds::sim
