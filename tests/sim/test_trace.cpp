#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vds::sim {
namespace {

TEST(Trace, RecordsInOrder) {
  Trace trace;
  trace.record(1.0, "V1", TraceKind::kRoundStart, "round 1");
  trace.record(2.0, "V2", TraceKind::kRoundEnd);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.records()[0].actor, "V1");
  EXPECT_EQ(trace.records()[1].kind, TraceKind::kRoundEnd);
}

TEST(Trace, DisabledRecordsNothing) {
  Trace trace(/*enabled=*/false);
  trace.record(1.0, "V1", TraceKind::kCompare);
  EXPECT_EQ(trace.size(), 0u);
  trace.set_enabled(true);
  trace.record(2.0, "V1", TraceKind::kCompare);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(Trace, CapDropsExcess) {
  Trace trace(true, /*cap=*/2);
  for (int k = 0; k < 5; ++k) {
    trace.record(k, "x", TraceKind::kInfo);
  }
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped(), 3u);
}

TEST(Trace, CountByKind) {
  Trace trace;
  trace.record(1.0, "a", TraceKind::kCompare);
  trace.record(2.0, "a", TraceKind::kCompare);
  trace.record(3.0, "a", TraceKind::kCheckpoint);
  EXPECT_EQ(trace.count(TraceKind::kCompare), 2u);
  EXPECT_EQ(trace.count(TraceKind::kCheckpoint), 1u);
  EXPECT_EQ(trace.count(TraceKind::kRollback), 0u);
}

TEST(Trace, ListenerSeesEveryRecordEvenPastCap) {
  Trace trace(true, /*cap=*/1);
  int seen = 0;
  trace.set_listener([&](const TraceRecord&) { ++seen; });
  for (int k = 0; k < 4; ++k) trace.record(k, "x", TraceKind::kInfo);
  EXPECT_EQ(seen, 4);
}

TEST(Trace, ClearResets) {
  Trace trace(true, 1);
  trace.record(0.0, "x", TraceKind::kInfo);
  trace.record(1.0, "x", TraceKind::kInfo);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, DumpContainsKindNamesAndActors) {
  Trace trace;
  trace.record(1.5, "V2", TraceKind::kCompareMismatch, "round 7");
  std::ostringstream os;
  trace.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("compare_mismatch"), std::string::npos);
  EXPECT_NE(out.find("V2"), std::string::npos);
  EXPECT_NE(out.find("round 7"), std::string::npos);
}

TEST(TraceKindNames, AllDistinctAndNonEmpty) {
  for (int k = 0; k <= static_cast<int>(TraceKind::kInfo); ++k) {
    const auto name = to_string(static_cast<TraceKind>(k));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
  }
}

}  // namespace
}  // namespace vds::sim
