#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace vds::sim {
namespace {

TEST(Simulator, TimeStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, RunAdvancesTimeToLastEvent) {
  Simulator sim;
  sim.call_at(2.5, [] {});
  sim.call_at(7.0, [] {});
  const auto executed = sim.run();
  EXPECT_EQ(executed, 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST(Simulator, CallInIsRelative) {
  Simulator sim;
  double seen = -1.0;
  sim.call_at(5.0, [&] {
    sim.call_in(3.0, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 8.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.call_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.call_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.call_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  for (int k = 1; k <= 10; ++k) {
    sim.call_at(static_cast<double>(k), [&] { ++fired; });
  }
  const auto executed = sim.run_until(4.5);
  EXPECT_EQ(executed, 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
  EXPECT_EQ(sim.pending(), 6u);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.call_at(3.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsDelivery) {
  Simulator sim;
  int fired = 0;
  sim.call_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.call_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, CancelledEventsDoNotFire) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.call_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<double> times;
  // A self-rescheduling process: classic DES pattern.
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 5) sim.call_in(1.5, tick);
  };
  sim.call_at(0.0, tick);
  sim.run();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.back(), 6.0);
}

TEST(Simulator, DrainClearsPendingButKeepsTime) {
  Simulator sim;
  sim.call_at(4.0, [] {});
  sim.run();
  sim.call_at(9.0, [] {});
  sim.drain();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, ExecutedCountsAcrossRuns) {
  Simulator sim;
  sim.call_at(1.0, [] {});
  sim.run();
  sim.call_at(2.0, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 2u);
}

TEST(Simulator, RunUntilAdvancesToHorizonWhenIdle) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

}  // namespace
}  // namespace vds::sim
