#include "sim/time.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"

namespace vds {
namespace {

TEST(TimeClose, ExactEquality) {
  EXPECT_TRUE(sim::time_close(1.0, 1.0));
  EXPECT_TRUE(sim::time_close(0.0, 0.0));
}

TEST(TimeClose, WithinRelativeTolerance) {
  EXPECT_TRUE(sim::time_close(1000.0, 1000.0 + 1e-7));
  EXPECT_FALSE(sim::time_close(1000.0, 1000.1));
}

TEST(TimeClose, SmallMagnitudesUseAbsoluteFloor) {
  // Near zero the tolerance floor is rel * 1.0.
  EXPECT_TRUE(sim::time_close(1e-12, 2e-12));
  EXPECT_FALSE(sim::time_close(0.0, 1e-3));
}

TEST(TimeClose, AccumulatedRoundingAccepted) {
  double sum = 0.0;
  for (int k = 0; k < 1000; ++k) sum += 0.1;
  EXPECT_TRUE(sim::time_close(sum, 100.0));
}

TEST(TimeInfinity, ComparesAboveEverything) {
  EXPECT_GT(sim::kTimeInfinity, 1e300);
}

TEST(RunReport, ToStringMentionsKeyFields) {
  core::RunReport report;
  report.completed = true;
  report.total_time = 123.5;
  report.rounds_committed = 42;
  report.detections = 3;
  report.predictions = 4;
  report.prediction_hits = 3;
  const std::string text = report.to_string();
  EXPECT_NE(text.find("completed"), std::string::npos);
  EXPECT_NE(text.find("rounds=42"), std::string::npos);
  EXPECT_NE(text.find("pred=3/4"), std::string::npos);
}

TEST(RunReport, FailSafeAndSilentFlagsSurfaceLoudly) {
  core::RunReport report;
  report.failed_safe = true;
  EXPECT_NE(report.to_string().find("FAIL-SAFE"), std::string::npos);
  core::RunReport corrupt;
  corrupt.completed = true;
  corrupt.silent_corruption = true;
  EXPECT_NE(corrupt.to_string().find("SILENT-CORRUPTION"),
            std::string::npos);
}

TEST(RunReport, ThroughputAndAccuracyDefaults) {
  core::RunReport report;
  EXPECT_DOUBLE_EQ(report.throughput(), 0.0);
  EXPECT_DOUBLE_EQ(report.predictor_accuracy(), 0.5);
  report.total_time = 10.0;
  report.rounds_committed = 5;
  EXPECT_DOUBLE_EQ(report.throughput(), 0.5);
  report.predictions = 10;
  report.prediction_hits = 7;
  EXPECT_DOUBLE_EQ(report.predictor_accuracy(), 0.7);
}

TEST(RunReport, AdaptiveCountersAppearOnlyWhenUsed) {
  core::RunReport report;
  report.completed = true;
  EXPECT_EQ(report.to_string().find("adaptive"), std::string::npos);
  report.adaptive_det_recoveries = 2;
  report.adaptive_prob_recoveries = 5;
  report.scheme_switches = 1;
  const std::string text = report.to_string();
  EXPECT_NE(text.find("adaptive(det=2,prob=5,switches=1)"),
            std::string::npos);
}

}  // namespace
}  // namespace vds
