#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vds::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.next_time().has_value());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(3.0, [&] { fired.push_back(3); });
  queue.schedule(1.0, [&] { fired.push_back(1); });
  queue.schedule(2.0, [&] { fired.push_back(2); });
  while (auto ev = queue.pop()) ev->action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int k = 0; k < 10; ++k) {
    queue.schedule(5.0, [&fired, k] { fired.push_back(k); });
  }
  while (auto ev = queue.pop()) ev->action();
  for (int k = 0; k < 10; ++k) EXPECT_EQ(fired[static_cast<size_t>(k)], k);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue queue;
  queue.schedule(7.0, [] {});
  queue.schedule(4.0, [] {});
  ASSERT_TRUE(queue.next_time().has_value());
  EXPECT_DOUBLE_EQ(*queue.next_time(), 4.0);
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.schedule(1.0, [&] { fired = true; });
  queue.schedule(2.0, [] {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 1u);
  while (auto ev = queue.pop()) ev->action();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, [] {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, [] {});
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(EventId{}));
  EXPECT_FALSE(queue.cancel(EventId{12345}));
}

TEST(EventQueue, CancelledHeadIsSkippedByNextTime) {
  EventQueue queue;
  const EventId early = queue.schedule(1.0, [] {});
  queue.schedule(9.0, [] {});
  ASSERT_TRUE(queue.cancel(early));
  ASSERT_TRUE(queue.next_time().has_value());
  EXPECT_DOUBLE_EQ(*queue.next_time(), 9.0);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue queue;
  const EventId a = queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1u);
  queue.pop();
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue queue;
  for (int k = 0; k < 5; ++k) queue.schedule(k, [] {});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(EventQueue, ManyInterleavedOperationsStaySorted) {
  EventQueue queue;
  std::vector<double> fired;
  for (int k = 100; k > 0; --k) {
    queue.schedule(static_cast<double>(k % 17), [&fired, k] {
      fired.push_back(static_cast<double>(k % 17));
    });
  }
  while (auto ev = queue.pop()) ev->action();
  for (std::size_t j = 1; j < fired.size(); ++j) {
    EXPECT_LE(fired[j - 1], fired[j]);
  }
}

}  // namespace
}  // namespace vds::sim
