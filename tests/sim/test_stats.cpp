#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/rng.hpp"

namespace vds::sim {
namespace {

TEST(Accumulator, EmptyDefaults) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sem(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 42.0);
  EXPECT_DOUBLE_EQ(acc.max(), 42.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 42.0);
}

TEST(Accumulator, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  Accumulator acc;
  double sum = 0.0;
  for (const double x : xs) {
    acc.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(acc.mean(), mean, 1e-12);
  EXPECT_NEAR(acc.variance(), var, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.25);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int k = 0; k < 50; ++k) {
    const double x = 0.37 * k - 3.0;
    all.add(x);
    (k < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeIsAssociativeUpToRounding) {
  // Chan's merge is mathematically associative; in floating point the
  // two groupings agree to rounding error. The campaign runtime relies
  // on this (plus a *fixed* merge order for bitwise determinism).
  Accumulator a, b, c;
  Rng rng(91);
  for (int k = 0; k < 17; ++k) a.add(rng.normal(5.0, 2.0));
  for (int k = 0; k < 113; ++k) b.add(rng.normal(-1.0, 0.3));
  for (int k = 0; k < 5; ++k) c.add(rng.normal(0.0, 10.0));

  Accumulator left_first = a;   // (a + b) + c
  left_first.merge(b);
  left_first.merge(c);
  Accumulator right_first = b;  // a + (b + c)
  right_first.merge(c);
  Accumulator a2 = a;
  a2.merge(right_first);

  EXPECT_EQ(left_first.count(), a2.count());
  EXPECT_NEAR(left_first.mean(), a2.mean(), 1e-12);
  EXPECT_NEAR(left_first.variance(), a2.variance(),
              1e-9 * left_first.variance());
  EXPECT_DOUBLE_EQ(left_first.min(), a2.min());
  EXPECT_DOUBLE_EQ(left_first.max(), a2.max());
  EXPECT_NEAR(left_first.sum(), a2.sum(), 1e-9);
}

TEST(Accumulator, MergeInFixedOrderIsBitwiseDeterministic) {
  // The same shards merged in the same order give the same bits --
  // the property the Monte Carlo runtime's canonical-order reduction
  // depends on for thread-count-independent results.
  std::vector<Accumulator> shards(8);
  Rng rng(92);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (int k = 0; k < 25; ++k) shards[s].add(rng.uniform(-5.0, 5.0));
  }
  Accumulator first, second;
  for (const Accumulator& shard : shards) first.merge(shard);
  for (const Accumulator& shard : shards) second.merge(shard);
  EXPECT_EQ(first.mean(), second.mean());
  EXPECT_EQ(first.variance(), second.variance());
  EXPECT_EQ(first.sum(), second.sum());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  Accumulator empty;
  acc.merge(empty);
  EXPECT_EQ(acc.count(), 2u);
  empty.merge(acc);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(Accumulator, CiHalfwidthShrinksWithN) {
  Accumulator small;
  Accumulator large;
  for (int k = 0; k < 10; ++k) small.add(k % 3);
  for (int k = 0; k < 1000; ++k) large.add(k % 3);
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(CriticalValues, NormalMatchesTables) {
  // Classic two-sided table anchors.
  EXPECT_NEAR(normal_critical(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(normal_critical(0.90), 1.644854, 1e-5);
  EXPECT_NEAR(normal_critical(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(normal_critical(0.50), 0.674490, 1e-5);
}

TEST(CriticalValues, NormalRejectsDegenerateConfidence) {
  EXPECT_TRUE(std::isnan(normal_critical(0.0)));
  EXPECT_TRUE(std::isnan(normal_critical(1.0)));
  EXPECT_TRUE(std::isnan(normal_critical(-0.5)));
  EXPECT_TRUE(std::isnan(normal_critical(2.0)));
}

TEST(CriticalValues, StudentTMatchesTables) {
  // t_{0.975, dof} from standard tables.
  EXPECT_NEAR(student_t_critical(0.95, 1), 12.7062, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 2), 4.30265, 1e-4);
  EXPECT_NEAR(student_t_critical(0.95, 4), 2.776445, 1e-5);
  EXPECT_NEAR(student_t_critical(0.95, 10), 2.228139, 1e-5);
  EXPECT_NEAR(student_t_critical(0.95, 30), 2.042272, 1e-5);
  EXPECT_NEAR(student_t_critical(0.99, 4), 4.604095, 1e-5);
  EXPECT_NEAR(student_t_critical(0.90, 7), 1.894579, 1e-5);
}

TEST(CriticalValues, StudentTConvergesToNormal) {
  EXPECT_NEAR(student_t_critical(0.95, 100000), normal_critical(0.95),
              1e-4);
  // Past the large-dof cutoff the normal value is returned exactly.
  EXPECT_DOUBLE_EQ(student_t_critical(0.95, 2000000),
                   normal_critical(0.95));
}

TEST(CriticalValues, StudentTZeroDofIsUnbounded) {
  // One sample has no variance estimate; the interval is unbounded.
  EXPECT_TRUE(std::isinf(student_t_critical(0.95, 0)));
  EXPECT_TRUE(std::isnan(student_t_critical(0.0, 5)));
  EXPECT_TRUE(std::isnan(student_t_critical(1.0, 5)));
}

TEST(Accumulator, CiHalfwidthTEmptyAndSingleAreZero) {
  Accumulator acc;
  EXPECT_DOUBLE_EQ(acc.ci_halfwidth_t(), 0.0);  // n = 0
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.ci_halfwidth_t(), 0.0);  // n = 1
}

TEST(Accumulator, CiHalfwidthTZeroVarianceIsZero) {
  Accumulator acc;
  for (int k = 0; k < 10; ++k) acc.add(7.0);
  EXPECT_DOUBLE_EQ(acc.ci_halfwidth_t(), 0.0);
}

TEST(Accumulator, CiHalfwidthTMatchesHandComputation) {
  // n = 5 samples -> dof 4 -> t = 2.776445; halfwidth = t * sem.
  Accumulator acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(x);
  const double expected = 2.776445 * acc.sem();
  EXPECT_NEAR(acc.ci_halfwidth_t(0.95), expected, 1e-4);
  // Wider confidence, wider interval; and t beats the normal z.
  EXPECT_GT(acc.ci_halfwidth_t(0.99), acc.ci_halfwidth_t(0.95));
  EXPECT_GT(acc.ci_halfwidth_t(0.95), acc.ci_halfwidth(1.959964));
}

TEST(Accumulator, ResetClears) {
  Accumulator acc;
  acc.add(5.0);
  acc.reset();
  EXPECT_TRUE(acc.empty());
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.9);
  h.add(5.0);
  h.add(9.99);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, TracksUnderAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(55.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 6.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 5.0);
  EXPECT_THROW((void)h.bin_lo(4), std::out_of_range);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int k = 0; k < 100; ++k) h.add(k + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, QuantileOnEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, ToStringMentionsEveryBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[0, 1)"), std::string::npos);
  EXPECT_NE(s.find("[1, 2)"), std::string::npos);
}

TEST(Histogram, NanIsCountedNotBinned) {
  // NaN compares false against every bound, so the unguarded cast to
  // size_t was UB (caught by UBSan once this test existed). It must
  // land in its own bucket, not in a value bin.
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(-std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  std::uint64_t binned = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) binned += h.bin_count(i);
  EXPECT_EQ(binned, 1u);
  EXPECT_NE(h.to_string().find("nan 2"), std::string::npos);
}

TEST(Histogram, InfinitiesLandInOverflowBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(Histogram, QuantileIgnoresNanMass) {
  Histogram h(0.0, 10.0, 10);
  for (int k = 0; k < 10; ++k) h.add(static_cast<double>(k) + 0.5);
  const double median_before = h.quantile(0.5);
  for (int k = 0; k < 100; ++k) {
    h.add(std::numeric_limits<double>::quiet_NaN());
  }
  // NaN samples have no rank; the quantile of the real data is
  // unchanged no matter how many arrive.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), median_before);
}

TEST(Histogram, QuantileOfAllNanReturnsLo) {
  // With zero ranked samples (total == nan_count) there is nothing to
  // rank, so every quantile degrades to lo — same as an empty
  // histogram, and never NaN.
  Histogram h(2.0, 10.0, 8);
  for (int k = 0; k < 5; ++k) {
    h.add(std::numeric_limits<double>::quiet_NaN());
  }
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.nan_count(), 5u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

}  // namespace
}  // namespace vds::sim
