#include "model/reliability.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/smt_engine.hpp"
#include "model/timing.hpp"
#include "sim/stats.hpp"

namespace vds::model {
namespace {

Params paper_params(double p = 0.5) {
  return Params::with_beta(0.65, 0.1, 20, p);
}

TEST(Reliability, ZeroRateIsFaultFree) {
  const auto est = estimate_reliability(paper_params(),
                                        Scheme::kDeterministic, 0.0, 1000);
  EXPECT_DOUBLE_EQ(est.p_fault_per_round, 0.0);
  EXPECT_DOUBLE_EQ(est.expected_detections, 0.0);
  EXPECT_DOUBLE_EQ(est.expected_rollbacks, 0.0);
  EXPECT_DOUBLE_EQ(est.p_job_silent, 0.0);
  EXPECT_NEAR(est.expected_total_time,
              1000.0 * tht2_round(paper_params()), 1e-9);
}

TEST(Reliability, PerRoundFaultProbabilityIsPoisson) {
  const Params params = paper_params();
  const double rate = 0.01;
  const auto est =
      estimate_reliability(params, Scheme::kDeterministic, rate, 1000);
  EXPECT_NEAR(est.p_fault_per_round,
              1.0 - std::exp(-rate * tht2_round(params)), 1e-12);
}

TEST(Reliability, DetectionsScaleWithRateAndJob) {
  const auto low = estimate_reliability(paper_params(),
                                        Scheme::kDeterministic, 0.001,
                                        1000);
  const auto high = estimate_reliability(paper_params(),
                                         Scheme::kDeterministic, 0.01,
                                         1000);
  const auto longer = estimate_reliability(paper_params(),
                                           Scheme::kDeterministic, 0.001,
                                           10000);
  EXPECT_GT(high.expected_detections, low.expected_detections);
  EXPECT_NEAR(longer.expected_detections, 10.0 * low.expected_detections,
              1e-9);
}

TEST(Reliability, RecoveryFailureGrowsWithS) {
  // Longer intervals -> longer retries -> more exposure to a second
  // fault: the Ziv-Bruck argument for short test intervals.
  const auto small = estimate_reliability(
      Params::with_beta(0.65, 0.1, 5), Scheme::kDeterministic, 0.01, 1000);
  const auto large = estimate_reliability(
      Params::with_beta(0.65, 0.1, 80), Scheme::kDeterministic, 0.01,
      1000);
  EXPECT_LT(small.p_recovery_failure, large.p_recovery_failure);
}

TEST(Reliability, OnlyPredictSchemeRisksSilence) {
  const double rate = 0.02;
  const auto det = estimate_reliability(paper_params(1.0),
                                        Scheme::kDeterministic, rate,
                                        5000);
  const auto prob = estimate_reliability(paper_params(1.0),
                                         Scheme::kProbabilistic, rate,
                                         5000);
  const auto pred = estimate_reliability(paper_params(1.0),
                                         Scheme::kPrediction, rate, 5000);
  EXPECT_DOUBLE_EQ(det.p_silent_per_detection, 0.0);
  EXPECT_DOUBLE_EQ(prob.p_silent_per_detection, 0.0);
  EXPECT_GT(pred.p_silent_per_detection, 0.0);
  EXPECT_GT(pred.p_job_silent, 0.0);
  EXPECT_LT(pred.p_job_silent, 1.0);
}

TEST(Reliability, SilentRiskGrowsWithPredictionAccuracy) {
  // The better the prediction, the more often corrupted roll-forwards
  // are *kept* -- an interesting inversion the closed form captures.
  const auto low = estimate_reliability(paper_params(0.3),
                                        Scheme::kPrediction, 0.02, 5000);
  const auto high = estimate_reliability(paper_params(0.9),
                                         Scheme::kPrediction, 0.02, 5000);
  EXPECT_LT(low.p_silent_per_detection, high.p_silent_per_detection);
}

TEST(Reliability, ThroughputDegradesGracefully) {
  double prev = 1e18;
  for (const double rate : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    const auto est = estimate_reliability(paper_params(),
                                          Scheme::kDeterministic, rate,
                                          10000);
    EXPECT_LT(est.expected_throughput, prev + 1e-12) << rate;
    prev = est.expected_throughput;
  }
}

TEST(Reliability, OptimalIntervalMovesWithWriteCost) {
  const Params params = paper_params();
  const int cheap = optimal_checkpoint_interval(
      params, Scheme::kDeterministic, 0.01, 10000, /*write=*/0.0);
  const int expensive = optimal_checkpoint_interval(
      params, Scheme::kDeterministic, 0.01, 10000, /*write=*/10.0);
  EXPECT_LT(cheap, expensive);
}

// ---------------------------------------------------------------------
// Monte Carlo validation against the protocol engine.
// ---------------------------------------------------------------------

TEST(ReliabilityMonteCarlo, DetectionsAndTimeMatchEngine) {
  const double rate = 0.01;
  const std::uint64_t job_rounds = 5000;
  const Params params = paper_params();
  const auto est = estimate_reliability(params, Scheme::kDeterministic,
                                        rate, job_rounds);

  core::VdsOptions options;
  options.t = params.t;
  options.c = params.c;
  options.t_cmp = params.t_cmp;
  options.alpha = params.alpha;
  options.s = params.s;
  options.job_rounds = job_rounds;
  options.scheme = core::RecoveryScheme::kRollForwardDet;

  sim::Accumulator detections;
  sim::Accumulator times;
  sim::Accumulator rollbacks;
  fault::FaultConfig fc;
  fc.rate = rate;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::Rng rng(seed);
    auto timeline = fault::generate_timeline(fc, rng, 60000.0);
    core::SmtVds vds(options, sim::Rng(seed + 1000));
    const auto report = vds.run(timeline);
    ASSERT_TRUE(report.completed);
    detections.add(static_cast<double>(report.detections));
    times.add(report.total_time);
    rollbacks.add(static_cast<double>(report.rollbacks));
  }

  EXPECT_NEAR(detections.mean(), est.expected_detections,
              0.15 * est.expected_detections);
  EXPECT_NEAR(times.mean(), est.expected_total_time,
              0.05 * est.expected_total_time);
  // Rollbacks are rare events; allow a generous band.
  EXPECT_NEAR(rollbacks.mean(), est.expected_rollbacks,
              std::max(2.0, est.expected_rollbacks));
}

TEST(ReliabilityMonteCarlo, SilentCorruptionRateMatchesPredictScheme) {
  const double rate = 0.02;
  const std::uint64_t job_rounds = 2000;
  const Params params = paper_params(1.0);
  const auto est = estimate_reliability(params, Scheme::kPrediction, rate,
                                        job_rounds);

  core::VdsOptions options;
  options.t = params.t;
  options.c = params.c;
  options.t_cmp = params.t_cmp;
  options.alpha = params.alpha;
  options.s = params.s;
  options.job_rounds = job_rounds;
  options.scheme = core::RecoveryScheme::kRollForwardPredict;

  int silent = 0;
  int completed = 0;
  fault::FaultConfig fc;
  fc.rate = rate;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    sim::Rng rng(seed);
    auto timeline = fault::generate_timeline(fc, rng, 30000.0);
    core::SmtVds vds(options, sim::Rng(seed + 2000));
    vds.set_predictor(std::make_unique<fault::OraclePredictor>());
    const auto report = vds.run(timeline);
    if (!report.completed) continue;
    ++completed;
    if (report.silent_corruption) ++silent;
  }
  ASSERT_GT(completed, 100);
  const double measured = static_cast<double>(silent) / completed;
  EXPECT_NEAR(measured, est.p_job_silent,
              std::max(0.1, 0.5 * est.p_job_silent));
}

}  // namespace
}  // namespace vds::model
